// GB/s microbenchmark + CI gate for the SIMD erasure-code data plane.
//
// Three sections:
//   1. Kernel arms: xor_into and mul_add through every arm the host can run
//      (scalar byte loop, 64-bit SWAR, SSSE3, AVX2) across shard sizes
//      4 KiB / 64 KiB / 1 MiB, reported in GB/s.
//   2. RAID data plane: encode / worst-case decode GB/s for RAID-5 and
//      RAID-6 stripes over the arena engine.
//   3. Targeted rebuild: reconstruct_shard (P, Q, and a data shard) vs the
//      old full-stripe path (decode + re-encode, reproduced here), reported
//      as a speedup.
//
// Gate (exit non-zero on failure; skipped when the host has no SIMD or
// CSHIELD_FORCE_SCALAR is set, but the numbers are always recorded):
//   * vectorized mul_add >= 4x the scalar byte loop at 64 KiB
//   * vectorized xor     >= 4x the scalar byte loop at 64 KiB
//   * targeted reconstruct >= 2x the decode+re-encode path (RAID-6 k=8)
//
// Results land in ./BENCH_kernels.json (a bare argument overrides the path)
// so the perf trajectory is diffable across PRs; see EXPERIMENTS.md E16.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "crypto/gf256.hpp"
#include "crypto/gf256_kernels.hpp"
#include "raid/raid.hpp"
#include "util/cpu.hpp"
#include "util/random.hpp"
#include "util/sim_clock.hpp"
#include "util/status.hpp"

namespace {

using namespace cshield;
namespace kern = gf256::kernels;
using kern::Arm;

Bytes make_payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 3);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

/// Best-of-three GB/s for `fn` touching `bytes_per_call` per invocation.
/// Reps are auto-scaled so each sample runs >= ~20 ms of wall clock.
template <typename Fn>
double gbps(std::size_t bytes_per_call, Fn&& fn) {
  // Calibrate.
  std::size_t reps = 1;
  for (;;) {
    Stopwatch w;
    for (std::size_t i = 0; i < reps; ++i) fn();
    if (w.elapsed_seconds() >= 0.02 || reps >= (1u << 24)) break;
    reps *= 4;
  }
  double best = 0.0;
  for (int sample = 0; sample < 3; ++sample) {
    Stopwatch w;
    for (std::size_t i = 0; i < reps; ++i) fn();
    const double s = w.elapsed_seconds();
    const double rate =
        static_cast<double>(bytes_per_call) * static_cast<double>(reps) / s /
        1e9;
    best = std::max(best, rate);
  }
  return best;
}

struct KernelRow {
  std::string kernel;  // "xor" | "mul_add"
  std::string arm;
  std::size_t size = 0;
  double gb_s = 0.0;
};

std::vector<Arm> available_arms() {
  std::vector<Arm> arms;
  for (Arm a : {Arm::kScalar, Arm::kSwar, Arm::kSsse3, Arm::kAvx2}) {
    if (kern::arm_available(a)) arms.push_back(a);
  }
  return arms;
}

struct RaidRow {
  std::string op;     // "encode" | "decode2"
  std::string level;  // "raid5" | "raid6"
  std::size_t payload = 0;
  double gb_s = 0.0;
};

struct RebuildRow {
  std::string target;  // "data" | "p" | "q"
  double targeted_gb_s = 0.0;
  double full_path_gb_s = 0.0;
  [[nodiscard]] double speedup() const {
    return full_path_gb_s > 0 ? targeted_gb_s / full_path_gb_s : 0.0;
  }
};

/// The pre-SIMD-PR rebuild strategy, kept here as the comparison baseline:
/// decode the whole padded stripe, re-encode every shard, take one.
Bytes rebuild_via_full_path(const raid::StripeLayout& layout,
                            const std::vector<std::optional<Bytes>>& shards,
                            std::size_t target, std::size_t shard_size) {
  const std::size_t padded = shard_size * layout.data_shards;
  Result<Bytes> payload = raid::decode(layout, shards, padded);
  CS_REQUIRE(payload.ok(), payload.status().to_string());
  raid::EncodedStripe re = raid::encode(layout, payload.value());
  return re.shard_copy(target);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  if (argc > 1) out_path = argv[1];

  const cpu::SimdLevel hw = cpu::hardware_level();
  const cpu::SimdLevel active = kern::active_arm();
  const bool simd_active =
      active == Arm::kSsse3 || active == Arm::kAvx2;
  std::cout << "=== kernel dispatch ===\n";
  std::cout << "hardware: " << cpu::simd_level_name(hw)
            << ", active arm: " << cpu::simd_level_name(active)
            << (simd_active ? "" : " (gate skipped: no SIMD arm active)")
            << "\n";

  // --- section 1: kernel arms ----------------------------------------------
  std::cout << "\n=== kernel arms (GB/s, best of 3) ===\n";
  std::vector<KernelRow> kernel_rows;
  const std::vector<std::size_t> sizes = {4096, 64 * 1024, 1 << 20};
  for (std::size_t n : sizes) {
    const Bytes src = make_payload(n, n);
    Bytes dst = make_payload(n, n + 1);
    for (Arm arm : available_arms()) {
      KernelRow row;
      row.kernel = "xor";
      row.arm = cpu::simd_level_name(arm);
      row.size = n;
      row.gb_s = gbps(n, [&] {
        kern::xor_into_arm(arm, dst.data(), src.data(), n);
      });
      kernel_rows.push_back(row);
      row.kernel = "mul_add";
      row.gb_s = gbps(n, [&] {
        kern::mul_add_arm(arm, 0x8E, src.data(), dst.data(), n);
      });
      kernel_rows.push_back(row);
    }
  }
  for (const auto& r : kernel_rows) {
    std::cout << r.kernel << " " << r.arm << " " << r.size / 1024 << " KiB: "
              << r.gb_s << " GB/s\n";
  }

  // --- section 2: raid data plane ------------------------------------------
  std::cout << "\n=== raid arena engine (GB/s of payload) ===\n";
  std::vector<RaidRow> raid_rows;
  for (auto [level, name] :
       {std::pair{raid::RaidLevel::kRaid5, "raid5"},
        std::pair{raid::RaidLevel::kRaid6, "raid6"}}) {
    const raid::StripeLayout layout = raid::StripeLayout::make(level, 8);
    for (std::size_t payload_size : {64ul * 1024, 1ul << 20}) {
      const Bytes payload = make_payload(payload_size, payload_size + 7);
      raid_rows.push_back(
          {"encode", name, payload_size, gbps(payload_size, [&] {
             raid::EncodedStripe s = raid::encode(layout, payload);
             CS_REQUIRE(s.arena.size() >= payload_size, "encode");
           })});
      const raid::EncodedStripe stripe = raid::encode(layout, payload);
      auto shards = raid::shard_copies(stripe);
      for (std::size_t e = 0; e < layout.fault_tolerance(); ++e) {
        shards[e].reset();
      }
      raid_rows.push_back(
          {"decode2", name, payload_size, gbps(payload_size, [&] {
             Result<Bytes> r = raid::decode(layout, shards, payload_size);
             CS_REQUIRE(r.ok(), "decode");
           })});
    }
  }
  for (const auto& r : raid_rows) {
    std::cout << r.op << " " << r.level << " " << r.payload / 1024
              << " KiB payload: " << r.gb_s << " GB/s\n";
  }

  // --- section 3: targeted rebuild vs full path ----------------------------
  std::cout << "\n=== targeted reconstruct vs decode+re-encode "
               "(raid6 k=8, 64 KiB shards) ===\n";
  std::vector<RebuildRow> rebuild_rows;
  {
    const std::size_t k = 8;
    const raid::StripeLayout layout =
        raid::StripeLayout::make(raid::RaidLevel::kRaid6, k);
    const std::size_t shard_size = 64 * 1024;
    const Bytes payload = make_payload(k * shard_size, 0xEC);
    const raid::EncodedStripe stripe = raid::encode(layout, payload);
    const auto run_target = [&](std::size_t target, const char* name) {
      auto shards = raid::shard_copies(stripe);
      shards[target].reset();
      RebuildRow row;
      row.target = name;
      row.targeted_gb_s = gbps(k * shard_size, [&] {
        Result<Bytes> r = raid::reconstruct_shard(layout, shards, target);
        CS_REQUIRE(r.ok(), "reconstruct");
      });
      row.full_path_gb_s = gbps(k * shard_size, [&] {
        const Bytes b =
            rebuild_via_full_path(layout, shards, target, shard_size);
        CS_REQUIRE(b.size() == shard_size, "full path");
      });
      rebuild_rows.push_back(row);
    };
    run_target(2, "data");
    run_target(k, "p");
    run_target(k + 1, "q");
  }
  for (const auto& r : rebuild_rows) {
    std::cout << "rebuild " << r.target << ": targeted " << r.targeted_gb_s
              << " GB/s vs full-path " << r.full_path_gb_s << " GB/s -> "
              << r.speedup() << "x\n";
  }

  // --- gate ----------------------------------------------------------------
  auto find_rate = [&](const char* kernel, Arm arm) {
    double best = 0.0;
    for (const auto& r : kernel_rows) {
      if (r.kernel == kernel && r.size == 64 * 1024 &&
          r.arm == cpu::simd_level_name(arm)) {
        best = std::max(best, r.gb_s);
      }
    }
    return best;
  };
  const double xor_scalar = find_rate("xor", Arm::kScalar);
  const double mul_scalar = find_rate("mul_add", Arm::kScalar);
  const double xor_simd = find_rate("xor", active);
  const double mul_simd = find_rate("mul_add", active);
  double min_rebuild_speedup = 1e9;
  for (const auto& r : rebuild_rows) {
    min_rebuild_speedup = std::min(min_rebuild_speedup, r.speedup());
  }
  const double xor_ratio = xor_scalar > 0 ? xor_simd / xor_scalar : 0.0;
  const double mul_ratio = mul_scalar > 0 ? mul_simd / mul_scalar : 0.0;

  bool gate_ok = true;
  std::cout << "\n=== gate ===\n";
  if (simd_active) {
    std::cout << "mul_add " << cpu::simd_level_name(active) << "/scalar: "
              << mul_ratio << "x (need >= 4)\n";
    std::cout << "xor     " << cpu::simd_level_name(active) << "/scalar: "
              << xor_ratio << "x (need >= 4)\n";
    std::cout << "reconstruct targeted/full: " << min_rebuild_speedup
              << "x (need >= 2)\n";
    gate_ok = mul_ratio >= 4.0 && xor_ratio >= 4.0 &&
              min_rebuild_speedup >= 2.0;
    std::cout << (gate_ok ? "PASS" : "FAIL") << "\n";
  } else {
    std::cout << "no SIMD arm active; speedup gate skipped "
                 "(numbers recorded)\n";
  }

  // --- JSON ----------------------------------------------------------------
  std::ostringstream js;
  js << "{\n";
  js << "  \"hardware\": \"" << cpu::simd_level_name(hw) << "\",\n";
  js << "  \"active_arm\": \"" << cpu::simd_level_name(active) << "\",\n";
  js << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
    const auto& r = kernel_rows[i];
    js << "    {\"kernel\": \"" << r.kernel << "\", \"arm\": \"" << r.arm
       << "\", \"bytes\": " << r.size << ", \"gb_s\": " << r.gb_s << "}"
       << (i + 1 == kernel_rows.size() ? "\n" : ",\n");
  }
  js << "  ],\n";
  js << "  \"raid\": [\n";
  for (std::size_t i = 0; i < raid_rows.size(); ++i) {
    const auto& r = raid_rows[i];
    js << "    {\"op\": \"" << r.op << "\", \"level\": \"" << r.level
       << "\", \"payload_bytes\": " << r.payload << ", \"gb_s\": " << r.gb_s
       << "}" << (i + 1 == raid_rows.size() ? "\n" : ",\n");
  }
  js << "  ],\n";
  js << "  \"reconstruct\": [\n";
  for (std::size_t i = 0; i < rebuild_rows.size(); ++i) {
    const auto& r = rebuild_rows[i];
    js << "    {\"target\": \"" << r.target << "\", \"targeted_gb_s\": "
       << r.targeted_gb_s << ", \"full_path_gb_s\": " << r.full_path_gb_s
       << ", \"speedup\": " << r.speedup() << "}"
       << (i + 1 == rebuild_rows.size() ? "\n" : ",\n");
  }
  js << "  ],\n";
  js << "  \"gate\": {\"simd_active\": " << (simd_active ? "true" : "false")
     << ", \"mul_add_ratio\": " << mul_ratio
     << ", \"xor_ratio\": " << xor_ratio
     << ", \"min_reconstruct_speedup\": "
     << (rebuild_rows.empty() ? 0.0 : min_rebuild_speedup)
     << ", \"pass\": " << (gate_ok ? "true" : "false") << "}\n";
  js << "}\n";
  std::ofstream out(out_path);
  out << js.str();
  out.close();
  std::cout << "\nwrote " << out_path << "\n";

  return gate_ok ? 0 : 1;
}

// E6 -- SVII-D "Addition of Misleading Data": "Addition of misleading data
// affects mining results ... Misleading data enhances security, but it has
// some overhead associated with retrieving data."
//
// Both halves quantified: (a) attacker regression quality vs the chaff
// fraction -- the adversary cannot tell chaff bytes from data, so decoded
// records are progressively poisoned; (b) the storage and read-path
// overhead the defender pays.
#include <iostream>

#include "attack/adversary.hpp"
#include "attack/harness.hpp"
#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"
#include "workload/bidding.hpp"
#include "workload/records.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::OpReport;
using core::PutOptions;

double ms(SimDuration d) { return static_cast<double>(d.count()) / 1e6; }

}  // namespace

int main() {
  workload::BiddingGenerator gen(0xE6);
  const mining::Dataset table = gen.generate(1024, 120.0);
  const workload::RecordCodec codec{workload::bidding_columns()};
  Result<mining::LinearModel> reference =
      mining::fit_linear(table, workload::bidding_features(), "Bid");
  CS_REQUIRE(reference.ok(), "reference fit failed");
  const Bytes payload = codec.encode(table);

  std::cout << "=== E6: misleading-data fraction vs attack quality and "
               "retrieval overhead ===\n"
            << "workload: 1024-row bidding table, 3 providers, 64 rows per "
               "chunk, single-copy placement (the SVII-A threat setting)\n";
  TextTable t({"chaff fraction", "stored bytes", "overhead x",
               "get_file model ms", "insider rows decoded",
               "insider coeff_err", "insider R^2"});
  for (double fraction : {0.0, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50}) {
    storage::ProviderRegistry registry = storage::make_default_registry(3);
    DistributorConfig config;
    config.default_raid = raid::RaidLevel::kNone;
    config.placement = core::PlacementMode::kUniformSpread;
    config.misleading_fraction = fraction;
    for (auto& s : config.chunk_sizes.size_bytes) {
      s = 64 * codec.record_size();
    }
    CloudDataDistributor cdd(registry, config);
    (void)cdd.register_client("victim");
    (void)cdd.add_password("victim", "pw", PrivacyLevel::kPublic);
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kPublic;
    opts.record_align = codec.record_size();
    OpReport put_report;
    Status st = cdd.put_file("victim", "pw", "bids", payload, opts,
                             &put_report);
    CS_REQUIRE(st.ok(), st.to_string());

    OpReport get_report;
    Result<Bytes> back = cdd.get_file("victim", "pw", "bids", &get_report);
    CS_REQUIRE(back.ok() && equal(back.value(), payload),
               "legitimate read must be lossless");

    // The strongest insider decodes the chaffed chunks with the known
    // schema: chaff bytes shift record boundaries and poison field values.
    // The attacker sanitizes first (drops rows with non-finite / absurd
    // values) -- surviving rows are still silently poisoned.
    std::size_t best_rows = 0;
    attack::RegressionAttackResult best;
    for (ProviderIndex p = 0; p < registry.size(); ++p) {
      const mining::Dataset rows = attack::sanitize_rows(
          attack::reconstruct_rows(attack::insider(registry, p), codec));
      if (rows.num_rows() > best_rows) {
        best_rows = rows.num_rows();
        best = attack::regression_attack(rows, workload::bidding_features(),
                                         "Bid", reference.value(), table);
      }
    }
    t.add(TextTable::fmt(fraction, 2), put_report.bytes_stored,
          TextTable::fmt(static_cast<double>(put_report.bytes_stored) /
                             static_cast<double>(payload.size()),
                         3),
          TextTable::fmt(ms(get_report.sim_time_parallel), 2), best_rows,
          best.mining_succeeded ? TextTable::fmt(best.coefficient_error, 3)
                                : "FAILED",
          best.mining_succeeded ? TextTable::fmt(best.model.r_squared, 3)
                                : "-");
  }
  t.print(std::cout);
  std::cout << "expected shape: a few percent of chaff already derails the "
               "decoded records (coeff_err explodes / R^2 collapses) while "
               "the defender's storage+read overhead grows only linearly in "
               "the fraction.\n";
  return 0;
}

// bench_shardplane: the N-way sharded metadata/journal plane under the
// small-op regime that motivated it (E21).
//
// BENCH_smallops.json showed per-op put throughput FALLING from 1185 ops/s
// at 16 clients to 637 at 64: every put serializes on one MetadataStore
// shared_mutex and one journal fsync lane. This bench sweeps the shard
// count at fixed 64 clients and gates the cure. Because the 1-shard
// baseline is fsync-bound, its absolute rate tracks the disk's mood from
// minute to minute; every gate therefore interleaves its two cells
// rep-by-rep and scores the MEDIAN OF PAIRED RATIOS, not a ratio of
// medians taken minutes apart.
//
//   1. Shard sweep (per-op commit, fsync WAL, realtime providers):
//      shards in {1, 2, 4, 8} x 64 clients. Gate: the 4-shard plane must
//      deliver >= 2x the 1-shard per-op put throughput. This holds even on
//      a single-vCPU host because the win is overlapping fsync WAITS
//      across commit lanes, not CPU parallelism.
//   2. Batched-on-sharded gate: the PR 6 amortizations (group commit +
//      16-shard put_many RPCs) must still give >= 3x when run on the
//      4-shard plane. On hosts with >= 4 cores the baseline is per-op on
//      the same 4-shard plane. On narrower hosts the 4-lane per-op
//      baseline already overlaps its fsyncs while batched throughput is
//      pinned by the single core, so the ratio compresses for hardware
//      reasons; there the gate falls back to PR 6's own baseline (per-op
//      on the single-lane plane, the configuration PR 6 measured) and
//      additionally requires batched throughput within 20% of its 1-shard
//      value (splitting one commit stream across 4 WAL files costs real
//      ext4 transactions on a single disk; on multicore those fsyncs
//      overlap instead).
//   3. Parallel recovery: a 4-shard plane with ~4000 journaled records,
//      recovered by recover_plane (recovery workers clamped to the core
//      count) vs replaying the same four journals sequentially. Replay is
//      CPU-bound, so a single-vCPU host cannot show the speedup as wall
//      clock; there the gate requires (a) recover_plane costs <= 25%
//      overhead over sequential replay and (b) the measured critical path
//      (slowest shard) is >= 1.5x shorter than the sequential sum -- the
//      wall clock a >= 4-core host observes. With >= 2 cores the gate is
//      the direct wall-clock ratio.
//
// All raw numbers (including the ones a strict multicore gate would use)
// land in BENCH_shardplane.json together with hardware_concurrency, so
// the JSON is self-describing about which form of each gate applied. A
// bare argument overrides the output path; exit is non-zero if any gate
// fails.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/distributor.hpp"
#include "core/journal.hpp"
#include "core/metadata_plane.hpp"
#include "storage/provider_registry.hpp"
#include "util/sim_clock.hpp"
#include "util/stats.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::MetadataPlane;
using core::PutOptions;

namespace fs = std::filesystem;

constexpr double kBaseLatencyMs = 3.0;
constexpr std::size_t kClients = 64;
constexpr std::size_t kFilesPerClient = 16;
// Enough lanes that 3 ms provider RPCs never cap the sweep (1 KiB puts do
// ~4 RPCs; 48 lanes = 16k RPC/s of sleeping-thread capacity) without
// drowning a narrow host in context switches.
constexpr std::size_t kIoThreads = 48;
constexpr int kReps = 5;

Bytes make_payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Median over paired per-rep ratios a[i]/b[i] -- immune to the slow drift
/// of fsync cost across the run that a ratio-of-medians would conflate.
double paired_ratio(const std::vector<double>& a,
                    const std::vector<double>& b) {
  std::vector<double> r;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (b[i] > 0.0) r.push_back(a[i] / b[i]);
  }
  return r.empty() ? 0.0 : median(r);
}

/// Scratch directory for journal/checkpoint files, removed on destruction.
struct BenchDir {
  fs::path path;
  BenchDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cshield_shardbench_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~BenchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

storage::ProviderRegistry make_realtime_registry(std::size_t n) {
  storage::ProviderRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    storage::ProviderDescriptor d;
    d.name = "rt" + std::to_string(i);
    d.privacy_level = PrivacyLevel::kHigh;
    d.cost_level = CostLevel::kCheapest;
    storage::LatencyModel latency;
    latency.base_latency = SimDuration(std::chrono::microseconds(
        static_cast<std::int64_t>(kBaseLatencyMs * 1000.0)));
    registry.add(std::move(d), latency, 0xBE9C0000ULL + i);
    registry.at(i).set_realtime_scale(1.0);
  }
  return registry;
}

/// A journaled N-shard plane rooted at `dir` (fresh stores). `batched`
/// additionally arms each commit lane's group commit, with the coalescing
/// window scaled by the shard count: each of the N lanes sees 1/N of the
/// commit stream, so a fixed window would shrink expected group depth (and
/// multiply fsyncs) N-fold.
std::shared_ptr<MetadataPlane> make_plane(const fs::path& dir,
                                          std::size_t shards, bool batched) {
  std::vector<MetadataPlane::Partition> parts(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    Result<std::unique_ptr<core::Journal>> j = core::Journal::open(
        core::shard_file_path(dir / "plane.wal", k),
        static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(shards));
    CS_REQUIRE(j.ok(), j.status().to_string());
    parts[k].journal = std::shared_ptr<core::Journal>(std::move(j.value()));
    parts[k].store = std::make_shared<core::MetadataStore>();
    parts[k].checkpoint_path = core::shard_file_path(dir / "plane.ckpt", k);
    if (batched) {
      parts[k].journal->set_group_commit(core::GroupCommitConfig{
          64, std::chrono::microseconds(250 * static_cast<long>(shards))});
    }
  }
  return std::make_shared<MetadataPlane>(std::move(parts));
}

struct Cell {
  std::size_t shards = 0;
  std::string mode;
  std::vector<double> rep_ops;  ///< put throughput, one entry per rep
  std::vector<double> wall_s;   ///< per-put latencies, pooled over reps
  [[nodiscard]] double ops_per_sec() const {
    return rep_ops.empty() ? 0.0 : median(rep_ops);
  }
};

/// One rep of one (shards, mode) cell: 64 clients x 16 small files against
/// realtime providers with a fsync WAL -- the BENCH_smallops regime with
/// the metadata plane partitioned N ways.
void run_rep(Cell& cell, int rep) {
  const bool batched = cell.mode != "per_op";
  BenchDir dir;
  storage::ProviderRegistry registry = make_realtime_registry(12);
  DistributorConfig config;
  config.default_raid = raid::RaidLevel::kRaid5;
  // 2+1 RAID-5 stripes and no decoys: 3 provider RPCs per put, so the
  // metadata/journal plane -- not per-chunk fan-out -- is what's priced.
  config.stripe_data_shards = 2;
  config.misleading_fraction = 0.0;
  config.worker_threads = 16;
  config.io_threads = kIoThreads;
  config.pipelined = true;
  config.telemetry = false;
  config.seed = 0x5AD7 + rep;
  config.plane = make_plane(dir.path, cell.shards, batched);
  if (batched) {
    config.rpc_batch_shards = 16;
    config.rpc_batch_wait = std::chrono::microseconds(500);
  }
  CloudDataDistributor cdd(registry, config);
  for (std::size_t c = 0; c < kClients; ++c) {
    const std::string name = "sc" + std::to_string(c);
    CS_REQUIRE(cdd.register_client(name).ok(), "register");
    CS_REQUIRE(cdd.add_password(name, "pw", PrivacyLevel::kHigh).ok(), "pw");
  }
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;  // 4 KiB chunks

  std::mutex merge_mu;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  Stopwatch phase;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> local;
      local.reserve(kFilesPerClient);
      for (std::size_t m = 0; m < kFilesPerClient; ++m) {
        const Bytes data = make_payload(1024, rep * 7919 + c * 131 + m);
        Stopwatch w;
        Status st = cdd.put_file("sc" + std::to_string(c), "pw",
                                 "f" + std::to_string(m), data, opts);
        local.push_back(w.elapsed_seconds());
        CS_REQUIRE(st.ok(), st.to_string());
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      cell.wall_s.insert(cell.wall_s.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = phase.elapsed_seconds();
  const double puts = static_cast<double>(kClients * kFilesPerClient);
  cell.rep_ops.push_back(elapsed > 0.0 ? puts / elapsed : 0.0);
}

void print_cell(const Cell& c) {
  std::cout << c.shards << " shard" << (c.shards == 1 ? "" : "s") << " "
            << c.mode << ": " << c.ops_per_sec() << " puts/s (p50 "
            << percentile(c.wall_s, 0.5) * 1e3 << " ms, p99 "
            << percentile(c.wall_s, 0.99) * 1e3 << " ms)\n";
}

// --- parallel recovery ------------------------------------------------------

struct RecoveryResult {
  std::size_t records = 0;       ///< journal records replayed (all shards)
  double sequential_ms = 0.0;    ///< per-shard replay, one shard at a time
  double parallel_ms = 0.0;      ///< recover_plane
  double overhead = 0.0;         ///< paired median parallel/sequential
  std::vector<double> shard_ms;  ///< median per-shard replay time
  [[nodiscard]] double wall_speedup() const {
    return parallel_ms > 0.0 ? sequential_ms / parallel_ms : 0.0;
  }
  /// Slowest single shard: the plane-recovery critical path, and the wall
  /// clock a host with >= shard_count cores observes.
  [[nodiscard]] double critical_path_ms() const {
    return shard_ms.empty()
               ? 0.0
               : *std::max_element(shard_ms.begin(), shard_ms.end());
  }
  [[nodiscard]] double critical_path_speedup() const {
    const double cp = critical_path_ms();
    return cp > 0.0 ? sequential_ms / cp : 0.0;
  }
};

RecoveryResult run_recovery(std::size_t shards, int reps) {
  BenchDir dir;
  const fs::path jbase = dir.path / "plane.wal";
  const fs::path cbase = dir.path / "plane.ckpt";
  // Simulated (instant) providers: this phase prices journal REPLAY, so
  // setup just needs to mint ~4000 records across the shard journals. No
  // checkpoints -- recovery replays every record.
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  {
    DistributorConfig config;
    config.stripe_data_shards = 3;
    config.misleading_fraction = 0.1;
    config.worker_threads = 8;
    config.telemetry = false;
    std::vector<MetadataPlane::Partition> parts(shards);
    for (std::size_t k = 0; k < shards; ++k) {
      Result<std::unique_ptr<core::Journal>> j = core::Journal::open(
          core::shard_file_path(jbase, k), static_cast<std::uint32_t>(k),
          static_cast<std::uint32_t>(shards));
      CS_REQUIRE(j.ok(), j.status().to_string());
      j.value()->set_group_commit(
          core::GroupCommitConfig{64, std::chrono::microseconds(0)});
      parts[k].journal = std::shared_ptr<core::Journal>(std::move(j.value()));
      parts[k].store = std::make_shared<core::MetadataStore>();
    }
    config.plane = std::make_shared<MetadataPlane>(std::move(parts));
    CloudDataDistributor cdd(registry, config);
    CS_REQUIRE(cdd.register_client("bench").ok(), "register");
    CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kModerate).ok(),
               "pw");
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kModerate;
    constexpr std::size_t kSetupThreads = 8;
    constexpr std::size_t kPutsPerThread = 250;  // ~4000 records total
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kSetupThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t m = 0; m < kPutsPerThread; ++m) {
          const Bytes data = make_payload(1024, t * 1000 + m);
          CS_REQUIRE(cdd.put_file("bench", "pw",
                                  "r" + std::to_string(t) + "_" +
                                      std::to_string(m),
                                  data, opts)
                         .ok(),
                     "setup put");
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  RecoveryResult result;
  std::vector<double> seq_ms;
  std::vector<double> par_ms;
  std::vector<std::vector<double>> shard_ms(shards);
  for (int rep = 0; rep < reps; ++rep) {
    {
      Stopwatch w;
      std::size_t replayed = 0;
      for (std::size_t k = 0; k < shards; ++k) {
        Stopwatch ws;
        Result<core::RecoveredState> r = core::recover_metadata(
            core::shard_file_path(cbase, k), core::shard_file_path(jbase, k),
            static_cast<std::uint32_t>(k),
            static_cast<std::uint32_t>(shards));
        CS_REQUIRE(r.ok(), r.status().to_string());
        shard_ms[k].push_back(ws.elapsed_seconds() * 1e3);
        replayed += r.value().replayed_records;
      }
      seq_ms.push_back(w.elapsed_seconds() * 1e3);
      result.records = replayed;
    }
    {
      Stopwatch w;
      Result<core::PlaneRecovery> r =
          core::recover_plane(cbase, jbase, shards);
      CS_REQUIRE(r.ok(), r.status().to_string());
      par_ms.push_back(w.elapsed_seconds() * 1e3);
      CS_REQUIRE(r.value().replayed_records == result.records,
                 "parallel and sequential replay disagree on record count");
    }
  }
  result.sequential_ms = median(seq_ms);
  result.parallel_ms = median(par_ms);
  result.overhead = paired_ratio(par_ms, seq_ms);
  for (std::size_t k = 0; k < shards; ++k) {
    result.shard_ms.push_back(median(shard_ms[k]));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_shardplane.json";
  if (argc > 1) out_path = argv[1];
  constexpr double kScalingTarget = 2.0;   // 4-shard vs 1-shard, per-op
  constexpr double kBatchedTarget = 3.0;   // batched vs per-op
  constexpr double kRecoveryTarget = 1.5;  // parallel vs sequential replay
  constexpr double kRecoveryOverheadCap = 1.25;
  constexpr double kLaneSplitTolerance = 0.80;  // batched@4 vs batched@1
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // All six cells interleaved rep-by-rep so each paired ratio sees the
  // same disk conditions.
  Cell per_op_cells[] = {{1, "per_op"}, {2, "per_op"}, {4, "per_op"},
                         {8, "per_op"}};
  Cell batched1{1, "group_commit_batched"};
  Cell batched4{4, "group_commit_batched"};
  std::cout << "=== shard sweep: " << kClients
            << " clients, fsync WAL, realtime providers, " << kReps
            << " interleaved reps (host cores: " << hw << ") ===\n";
  for (int rep = 0; rep < kReps; ++rep) {
    for (Cell& c : per_op_cells) run_rep(c, rep);
    run_rep(batched1, rep);
    run_rep(batched4, rep);
  }
  for (const Cell& c : per_op_cells) print_cell(c);
  print_cell(batched1);
  print_cell(batched4);

  const Cell& per_op1 = per_op_cells[0];
  const Cell& per_op4 = per_op_cells[2];
  const double scaling = paired_ratio(per_op4.rep_ops, per_op1.rep_ops);
  const bool scaling_ok = scaling >= kScalingTarget;
  std::cout << "4-shard / 1-shard per-op (paired): " << scaling
            << "x (target >= " << kScalingTarget
            << "): " << (scaling_ok ? "PASS" : "FAIL") << "\n";

  const double batched_vs_4shard =
      paired_ratio(batched4.rep_ops, per_op4.rep_ops);
  const double batched_vs_pr6_baseline =
      paired_ratio(batched4.rep_ops, per_op1.rep_ops);
  const double lane_split = paired_ratio(batched4.rep_ops, batched1.rep_ops);
  const bool batched_strict = batched_vs_4shard >= kBatchedTarget;
  // Narrow host (fewer cores than shards): per-op on 4 lanes already
  // overlaps its fsyncs while batched is pinned by the core count, so fall
  // back to PR 6's own baseline (per-op, single commit lane) plus the
  // lane-split tolerance.
  const bool batched_fallback =
      hw < 4 && batched_vs_pr6_baseline >= kBatchedTarget &&
      lane_split >= kLaneSplitTolerance;
  const bool batched_ok = batched_strict || batched_fallback;
  std::cout << "batched@4 / per-op@4: " << batched_vs_4shard
            << "x; batched@4 / per-op@1 (PR 6 baseline): "
            << batched_vs_pr6_baseline << "x; batched@4 / batched@1: "
            << lane_split << " (target >= " << kBatchedTarget << ", "
            << (hw < 4 ? "PR 6-baseline form, <4 cores" : "strict")
            << "): " << (batched_ok ? "PASS" : "FAIL") << "\n";

  std::cout << "\n=== parallel recovery: 4 journals, workers clamped to "
               "cores ===\n";
  const RecoveryResult recovery = run_recovery(4, 9);
  std::cout << recovery.records << " records: sequential "
            << recovery.sequential_ms << " ms, recover_plane "
            << recovery.parallel_ms << " ms (wall " << recovery.wall_speedup()
            << "x, paired overhead " << recovery.overhead
            << "), critical path " << recovery.critical_path_ms()
            << " ms (slowest shard; " << recovery.critical_path_speedup()
            << "x over sequential)\n";
  // Replay is CPU-bound, so a single-core host cannot show the speedup as
  // wall clock; there the gate is overhead + critical path (the wall clock
  // a >= 4-core host observes).
  const bool recovery_strict = recovery.wall_speedup() >= kRecoveryTarget;
  const bool recovery_fallback =
      hw < 2 && recovery.overhead <= kRecoveryOverheadCap &&
      recovery.critical_path_speedup() >= kRecoveryTarget;
  const bool recovery_ok = recovery_strict || recovery_fallback;
  std::cout << "recovery gate (target >= " << kRecoveryTarget << ", "
            << (hw < 2 ? "critical-path form, single core" : "wall-clock")
            << "): " << (recovery_ok ? "PASS" : "FAIL") << "\n";

  std::ofstream out(out_path);
  CS_REQUIRE(out.good(), "cannot open " + out_path);
  out << "{\n  \"bench\": \"shardplane\",\n"
      << "  \"config\": {\"clients\": " << kClients
      << ", \"files_per_client\": " << kFilesPerClient
      << ", \"file_bytes\": 1024, \"chunk_bytes\": 4096, "
         "\"data_shards\": 2, \"misleading_fraction\": 0.0, \"io_threads\": "
      << kIoThreads << ", \"providers\": 12, \"realtime_latency_ms\": "
      << kBaseLatencyMs << ", \"reps\": " << kReps
      << ", \"journal\": \"fsync WAL per metadata shard\", "
         "\"hardware_concurrency\": "
      << hw << "},\n"
      << "  \"shard_sweep\": [\n";
  std::vector<const Cell*> rows;
  for (const Cell& c : per_op_cells) rows.push_back(&c);
  rows.push_back(&batched1);
  rows.push_back(&batched4);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Cell& c = *rows[i];
    out << "    {\"shards\": " << c.shards << ", \"mode\": \"" << c.mode
        << "\", \"clients\": " << kClients
        << ", \"ops_per_sec\": " << c.ops_per_sec()
        << ", \"p50_ms\": " << percentile(c.wall_s, 0.5) * 1e3
        << ", \"p99_ms\": " << percentile(c.wall_s, 0.99) * 1e3 << "}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"scaling_gate\": {\"per_op_1shard_ops\": "
      << per_op1.ops_per_sec()
      << ", \"per_op_4shard_ops\": " << per_op4.ops_per_sec()
      << ", \"scaling\": " << scaling
      << ", \"target_scaling\": " << kScalingTarget
      << ", \"pass\": " << (scaling_ok ? "true" : "false") << "},\n"
      << "  \"batched_gate\": {\"batched_4shard_ops\": "
      << batched4.ops_per_sec()
      << ", \"batched_1shard_ops\": " << batched1.ops_per_sec()
      << ", \"speedup_vs_per_op_4shard\": " << batched_vs_4shard
      << ", \"speedup_vs_per_op_1shard\": " << batched_vs_pr6_baseline
      << ", \"lane_split_ratio\": " << lane_split
      << ", \"target_speedup\": " << kBatchedTarget << ", \"form\": \""
      << (batched_strict ? "strict" : "pr6_baseline")
      << "\", \"pass\": " << (batched_ok ? "true" : "false") << "},\n"
      << "  \"recovery\": {\"shards\": 4, \"records\": " << recovery.records
      << ", \"sequential_ms\": " << recovery.sequential_ms
      << ", \"parallel_ms\": " << recovery.parallel_ms
      << ", \"wall_speedup\": " << recovery.wall_speedup()
      << ", \"paired_overhead\": " << recovery.overhead
      << ", \"per_shard_ms\": [";
  for (std::size_t k = 0; k < recovery.shard_ms.size(); ++k) {
    out << recovery.shard_ms[k]
        << (k + 1 < recovery.shard_ms.size() ? ", " : "");
  }
  out << "], \"critical_path_ms\": " << recovery.critical_path_ms()
      << ", \"critical_path_speedup\": " << recovery.critical_path_speedup()
      << ", \"target_speedup\": " << kRecoveryTarget << ", \"form\": \""
      << (recovery_strict ? "wall_clock" : "critical_path")
      << "\", \"pass\": " << (recovery_ok ? "true" : "false") << "},\n"
      << "  \"pass\": "
      << (scaling_ok && batched_ok && recovery_ok ? "true" : "false")
      << "\n}\n";
  out.close();
  std::cout << "\nwrote " << out_path << "\n";
  return scaling_ok && batched_ok && recovery_ok ? 0 : 1;
}

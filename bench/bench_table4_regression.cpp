// E1 -- Table IV and the SVII-A regression attack.
//
// Paper: a malicious insider at the single provider "Titans" regresses the
// Hercules bidding history and finds
//     bid ~ 1.4*Materials + 1.5*Production + 3.1*Maintenance + 5436
// Distributing the 12 rows equally across Titans/Spartans/Yagamis leaves
// each insider 4 rows, and each fragment regression yields a different,
// misleading equation (the paper reports (1.8,0.8,3.4)+4489,
// (3.0,4.7,2.2)+3089 and (2.4,1.5,1.7)+8753).
//
// This binary (a) reproduces that exact experiment through the real
// distributor + adversary stack, and (b) extends it into a sweep over
// synthetic table sizes and provider counts, reporting attacker coefficient
// error and prediction RMSE.
#include <cstdio>
#include <iostream>

#include "attack/adversary.hpp"
#include "attack/harness.hpp"
#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"
#include "workload/bidding.hpp"
#include "workload/records.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::PutOptions;

/// Distributes `table` as record-aligned plaintext chunks of
/// `rows_per_chunk` rows over `n` providers and returns per-insider
/// regression outcomes.
struct World {
  storage::ProviderRegistry registry;
  std::unique_ptr<CloudDataDistributor> cdd;
  workload::RecordCodec codec{workload::bidding_columns()};

  static storage::ProviderRegistry named_registry(
      const std::vector<std::string>& names) {
    storage::ProviderRegistry reg;
    for (const auto& name : names) {
      storage::ProviderDescriptor d;
      d.name = name;
      d.privacy_level = PrivacyLevel::kHigh;
      reg.add(std::move(d));
    }
    return reg;
  }

  World(const mining::Dataset& table, std::size_t n,
        std::size_t rows_per_chunk,
        core::PlacementMode mode = core::PlacementMode::kUniformSpread,
        std::vector<std::string> names = {})
      : registry(names.empty() ? storage::make_default_registry(n)
                               : named_registry(names)) {
    DistributorConfig config;
    config.default_raid = raid::RaidLevel::kNone;
    config.placement = mode;
    for (auto& s : config.chunk_sizes.size_bytes) {
      s = rows_per_chunk * codec.record_size();
    }
    cdd = std::make_unique<CloudDataDistributor>(registry, config);
    (void)cdd->register_client("Hercules");
    (void)cdd->add_password("Hercules", "pw", PrivacyLevel::kPublic);
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kPublic;
    opts.record_align = codec.record_size();
    Status st = cdd->put_file("Hercules", "pw", "bids.tbl",
                              codec.encode(table), opts);
    CS_REQUIRE(st.ok(), st.to_string());
  }
};

void reproduce_table_iv() {
  std::cout << "=== Table IV: Hercules bidding history (verbatim) ===\n";
  const mining::Dataset table = workload::hercules_table();
  TextTable t({"Year", "Company", "Materials", "Production", "Maintenance",
               "Bid"});
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    t.add(static_cast<int>(table.at(r, 0)),
          table.at(r, 1) == 0.0 ? "Greece" : "Rome",
          static_cast<int>(table.at(r, 2)), static_cast<int>(table.at(r, 3)),
          static_cast<int>(table.at(r, 4)), static_cast<int>(table.at(r, 5)));
  }
  t.print(std::cout);
}

void reproduce_vii_a() {
  std::cout << "\n=== SVII-A: insider regression, 1 vs 3 providers ===\n";
  const mining::Dataset table = workload::hercules_table();
  Result<mining::LinearModel> reference =
      mining::fit_linear(table, workload::bidding_features(), "Bid");
  CS_REQUIRE(reference.ok(), "reference fit failed");
  std::cout << "paper (full data): (1.40*Materials + 1.50*Production + "
               "3.10*Maintenance) + 5436\n";
  std::cout << "ours  (full data): "
            << reference.value().equation(workload::bidding_features())
            << "   [R^2=" << TextTable::fmt(reference.value().r_squared)
            << "]\n\n";

  // Single provider: the insider sees everything.
  {
    World world(table, 1, 12);
    const mining::Dataset rows = attack::reconstruct_rows(
        attack::insider(world.registry, 0), world.codec);
    const auto r = attack::regression_attack(
        rows, workload::bidding_features(), "Bid", reference.value(), table);
    std::cout << "single provider insider (" << r.rows_used
              << " rows): " << r.model.equation(workload::bidding_features())
              << "  coeff_err=" << TextTable::fmt(r.coefficient_error, 4)
              << "\n\n";
  }

  // Three providers, 4 rows each, distributed equally as in the paper:
  // misleading equations per insider. Paper's fragments gave
  // (1.8,0.8,3.4)+4489, (3.0,4.7,2.2)+3089, (2.4,1.5,1.7)+8753.
  {
    World world(table, 3, 4, core::PlacementMode::kRoundRobin,
                {"Titans", "Spartans", "Yagamis"});
    std::cout << "three providers, 4 rows per chunk (paper: each insider's "
                 "equation is misleading):\n";
    TextTable t({"provider", "rows", "attacker equation", "coeff_err",
                 "pred RMSE ($)"});
    for (ProviderIndex p = 0; p < world.registry.size(); ++p) {
      const mining::Dataset rows = attack::reconstruct_rows(
          attack::insider(world.registry, p), world.codec);
      if (rows.num_rows() == 0) continue;
      const auto r = attack::regression_attack(
          rows, workload::bidding_features(), "Bid", reference.value(),
          table);
      t.add(world.registry.at(p).descriptor().name, r.rows_used,
            r.mining_succeeded
                ? r.model.equation(workload::bidding_features())
                : "MINING FAILED (singular fit)",
            r.mining_succeeded ? TextTable::fmt(r.coefficient_error, 3) : "-",
            r.mining_succeeded ? TextTable::fmt(r.prediction_rmse, 0) : "-");
    }
    t.print(std::cout);
  }
}

void scaled_sweep() {
  std::cout << "\n=== E1 extension: synthetic sweep (rows x providers) ===\n"
            << "workload: BiddingGenerator, planted bid = 1.4*M + 1.5*P + "
               "3.1*Mnt + 5436, noise sd=120; chunk = 4 rows\n";
  TextTable t({"rows", "providers", "insider rows (max)",
               "insider coeff_err", "insider pred RMSE ($)",
               "full-pool coeff_err"});
  for (std::size_t rows : {48u, 192u, 768u, 3072u}) {
    workload::BiddingGenerator gen(0xE1 + rows);
    const mining::Dataset table = gen.generate(rows, 120.0);
    Result<mining::LinearModel> reference =
        mining::fit_linear(table, workload::bidding_features(), "Bid");
    CS_REQUIRE(reference.ok(), "reference fit failed");
    for (std::size_t n : {1u, 3u, 6u, 12u}) {
      World world(table, n, 4);
      // Strongest insider = most rows reconstructed.
      std::size_t best_rows = 0;
      attack::RegressionAttackResult best;
      for (ProviderIndex p = 0; p < world.registry.size(); ++p) {
        const mining::Dataset recon = attack::reconstruct_rows(
            attack::insider(world.registry, p), world.codec);
        if (recon.num_rows() > best_rows) {
          best_rows = recon.num_rows();
          best = attack::regression_attack(recon,
                                           workload::bidding_features(),
                                           "Bid", reference.value(), table);
        }
      }
      std::vector<ProviderIndex> all;
      for (ProviderIndex p = 0; p < world.registry.size(); ++p) {
        all.push_back(p);
      }
      const auto pool = attack::regression_attack(
          attack::reconstruct_rows(attack::compromise(world.registry, all),
                                   world.codec),
          workload::bidding_features(), "Bid", reference.value(), table);
      t.add(rows, n, best_rows,
            best.mining_succeeded ? TextTable::fmt(best.coefficient_error, 4)
                                  : "FAILED",
            best.mining_succeeded ? TextTable::fmt(best.prediction_rmse, 0)
                                  : "-",
            pool.mining_succeeded ? TextTable::fmt(pool.coefficient_error, 4)
                                  : "FAILED");
    }
  }
  t.print(std::cout);
  std::cout << "expected shape: insider error grows with provider count "
               "(fewer rows per target); full-pool attacker always recovers "
               "the model -- distribution, not secrecy, is the defence.\n";
}

}  // namespace

int main() {
  reproduce_table_iv();
  reproduce_vii_a();
  scaled_sweep();
  return 0;
}

// E10 -- SIII-B insider/outsider coverage: "the distribution of data
// obliges him to target multiple cloud providers, making his job
// increasingly difficult" and "distribution of data chunks among multiple
// providers restricts a cloud provider from accessing all chunks of a
// client".
//
// Measured: data coverage and mining quality as a function of how many of
// the n providers an outsider has compromised, for n in {3, 6, 12, 16} --
// the quantitative form of "more targets, less data per target".
#include <iostream>

#include "attack/adversary.hpp"
#include "attack/harness.hpp"
#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"
#include "workload/bidding.hpp"
#include "workload/records.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::PutOptions;

}  // namespace

int main() {
  workload::BiddingGenerator gen(0xE10);
  // Small table (the paper's setting is 12 rows): at low coverage the
  // attacker's sample is genuinely starved, so model quality -- not just
  // coverage -- degrades with n.
  const mining::Dataset table = gen.generate(128, 120.0);
  const workload::RecordCodec codec{workload::bidding_columns()};
  Result<mining::LinearModel> reference =
      mining::fit_linear(table, workload::bidding_features(), "Bid");
  CS_REQUIRE(reference.ok(), "reference fit failed");

  std::cout << "=== E10: outsider coverage & mining quality vs compromised "
               "providers ===\n"
            << "workload: 128-row bidding table, 8 rows/chunk, plaintext "
               "chunks, uniform spread; attacker compromises the m providers "
               "holding the most data (worst case for the defender)\n";
  TextTable t({"n providers", "m compromised", "coverage", "coeff_err",
               "pred RMSE ($)", "mining"});
  for (std::size_t n : {3u, 6u, 12u, 16u}) {
    storage::ProviderRegistry registry = storage::make_default_registry(n);
    DistributorConfig config;
    config.default_raid = raid::RaidLevel::kNone;
    config.placement = core::PlacementMode::kUniformSpread;
    for (auto& s : config.chunk_sizes.size_bytes) {
      s = 8 * codec.record_size();
    }
    CloudDataDistributor cdd(registry, config);
    (void)cdd.register_client("victim");
    (void)cdd.add_password("victim", "pw", PrivacyLevel::kPublic);
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kPublic;
    opts.record_align = codec.record_size();
    Status st = cdd.put_file("victim", "pw", "bids", codec.encode(table),
                             opts);
    CS_REQUIRE(st.ok(), st.to_string());

    // Providers sorted by how much victim data they hold (descending).
    std::vector<ProviderIndex> order;
    for (ProviderIndex p = 0; p < registry.size(); ++p) order.push_back(p);
    std::sort(order.begin(), order.end(),
              [&](ProviderIndex a, ProviderIndex b) {
                return registry.at(a).bytes_stored() >
                       registry.at(b).bytes_stored();
              });
    for (std::size_t m = 1; m <= n; m = (m < 4 ? m + 1 : m * 2)) {
      const std::size_t take = std::min(m, n);
      const std::vector<ProviderIndex> targets(order.begin(),
                                               order.begin() +
                                                   static_cast<std::ptrdiff_t>(take));
      const mining::Dataset rows = attack::reconstruct_rows(
          attack::compromise(registry, targets), codec);
      const auto r = attack::regression_attack(
          rows, workload::bidding_features(), "Bid", reference.value(),
          table);
      t.add(n, take,
            TextTable::fmt(attack::coverage(rows, table.num_rows()), 3),
            r.mining_succeeded ? TextTable::fmt(r.coefficient_error, 4)
                               : "-",
            r.mining_succeeded ? TextTable::fmt(r.prediction_rmse, 0) : "-",
            r.mining_succeeded ? "ok" : "FAILED");
      if (take == n) break;
    }
  }
  t.print(std::cout);
  std::cout << "expected shape: coverage ~ m/n; with more providers the "
               "attacker must compromise proportionally more targets for the "
               "same model quality -- the paper's \"increasingly difficult "
               "job\".\n";
  return 0;
}

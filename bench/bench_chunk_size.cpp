// E5 -- SVII-C "Reducing Chunk Size": "splitting data into smaller chunks
// restricts mining to a great extent. Smaller chunks contain insufficient
// data. So analyzing such chunks leads to mining failure."
//
// Quantified across all three attack families: the strongest insider's
// mining quality as a function of rows-per-chunk, at a fixed provider
// count, plus the cost-aware vs uniform-spread placement ablation
// (DESIGN.md design choice #2).
#include <iostream>

#include "attack/adversary.hpp"
#include "attack/harness.hpp"
#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"
#include "workload/bidding.hpp"
#include "workload/records.hpp"
#include "workload/patients.hpp"
#include "workload/transactions.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::PutOptions;

struct World {
  storage::ProviderRegistry registry;
  std::unique_ptr<CloudDataDistributor> cdd;

  World(const Bytes& payload, std::size_t providers, std::size_t chunk_bytes,
        std::size_t record_size, core::PlacementMode mode)
      : registry(storage::make_default_registry(providers)) {
    DistributorConfig config;
    config.default_raid = raid::RaidLevel::kNone;
    config.placement = mode;
    for (auto& s : config.chunk_sizes.size_bytes) s = chunk_bytes;
    cdd = std::make_unique<CloudDataDistributor>(registry, config);
    (void)cdd->register_client("victim");
    (void)cdd->add_password("victim", "pw", PrivacyLevel::kPublic);
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kPublic;
    opts.record_align = record_size;
    Status st = cdd->put_file("victim", "pw", "data", payload, opts);
    CS_REQUIRE(st.ok(), st.to_string());
  }
};

void regression_sweep() {
  std::cout << "=== E5a: regression attack vs rows-per-chunk "
               "(bidding tables, 12 providers, uniform spread) ===\n"
            << "two regimes: a small 64-row table (the SVII-A setting, "
               "where small chunks starve every insider) and a large "
               "1024-row table (where they cap the max insider share).\n";
  const workload::RecordCodec codec{workload::bidding_columns()};
  TextTable t({"table rows", "rows/chunk", "chunks", "max insider coverage",
               "insiders failing", "best insider coeff_err"});
  for (std::size_t table_rows : {64u, 1024u}) {
    workload::BiddingGenerator gen(0xE5 + table_rows);
    const mining::Dataset table = gen.generate(table_rows, 120.0);
    Result<mining::LinearModel> reference =
        mining::fit_linear(table, workload::bidding_features(), "Bid");
    CS_REQUIRE(reference.ok(), "reference fit failed");
    for (std::size_t rows_per_chunk : {32u, 8u, 4u, 2u, 1u}) {
      World world(codec.encode(table), 12,
                  rows_per_chunk * codec.record_size(), codec.record_size(),
                  core::PlacementMode::kUniformSpread);
      std::size_t failures = 0;
      std::size_t holders = 0;
      double max_cov = 0.0;
      double best_err = -1.0;
      for (ProviderIndex p = 0; p < world.registry.size(); ++p) {
        const mining::Dataset rows = attack::reconstruct_rows(
            attack::insider(world.registry, p), codec);
        if (rows.num_rows() == 0) continue;
        ++holders;
        max_cov = std::max(max_cov,
                           attack::coverage(rows, table.num_rows()));
        const auto r = attack::regression_attack(
            rows, workload::bidding_features(), "Bid", reference.value(),
            table);
        if (!r.mining_succeeded) {
          ++failures;
        } else if (best_err < 0.0 || r.coefficient_error < best_err) {
          best_err = r.coefficient_error;
        }
      }
      t.add(table_rows, rows_per_chunk,
            (table.num_rows() + rows_per_chunk - 1) / rows_per_chunk,
            TextTable::fmt(max_cov, 3),
            std::to_string(failures) + "/" + std::to_string(holders),
            best_err >= 0.0 ? TextTable::fmt(best_err, 4) : "ALL FAILED");
    }
  }
  t.print(std::cout);
}

void rule_sweep() {
  std::cout << "\n=== E5b: association-rule attack vs rows-per-chunk "
               "(3000 transactions, 12 providers) ===\n";
  workload::TransactionConfig cfg;
  cfg.num_transactions = 3000;
  const workload::TransactionWorkload w = workload::generate_transactions(cfg);
  const mining::Dataset table = workload::transactions_to_dataset(w.transactions);
  const workload::RecordCodec codec{table.column_names()};
  mining::AprioriOptions opts;
  opts.min_support = 0.02;
  opts.min_confidence = 0.5;
  Result<mining::AprioriResult> reference = mining::apriori(w.transactions, opts);
  CS_REQUIRE(reference.ok(), "reference apriori failed");

  TextTable t({"rows/chunk", "max insider txns", "best recall",
               "best precision"});
  for (std::size_t rows_per_chunk : {4096u, 1024u, 256u, 64u, 16u}) {
    World world(codec.encode(table), 12,
                rows_per_chunk * codec.record_size(), codec.record_size(),
                core::PlacementMode::kUniformSpread);
    double best_f = -1.0;
    attack::RuleAttackResult best;
    std::size_t max_txns = 0;
    for (ProviderIndex p = 0; p < world.registry.size(); ++p) {
      const mining::Dataset rows = attack::reconstruct_rows(
          attack::insider(world.registry, p), codec);
      if (rows.num_rows() == 0) continue;
      const auto txns = workload::dataset_to_transactions(rows);
      max_txns = std::max(max_txns, txns.size());
      const auto r = attack::rule_attack(txns, reference.value().rules, opts);
      if (!r.mining_succeeded) continue;
      const double f = r.comparison.recall * r.comparison.precision;
      if (f > best_f) {
        best_f = f;
        best = r;
      }
    }
    t.add(rows_per_chunk, max_txns,
          best_f >= 0.0 ? TextTable::fmt(best.comparison.recall, 3) : "-",
          best_f >= 0.0 ? TextTable::fmt(best.comparison.precision, 3) : "-");
  }
  t.print(std::cout);
}

void placement_ablation() {
  std::cout << "\n=== E5c: placement-mode ablation (cost-aware vs uniform "
               "spread; 1024-row table, 8 rows/chunk, 12 providers) ===\n"
            << "cost-aware follows SIV-A's \"lower cost level is given "
               "preference\", which concentrates plaintext chunks on the "
               "cheapest trusted providers.\n";
  workload::BiddingGenerator gen(0xE5C);
  const mining::Dataset table = gen.generate(1024, 120.0);
  const workload::RecordCodec codec{workload::bidding_columns()};
  Result<mining::LinearModel> reference =
      mining::fit_linear(table, workload::bidding_features(), "Bid");
  CS_REQUIRE(reference.ok(), "reference fit failed");

  TextTable t({"placement", "providers holding data", "max insider coverage",
               "best insider coeff_err", "monthly cost ($)"});
  for (auto mode : {core::PlacementMode::kCostAware,
                    core::PlacementMode::kUniformSpread}) {
    World world(codec.encode(table), 12, 8 * codec.record_size(),
                codec.record_size(), mode);
    std::size_t holders = 0;
    double best_cov = 0.0;
    double best_err = -1.0;
    for (ProviderIndex p = 0; p < world.registry.size(); ++p) {
      const mining::Dataset rows = attack::reconstruct_rows(
          attack::insider(world.registry, p), codec);
      if (rows.num_rows() == 0) continue;
      ++holders;
      best_cov = std::max(best_cov,
                          attack::coverage(rows, table.num_rows()));
      const auto r = attack::regression_attack(
          rows, workload::bidding_features(), "Bid", reference.value(),
          table);
      if (r.mining_succeeded &&
          (best_err < 0.0 || r.coefficient_error < best_err)) {
        best_err = r.coefficient_error;
      }
    }
    t.add(mode == core::PlacementMode::kCostAware ? "cost-aware (paper)"
                                                  : "uniform spread",
          holders, TextTable::fmt(best_cov, 3),
          best_err >= 0.0 ? TextTable::fmt(best_err, 4) : "ALL FAILED",
          // x1e6 to make the tiny test payload's bill legible.
          TextTable::fmt(world.registry.total_monthly_cost_usd() * 1e6, 2) +
              "e-6");
  }
  t.print(std::cout);
  std::cout << "expected shape: smaller chunks -> more insiders fail "
               "outright and the best insider's model degrades; uniform "
               "spread disperses data over more targets (better privacy) at "
               "a higher storage bill -- the cost/privacy trade the paper's "
               "placement rule navigates.\n";
}

void classification_sweep() {
  std::cout << "\n=== E5d: classification attack vs rows-per-chunk "
               "(patient records, SII-A's \"terminal illness\" threat; "
               "12 providers) ===\n";
  workload::PatientConfig cfg;
  cfg.num_patients = 2400;
  const mining::Dataset all = workload::generate_patients(cfg);
  const mining::Dataset stored = all.slice_rows(0, 2000);
  const mining::Dataset test = all.slice_rows(2000, 2400);
  const workload::RecordCodec codec{workload::patient_columns()};

  // Full-data baseline per classifier.
  TextTable t({"rows/chunk", "max insider rows", "naive-bayes acc",
               "decision-tree acc", "knn acc"});
  {
    std::vector<std::string> row{"(full data)",
                                 std::to_string(stored.num_rows())};
    for (auto clf : {attack::Classifier::kNaiveBayes,
                     attack::Classifier::kDecisionTree,
                     attack::Classifier::kKnn}) {
      const auto r = attack::classification_attack(stored, test, "risk", clf);
      row.push_back(r.mining_succeeded ? TextTable::fmt(r.test_accuracy, 3)
                                       : "FAILED");
    }
    t.add_row(row);
  }
  for (std::size_t rows_per_chunk : {256u, 64u, 16u, 4u}) {
    World world(codec.encode(stored), 12,
                rows_per_chunk * codec.record_size(), codec.record_size(),
                core::PlacementMode::kUniformSpread);
    // Strongest insider by row count.
    mining::Dataset best_rows(codec.columns());
    for (ProviderIndex p = 0; p < world.registry.size(); ++p) {
      mining::Dataset rows = attack::reconstruct_rows(
          attack::insider(world.registry, p), codec);
      if (rows.num_rows() > best_rows.num_rows()) best_rows = std::move(rows);
    }
    std::vector<std::string> row{std::to_string(rows_per_chunk),
                                 std::to_string(best_rows.num_rows())};
    for (auto clf : {attack::Classifier::kNaiveBayes,
                     attack::Classifier::kDecisionTree,
                     attack::Classifier::kKnn}) {
      const auto r =
          attack::classification_attack(best_rows, test, "risk", clf);
      row.push_back(r.mining_succeeded ? TextTable::fmt(r.test_accuracy, 3)
                                       : "FAILED");
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "expected shape: prediction accuracy decays toward the "
               "majority-class baseline as the insider's training sample "
               "shrinks.\n";
}

}  // namespace

int main() {
  regression_sweep();
  rule_sweep();
  placement_ablation();
  classification_sweep();
  return 0;
}

// Google-benchmark microbenchmarks over the hot kernels: RAID encode /
// decode, GF(2^8) multiply-accumulate, AES-128-CTR, SHA-256, the chunker,
// the misleading codec, the DHT ring, and the end-to-end distributor
// put/get paths. These are the per-operation costs behind the E4/E7/E8
// tables.
#include <benchmark/benchmark.h>

#include "core/chunker.hpp"
#include "core/distributor.hpp"
#include "core/misleading.hpp"
#include "crypto/aes.hpp"
#include "crypto/gf256.hpp"
#include "crypto/sha256.hpp"
#include "dht/ring.hpp"
#include "raid/raid.hpp"
#include "storage/provider_registry.hpp"

namespace {

using namespace cshield;

Bytes payload_of(std::size_t n) {
  Rng rng(n + 1);
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

void BM_Gf256MulAdd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Bytes src = payload_of(n);
  Bytes dst = payload_of(n + 1);
  dst.resize(n);
  for (auto _ : state) {
    gf256::mul_add(0x57, src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Gf256MulAdd)->Arg(4096)->Arg(1 << 20);

void BM_RaidEncode(benchmark::State& state) {
  const auto level = static_cast<raid::RaidLevel>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const raid::StripeLayout layout =
      level == raid::RaidLevel::kRaid1
          ? raid::StripeLayout::make(level, 1, 2)
          : raid::StripeLayout::make(level, 4);
  const Bytes data = payload_of(n);
  for (auto _ : state) {
    raid::EncodedStripe stripe = raid::encode(layout, data);
    benchmark::DoNotOptimize(stripe.arena.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(std::string(raid::raid_level_name(level)));
}
BENCHMARK(BM_RaidEncode)
    ->Args({static_cast<int>(raid::RaidLevel::kRaid0), 1 << 20})
    ->Args({static_cast<int>(raid::RaidLevel::kRaid1), 1 << 20})
    ->Args({static_cast<int>(raid::RaidLevel::kRaid5), 1 << 20})
    ->Args({static_cast<int>(raid::RaidLevel::kRaid6), 1 << 20});

void BM_RaidDecodeWorstCase(benchmark::State& state) {
  const auto level = static_cast<raid::RaidLevel>(state.range(0));
  const raid::StripeLayout layout = raid::StripeLayout::make(level, 4);
  const Bytes data = payload_of(1 << 20);
  const raid::EncodedStripe stripe = raid::encode(layout, data);
  std::vector<std::optional<Bytes>> shards = raid::shard_copies(stripe);
  for (std::size_t e = 0; e < layout.fault_tolerance(); ++e) shards[e].reset();
  for (auto _ : state) {
    Result<Bytes> r = raid::decode(layout, shards, stripe.original_size);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(std::string(raid::raid_level_name(level)));
}
BENCHMARK(BM_RaidDecodeWorstCase)
    ->Arg(static_cast<int>(raid::RaidLevel::kRaid5))
    ->Arg(static_cast<int>(raid::RaidLevel::kRaid6));

void BM_Sha256(benchmark::State& state) {
  const Bytes data = payload_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::Digest d = crypto::sha256(data);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(1 << 20);

void BM_Aes128Ctr(benchmark::State& state) {
  const Bytes data = payload_of(static_cast<std::size_t>(state.range(0)));
  const crypto::AesKey key = {1, 2, 3, 4, 5, 6, 7, 8,
                              9, 10, 11, 12, 13, 14, 15, 16};
  for (auto _ : state) {
    Bytes ct = crypto::aes128_ctr(key, 7, data);
    benchmark::DoNotOptimize(ct.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(1024)->Arg(1 << 18);

void BM_SplitFile(benchmark::State& state) {
  const Bytes data = payload_of(static_cast<std::size_t>(state.range(0)));
  const core::ChunkSizePolicy policy;
  for (auto _ : state) {
    auto chunks = core::split_file(data, PrivacyLevel::kHigh, policy);
    benchmark::DoNotOptimize(chunks.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SplitFile)->Arg(1 << 20);

void BM_MisleadingInject(benchmark::State& state) {
  const Bytes data = payload_of(1 << 16);
  Rng rng(3);
  for (auto _ : state) {
    auto enc = core::MisleadingCodec::inject(data, 0.2, rng);
    benchmark::DoNotOptimize(enc.data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_MisleadingInject);

void BM_RingLookup(benchmark::State& state) {
  dht::HashRing ring(128);
  for (ProviderIndex p = 0; p < 16; ++p) {
    ring.add_provider(p, "provider" + std::to_string(p));
  }
  std::uint64_t key = 1;
  for (auto _ : state) {
    key = mix64(key);
    benchmark::DoNotOptimize(ring.lookup(key));
  }
}
BENCHMARK(BM_RingLookup);

void BM_DistributorPutFile(benchmark::State& state) {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  core::DistributorConfig config;
  config.stripe_data_shards = 3;
  core::CloudDataDistributor cdd(registry, config);
  (void)cdd.register_client("bench");
  (void)cdd.add_password("bench", "pw", PrivacyLevel::kHigh);
  const Bytes data = payload_of(static_cast<std::size_t>(state.range(0)));
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kLow;
  std::size_t i = 0;
  for (auto _ : state) {
    Status st = cdd.put_file("bench", "pw", "f" + std::to_string(i++), data,
                             opts);
    if (!st.ok()) state.SkipWithError(st.to_string().c_str());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DistributorPutFile)->Arg(1 << 16)->Arg(1 << 20);

void BM_DistributorGetFile(benchmark::State& state) {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  core::DistributorConfig config;
  config.stripe_data_shards = 3;
  core::CloudDataDistributor cdd(registry, config);
  (void)cdd.register_client("bench");
  (void)cdd.add_password("bench", "pw", PrivacyLevel::kHigh);
  const Bytes data = payload_of(static_cast<std::size_t>(state.range(0)));
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kLow;
  Status st = cdd.put_file("bench", "pw", "f", data, opts);
  if (!st.ok()) {
    state.SkipWithError(st.to_string().c_str());
    return;
  }
  for (auto _ : state) {
    Result<Bytes> r = cdd.get_file("bench", "pw", "f");
    if (!r.ok()) state.SkipWithError(r.status().to_string().c_str());
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DistributorGetFile)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

// E4 -- "Distribution time" (SVIII: "we have ... monitored its performance
// (Distribution time)").
//
// The paper monitors how long the Cloud Data Distributor takes to upload
// files but reports no numbers, so the reproduction is the full series:
// distribution time vs file size, privacy level (chunk size), provider
// count, RAID level, and parallel channel count. We report both the
// executed wall time of the distributor pipeline (split/chaff/parity/table
// updates) and the modeled provider time (5 ms base latency, 100 MB/s
// links), serial vs parallel.
#include <iostream>

#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::OpReport;
using core::PutOptions;

Bytes make_payload(std::size_t n) {
  Rng rng(n * 2654435761u + 17);
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

double ms(SimDuration d) { return static_cast<double>(d.count()) / 1e6; }

OpReport run_put(std::size_t file_size, PrivacyLevel pl,
                 raid::RaidLevel level, std::size_t providers,
                 std::size_t threads) {
  storage::ProviderRegistry registry =
      storage::make_default_registry(providers);
  DistributorConfig config;
  config.default_raid = level;
  config.stripe_data_shards = 3;
  config.worker_threads = threads;
  CloudDataDistributor cdd(registry, config);
  (void)cdd.register_client("bench");
  (void)cdd.add_password("bench", "pw", PrivacyLevel::kHigh);
  PutOptions opts;
  opts.privacy_level = pl;
  opts.raid = level;
  OpReport report;
  Status st = cdd.put_file("bench", "pw", "payload.bin",
                           make_payload(file_size), opts, &report);
  CS_REQUIRE(st.ok(), st.to_string());
  return report;
}

}  // namespace

int main() {
  std::cout << "=== E4a: distribution time vs file size (PL1, RAID-5 k=3, "
               "12 providers, 8 channels) ===\n";
  {
    TextTable t({"file size (KiB)", "chunks", "shards", "wall ms (executed)",
                 "model ms (parallel)", "model ms (serial)", "speedup"});
    for (std::size_t kib : {1u, 16u, 256u, 1024u, 4096u, 16384u, 65536u}) {
      const OpReport r = run_put(kib * 1024, PrivacyLevel::kLow,
                                 raid::RaidLevel::kRaid5, 12, 8);
      t.add(kib, r.chunks, r.shards, TextTable::fmt(r.wall_seconds * 1e3, 2),
            TextTable::fmt(ms(r.sim_time_parallel), 2),
            TextTable::fmt(ms(r.sim_time_serial), 2),
            TextTable::fmt(static_cast<double>(r.sim_time_serial.count()) /
                               std::max<double>(
                                   1.0,
                                   static_cast<double>(
                                       r.sim_time_parallel.count())),
                           2));
    }
    t.print(std::cout);
  }

  std::cout << "\n=== E4b: distribution time vs privacy level "
               "(4 MiB file; higher PL -> smaller chunks -> more requests) "
               "===\n";
  {
    TextTable t({"privacy level", "chunk size (B)", "chunks",
                 "model ms (parallel)", "model ms (serial)"});
    const core::ChunkSizePolicy sizes;
    for (int pl = 0; pl < kNumPrivacyLevels; ++pl) {
      const OpReport r =
          run_put(4 * 1024 * 1024, privacy_level_from_int(pl),
                  raid::RaidLevel::kRaid5, 16, 8);
      t.add(privacy_level_name(privacy_level_from_int(pl)),
            sizes.chunk_size(privacy_level_from_int(pl)), r.chunks,
            TextTable::fmt(ms(r.sim_time_parallel), 2),
            TextTable::fmt(ms(r.sim_time_serial), 2));
    }
    t.print(std::cout);
  }

  std::cout << "\n=== E4c: distribution time vs provider count "
               "(4 MiB, PL1, RAID-5) ===\n";
  {
    TextTable t({"providers", "model ms (parallel)", "model ms (serial)"});
    for (std::size_t n : {4u, 6u, 8u, 12u, 16u}) {
      const OpReport r = run_put(4 * 1024 * 1024, PrivacyLevel::kLow,
                                 raid::RaidLevel::kRaid5, n, 8);
      t.add(n, TextTable::fmt(ms(r.sim_time_parallel), 2),
            TextTable::fmt(ms(r.sim_time_serial), 2));
    }
    t.print(std::cout);
  }

  std::cout << "\n=== E4d: distribution time vs RAID level (4 MiB, PL1, "
               "12 providers) ===\n";
  {
    TextTable t({"raid", "shards", "stored bytes", "model ms (parallel)"});
    for (auto level : {raid::RaidLevel::kNone, raid::RaidLevel::kRaid0,
                       raid::RaidLevel::kRaid1, raid::RaidLevel::kRaid5,
                       raid::RaidLevel::kRaid6}) {
      const OpReport r = run_put(4 * 1024 * 1024, PrivacyLevel::kLow, level,
                                 12, 8);
      t.add(raid_level_name(level), r.shards, r.bytes_stored,
            TextTable::fmt(ms(r.sim_time_parallel), 2));
    }
    t.print(std::cout);
  }

  std::cout << "\n=== E4e: parallel channels (SVII-E \"parallel query "
               "processing\"; 16 MiB, PL1, RAID-5, 12 providers) ===\n";
  {
    TextTable t({"channels", "model ms (parallel)", "speedup vs 1"});
    double base = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
      const OpReport r = run_put(16 * 1024 * 1024, PrivacyLevel::kLow,
                                 raid::RaidLevel::kRaid5, 12, threads);
      const double p = ms(r.sim_time_parallel);
      if (threads == 1) base = p;
      t.add(threads, TextTable::fmt(p, 2), TextTable::fmt(base / p, 2));
    }
    t.print(std::cout);
  }
  std::cout << "expected shape: time linear in file size; higher PL costs "
               "more requests (per-request latency dominates); parity adds "
               "proportional overhead; channels give near-linear speedup "
               "until provider count binds.\n";
  return 0;
}

// Throughput + latency benchmark for the pipelined stripe engine.
//
// Two parts:
//   1. Gate: a 64-chunk file put and get at 8 worker threads, pipelined
//      engine vs. the serial per-stripe baseline (DistributorConfig::
//      pipelined = false). The pipelined engine must win by >= 3x wall
//      clock; the process exits non-zero otherwise so CI catches
//      regressions.
//   2. Matrix: N client threads x M files x C chunks driven through
//      put/get/update/remove, reporting ops/sec, p50/p99 wall latency and
//      the modeled sim_time_parallel.
//
//   3. Overhead gate: the same 64-chunk put+get pair on modeled (CPU-bound)
//      providers with telemetry disabled vs. enabled. Enabled telemetry must
//      cost <= 5% wall clock; the speedup gate in (1) runs with telemetry
//      disabled so its numbers stay comparable with the pre-telemetry
//      baseline JSON.
//
//   4. Fault smoke (gated): 5% seeded transient faults on every provider,
//      4x 32-chunk put+get -- the request layer must absorb all of it with
//      zero client-visible errors. `--fault-sweep` adds the availability-
//      vs-fault-rate curve (EXPERIMENTS.md E14) to the JSON.
//
//   5. Journal gate: the 64-chunk realtime put with the write-ahead journal
//      (fsync per record) vs without. Journaling must cost <= 10% put wall
//      clock; judged by the min-over-pairs ratio like the telemetry gate.
//      `--recovery-sweep` adds the EXPERIMENTS.md E15 rows: metadata
//      recovery time vs journal length, and scrub pass time/detection vs
//      injected corruption rate.
//
// Results are written as JSON (default ./BENCH_throughput.json, a bare
// argument overrides the path) so future PRs have a perf trajectory to
// diff against. The
// matrix phase reports into a private telemetry sink whose per-provider
// latency histograms land in the JSON under "telemetry".
#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <filesystem>

#include <unistd.h>

#include "core/chunker.hpp"
#include "core/distributor.hpp"
#include "core/journal.hpp"
#include "core/scrubber.hpp"
#include "obs/exporter.hpp"
#include "obs/telemetry.hpp"
#include "storage/fault_plan.hpp"
#include "storage/provider_registry.hpp"
#include "util/sim_clock.hpp"
#include "util/stats.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::OpReport;
using core::PutOptions;

Bytes make_payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

DistributorConfig bench_config(bool pipelined,
                               std::shared_ptr<obs::Telemetry> sink = nullptr) {
  DistributorConfig config;
  config.default_raid = raid::RaidLevel::kRaid5;
  config.stripe_data_shards = 3;
  config.misleading_fraction = 0.2;
  config.worker_threads = 8;
  config.pipelined = pipelined;
  // No sink = telemetry off entirely: gate timings stay comparable with the
  // pre-telemetry baseline JSON and are unaffected by the global sink.
  config.telemetry = sink != nullptr;
  config.telemetry_sink = std::move(sink);
  return config;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// --- gate: 64-chunk file, pipelined vs serial ------------------------------
//
// The gate runs against providers in realtime mode (requests block for
// their modeled service time, ~3 ms base latency): shard RPCs are
// latency-bound in any real deployment, and that is exactly the regime the
// chunk-level pipeline targets. The serial baseline pays one round-trip
// barrier per stripe; the pipelined engine keeps every chunk's stripe in
// flight at once.

constexpr double kGateBaseLatencyMs = 3.0;

storage::ProviderRegistry make_realtime_registry(std::size_t n) {
  storage::ProviderRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    storage::ProviderDescriptor d;
    d.name = "rt" + std::to_string(i);
    d.privacy_level = PrivacyLevel::kHigh;
    d.cost_level = CostLevel::kCheapest;
    storage::LatencyModel latency;
    latency.base_latency = SimDuration(std::chrono::microseconds(
        static_cast<std::int64_t>(kGateBaseLatencyMs * 1000.0)));
    registry.add(std::move(d), latency, 0xBE9C0000ULL + i);
    registry.at(i).set_realtime_scale(1.0);
  }
  return registry;
}

struct GateResult {
  double serial_s = 0.0;
  double pipelined_s = 0.0;
  [[nodiscard]] double speedup() const { return serial_s / pipelined_s; }
};

double time_put_64(bool pipelined, int reps, const Bytes& data) {
  storage::ProviderRegistry registry = make_realtime_registry(12);
  CloudDataDistributor cdd(registry, bench_config(pipelined));
  CS_REQUIRE(cdd.register_client("bench").ok(), "register");
  CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kHigh).ok(), "pw");
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;  // 1 KiB chunks -> 64 chunks
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    Stopwatch w;
    Status st = cdd.put_file("bench", "pw", "gate_put_" + std::to_string(r),
                             data, opts);
    samples.push_back(w.elapsed_seconds());
    CS_REQUIRE(st.ok(), st.to_string());
  }
  return median(samples);
}

double time_get_64(bool pipelined, int reps, const Bytes& data) {
  storage::ProviderRegistry registry = make_realtime_registry(12);
  CloudDataDistributor cdd(registry, bench_config(pipelined));
  CS_REQUIRE(cdd.register_client("bench").ok(), "register");
  CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kHigh).ok(), "pw");
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  CS_REQUIRE(cdd.put_file("bench", "pw", "gate_get", data, opts).ok(), "put");
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    Stopwatch w;
    Result<Bytes> back = cdd.get_file("bench", "pw", "gate_get");
    samples.push_back(w.elapsed_seconds());
    CS_REQUIRE(back.ok(), back.status().to_string());
    CS_REQUIRE(back.value().size() == data.size(), "short read");
  }
  return median(samples);
}

// --- overhead gate: telemetry disabled vs enabled --------------------------
//
// CPU-bound regime (modeled providers, no realtime sleeping): wall clock is
// pure pipeline work, so any instrumentation cost shows directly. Each rep
// is a fresh deployment doing a 64-chunk put + get pair over several files
// to push the timing above scheduler noise.

double time_pair_64_once(bool telemetry, const Bytes& data) {
  constexpr std::size_t kFilesPerRep = 4;
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  std::shared_ptr<obs::Telemetry> sink =
      telemetry ? std::make_shared<obs::Telemetry>() : nullptr;
  CloudDataDistributor cdd(registry, bench_config(true, sink));
  // The enabled side carries the FULL ops plane: the continuous sampler
  // snapshots the registry every 100 ms while the pipeline runs, so the
  // <=5% gate prices exporter ticks in, not just bare counters.
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (telemetry) {
    obs::MetricsExporter::Config ec;
    ec.interval = std::chrono::milliseconds(100);
    exporter = std::make_unique<obs::MetricsExporter>(sink, ec);
    exporter->start();
  }
  CS_REQUIRE(cdd.register_client("bench").ok(), "register");
  CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kHigh).ok(), "pw");
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  Stopwatch w;
  for (std::size_t f = 0; f < kFilesPerRep; ++f) {
    const std::string name = "ovh_" + std::to_string(f);
    CS_REQUIRE(cdd.put_file("bench", "pw", name, data, opts).ok(), "put");
    Result<Bytes> back = cdd.get_file("bench", "pw", name);
    CS_REQUIRE(back.ok() && back.value().size() == data.size(), "get");
  }
  const double elapsed = w.elapsed_seconds();
  if (exporter != nullptr) exporter->stop();  // join outside the timed window
  return elapsed;
}

struct OverheadSamples {
  std::vector<double> disabled;
  std::vector<double> enabled;
};

/// Interleaves disabled/enabled reps (A/B pairs) so clock-frequency and
/// cache drift over the run lands on both sides of each pair instead of
/// entirely on one variant.
OverheadSamples time_pair_64(int reps, const Bytes& data) {
  OverheadSamples s;
  for (int r = 0; r < reps; ++r) {
    s.disabled.push_back(time_pair_64_once(false, data));
    s.enabled.push_back(time_pair_64_once(true, data));
  }
  return s;
}

struct OverheadGate {
  double disabled_s = 0.0;  ///< median of the disabled reps (reporting)
  double enabled_s = 0.0;   ///< median of the enabled reps (reporting)
  double min_ratio = 1.0;  ///< min over pairs of enabled_i / disabled_i
  static constexpr double kLimitPct = 5.0;

  /// The gate judges the minimum per-pair enabled/disabled ratio. Each
  /// enabled rep runs right after its disabled partner, so a pair that
  /// dodged external load measures the true instrumentation cost; noise is
  /// one-sided (a loaded machine only inflates ratios), so the minimum over
  /// N pairs converges on that truth, while a genuine regression shifts
  /// every pair and still trips the limit. Medians are kept for reporting.
  void fill(const OverheadSamples& s) {
    disabled_s = median(s.disabled);
    enabled_s = median(s.enabled);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < s.disabled.size(); ++i) {
      if (s.disabled[i] > 0.0) {
        best = std::min(best, s.enabled[i] / s.disabled[i]);
      }
    }
    if (std::isfinite(best)) min_ratio = best;
  }
  [[nodiscard]] double overhead_pct() const {
    return (min_ratio - 1.0) * 100.0;
  }
  [[nodiscard]] bool pass() const { return overhead_pct() <= kLimitPct; }
};

// --- journal gate: WAL on vs off -------------------------------------------
//
// Same realtime regime as the speedup gate (shard RPCs block for their
// modeled latency). The journal adds two fsynced appends per put (kBeginPut
// + kCommitPut) on the critical path; the gate proves that stays under 10%
// of put wall clock. A/B pairs with a fresh deployment per side; judged on
// the min per-pair ratio (noise is one-sided, see OverheadGate).

namespace fs = std::filesystem;

/// Scratch directory for journal/checkpoint files, removed on destruction.
struct BenchDir {
  fs::path path;
  BenchDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cshield_bench_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~BenchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

double time_put_64_journal(bool journaled, const Bytes& data) {
  BenchDir dir;
  storage::ProviderRegistry registry = make_realtime_registry(12);
  DistributorConfig config = bench_config(true);
  if (journaled) {
    Result<std::unique_ptr<core::Journal>> j =
        core::Journal::open(dir.path / "bench.wal");
    CS_REQUIRE(j.ok(), j.status().to_string());
    config.journal = std::shared_ptr<core::Journal>(std::move(j.value()));
    config.checkpoint_path = (dir.path / "bench.ckpt").string();
  }
  CloudDataDistributor cdd(registry, config);
  CS_REQUIRE(cdd.register_client("bench").ok(), "register");
  CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kHigh).ok(), "pw");
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  constexpr int kPutsPerRep = 2;
  Stopwatch w;
  for (int r = 0; r < kPutsPerRep; ++r) {
    Status st = cdd.put_file("bench", "pw", "jgate_" + std::to_string(r),
                             data, opts);
    CS_REQUIRE(st.ok(), st.to_string());
  }
  return w.elapsed_seconds();
}

struct JournalGate {
  double baseline_s = 0.0;   ///< median without journal (reporting)
  double journaled_s = 0.0;  ///< median with journal (reporting)
  double min_ratio = 1.0;    ///< min over pairs of journaled_i / baseline_i
  static constexpr double kLimitPct = 10.0;

  void run(int reps, const Bytes& data) {
    std::vector<double> off, on;
    (void)time_put_64_journal(false, data);  // warm both variants
    (void)time_put_64_journal(true, data);
    for (int r = 0; r < reps; ++r) {
      off.push_back(time_put_64_journal(false, data));
      on.push_back(time_put_64_journal(true, data));
    }
    baseline_s = median(off);
    journaled_s = median(on);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < off.size(); ++i) {
      if (off[i] > 0.0) best = std::min(best, on[i] / off[i]);
    }
    if (std::isfinite(best)) min_ratio = best;
  }
  [[nodiscard]] double overhead_pct() const { return (min_ratio - 1.0) * 100.0; }
  [[nodiscard]] bool pass() const { return overhead_pct() <= kLimitPct; }
};

// --- small-op gate: per-op commit vs group commit vs batched RPC ------------
//
// The regime the PR 6 data path targets: many concurrent clients writing
// small files (1-8 KiB -> one or two 4 KiB stripes each) against realtime
// providers, with a WAL fsync on every metadata mutation. Per-op commit
// serializes two fsyncs per put behind the journal mutex and pushes every
// shard through its own round trip against a bounded I/O-channel pool; the
// two amortizations attack exactly those costs:
//   per_op            fsync per record, one RPC per shard (the baseline)
//   group_commit      one fsync per <= 64 records (2 ms window)
//   group_commit_batched  + shards coalesced into 16-shard put_many RPCs
// Gate: batched throughput must be >= 3x per_op at 64 clients.

enum class SmallOpsMode { kPerOp, kGroupCommit, kGroupCommitBatched };

const char* smallops_mode_name(SmallOpsMode m) {
  switch (m) {
    case SmallOpsMode::kPerOp: return "per_op";
    case SmallOpsMode::kGroupCommit: return "group_commit";
    case SmallOpsMode::kGroupCommitBatched: return "group_commit_batched";
  }
  return "?";
}

struct SmallOpsCell {
  std::string mode;
  std::size_t clients = 0;
  std::size_t puts = 0;             ///< ops per rep
  double ops_per_sec = 0.0;         ///< median over reps
  std::vector<double> wall_s;       ///< per-put latencies, pooled over reps
  std::uint64_t group_commits = 0;  ///< journal flushes that carried > 1 record
  std::uint64_t batch_rpcs = 0;     ///< provider batch requests (all reps)
};

SmallOpsCell run_smallops_cell(SmallOpsMode mode, std::size_t clients,
                               int reps) {
  // Long enough per rep that fsync-latency jitter on the host filesystem
  // averages out of the per_op baseline; the gate compares medians of reps.
  constexpr std::size_t kFilesPerClient = 16;
  SmallOpsCell cell;
  cell.mode = smallops_mode_name(mode);
  cell.clients = clients;
  cell.puts = clients * kFilesPerClient;
  std::vector<double> rep_ops;
  for (int rep = 0; rep < reps; ++rep) {
    BenchDir dir;
    storage::ProviderRegistry registry = make_realtime_registry(12);
    DistributorConfig config = bench_config(true);
    // Small-op regime: a worker channel per client (each blocks on shard
    // latency, not CPU), but a bounded shard-RPC channel pool -- a real
    // object-store client caps concurrent connections, and that cap is
    // what per-shard RPCs saturate at 64 clients.
    config.worker_threads = clients;
    config.io_threads = 32;
    config.misleading_fraction = 0.1;
    Result<std::unique_ptr<core::Journal>> j =
        core::Journal::open(dir.path / "smallops.wal");
    CS_REQUIRE(j.ok(), j.status().to_string());
    config.journal = std::shared_ptr<core::Journal>(std::move(j.value()));
    config.checkpoint_path = (dir.path / "smallops.ckpt").string();
    if (mode != SmallOpsMode::kPerOp) {
      // Opportunistic grouping (interval 0): the leader flushes whatever
      // queued behind the previous fsync, so batches form from backpressure
      // without adding wait latency to lightly-loaded appends.
      config.journal->set_group_commit(
          core::GroupCommitConfig{64, std::chrono::microseconds(0)});
    }
    if (mode == SmallOpsMode::kGroupCommitBatched) {
      config.rpc_batch_shards = 16;
      config.rpc_batch_wait = std::chrono::microseconds(500);
    }
    CloudDataDistributor cdd(registry, config);
    for (std::size_t c = 0; c < clients; ++c) {
      const std::string name = "sc" + std::to_string(c);
      CS_REQUIRE(cdd.register_client(name).ok(), "register");
      CS_REQUIRE(cdd.add_password(name, "pw", PrivacyLevel::kHigh).ok(), "pw");
    }
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kModerate;  // 4 KiB chunks

    std::mutex merge_mu;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    Stopwatch phase;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<double> local;
        local.reserve(kFilesPerClient);
        for (std::size_t m = 0; m < kFilesPerClient; ++m) {
          // 1-8 KiB, client-skewed so every size lands in every rep.
          const std::size_t bytes = 1024 * (1 + (c + m) % 8);
          const Bytes data = make_payload(bytes, rep * 7919 + c * 131 + m);
          Stopwatch w;
          Status st = cdd.put_file("sc" + std::to_string(c), "pw",
                                   "f" + std::to_string(m), data, opts);
          local.push_back(w.elapsed_seconds());
          CS_REQUIRE(st.ok(), st.to_string());
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        cell.wall_s.insert(cell.wall_s.end(), local.begin(), local.end());
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed = phase.elapsed_seconds();
    rep_ops.push_back(elapsed > 0.0
                          ? static_cast<double>(cell.puts) / elapsed
                          : 0.0);
    cell.group_commits += config.journal->group_commits();
    for (ProviderIndex p = 0; p < registry.size(); ++p) {
      cell.batch_rpcs += registry.at(p).counters().batch_requests.load();
    }
  }
  cell.ops_per_sec = median(rep_ops);
  return cell;
}

struct SmallOpsGate {
  std::vector<SmallOpsCell> cells;
  double per_op_64 = 0.0;
  double batched_64 = 0.0;
  static constexpr double kTargetSpeedup = 3.0;

  void run(int reps) {
    for (SmallOpsMode mode :
         {SmallOpsMode::kPerOp, SmallOpsMode::kGroupCommit,
          SmallOpsMode::kGroupCommitBatched}) {
      for (std::size_t clients : {8u, 16u, 64u}) {
        cells.push_back(run_smallops_cell(mode, clients, reps));
        const SmallOpsCell& c = cells.back();
        std::cout << c.mode << " @ " << c.clients << " clients: "
                  << c.ops_per_sec << " puts/s (p50 "
                  << percentile(c.wall_s, 0.5) * 1e3 << " ms, p99 "
                  << percentile(c.wall_s, 0.99) * 1e3 << " ms)\n";
        if (c.clients == 64) {
          if (mode == SmallOpsMode::kPerOp) per_op_64 = c.ops_per_sec;
          if (mode == SmallOpsMode::kGroupCommitBatched) {
            batched_64 = c.ops_per_sec;
          }
        }
      }
    }
  }
  [[nodiscard]] double speedup() const {
    return per_op_64 > 0.0 ? batched_64 / per_op_64 : 0.0;
  }
  [[nodiscard]] bool pass() const { return speedup() >= kTargetSpeedup; }
};

void emit_smallops_json(const std::string& path, const SmallOpsGate& gate) {
  std::ofstream out(path);
  CS_REQUIRE(out.good(), "cannot open " + path);
  out << "{\n  \"bench\": \"smallops\",\n"
      << "  \"config\": {\"file_bytes\": \"1024..8192\", "
         "\"files_per_client\": 16, \"chunk_bytes\": 4096, "
         "\"data_shards\": 3, \"misleading_fraction\": 0.1, "
         "\"io_threads\": 32, \"providers\": 12, \"realtime_latency_ms\": "
      << kGateBaseLatencyMs
      << ", \"journal\": \"fsync WAL\", \"group_commit\": "
         "{\"batch_ops\": 64, \"batch_interval_us\": 0}, \"rpc_batch\": "
         "{\"batch_shards\": 16, \"batch_wait_us\": 500}},\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < gate.cells.size(); ++i) {
    const SmallOpsCell& c = gate.cells[i];
    out << "    {\"mode\": \"" << c.mode << "\", \"clients\": " << c.clients
        << ", \"puts\": " << c.puts
        << ", \"ops_per_sec\": " << c.ops_per_sec
        << ", \"p50_ms\": " << percentile(c.wall_s, 0.5) * 1e3
        << ", \"p99_ms\": " << percentile(c.wall_s, 0.99) * 1e3
        << ", \"group_commits\": " << c.group_commits
        << ", \"batch_rpcs\": " << c.batch_rpcs << "}"
        << (i + 1 < gate.cells.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"gate\": {\"per_op_64_ops\": " << gate.per_op_64
      << ", \"batched_64_ops\": " << gate.batched_64
      << ", \"speedup\": " << gate.speedup()
      << ", \"target_speedup\": " << SmallOpsGate::kTargetSpeedup
      << ", \"pass\": " << (gate.pass() ? "true" : "false") << "}\n}\n";
}

// --- recovery sweep (E15) ---------------------------------------------------

struct MttrRow {
  std::size_t records = 0;  ///< journal records replayed
  std::size_t chunks = 0;   ///< chunk rows in the recovered store
  double recover_ms = 0.0;  ///< recover_metadata wall time
};

/// Metadata recovery time as a function of journal length: put 1-chunk
/// files with no checkpointing, then time a cold checkpoint+journal replay.
MttrRow run_mttr(std::size_t target_records) {
  BenchDir dir;
  const fs::path jpath = dir.path / "j.wal";
  const fs::path cpath = dir.path / "ckpt.bin";
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  DistributorConfig config = bench_config(true);
  Result<std::unique_ptr<core::Journal>> j = core::Journal::open(jpath);
  CS_REQUIRE(j.ok(), j.status().to_string());
  config.journal = std::shared_ptr<core::Journal>(std::move(j.value()));
  config.checkpoint_path = cpath.string();
  CloudDataDistributor cdd(registry, config);
  CS_REQUIRE(cdd.register_client("bench").ok(), "register");
  CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kModerate).ok(),
             "pw");
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;  // 4 KiB chunks
  std::size_t f = 0;
  while (config.journal->record_count() < target_records) {
    const Bytes data = make_payload(4000, 0xE15 + f);  // one chunk per file
    CS_REQUIRE(cdd.put_file("bench", "pw", "mttr_" + std::to_string(f++),
                            data, opts)
                   .ok(),
               "put");
  }
  MttrRow row;
  row.records = config.journal->record_count();
  Stopwatch w;
  Result<core::RecoveredState> rec = core::recover_metadata(cpath, jpath);
  row.recover_ms = w.elapsed_seconds() * 1e3;
  CS_REQUIRE(rec.ok(), rec.status().to_string());
  row.chunks = rec.value().metadata->total_chunks();
  return row;
}

struct ScrubRow {
  double corruption_rate = 0.0;
  std::size_t chunks = 0;
  std::size_t corrupted = 0;
  std::size_t detected = 0;
  std::size_t repaired = 0;
  double pass_ms = 0.0;  ///< one full scrub pass (detection latency bound)
};

/// Scrub detection latency and completeness vs injected corruption rate:
/// flip one byte in one stripe shard of `rate` of all chunks, then time a
/// full scrubber pass. Detection latency for any one corruption is bounded
/// by the pass time; completeness must be 100%.
ScrubRow run_scrub_row(double rate) {
  BenchDir dir;
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  DistributorConfig config = bench_config(true);
  Result<std::unique_ptr<core::Journal>> j =
      core::Journal::open(dir.path / "j.wal");
  CS_REQUIRE(j.ok(), j.status().to_string());
  config.journal = std::shared_ptr<core::Journal>(std::move(j.value()));
  config.checkpoint_path = (dir.path / "ckpt.bin").string();
  CloudDataDistributor cdd(registry, config);
  CS_REQUIRE(cdd.register_client("bench").ok(), "register");
  CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kModerate).ok(),
             "pw");
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;
  for (int f = 0; f < 4; ++f) {
    const Bytes data = make_payload(16 * 4096, 0x5C4B + f);  // 16 chunks
    CS_REQUIRE(cdd.put_file("bench", "pw", "scrub_" + std::to_string(f),
                            data, opts)
                   .ok(),
               "put");
  }
  ScrubRow row;
  row.corruption_rate = rate;
  const auto table = cdd.metadata().chunk_table();
  row.chunks = table.size();
  const auto step = static_cast<std::size_t>(
      rate > 0.0 ? std::max(1.0, 1.0 / rate) : table.size() + 1);
  for (std::size_t i = 0; i < table.size(); i += step) {
    if (table[i].deleted || table[i].stripe.empty()) continue;
    const core::ShardLocation& loc = table[i].stripe[i % table[i].stripe.size()];
    CS_REQUIRE(registry.at(loc.provider).corrupt_object(loc.virtual_id, 7).ok(),
               "corrupt");
    ++row.corrupted;
  }
  core::Scrubber scrubber(cdd);
  Stopwatch w;
  Result<std::size_t> repaired = scrubber.run_pass();
  row.pass_ms = w.elapsed_seconds() * 1e3;
  CS_REQUIRE(repaired.ok(), repaired.status().to_string());
  row.detected = scrubber.progress().digest_mismatches;
  row.repaired = scrubber.progress().shards_repaired;
  return row;
}

// --- matrix: N clients x M files x C chunks --------------------------------

struct OpSeries {
  std::vector<double> wall_s;          // per-op wall latency
  std::vector<double> sim_parallel_ms; // per-op modeled makespan
  double phase_wall_s = 0.0;           // whole phase, all threads

  [[nodiscard]] double ops_per_sec() const {
    return phase_wall_s > 0.0
               ? static_cast<double>(wall_s.size()) / phase_wall_s
               : 0.0;
  }
};

struct MatrixRow {
  std::size_t clients = 0;
  std::size_t files_per_client = 0;
  std::size_t chunks = 0;
  OpSeries put, get, update, remove;
};

MatrixRow run_matrix(std::size_t clients, std::size_t files_per_client,
                     std::size_t chunks,
                     const std::shared_ptr<obs::Telemetry>& sink) {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  CloudDataDistributor cdd(registry, bench_config(true, sink));
  const std::size_t chunk_bytes =
      core::ChunkSizePolicy{}.chunk_size(PrivacyLevel::kPublic);
  for (std::size_t c = 0; c < clients; ++c) {
    const std::string name = "client" + std::to_string(c);
    CS_REQUIRE(cdd.register_client(name).ok(), "register");
    CS_REQUIRE(cdd.add_password(name, "pw", PrivacyLevel::kHigh).ok(), "pw");
  }

  MatrixRow row;
  row.clients = clients;
  row.files_per_client = files_per_client;
  row.chunks = chunks;
  std::mutex merge_mu;

  // One phase = every client thread performing `op` on all of its files.
  auto run_phase = [&](OpSeries& series, auto op) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    Stopwatch phase;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        OpSeries local;
        for (std::size_t m = 0; m < files_per_client; ++m) {
          OpReport report;
          Stopwatch w;
          op(c, m, &report);
          local.wall_s.push_back(w.elapsed_seconds());
          local.sim_parallel_ms.push_back(
              static_cast<double>(report.sim_time_parallel.count()) / 1e6);
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        series.wall_s.insert(series.wall_s.end(), local.wall_s.begin(),
                             local.wall_s.end());
        series.sim_parallel_ms.insert(series.sim_parallel_ms.end(),
                                      local.sim_parallel_ms.begin(),
                                      local.sim_parallel_ms.end());
      });
    }
    for (auto& t : threads) t.join();
    series.phase_wall_s = phase.elapsed_seconds();
  };

  auto client_of = [](std::size_t c) { return "client" + std::to_string(c); };
  auto file_of = [](std::size_t m) { return "file" + std::to_string(m); };
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kPublic;

  run_phase(row.put, [&](std::size_t c, std::size_t m, OpReport* report) {
    const Bytes data = make_payload(chunk_bytes * chunks, c * 100 + m);
    Status st = cdd.put_file(client_of(c), "pw", file_of(m), data, opts,
                             report);
    CS_REQUIRE(st.ok(), st.to_string());
  });
  run_phase(row.get, [&](std::size_t c, std::size_t m, OpReport* report) {
    Result<Bytes> back = cdd.get_file(client_of(c), "pw", file_of(m), report);
    CS_REQUIRE(back.ok(), back.status().to_string());
  });
  run_phase(row.update, [&](std::size_t c, std::size_t m, OpReport* report) {
    const Bytes data = make_payload(chunk_bytes, c * 7919 + m + 1);
    Status st = cdd.update_chunk(client_of(c), "pw", file_of(m), 0, data,
                                 report);
    CS_REQUIRE(st.ok(), st.to_string());
  });
  run_phase(row.remove, [&](std::size_t c, std::size_t m, OpReport* report) {
    (void)report;
    Status st = cdd.remove_file(client_of(c), "pw", file_of(m));
    CS_REQUIRE(st.ok(), st.to_string());
  });
  return row;
}

// --- faults: availability vs injected transient fault rate -----------------
//
// Every request to every provider fails with probability `rate` (seeded
// FaultPlan, so a rerun replays the same faults). The smoke row (5%) is
// part of the exit gate: the request layer must absorb the noise with zero
// client-visible errors. `--fault-sweep` adds the E14 curve.

struct FaultRow {
  double rate = 0.0;
  std::size_t ops = 0;            ///< put+get operations attempted
  std::size_t client_errors = 0;  ///< failed or wrong-bytes client ops
  std::size_t retries = 0;
  std::size_t hedges = 0;
  std::size_t replaced_shards = 0;
  std::uint64_t injected = 0;  ///< provider-side injected faults
  std::uint64_t breaker_trips = 0;
  [[nodiscard]] double availability() const {
    return ops == 0 ? 1.0
                    : 1.0 - static_cast<double>(client_errors) /
                                static_cast<double>(ops);
  }
};

FaultRow run_faults(double rate, std::uint64_t seed) {
  auto sink = std::make_shared<obs::Telemetry>();
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  if (rate > 0.0) {
    registry.apply_fault_plan(std::make_shared<storage::FaultPlan>(
        storage::FaultPlan::transient(seed, rate)));
  }
  CloudDataDistributor cdd(registry, bench_config(true, sink));
  CS_REQUIRE(cdd.register_client("bench").ok(), "register");
  CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kModerate).ok(),
             "pw");
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kModerate;  // 4 KiB chunks

  FaultRow row;
  row.rate = rate;
  for (int f = 0; f < 4; ++f) {
    const Bytes data = make_payload(32 * 4096, seed * 131 + f);  // 32 chunks
    const std::string name = "fault_" + std::to_string(f);
    OpReport put_report;
    const Status st = cdd.put_file("bench", "pw", name, data, opts,
                                   &put_report);
    ++row.ops;
    row.retries += put_report.retries;
    row.replaced_shards += put_report.replaced_shards;
    if (!st.ok()) {
      ++row.client_errors;
      continue;
    }
    OpReport get_report;
    Result<Bytes> back = cdd.get_file("bench", "pw", name, &get_report);
    ++row.ops;
    row.retries += get_report.retries;
    row.hedges += get_report.hedges;
    if (!back.ok() || !equal(back.value(), data)) ++row.client_errors;
  }
  for (ProviderIndex p = 0; p < registry.size(); ++p) {
    row.injected += registry.at(p).counters().injected_failures.load();
  }
  row.breaker_trips = sink->metrics().counter("rt.breaker_trips").value();
  return row;
}

void emit_fault_row(std::ostream& os, const FaultRow& r) {
  os << "{\"rate\": " << r.rate << ", \"ops\": " << r.ops
     << ", \"client_errors\": " << r.client_errors
     << ", \"availability\": " << r.availability()
     << ", \"retries\": " << r.retries << ", \"hedges\": " << r.hedges
     << ", \"replaced_shards\": " << r.replaced_shards
     << ", \"injected_failures\": " << r.injected
     << ", \"breaker_trips\": " << r.breaker_trips << "}";
}

// --- JSON emission ----------------------------------------------------------

void emit_series(std::ostream& os, const char* name, const OpSeries& s,
                 bool last) {
  os << "      \"" << name << "\": {"
     << "\"ops_per_sec\": " << s.ops_per_sec()
     << ", \"p50_ms\": " << percentile(s.wall_s, 0.5) * 1e3
     << ", \"p99_ms\": " << percentile(s.wall_s, 0.99) * 1e3
     << ", \"sim_parallel_ms_mean\": " << mean_of(s.sim_parallel_ms) << "}"
     << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  std::string smallops_path = "BENCH_smallops.json";
  bool fault_sweep = false;
  bool recovery_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--fault-sweep") {
      fault_sweep = true;
    } else if (std::string_view(argv[i]) == "--recovery-sweep") {
      recovery_sweep = true;
    } else if (std::string_view(argv[i]) == "--smallops-out" && i + 1 < argc) {
      smallops_path = argv[++i];
    } else {
      out_path = argv[i];
    }
  }

  const std::size_t gate_chunk_bytes =
      core::ChunkSizePolicy{}.chunk_size(PrivacyLevel::kHigh);
  const Bytes gate_data = make_payload(gate_chunk_bytes * 64, 42);

  std::cout << "=== gate: 64-chunk file (" << gate_data.size() / 1024
            << " KiB, PL3, RAID-5 k=3, chaff 0.2, 8 workers, realtime "
            << kGateBaseLatencyMs << " ms base latency) ===\n";
  GateResult put_gate;
  put_gate.serial_s = time_put_64(false, 5, gate_data);
  put_gate.pipelined_s = time_put_64(true, 5, gate_data);
  GateResult get_gate;
  get_gate.serial_s = time_get_64(false, 5, gate_data);
  get_gate.pipelined_s = time_get_64(true, 5, gate_data);
  std::cout << "put: serial " << put_gate.serial_s * 1e3 << " ms, pipelined "
            << put_gate.pipelined_s * 1e3 << " ms -> " << put_gate.speedup()
            << "x\n";
  std::cout << "get: serial " << get_gate.serial_s * 1e3 << " ms, pipelined "
            << get_gate.pipelined_s * 1e3 << " ms -> " << get_gate.speedup()
            << "x\n";
  const bool gate_ok = put_gate.speedup() >= 3.0 && get_gate.speedup() >= 3.0;
  std::cout << "gate (target >= 3x): " << (gate_ok ? "PASS" : "FAIL") << "\n";

  std::cout << "\n=== overhead gate: telemetry disabled vs enabled "
               "(modeled providers, 4x 64-chunk put+get per rep) ===\n";
  OverheadGate overhead;
  // Warm caches/allocator/turbo on both variants before measuring.
  (void)time_pair_64_once(false, gate_data);
  (void)time_pair_64_once(true, gate_data);
  overhead.fill(time_pair_64(7, gate_data));
  std::cout << "disabled " << overhead.disabled_s * 1e3 << " ms, enabled "
            << overhead.enabled_s * 1e3 << " ms -> "
            << overhead.overhead_pct() << "% overhead (limit "
            << OverheadGate::kLimitPct << "%): "
            << (overhead.pass() ? "PASS" : "FAIL") << "\n";

  std::cout << "\n=== journal gate: WAL on vs off (realtime 64-chunk puts, "
               "fsync per record) ===\n";
  JournalGate journal_gate;
  journal_gate.run(5, gate_data);
  std::cout << "no journal " << journal_gate.baseline_s * 1e3
            << " ms, journaled " << journal_gate.journaled_s * 1e3
            << " ms -> " << journal_gate.overhead_pct()
            << "% overhead (limit " << JournalGate::kLimitPct
            << "%): " << (journal_gate.pass() ? "PASS" : "FAIL") << "\n";

  std::cout << "\n=== small-op gate: 1-8 KiB puts, fsync WAL, per-op vs "
               "group commit vs batched RPC ===\n";
  SmallOpsGate smallops;
  smallops.run(3);
  std::cout << "64 clients: per-op " << smallops.per_op_64
            << " puts/s, group-commit+batched-rpc " << smallops.batched_64
            << " puts/s -> " << smallops.speedup() << "x (target >= "
            << SmallOpsGate::kTargetSpeedup
            << "x): " << (smallops.pass() ? "PASS" : "FAIL") << "\n";
  emit_smallops_json(smallops_path, smallops);
  std::cout << "wrote " << smallops_path << "\n";

  std::vector<MttrRow> mttr_rows;
  std::vector<ScrubRow> scrub_rows;
  if (recovery_sweep) {
    std::cout << "\n=== recovery sweep (E15) ===\n";
    for (std::size_t records : {8u, 32u, 128u, 512u}) {
      mttr_rows.push_back(run_mttr(records));
      const MttrRow& r = mttr_rows.back();
      std::cout << "journal " << r.records << " records (" << r.chunks
                << " chunks): recover " << r.recover_ms << " ms\n";
    }
    for (double rate : {0.05, 0.25, 1.0}) {
      scrub_rows.push_back(run_scrub_row(rate));
      const ScrubRow& r = scrub_rows.back();
      std::cout << "corruption rate " << r.corruption_rate << ": "
                << r.detected << "/" << r.corrupted << " detected, "
                << r.repaired << " repaired, pass " << r.pass_ms << " ms\n";
    }
  }

  std::cout << "\n=== fault smoke: 5% transient faults, 4x 32-chunk put+get "
               "(pipelined, seeded) ===\n";
  const FaultRow smoke = run_faults(0.05, 0xFA17);
  const bool fault_ok = smoke.client_errors == 0 && smoke.injected > 0;
  std::cout << "injected " << smoke.injected << " faults -> " << smoke.retries
            << " retries, " << smoke.replaced_shards << " re-placed shards, "
            << smoke.hedges << " hedges, " << smoke.client_errors
            << " client errors: " << (fault_ok ? "PASS" : "FAIL") << "\n";
  std::vector<FaultRow> fault_rows;
  if (fault_sweep) {
    std::cout << "\n=== fault sweep: availability vs rate (E14) ===\n";
    for (double rate : {0.0, 0.02, 0.05, 0.1, 0.2}) {
      fault_rows.push_back(run_faults(rate, 0xFA17));
      const FaultRow& r = fault_rows.back();
      std::cout << "rate " << r.rate << ": availability "
                << r.availability() << " (" << r.client_errors << "/"
                << r.ops << " errors), retries " << r.retries
                << ", breaker trips " << r.breaker_trips << "\n";
    }
  }

  std::cout << "\n=== matrix: clients x files x chunks (pipelined, "
               "8 workers) ===\n";
  std::vector<MatrixRow> rows;
  // One private sink per row; the 64-chunk row's per-provider histograms are
  // what lands in the JSON "telemetry" section.
  std::shared_ptr<obs::Telemetry> matrix_sink;
  for (std::size_t chunks : {4u, 16u, 64u}) {
    matrix_sink = std::make_shared<obs::Telemetry>();
    rows.push_back(run_matrix(/*clients=*/8, /*files_per_client=*/4, chunks,
                              matrix_sink));
    const MatrixRow& r = rows.back();
    std::cout << "C=" << chunks << ": put " << r.put.ops_per_sec()
              << " ops/s (p99 " << percentile(r.put.wall_s, 0.99) * 1e3
              << " ms), get " << r.get.ops_per_sec() << " ops/s, update "
              << r.update.ops_per_sec() << " ops/s, remove "
              << r.remove.ops_per_sec() << " ops/s\n";
  }

  std::ofstream out(out_path);
  CS_REQUIRE(out.good(), "cannot open " + out_path);
  out << "{\n  \"bench\": \"throughput\",\n"
      << "  \"config\": {\"raid\": \"raid5\", \"data_shards\": 3, "
         "\"misleading_fraction\": 0.2, \"worker_threads\": 8, "
         "\"gate_chunk_bytes\": "
      << gate_chunk_bytes << ", \"gate_latency_ms\": " << kGateBaseLatencyMs
      << ", \"gate_realtime\": true, \"matrix_chunk_bytes\": "
      << core::ChunkSizePolicy{}.chunk_size(PrivacyLevel::kPublic) << "},\n"
      << "  \"gate\": {\n"
      << "    \"put_64chunk\": {\"serial_s\": " << put_gate.serial_s
      << ", \"pipelined_s\": " << put_gate.pipelined_s
      << ", \"speedup\": " << put_gate.speedup() << "},\n"
      << "    \"get_64chunk\": {\"serial_s\": " << get_gate.serial_s
      << ", \"pipelined_s\": " << get_gate.pipelined_s
      << ", \"speedup\": " << get_gate.speedup() << "},\n"
      << "    \"target_speedup\": 3.0, \"pass\": "
      << (gate_ok ? "true" : "false") << "\n  },\n"
      << "  \"overhead_gate\": {\"disabled_s\": " << overhead.disabled_s
      << ", \"enabled_s\": " << overhead.enabled_s
      << ", \"min_ratio\": " << overhead.min_ratio
      << ", \"overhead_pct\": " << overhead.overhead_pct()
      << ", \"limit_pct\": " << OverheadGate::kLimitPct
      << ", \"pass\": " << (overhead.pass() ? "true" : "false") << "},\n"
      << "  \"journal_gate\": {\"baseline_s\": " << journal_gate.baseline_s
      << ", \"journaled_s\": " << journal_gate.journaled_s
      << ", \"min_ratio\": " << journal_gate.min_ratio
      << ", \"overhead_pct\": " << journal_gate.overhead_pct()
      << ", \"limit_pct\": " << JournalGate::kLimitPct
      << ", \"pass\": " << (journal_gate.pass() ? "true" : "false") << "},\n"
      << "  \"fault_smoke\": ";
  emit_fault_row(out, smoke);
  out << ",\n  \"fault_smoke_pass\": " << (fault_ok ? "true" : "false")
      << ",\n";
  if (!mttr_rows.empty()) {
    out << "  \"recovery_sweep\": {\n    \"mttr\": [\n";
    for (std::size_t i = 0; i < mttr_rows.size(); ++i) {
      const MttrRow& r = mttr_rows[i];
      out << "      {\"records\": " << r.records << ", \"chunks\": "
          << r.chunks << ", \"recover_ms\": " << r.recover_ms << "}"
          << (i + 1 < mttr_rows.size() ? ",\n" : "\n");
    }
    out << "    ],\n    \"scrub\": [\n";
    for (std::size_t i = 0; i < scrub_rows.size(); ++i) {
      const ScrubRow& r = scrub_rows[i];
      out << "      {\"corruption_rate\": " << r.corruption_rate
          << ", \"chunks\": " << r.chunks << ", \"corrupted\": "
          << r.corrupted << ", \"detected\": " << r.detected
          << ", \"repaired\": " << r.repaired << ", \"pass_ms\": "
          << r.pass_ms << "}"
          << (i + 1 < scrub_rows.size() ? ",\n" : "\n");
    }
    out << "    ]\n  },\n";
  }
  if (!fault_rows.empty()) {
    out << "  \"fault_sweep\": [\n";
    for (std::size_t i = 0; i < fault_rows.size(); ++i) {
      out << "    ";
      emit_fault_row(out, fault_rows[i]);
      out << (i + 1 < fault_rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
  }
  out << "  \"matrix\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MatrixRow& r = rows[i];
    out << "    {\"clients\": " << r.clients
        << ", \"files_per_client\": " << r.files_per_client
        << ", \"chunks\": " << r.chunks << ",\n";
    emit_series(out, "put", r.put, false);
    emit_series(out, "get", r.get, false);
    emit_series(out, "update", r.update, false);
    emit_series(out, "remove", r.remove, true);
    out << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  // Per-provider latency histograms, RAID kernel timings and distributor
  // counters from the 64-chunk matrix row (telemetry enabled there).
  out << "  ],\n  \"telemetry\": " << matrix_sink->metrics().to_json()
      << "\n}\n";
  out.close();
  std::cout << "\nwrote " << out_path << "\n";
  return gate_ok && overhead.pass() && journal_gate.pass() &&
                 smallops.pass() && fault_ok
             ? 0
             : 1;
}

// Throughput + latency benchmark for the pipelined stripe engine.
//
// Two parts:
//   1. Gate: a 64-chunk file put and get at 8 worker threads, pipelined
//      engine vs. the serial per-stripe baseline (DistributorConfig::
//      pipelined = false). The pipelined engine must win by >= 3x wall
//      clock; the process exits non-zero otherwise so CI catches
//      regressions.
//   2. Matrix: N client threads x M files x C chunks driven through
//      put/get/update/remove, reporting ops/sec, p50/p99 wall latency and
//      the modeled sim_time_parallel.
//
// Results are written as JSON (default ./BENCH_throughput.json, argv[1]
// overrides) so future PRs have a perf trajectory to diff against.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/chunker.hpp"
#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"
#include "util/sim_clock.hpp"
#include "util/stats.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::OpReport;
using core::PutOptions;

Bytes make_payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

DistributorConfig bench_config(bool pipelined) {
  DistributorConfig config;
  config.default_raid = raid::RaidLevel::kRaid5;
  config.stripe_data_shards = 3;
  config.misleading_fraction = 0.2;
  config.worker_threads = 8;
  config.pipelined = pipelined;
  return config;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// --- gate: 64-chunk file, pipelined vs serial ------------------------------
//
// The gate runs against providers in realtime mode (requests block for
// their modeled service time, ~3 ms base latency): shard RPCs are
// latency-bound in any real deployment, and that is exactly the regime the
// chunk-level pipeline targets. The serial baseline pays one round-trip
// barrier per stripe; the pipelined engine keeps every chunk's stripe in
// flight at once.

constexpr double kGateBaseLatencyMs = 3.0;

storage::ProviderRegistry make_realtime_registry(std::size_t n) {
  storage::ProviderRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    storage::ProviderDescriptor d;
    d.name = "rt" + std::to_string(i);
    d.privacy_level = PrivacyLevel::kHigh;
    d.cost_level = CostLevel::kCheapest;
    storage::LatencyModel latency;
    latency.base_latency = SimDuration(std::chrono::microseconds(
        static_cast<std::int64_t>(kGateBaseLatencyMs * 1000.0)));
    registry.add(std::move(d), latency, 0xBE9C0000ULL + i);
    registry.at(i).set_realtime_scale(1.0);
  }
  return registry;
}

struct GateResult {
  double serial_s = 0.0;
  double pipelined_s = 0.0;
  [[nodiscard]] double speedup() const { return serial_s / pipelined_s; }
};

double time_put_64(bool pipelined, int reps, const Bytes& data) {
  storage::ProviderRegistry registry = make_realtime_registry(12);
  CloudDataDistributor cdd(registry, bench_config(pipelined));
  CS_REQUIRE(cdd.register_client("bench").ok(), "register");
  CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kHigh).ok(), "pw");
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;  // 1 KiB chunks -> 64 chunks
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    Stopwatch w;
    Status st = cdd.put_file("bench", "pw", "gate_put_" + std::to_string(r),
                             data, opts);
    samples.push_back(w.elapsed_seconds());
    CS_REQUIRE(st.ok(), st.to_string());
  }
  return median(samples);
}

double time_get_64(bool pipelined, int reps, const Bytes& data) {
  storage::ProviderRegistry registry = make_realtime_registry(12);
  CloudDataDistributor cdd(registry, bench_config(pipelined));
  CS_REQUIRE(cdd.register_client("bench").ok(), "register");
  CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kHigh).ok(), "pw");
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  CS_REQUIRE(cdd.put_file("bench", "pw", "gate_get", data, opts).ok(), "put");
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    Stopwatch w;
    Result<Bytes> back = cdd.get_file("bench", "pw", "gate_get");
    samples.push_back(w.elapsed_seconds());
    CS_REQUIRE(back.ok(), back.status().to_string());
    CS_REQUIRE(back.value().size() == data.size(), "short read");
  }
  return median(samples);
}

// --- matrix: N clients x M files x C chunks --------------------------------

struct OpSeries {
  std::vector<double> wall_s;          // per-op wall latency
  std::vector<double> sim_parallel_ms; // per-op modeled makespan
  double phase_wall_s = 0.0;           // whole phase, all threads

  [[nodiscard]] double ops_per_sec() const {
    return phase_wall_s > 0.0
               ? static_cast<double>(wall_s.size()) / phase_wall_s
               : 0.0;
  }
};

struct MatrixRow {
  std::size_t clients = 0;
  std::size_t files_per_client = 0;
  std::size_t chunks = 0;
  OpSeries put, get, update, remove;
};

MatrixRow run_matrix(std::size_t clients, std::size_t files_per_client,
                     std::size_t chunks) {
  storage::ProviderRegistry registry = storage::make_default_registry(12);
  CloudDataDistributor cdd(registry, bench_config(true));
  const std::size_t chunk_bytes =
      core::ChunkSizePolicy{}.chunk_size(PrivacyLevel::kPublic);
  for (std::size_t c = 0; c < clients; ++c) {
    const std::string name = "client" + std::to_string(c);
    CS_REQUIRE(cdd.register_client(name).ok(), "register");
    CS_REQUIRE(cdd.add_password(name, "pw", PrivacyLevel::kHigh).ok(), "pw");
  }

  MatrixRow row;
  row.clients = clients;
  row.files_per_client = files_per_client;
  row.chunks = chunks;
  std::mutex merge_mu;

  // One phase = every client thread performing `op` on all of its files.
  auto run_phase = [&](OpSeries& series, auto op) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    Stopwatch phase;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        OpSeries local;
        for (std::size_t m = 0; m < files_per_client; ++m) {
          OpReport report;
          Stopwatch w;
          op(c, m, &report);
          local.wall_s.push_back(w.elapsed_seconds());
          local.sim_parallel_ms.push_back(
              static_cast<double>(report.sim_time_parallel.count()) / 1e6);
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        series.wall_s.insert(series.wall_s.end(), local.wall_s.begin(),
                             local.wall_s.end());
        series.sim_parallel_ms.insert(series.sim_parallel_ms.end(),
                                      local.sim_parallel_ms.begin(),
                                      local.sim_parallel_ms.end());
      });
    }
    for (auto& t : threads) t.join();
    series.phase_wall_s = phase.elapsed_seconds();
  };

  auto client_of = [](std::size_t c) { return "client" + std::to_string(c); };
  auto file_of = [](std::size_t m) { return "file" + std::to_string(m); };
  PutOptions opts;
  opts.privacy_level = PrivacyLevel::kPublic;

  run_phase(row.put, [&](std::size_t c, std::size_t m, OpReport* report) {
    const Bytes data = make_payload(chunk_bytes * chunks, c * 100 + m);
    Status st = cdd.put_file(client_of(c), "pw", file_of(m), data, opts,
                             report);
    CS_REQUIRE(st.ok(), st.to_string());
  });
  run_phase(row.get, [&](std::size_t c, std::size_t m, OpReport* report) {
    Result<Bytes> back = cdd.get_file(client_of(c), "pw", file_of(m), report);
    CS_REQUIRE(back.ok(), back.status().to_string());
  });
  run_phase(row.update, [&](std::size_t c, std::size_t m, OpReport* report) {
    const Bytes data = make_payload(chunk_bytes, c * 7919 + m + 1);
    Status st = cdd.update_chunk(client_of(c), "pw", file_of(m), 0, data,
                                 report);
    CS_REQUIRE(st.ok(), st.to_string());
  });
  run_phase(row.remove, [&](std::size_t c, std::size_t m, OpReport* report) {
    (void)report;
    Status st = cdd.remove_file(client_of(c), "pw", file_of(m));
    CS_REQUIRE(st.ok(), st.to_string());
  });
  return row;
}

// --- JSON emission ----------------------------------------------------------

void emit_series(std::ostream& os, const char* name, const OpSeries& s,
                 bool last) {
  os << "      \"" << name << "\": {"
     << "\"ops_per_sec\": " << s.ops_per_sec()
     << ", \"p50_ms\": " << percentile(s.wall_s, 0.5) * 1e3
     << ", \"p99_ms\": " << percentile(s.wall_s, 0.99) * 1e3
     << ", \"sim_parallel_ms_mean\": " << mean_of(s.sim_parallel_ms) << "}"
     << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_throughput.json");

  const std::size_t gate_chunk_bytes =
      core::ChunkSizePolicy{}.chunk_size(PrivacyLevel::kHigh);
  const Bytes gate_data = make_payload(gate_chunk_bytes * 64, 42);

  std::cout << "=== gate: 64-chunk file (" << gate_data.size() / 1024
            << " KiB, PL3, RAID-5 k=3, chaff 0.2, 8 workers, realtime "
            << kGateBaseLatencyMs << " ms base latency) ===\n";
  GateResult put_gate;
  put_gate.serial_s = time_put_64(false, 5, gate_data);
  put_gate.pipelined_s = time_put_64(true, 5, gate_data);
  GateResult get_gate;
  get_gate.serial_s = time_get_64(false, 5, gate_data);
  get_gate.pipelined_s = time_get_64(true, 5, gate_data);
  std::cout << "put: serial " << put_gate.serial_s * 1e3 << " ms, pipelined "
            << put_gate.pipelined_s * 1e3 << " ms -> " << put_gate.speedup()
            << "x\n";
  std::cout << "get: serial " << get_gate.serial_s * 1e3 << " ms, pipelined "
            << get_gate.pipelined_s * 1e3 << " ms -> " << get_gate.speedup()
            << "x\n";
  const bool gate_ok = put_gate.speedup() >= 3.0 && get_gate.speedup() >= 3.0;
  std::cout << "gate (target >= 3x): " << (gate_ok ? "PASS" : "FAIL") << "\n";

  std::cout << "\n=== matrix: clients x files x chunks (pipelined, "
               "8 workers) ===\n";
  std::vector<MatrixRow> rows;
  for (std::size_t chunks : {4u, 16u, 64u}) {
    rows.push_back(run_matrix(/*clients=*/8, /*files_per_client=*/4, chunks));
    const MatrixRow& r = rows.back();
    std::cout << "C=" << chunks << ": put " << r.put.ops_per_sec()
              << " ops/s (p99 " << percentile(r.put.wall_s, 0.99) * 1e3
              << " ms), get " << r.get.ops_per_sec() << " ops/s, update "
              << r.update.ops_per_sec() << " ops/s, remove "
              << r.remove.ops_per_sec() << " ops/s\n";
  }

  std::ofstream out(out_path);
  CS_REQUIRE(out.good(), "cannot open " + out_path);
  out << "{\n  \"bench\": \"throughput\",\n"
      << "  \"config\": {\"raid\": \"raid5\", \"data_shards\": 3, "
         "\"misleading_fraction\": 0.2, \"worker_threads\": 8, "
         "\"gate_chunk_bytes\": "
      << gate_chunk_bytes << ", \"gate_latency_ms\": " << kGateBaseLatencyMs
      << ", \"gate_realtime\": true, \"matrix_chunk_bytes\": "
      << core::ChunkSizePolicy{}.chunk_size(PrivacyLevel::kPublic) << "},\n"
      << "  \"gate\": {\n"
      << "    \"put_64chunk\": {\"serial_s\": " << put_gate.serial_s
      << ", \"pipelined_s\": " << put_gate.pipelined_s
      << ", \"speedup\": " << put_gate.speedup() << "},\n"
      << "    \"get_64chunk\": {\"serial_s\": " << get_gate.serial_s
      << ", \"pipelined_s\": " << get_gate.pipelined_s
      << ", \"speedup\": " << get_gate.speedup() << "},\n"
      << "    \"target_speedup\": 3.0, \"pass\": "
      << (gate_ok ? "true" : "false") << "\n  },\n"
      << "  \"matrix\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MatrixRow& r = rows[i];
    out << "    {\"clients\": " << r.clients
        << ", \"files_per_client\": " << r.files_per_client
        << ", \"chunks\": " << r.chunks << ",\n";
    emit_series(out, "put", r.put, false);
    emit_series(out, "get", r.get, false);
    emit_series(out, "update", r.update, false);
    emit_series(out, "remove", r.remove, true);
    out << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::cout << "\nwrote " << out_path << "\n";
  return gate_ok ? 0 : 1;
}

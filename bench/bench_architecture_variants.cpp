// E9 -- SIV-C / Fig. 2 architecture variants.
//
// The paper proposes two evolutions of the single Cloud Data Distributor:
// multiple distributors (primary for uploads, secondaries for retrieval --
// removes the single point of failure and spreads read load) and a
// client-side CHORD-like distributor (removes the third party entirely at
// the cost of client memory). This bench compares the three architectures
// on a mixed workload: aggregate model time, per-op latency, and the
// client-side table footprint the paper warns about.
#include <iostream>

#include "core/client_side.hpp"
#include "core/distributor.hpp"
#include "core/multi_distributor.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::OpReport;
using core::PutOptions;

double ms(SimDuration d) { return static_cast<double>(d.count()) / 1e6; }

constexpr std::size_t kClients = 6;
constexpr std::size_t kFilesPerClient = 4;
constexpr std::size_t kFileBytes = 512 * 1024;
constexpr std::size_t kReadsPerFile = 4;

Bytes file_payload(std::size_t c, std::size_t f) {
  Rng rng(0xE9 + c * 131 + f);
  Bytes data(kFileBytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

}  // namespace

int main() {
  std::cout << "=== E9: architecture variants on a mixed workload ===\n"
            << "workload: " << kClients << " clients x " << kFilesPerClient
            << " files x " << kFileBytes / 1024 << " KiB, " << kReadsPerFile
            << " whole-file reads each; 12 providers; PL1 chunks; RAID-5 "
               "k=3 (replication r=2 for the DHT variant)\n";
  TextTable t({"architecture", "upload model ms (sum)",
               "read model ms (sum)", "avg read ms",
               "client-side metadata (B)"});

  // --- A: single Cloud Data Distributor --------------------------------
  {
    storage::ProviderRegistry registry = storage::make_default_registry(12);
    DistributorConfig config;
    config.stripe_data_shards = 3;
    CloudDataDistributor cdd(registry, config);
    double up = 0.0;
    double rd = 0.0;
    std::size_t reads = 0;
    for (std::size_t c = 0; c < kClients; ++c) {
      const std::string client = "client" + std::to_string(c);
      (void)cdd.register_client(client);
      (void)cdd.add_password(client, "pw", PrivacyLevel::kHigh);
      for (std::size_t f = 0; f < kFilesPerClient; ++f) {
        PutOptions opts;
        opts.privacy_level = PrivacyLevel::kLow;
        OpReport r;
        Status st = cdd.put_file(client, "pw", "f" + std::to_string(f),
                                 file_payload(c, f), opts, &r);
        CS_REQUIRE(st.ok(), st.to_string());
        up += ms(r.sim_time_parallel);
      }
    }
    for (std::size_t c = 0; c < kClients; ++c) {
      const std::string client = "client" + std::to_string(c);
      for (std::size_t f = 0; f < kFilesPerClient; ++f) {
        for (std::size_t i = 0; i < kReadsPerFile; ++i) {
          OpReport r;
          Result<Bytes> back =
              cdd.get_file(client, "pw", "f" + std::to_string(f), &r);
          CS_REQUIRE(back.ok(), back.status().to_string());
          rd += ms(r.sim_time_parallel);
          ++reads;
        }
      }
    }
    t.add("single distributor", TextTable::fmt(up, 1), TextTable::fmt(rd, 1),
          TextTable::fmt(rd / static_cast<double>(reads), 2), 0);
  }

  // --- B: distributor group (Fig. 2) ------------------------------------
  {
    storage::ProviderRegistry registry = storage::make_default_registry(12);
    DistributorConfig config;
    config.stripe_data_shards = 3;
    core::DistributorGroup group(registry, config, 3);
    double up = 0.0;
    double rd = 0.0;
    std::size_t reads = 0;
    for (std::size_t c = 0; c < kClients; ++c) {
      const std::string client = "client" + std::to_string(c);
      (void)group.register_client(client);
      (void)group.add_password(client, "pw", PrivacyLevel::kHigh);
      for (std::size_t f = 0; f < kFilesPerClient; ++f) {
        PutOptions opts;
        opts.privacy_level = PrivacyLevel::kLow;
        OpReport r;
        Status st = group.put_file(client, "pw", "f" + std::to_string(f),
                                   file_payload(c, f), opts, &r);
        CS_REQUIRE(st.ok(), st.to_string());
        up += ms(r.sim_time_parallel);
      }
    }
    for (std::size_t c = 0; c < kClients; ++c) {
      const std::string client = "client" + std::to_string(c);
      for (std::size_t f = 0; f < kFilesPerClient; ++f) {
        for (std::size_t i = 0; i < kReadsPerFile; ++i) {
          OpReport r;
          Result<Bytes> back =
              group.get_file(client, "pw", "f" + std::to_string(f), &r);
          CS_REQUIRE(back.ok(), back.status().to_string());
          rd += ms(r.sim_time_parallel);
          ++reads;
        }
      }
    }
    // With 3 front-ends serving reads concurrently, wall-clock read time is
    // the per-distributor share.
    t.add("3-distributor group (Fig. 2)", TextTable::fmt(up, 1),
          TextTable::fmt(rd / 3.0, 1),
          TextTable::fmt(rd / static_cast<double>(reads), 2), 0);
  }

  // --- C: client-side DHT (SIV-C) ----------------------------------------
  {
    storage::ProviderRegistry registry = storage::make_default_registry(12);
    core::ClientSideConfig config;
    config.replicas = 2;
    std::size_t table_bytes = 0;
    Stopwatch up_sw;
    double up_wall;
    std::vector<std::unique_ptr<core::ClientSideDistributor>> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      // Each client's id key must be unique, or two clients storing the
      // same filename would collide on virtual ids.
      config.seed = 0xC11E47 + c;
      clients.push_back(std::make_unique<core::ClientSideDistributor>(
          registry, config));
      for (std::size_t f = 0; f < kFilesPerClient; ++f) {
        Status st = clients[c]->put_file("f" + std::to_string(f),
                                         file_payload(c, f),
                                         PrivacyLevel::kLow);
        CS_REQUIRE(st.ok(), st.to_string());
      }
      table_bytes += clients[c]->local_table_bytes();
    }
    up_wall = up_sw.elapsed_seconds() * 1e3;
    Stopwatch rd_sw;
    std::size_t reads = 0;
    for (std::size_t c = 0; c < kClients; ++c) {
      for (std::size_t f = 0; f < kFilesPerClient; ++f) {
        for (std::size_t i = 0; i < kReadsPerFile; ++i) {
          Result<Bytes> back = clients[c]->get_file("f" + std::to_string(f));
          CS_REQUIRE(back.ok(), back.status().to_string());
          ++reads;
        }
      }
    }
    const double rd_wall = rd_sw.elapsed_seconds() * 1e3;
    t.add("client-side DHT (SIV-C)",
          TextTable::fmt(up_wall, 1) + " (wall)",
          TextTable::fmt(rd_wall, 1) + " (wall)",
          TextTable::fmt(rd_wall / static_cast<double>(reads), 2),
          table_bytes);
  }
  t.print(std::cout);

  std::cout << "\n=== E9b: DHT ring balance (the load-splitting property "
               "SIV-C relies on) ===\n";
  {
    storage::ProviderRegistry registry = storage::make_default_registry(12);
    core::ClientSideConfig config;
    core::ClientSideDistributor client(registry, config);
    TextTable t2({"privacy tier", "eligible providers",
                  "keyspace share min", "keyspace share max"});
    for (int pl = 0; pl < kNumPrivacyLevels; ++pl) {
      const auto& ring = client.ring_for(privacy_level_from_int(pl));
      const auto share = ring.ownership();
      double lo = 1.0;
      double hi = 0.0;
      for (const auto& [p, frac] : share) {
        lo = std::min(lo, frac);
        hi = std::max(hi, frac);
      }
      t2.add(privacy_level_name(privacy_level_from_int(pl)), share.size(),
             TextTable::fmt(lo, 3), TextTable::fmt(hi, 3));
    }
    t2.print(std::cout);
  }
  std::cout << "expected shape: the group matches the single distributor on "
               "uploads but divides read latency across front-ends; the DHT "
               "removes the third party at the price of client-resident "
               "tables and replication (2x) instead of parity (1.33x).\n";
  return 0;
}

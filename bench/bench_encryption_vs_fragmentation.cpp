// E7 -- SVII-E "Encryption vs Fragmentation" -- and E19, the
// protection-mode frontier gate.
//
// Paper's argument: encrypt-everything "has a large disadvantage in the
// form of overhead associated with query processing" (fetch + decrypt the
// whole database before querying), while fragmentation "exploits the
// benefit of parallel query processing" at much lower cost; encryption can
// still complement fragmentation for the most concerned clients.
//
// Section E7 measures a query workload over a stored table under five
// regimes:
//   A  fragmentation only           (this paper's system)
//   B  fragmentation + AES-128-CTR  ("encryption along with fragmentation")
//   C  encrypt-everything, single provider (the strawman the paper attacks:
//      every point query fetches and decrypts the whole file)
//   D  partial encryption: PL3 columns encrypted, rest plaintext
//   E  fast-fragmentation protection mode (key-less GF(256) entanglement,
//      PR 8): the protection transform lives inside the distributor
// reporting CPU cost of crypto on the PUT path, wall-clock cost of the GET
// path (fetch + detangle/decrypt -- the side the old bench never measured),
// modeled transfer time, and point-query latency.
//
// Section E19 is the privacy/throughput FRONTIER and its CI gate:
//   * protection-stage throughput (GB/s, both directions) for partial-AES
//     vs fragmentation at PL1..PL3, fragmentation measured under every
//     kernel arm the host can run (scalar always included, so the
//     forced-scalar CI build exercises the same gate);
//   * colluding k-of-n adversary: every 3-of-6 provider coalition pools its
//     views and mines the pooled rows, per protection mode and PL;
//   * gate (exit non-zero on failure): there exists a PL where
//     fragmentation achieves >= 2x partial-AES effective throughput on BOTH
//     put and get under EVERY measured arm, while its worst-coalition
//     mining success is no better for the attacker than partial-AES's.
// Results land in ./BENCH_frontier.json (a bare argument overrides the
// path); see EXPERIMENTS.md E19.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "attack/adversary.hpp"
#include "attack/harness.hpp"
#include "core/distributor.hpp"
#include "core/partial_encryption.hpp"
#include "crypto/aes.hpp"
#include "crypto/fragmentation.hpp"
#include "crypto/gf256_kernels.hpp"
#include "storage/provider_registry.hpp"
#include "util/cpu.hpp"
#include "util/table.hpp"
#include "workload/bidding.hpp"
#include "workload/records.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::OpReport;
using core::PutOptions;
namespace kern = gf256::kernels;
using kern::Arm;

double ms(SimDuration d) { return static_cast<double>(d.count()) / 1e6; }

struct Regime {
  std::string name;
  bool encrypt_before_store = false;  ///< full-payload AES-CTR
  bool partial_encrypt = false;       ///< PL3 columns only (PartialEncryptor)
  bool whole_file_per_query = false;
  std::size_t providers = 12;
  std::optional<ProtectionMode> protection;  ///< distributor-side transform
};

/// Same AES fraction the distributor applies per privacy level.
std::size_t aes_prefix_for(PrivacyLevel pl, std::size_t n) {
  static constexpr std::size_t kQuarters[] = {0, 1, 2, 4};
  return (n * kQuarters[static_cast<std::size_t>(level_index(pl))] + 3) / 4;
}

/// Best-of-three GB/s for `fn`; reps auto-scaled to >= ~20 ms per sample.
/// `bytes_per_call` is the PROTECTED payload size, so a partial transform
/// is credited with the whole payload it protects (effective throughput).
template <typename Fn>
double gbps(std::size_t bytes_per_call, Fn&& fn) {
  std::size_t reps = 1;
  for (;;) {
    Stopwatch w;
    for (std::size_t i = 0; i < reps; ++i) fn();
    if (w.elapsed_seconds() >= 0.02 || reps >= (1u << 22)) break;
    reps *= 4;
  }
  double best = 0.0;
  for (int sample = 0; sample < 3; ++sample) {
    Stopwatch w;
    for (std::size_t i = 0; i < reps; ++i) fn();
    const double s = w.elapsed_seconds();
    best = std::max(best, static_cast<double>(bytes_per_call) *
                              static_cast<double>(reps) / s / 1e9);
  }
  return best;
}

std::vector<Arm> measured_arms() {
  std::vector<Arm> arms = {Arm::kScalar};
  const Arm active = kern::active_arm();
  if (active != Arm::kScalar) arms.push_back(active);
  return arms;
}

struct ThroughputRow {
  PrivacyLevel pl = PrivacyLevel::kLow;
  std::string mode;
  std::string arm;  // "any" for AES (GF arm is irrelevant to it)
  double put_gb_s = 0.0;
  double get_gb_s = 0.0;
};

struct AttackRow {
  PrivacyLevel pl = PrivacyLevel::kLow;
  std::string mode;
  std::size_t coalitions = 0;
  double worst_coverage = 0.0;
  double mean_coverage = 0.0;
  bool regression_ok = false;
  double regression_rmse = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_frontier.json";
  if (argc > 1) out_path = argv[1];

  // 64k-row bidding table (~3 MB) and a workload of 32 point queries, each
  // touching one chunk-sized row range.
  workload::BiddingGenerator gen(0xE7);
  const mining::Dataset table = gen.generate(65536, 120.0);
  const workload::RecordCodec codec{workload::bidding_columns()};
  const Bytes plaintext = codec.encode(table);
  const crypto::AesKey key = {1, 2, 3, 4, 5, 6, 7, 8,
                              9, 10, 11, 12, 13, 14, 15, 16};
  constexpr std::size_t kQueries = 32;

  // Regime D encrypts only the sensitive Bid column (SVII-E "partitioning
  // data and encrypting a portion of it").
  const core::PartialEncryptor partial(workload::bidding_columns(), {"Bid"},
                                       key);
  const Regime regimes[] = {
      {"A fragmentation only", false, false, false, 12, std::nullopt},
      {"B fragmentation + AES (full)", true, false, false, 12, std::nullopt},
      {"C encrypt-everything, 1 provider", true, false, true, 1,
       std::nullopt},
      {"D partial encryption (Bid col) + frag", false, true, false, 12,
       std::nullopt},
      {"E fast-fragmentation mode (entangled stripes)", false, false, false,
       12, ProtectionMode::kFragmentation},
  };

  std::cout << "=== E7: query-processing cost, encryption vs fragmentation "
               "===\n"
            << "table: 65536 rows (" << plaintext.size() / 1024
            << " KiB); workload: " << kQueries
            << " point queries (one chunk each)\n";
  TextTable t({"regime", "crypto CPU ms (upload)", "upload model ms",
               "per-query model ms", "per-query crypto ms",
               "per-query get wall ms", "bytes fetched/query"});
  for (const Regime& regime : regimes) {
    storage::ProviderRegistry registry =
        storage::make_default_registry(regime.providers);
    DistributorConfig config;
    // Regime E stripes each chunk over 3 entangled fragments (RAID-0, no
    // parity -- the fast-fragmentation configuration); the others store
    // chunks whole.
    config.default_raid = regime.protection.has_value()
                              ? raid::RaidLevel::kRaid0
                              : raid::RaidLevel::kNone;
    config.stripe_data_shards = 3;
    config.placement = core::PlacementMode::kUniformSpread;
    CloudDataDistributor cdd(registry, config);
    (void)cdd.register_client("C");
    (void)cdd.add_password("C", "pw", PrivacyLevel::kHigh);

    // Upload.
    Stopwatch crypto_clock;
    Bytes stored = plaintext;
    double upload_crypto_ms = 0.0;
    if (regime.encrypt_before_store) {
      crypto_clock.restart();
      stored = crypto::aes128_ctr(key, 0xE7, plaintext);
      upload_crypto_ms = crypto_clock.elapsed_seconds() * 1e3;
    } else if (regime.partial_encrypt) {
      crypto_clock.restart();
      stored = partial.apply(plaintext).value();
      upload_crypto_ms = crypto_clock.elapsed_seconds() * 1e3;
    }
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kLow;  // 16 KiB chunks
    opts.record_align = codec.record_size();
    opts.protection = regime.protection;
    OpReport put_report;
    if (regime.protection.has_value()) {
      // The transform runs inside put_file; charge its wall time as the
      // upload crypto cost (dominated by entangle + stripe encode).
      crypto_clock.restart();
    }
    Status st = cdd.put_file("C", "pw", "t", stored, opts, &put_report);
    CS_REQUIRE(st.ok(), st.to_string());
    if (regime.protection.has_value()) {
      upload_crypto_ms = crypto_clock.elapsed_seconds() * 1e3;
    }

    // Queries. `get wall ms` is the real-time cost of the get path --
    // fetch + distributor-side detangle/decrypt + any client-side decrypt
    // -- the half of the crypto bill the old bench never measured.
    Rng rng(0xE7E7);
    double query_model_ms = 0.0;
    double query_crypto_ms = 0.0;
    double query_wall_ms = 0.0;
    double bytes_per_query = 0.0;
    Stopwatch wall_clock;
    for (std::size_t q = 0; q < kQueries; ++q) {
      const std::uint64_t serial = rng.below(put_report.chunks);
      OpReport get_report;
      if (regime.whole_file_per_query) {
        // Strawman: fetch the whole file, decrypt, then answer locally.
        wall_clock.restart();
        Result<Bytes> file = cdd.get_file("C", "pw", "t", &get_report);
        CS_REQUIRE(file.ok(), file.status().to_string());
        crypto_clock.restart();
        const Bytes plain = crypto::aes128_ctr(key, 0xE7, file.value());
        query_crypto_ms += crypto_clock.elapsed_seconds() * 1e3;
        query_wall_ms += wall_clock.elapsed_seconds() * 1e3;
        bytes_per_query += static_cast<double>(file.value().size());
        (void)plain;
      } else {
        wall_clock.restart();
        Result<Bytes> chunk = cdd.get_chunk("C", "pw", "t", serial,
                                            &get_report);
        CS_REQUIRE(chunk.ok(), chunk.status().to_string());
        if (regime.encrypt_before_store) {
          // CTR is seekable: decrypt just the fetched range. We charge the
          // cost of one chunk's worth of keystream.
          crypto_clock.restart();
          const Bytes plain = crypto::aes128_ctr(key, 0xE7, chunk.value());
          query_crypto_ms += crypto_clock.elapsed_seconds() * 1e3;
          (void)plain;
        } else if (regime.partial_encrypt) {
          // Record-independent keystreams: decrypt just this chunk's rows.
          crypto_clock.restart();
          const std::size_t base =
              serial * (chunk.value().size() / codec.record_size());
          const Bytes plain = partial.apply(chunk.value(), base).value();
          query_crypto_ms += crypto_clock.elapsed_seconds() * 1e3;
          (void)plain;
        }
        query_wall_ms += wall_clock.elapsed_seconds() * 1e3;
        bytes_per_query += static_cast<double>(chunk.value().size());
      }
      query_model_ms += ms(get_report.sim_time_parallel);
    }
    t.add(regime.name, TextTable::fmt(upload_crypto_ms, 2),
          TextTable::fmt(ms(put_report.sim_time_parallel), 2),
          TextTable::fmt(query_model_ms / kQueries, 2),
          TextTable::fmt(query_crypto_ms / kQueries, 3),
          TextTable::fmt(query_wall_ms / kQueries, 3),
          TextTable::fmt(bytes_per_query / kQueries, 0));
  }
  t.print(std::cout);

  std::cout << "\n=== E7b: parallel fragment fetch (SVII-E: \"various "
               "fragments can be accessed simultaneously\") ===\n";
  {
    TextTable t2({"channels", "get_file model ms", "speedup"});
    double base = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
      storage::ProviderRegistry registry = storage::make_default_registry(12);
      DistributorConfig config;
      config.default_raid = raid::RaidLevel::kNone;
      config.placement = core::PlacementMode::kUniformSpread;
      config.worker_threads = threads;
      CloudDataDistributor cdd(registry, config);
      (void)cdd.register_client("C");
      (void)cdd.add_password("C", "pw", PrivacyLevel::kHigh);
      PutOptions opts;
      opts.privacy_level = PrivacyLevel::kLow;
      Status st = cdd.put_file("C", "pw", "t", plaintext, opts);
      CS_REQUIRE(st.ok(), st.to_string());
      OpReport get_report;
      Result<Bytes> file = cdd.get_file("C", "pw", "t", &get_report);
      CS_REQUIRE(file.ok(), file.status().to_string());
      const double p = ms(get_report.sim_time_parallel);
      if (threads == 1) base = p;
      t2.add(threads, TextTable::fmt(p, 2), TextTable::fmt(base / p, 2));
    }
    t2.print(std::cout);
  }

  // === E19: protection-mode frontier ======================================
  const Arm active = kern::active_arm();
  std::cout << "\n=== E19a: protection-stage throughput (GB/s over protected "
               "payload, best of 3; active arm "
            << cpu::simd_level_name(active) << ") ===\n";
  const std::vector<PrivacyLevel> pls = {
      PrivacyLevel::kLow, PrivacyLevel::kModerate, PrivacyLevel::kHigh};
  std::vector<ThroughputRow> tput_rows;
  {
    constexpr std::size_t kPayload = 256 * 1024;  // one PL3-ish chunk
    constexpr std::size_t kFragments = 3;         // stripe_data_shards
    Rng fill(0xE19);
    Bytes payload(kPayload);
    for (auto& b : payload) b = static_cast<std::uint8_t>(fill.below(256));

    for (PrivacyLevel pl : pls) {
      // Partial-AES: encrypt the per-PL prefix, credit the whole payload.
      const std::size_t prefix = aes_prefix_for(pl, kPayload);
      ThroughputRow aes_row{pl, "partial-aes", "any", 0.0, 0.0};
      const auto run_aes = [&] {
        const Bytes enc = crypto::aes128_ctr(
            key, 0xE19, BytesView(payload.data(), prefix));
        CS_REQUIRE(enc.size() == prefix, "aes");
      };
      aes_row.put_gb_s = gbps(kPayload, run_aes);
      aes_row.get_gb_s = gbps(kPayload, run_aes);  // CTR is symmetric
      tput_rows.push_back(aes_row);

      // Fragmentation: whiten + two GF(256) sweeps, under every arm.
      for (Arm arm : measured_arms()) {
        const Arm prev = kern::set_active_arm(arm);
        ThroughputRow row{pl, "fragmentation",
                          std::string(cpu::simd_level_name(arm)), 0.0, 0.0};
        Bytes buf = payload;
        row.put_gb_s = gbps(kPayload, [&] {
          crypto::fragmentation::entangle(buf, kFragments, 0xE19);
        });
        row.get_gb_s = gbps(kPayload, [&] {
          crypto::fragmentation::detangle(buf, kFragments, 0xE19);
        });
        kern::set_active_arm(prev);
        tput_rows.push_back(row);
      }
    }
  }
  for (const auto& r : tput_rows) {
    std::cout << privacy_level_name(r.pl) << " " << r.mode << " [" << r.arm
              << "]: put " << r.put_gb_s << " GB/s, get " << r.get_gb_s
              << " GB/s\n";
  }

  std::cout << "\n=== E19b: colluding 3-of-12 adversary vs protection mode "
               "===\n"
            << "2048-row bidding table striped 3-wide over 12 providers; "
               "coalitions of 3 providers (64 sampled of C(12,3)=220) pool "
               "their dumps and mine them; defender scored by its worst "
               "coalition\n";
  std::vector<AttackRow> attack_rows;
  {
    workload::BiddingGenerator agen(0xE19B);
    const mining::Dataset atable = agen.generate(2048, 120.0);
    Result<mining::LinearModel> reference =
        mining::fit_linear(atable, workload::bidding_features(), "Bid");
    CS_REQUIRE(reference.ok(), "reference fit failed");
    constexpr std::size_t kProviders = 12;  // 4 are PL3-trusted
    constexpr std::size_t kColluding = 3;

    TextTable ta({"PL", "mode", "coalitions", "worst cov", "mean cov",
                  "worst RMSE ($)", "mining"});
    for (PrivacyLevel pl : pls) {
      for (ProtectionMode mode :
           {ProtectionMode::kMisleadingBytes, ProtectionMode::kPartialAes,
            ProtectionMode::kFragmentation}) {
        storage::ProviderRegistry registry =
            storage::make_default_registry(kProviders);
        DistributorConfig config;
        config.default_raid = raid::RaidLevel::kRaid0;
        config.stripe_data_shards = 3;
        config.placement = core::PlacementMode::kUniformSpread;
        config.misleading_fraction = 0.25;
        CloudDataDistributor cdd(registry, config);
        (void)cdd.register_client("victim");
        (void)cdd.add_password("victim", "pw", PrivacyLevel::kHigh);
        PutOptions opts;
        opts.privacy_level = pl;
        opts.record_align = codec.record_size();
        opts.protection = mode;
        Status st = cdd.put_file("victim", "pw", "bids",
                                 codec.encode(atable), opts);
        CS_REQUIRE(st.ok(), st.to_string());

        const attack::CollusionSweep sweep = attack::collusion_sweep(
            registry, codec, kColluding, atable.num_rows());
        AttackRow row;
        row.pl = pl;
        row.mode = std::string(protection_mode_name(mode));
        row.coalitions = sweep.coalitions_tried;
        row.worst_coverage = sweep.worst_coverage;
        row.mean_coverage = sweep.mean_coverage;

        // Mine the worst coalition's rows for color (not gated): can the
        // attacker still fit the bid-price equation?
        const mining::Dataset rows = attack::sanitize_rows(
            attack::reconstruct_rows(
                attack::compromise(registry, sweep.worst_coalition), codec));
        const auto r = attack::regression_attack(
            rows, workload::bidding_features(), "Bid", reference.value(),
            atable);
        row.regression_ok = r.mining_succeeded;
        row.regression_rmse = r.prediction_rmse;
        attack_rows.push_back(row);
        ta.add(privacy_level_name(pl), row.mode, row.coalitions,
               TextTable::fmt(row.worst_coverage, 3),
               TextTable::fmt(row.mean_coverage, 3),
               row.regression_ok ? TextTable::fmt(row.regression_rmse, 0)
                                 : "-",
               row.regression_ok ? "ok" : "starved");
      }
    }
    ta.print(std::cout);
  }

  // --- gate ----------------------------------------------------------------
  // Pass if some PL has fragmentation >= 2x partial-AES effective
  // throughput (both directions, under every measured arm) at
  // equal-or-better attack degradation (worst-coalition coverage no higher).
  const auto tput_of = [&](PrivacyLevel pl, const char* mode,
                           std::string_view arm) -> const ThroughputRow* {
    for (const auto& r : tput_rows) {
      if (r.pl == pl && r.mode == mode && (arm.empty() || r.arm == arm)) {
        return &r;
      }
    }
    return nullptr;
  };
  const auto attack_of = [&](PrivacyLevel pl,
                             const char* mode) -> const AttackRow* {
    for (const auto& r : attack_rows) {
      if (r.pl == pl && r.mode == mode) return &r;
    }
    return nullptr;
  };

  bool gate_ok = false;
  std::cout << "\n=== gate ===\n";
  for (PrivacyLevel pl : pls) {
    const ThroughputRow* aes = tput_of(pl, "partial-aes", "any");
    const AttackRow* aes_atk = attack_of(pl, "partial-aes");
    const AttackRow* frag_atk = attack_of(pl, "fragmentation");
    if (aes == nullptr || aes_atk == nullptr || frag_atk == nullptr) continue;
    bool tput_ok = true;
    double min_ratio = 1e18;
    for (Arm arm : measured_arms()) {
      const ThroughputRow* frag =
          tput_of(pl, "fragmentation", cpu::simd_level_name(arm));
      if (frag == nullptr) {
        tput_ok = false;
        break;
      }
      const double put_ratio =
          aes->put_gb_s > 0 ? frag->put_gb_s / aes->put_gb_s : 1e18;
      const double get_ratio =
          aes->get_gb_s > 0 ? frag->get_gb_s / aes->get_gb_s : 1e18;
      min_ratio = std::min({min_ratio, put_ratio, get_ratio});
      tput_ok = tput_ok && put_ratio >= 2.0 && get_ratio >= 2.0;
    }
    const bool atk_ok =
        frag_atk->worst_coverage <= aes_atk->worst_coverage + 1e-9;
    std::cout << privacy_level_name(pl) << ": frag/aes throughput >= "
              << (min_ratio >= 1e18 ? 0.0 : min_ratio)
              << "x (need >= 2 on put+get, all arms), frag worst coverage "
              << frag_atk->worst_coverage << " vs aes "
              << aes_atk->worst_coverage << " -> "
              << (tput_ok && atk_ok ? "PASS" : "fail") << "\n";
    gate_ok = gate_ok || (tput_ok && atk_ok);
  }
  std::cout << (gate_ok ? "PASS" : "FAIL")
            << " (need at least one passing PL)\n";

  // --- JSON ----------------------------------------------------------------
  std::ostringstream js;
  js << "{\n";
  js << "  \"active_arm\": \"" << cpu::simd_level_name(active) << "\",\n";
  js << "  \"throughput\": [\n";
  for (std::size_t i = 0; i < tput_rows.size(); ++i) {
    const auto& r = tput_rows[i];
    js << "    {\"pl\": " << level_index(r.pl) << ", \"mode\": \"" << r.mode
       << "\", \"arm\": \"" << r.arm << "\", \"put_gb_s\": " << r.put_gb_s
       << ", \"get_gb_s\": " << r.get_gb_s << "}"
       << (i + 1 == tput_rows.size() ? "\n" : ",\n");
  }
  js << "  ],\n";
  js << "  \"attack\": [\n";
  for (std::size_t i = 0; i < attack_rows.size(); ++i) {
    const auto& r = attack_rows[i];
    js << "    {\"pl\": " << level_index(r.pl) << ", \"mode\": \"" << r.mode
       << "\", \"coalitions\": " << r.coalitions
       << ", \"worst_coverage\": " << r.worst_coverage
       << ", \"mean_coverage\": " << r.mean_coverage
       << ", \"regression_ok\": " << (r.regression_ok ? "true" : "false")
       << ", \"regression_rmse\": " << r.regression_rmse << "}"
       << (i + 1 == attack_rows.size() ? "\n" : ",\n");
  }
  js << "  ],\n";
  js << "  \"gate\": {\"pass\": " << (gate_ok ? "true" : "false") << "}\n";
  js << "}\n";
  std::ofstream out(out_path);
  out << js.str();
  out.close();
  std::cout << "\nwrote " << out_path << "\n";

  std::cout << "expected shape: regime C pays ~#chunks more transfer and a "
               "whole-file decrypt per query; fragmentation regimes answer "
               "point queries at single-chunk cost; the frontier shows "
               "key-less entanglement beating partial AES on both put and "
               "get throughput while holding the colluding adversary to "
               "equal-or-worse reconstruction.\n";
  return gate_ok ? 0 : 1;
}

// E7 -- SVII-E "Encryption vs Fragmentation".
//
// Paper's argument: encrypt-everything "has a large disadvantage in the
// form of overhead associated with query processing" (fetch + decrypt the
// whole database before querying), while fragmentation "exploits the
// benefit of parallel query processing" at much lower cost; encryption can
// still complement fragmentation for the most concerned clients.
//
// We measure a query workload over a stored table under four regimes:
//   A  fragmentation only           (this paper's system)
//   B  fragmentation + AES-128-CTR  ("encryption along with fragmentation")
//   C  encrypt-everything, single provider (the strawman the paper attacks:
//      every point query fetches and decrypts the whole file)
//   D  partial encryption: PL3 columns encrypted, rest plaintext
// reporting CPU cost of crypto, modeled transfer time, and point-query
// latency.
#include <iostream>

#include "core/distributor.hpp"
#include "core/partial_encryption.hpp"
#include "crypto/aes.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"
#include "workload/bidding.hpp"
#include "workload/records.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::OpReport;
using core::PutOptions;

double ms(SimDuration d) { return static_cast<double>(d.count()) / 1e6; }

struct Regime {
  std::string name;
  bool encrypt_before_store = false;  ///< full-payload AES-CTR
  bool partial_encrypt = false;       ///< PL3 columns only (PartialEncryptor)
  bool whole_file_per_query = false;
  std::size_t providers = 12;
};

}  // namespace

int main() {
  // 64k-row bidding table (~3 MB) and a workload of 32 point queries, each
  // touching one chunk-sized row range.
  workload::BiddingGenerator gen(0xE7);
  const mining::Dataset table = gen.generate(65536, 120.0);
  const workload::RecordCodec codec{workload::bidding_columns()};
  const Bytes plaintext = codec.encode(table);
  const crypto::AesKey key = {1, 2, 3, 4, 5, 6, 7, 8,
                              9, 10, 11, 12, 13, 14, 15, 16};
  constexpr std::size_t kQueries = 32;

  // Regime D encrypts only the sensitive Bid column (SVII-E "partitioning
  // data and encrypting a portion of it").
  const core::PartialEncryptor partial(workload::bidding_columns(), {"Bid"},
                                       key);
  const Regime regimes[] = {
      {"A fragmentation only", false, false, false, 12},
      {"B fragmentation + AES (full)", true, false, false, 12},
      {"C encrypt-everything, 1 provider", true, false, true, 1},
      {"D partial encryption (Bid col) + frag", false, true, false, 12},
  };

  std::cout << "=== E7: query-processing cost, encryption vs fragmentation "
               "===\n"
            << "table: 65536 rows (" << plaintext.size() / 1024
            << " KiB); workload: " << kQueries
            << " point queries (one chunk each)\n";
  TextTable t({"regime", "crypto CPU ms (upload)", "upload model ms",
               "per-query model ms", "per-query crypto ms",
               "bytes fetched/query"});
  for (const Regime& regime : regimes) {
    storage::ProviderRegistry registry =
        storage::make_default_registry(regime.providers);
    DistributorConfig config;
    config.default_raid = raid::RaidLevel::kNone;
    config.placement = core::PlacementMode::kUniformSpread;
    CloudDataDistributor cdd(registry, config);
    (void)cdd.register_client("C");
    (void)cdd.add_password("C", "pw", PrivacyLevel::kHigh);

    // Upload.
    Stopwatch crypto_clock;
    Bytes stored = plaintext;
    double upload_crypto_ms = 0.0;
    if (regime.encrypt_before_store) {
      crypto_clock.restart();
      stored = crypto::aes128_ctr(key, 0xE7, plaintext);
      upload_crypto_ms = crypto_clock.elapsed_seconds() * 1e3;
    } else if (regime.partial_encrypt) {
      crypto_clock.restart();
      stored = partial.apply(plaintext).value();
      upload_crypto_ms = crypto_clock.elapsed_seconds() * 1e3;
    }
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kLow;  // 16 KiB chunks
    opts.record_align = codec.record_size();
    OpReport put_report;
    Status st = cdd.put_file("C", "pw", "t", stored, opts, &put_report);
    CS_REQUIRE(st.ok(), st.to_string());

    // Queries.
    Rng rng(0xE7E7);
    double query_model_ms = 0.0;
    double query_crypto_ms = 0.0;
    double bytes_per_query = 0.0;
    for (std::size_t q = 0; q < kQueries; ++q) {
      const std::uint64_t serial = rng.below(put_report.chunks);
      OpReport get_report;
      if (regime.whole_file_per_query) {
        // Strawman: fetch the whole file, decrypt, then answer locally.
        Result<Bytes> file = cdd.get_file("C", "pw", "t", &get_report);
        CS_REQUIRE(file.ok(), file.status().to_string());
        crypto_clock.restart();
        const Bytes plain = crypto::aes128_ctr(key, 0xE7, file.value());
        query_crypto_ms += crypto_clock.elapsed_seconds() * 1e3;
        bytes_per_query += static_cast<double>(file.value().size());
        (void)plain;
      } else {
        Result<Bytes> chunk = cdd.get_chunk("C", "pw", "t", serial,
                                            &get_report);
        CS_REQUIRE(chunk.ok(), chunk.status().to_string());
        if (regime.encrypt_before_store) {
          // CTR is seekable: decrypt just the fetched range. We charge the
          // cost of one chunk's worth of keystream.
          crypto_clock.restart();
          const Bytes plain = crypto::aes128_ctr(key, 0xE7, chunk.value());
          query_crypto_ms += crypto_clock.elapsed_seconds() * 1e3;
          (void)plain;
        } else if (regime.partial_encrypt) {
          // Record-independent keystreams: decrypt just this chunk's rows.
          crypto_clock.restart();
          const std::size_t base =
              serial * (chunk.value().size() / codec.record_size());
          const Bytes plain = partial.apply(chunk.value(), base).value();
          query_crypto_ms += crypto_clock.elapsed_seconds() * 1e3;
          (void)plain;
        }
        bytes_per_query += static_cast<double>(chunk.value().size());
      }
      query_model_ms += ms(get_report.sim_time_parallel);
    }
    t.add(regime.name, TextTable::fmt(upload_crypto_ms, 2),
          TextTable::fmt(ms(put_report.sim_time_parallel), 2),
          TextTable::fmt(query_model_ms / kQueries, 2),
          TextTable::fmt(query_crypto_ms / kQueries, 3),
          TextTable::fmt(bytes_per_query / kQueries, 0));
  }
  t.print(std::cout);

  std::cout << "\n=== E7b: parallel fragment fetch (SVII-E: \"various "
               "fragments can be accessed simultaneously\") ===\n";
  {
    TextTable t2({"channels", "get_file model ms", "speedup"});
    double base = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
      storage::ProviderRegistry registry = storage::make_default_registry(12);
      DistributorConfig config;
      config.default_raid = raid::RaidLevel::kNone;
      config.placement = core::PlacementMode::kUniformSpread;
      config.worker_threads = threads;
      CloudDataDistributor cdd(registry, config);
      (void)cdd.register_client("C");
      (void)cdd.add_password("C", "pw", PrivacyLevel::kHigh);
      PutOptions opts;
      opts.privacy_level = PrivacyLevel::kLow;
      Status st = cdd.put_file("C", "pw", "t", plaintext, opts);
      CS_REQUIRE(st.ok(), st.to_string());
      OpReport get_report;
      Result<Bytes> file = cdd.get_file("C", "pw", "t", &get_report);
      CS_REQUIRE(file.ok(), file.status().to_string());
      const double p = ms(get_report.sim_time_parallel);
      if (threads == 1) base = p;
      t2.add(threads, TextTable::fmt(p, 2), TextTable::fmt(base / p, 2));
    }
    t2.print(std::cout);
  }
  std::cout << "expected shape: regime C pays ~#chunks more transfer and a "
               "whole-file decrypt per query; fragmentation regimes answer "
               "point queries at single-chunk cost, and AES adds only "
               "microseconds per chunk (encryption complements rather than "
               "replaces fragmentation).\n";
  return 0;
}

// E11 -- reputation dynamics and trust-driven migration (SIV-A).
//
// The paper defines a provider's privacy level as "its reliability ...
// in terms of its reputation" but never operationalizes it. This bench
// closes the loop: providers develop an observed reliability score from
// request outcomes, scores map to trust tiers, a provider that degrades is
// demoted, and rebalance() moves sensitive shards off it. Reported: the
// demotion latency (requests to react), migration volume, and the privacy
// outcome (does the flaky provider still hold PL3 data?).
#include <iostream>

#include "core/distributor.hpp"
#include "core/reputation.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::PutOptions;

Bytes make_payload(std::size_t n) {
  Rng rng(0xE11);
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

}  // namespace

int main() {
  std::cout << "=== E11a: demotion latency vs observed failure rate "
               "(EWMA decay 0.05, PL3 floor 0.90) ===\n";
  {
    TextTable t({"failure rate", "requests to lose PL3", "requests to lose "
                 "PL2"});
    for (double rate : {1.0, 0.5, 0.25, 0.10}) {
      core::ReputationTracker tracker(1);
      Rng rng(static_cast<std::uint64_t>(rate * 1000));
      int to_pl2 = -1;
      int to_pl1 = -1;
      for (int i = 1; i <= 5000; ++i) {
        tracker.record(0, !rng.chance(rate));
        const int tier = level_index(tracker.tier(0));
        if (to_pl2 < 0 && tier < 3) to_pl2 = i;
        if (to_pl1 < 0 && tier < 2) to_pl1 = i;
        if (to_pl1 >= 0) break;
      }
      t.add(TextTable::fmt(rate, 2),
            to_pl2 > 0 ? std::to_string(to_pl2) : ">5000",
            to_pl1 > 0 ? std::to_string(to_pl1) : ">5000");
    }
    t.print(std::cout);
  }

  std::cout << "\n=== E11b: end-to-end trust-driven migration ===\n"
            << "workload: 2 MiB PL3 file on 8 trusted providers (RAID-5 "
               "k=3); one turns flaky, the operator demotes it per the "
               "tracker, rebalance() migrates.\n";
  {
    // All-PL3 fleet so a demotion leaves enough trusted homes.
    storage::ProviderRegistry registry;
    for (int i = 0; i < 8; ++i) {
      storage::ProviderDescriptor d;
      d.name = "Trusted" + std::to_string(i);
      d.privacy_level = PrivacyLevel::kHigh;
      d.cost_level = static_cast<CostLevel>(i % 4);
      registry.add(std::move(d));
    }
    DistributorConfig config;
    config.stripe_data_shards = 3;
    CloudDataDistributor cdd(registry, config);
    (void)cdd.register_client("C");
    (void)cdd.add_password("C", "pw", PrivacyLevel::kHigh);
    const Bytes data = make_payload(2 * 1024 * 1024);
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kHigh;
    Status st = cdd.put_file("C", "pw", "crown-jewels", data, opts);
    CS_REQUIRE(st.ok(), st.to_string());

    // The PL3 provider holding the most shards turns flaky.
    ProviderIndex flaky = kNoProvider;
    std::size_t most = 0;
    for (ProviderIndex p = 0; p < registry.size(); ++p) {
      if (registry.at(p).object_count() > most) {
        most = registry.at(p).object_count();
        flaky = p;
      }
    }
    CS_REQUIRE(flaky != kNoProvider, "no shards placed");
    registry.at(flaky).set_request_failure_prob(0.4);

    // Health probes feed the tracker until the tier drops.
    core::ReputationTracker tracker(registry.size());
    int probes = 0;
    while (tracker.tier(flaky) == PrivacyLevel::kHigh && probes < 5000) {
      ++probes;
      // One probe per provider (only the flaky one ever fails here).
      for (ProviderIndex p = 0; p < registry.size(); ++p) {
        const bool up = registry.at(p).online() &&
                        registry.at(p)
                            .get(0)  // probe id; NotFound still means "up"
                            .status()
                            .code() != ErrorCode::kUnavailable;
        tracker.record(p, up);
      }
    }
    registry.at(flaky).set_privacy_level(tracker.tier(flaky));

    // The provider is demoted for its *past* flakiness but is currently
    // responsive -- migration (including the deletes at the demoted
    // provider) must fully drain it.
    registry.at(flaky).set_request_failure_prob(0.0);
    const std::size_t before = registry.at(flaky).object_count();
    Stopwatch sw;
    Result<std::size_t> moved = cdd.rebalance();
    CS_REQUIRE(moved.ok(), moved.status().to_string());
    Result<Bytes> back = cdd.get_file("C", "pw", "crown-jewels");

    TextTable t({"metric", "value"});
    t.add("probe rounds to demote", probes);
    t.add("tracker score at demotion",
          TextTable::fmt(tracker.score(flaky), 3));
    t.add("new tier",
          std::string(privacy_level_name(registry.at(flaky)
                                              .descriptor()
                                              .privacy_level)));
    t.add("PL3 shards at flaky provider before", before);
    t.add("shards migrated", moved.value());
    t.add("PL3 shards at flaky provider after",
          registry.at(flaky).object_count());
    t.add("rebalance wall ms", TextTable::fmt(sw.elapsed_seconds() * 1e3, 2));
    t.add("file intact after migration",
          back.ok() && equal(back.value(), data) ? "yes" : "NO");
    t.print(std::cout);
  }
  std::cout << "expected shape: higher failure rates demote in fewer probes "
               "(EWMA halving); migration clears every sensitive shard off "
               "the demoted provider without data loss.\n";
  return 0;
}

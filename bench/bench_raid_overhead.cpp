// E8 -- SIII-B / SIV-A RAID availability: "RAID level 6 ... guarantees
// successful retrieval of data in case of a cloud provider being blocked by
// any unlikely event or going out of business" and "the distributed
// approach ... ensures the greater availability of data".
//
// Measured: for each RAID level, (a) storage overhead, (b) encode/decode
// CPU throughput, (c) read availability under 0/1/2 provider failures, and
// (d) repair cost after a permanent provider loss.
#include <iostream>

#include "core/distributor.hpp"
#include "raid/raid.hpp"
#include "storage/provider_registry.hpp"
#include "util/sim_clock.hpp"
#include "util/table.hpp"

namespace {

using namespace cshield;
using core::CloudDataDistributor;
using core::DistributorConfig;
using core::OpReport;
using core::PutOptions;

Bytes make_payload(std::size_t n) {
  Rng rng(0xE8);
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

/// Availability: fraction of `trials` where the file reads back intact with
/// `kill` random providers offline.
double availability(raid::RaidLevel level, std::size_t kill,
                    std::uint64_t seed) {
  const Bytes payload = make_payload(256 * 1024);
  Rng rng(seed);
  int ok = 0;
  constexpr int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    storage::ProviderRegistry registry = storage::make_default_registry(8);
    DistributorConfig config;
    config.default_raid = level;
    config.stripe_data_shards = 3;
    config.replication = 1;
    CloudDataDistributor cdd(registry, config);
    (void)cdd.register_client("C");
    (void)cdd.add_password("C", "pw", PrivacyLevel::kHigh);
    PutOptions opts;
    opts.privacy_level = PrivacyLevel::kPublic;
    Status st = cdd.put_file("C", "pw", "f", payload, opts);
    CS_REQUIRE(st.ok(), st.to_string());
    // Kill `kill` distinct random providers.
    std::vector<ProviderIndex> all;
    for (ProviderIndex p = 0; p < registry.size(); ++p) all.push_back(p);
    rng.shuffle(all);
    for (std::size_t k = 0; k < kill; ++k) {
      registry.at(all[k]).set_online(false);
    }
    Result<Bytes> back = cdd.get_file("C", "pw", "f");
    if (back.ok() && equal(back.value(), payload)) ++ok;
  }
  return static_cast<double>(ok) / kTrials;
}

}  // namespace

int main() {
  std::cout << "=== E8a: storage overhead and code throughput by RAID level "
               "(k=4 data shards, 4 MiB payload) ===\n";
  {
    const Bytes payload = make_payload(4 * 1024 * 1024);
    TextTable t({"raid", "overhead x", "tolerance", "encode MB/s",
                 "decode-2-erasures MB/s"});
    for (auto level : {raid::RaidLevel::kNone, raid::RaidLevel::kRaid0,
                       raid::RaidLevel::kRaid1, raid::RaidLevel::kRaid5,
                       raid::RaidLevel::kRaid6}) {
      const raid::StripeLayout layout =
          level == raid::RaidLevel::kRaid1
              ? raid::StripeLayout::make(level, 1, 2)
              : raid::StripeLayout::make(level, 4);
      Stopwatch sw;
      raid::EncodedStripe stripe;
      constexpr int kReps = 8;
      for (int i = 0; i < kReps; ++i) stripe = raid::encode(layout, payload);
      const double enc_mbs = kReps * static_cast<double>(payload.size()) /
                             (1024 * 1024) / sw.elapsed_seconds();
      // Worst-case decode: as many erasures as tolerated.
      std::vector<std::optional<Bytes>> shards = raid::shard_copies(stripe);
      for (std::size_t e = 0; e < layout.fault_tolerance() && e < shards.size();
           ++e) {
        shards[e].reset();
      }
      sw.restart();
      double dec_mbs = 0.0;
      for (int i = 0; i < kReps; ++i) {
        Result<Bytes> r = raid::decode(layout, shards, stripe.original_size);
        CS_REQUIRE(r.ok(), r.status().to_string());
      }
      dec_mbs = kReps * static_cast<double>(payload.size()) / (1024 * 1024) /
                sw.elapsed_seconds();
      t.add(raid_level_name(level),
            TextTable::fmt(layout.overhead_factor(), 2),
            layout.fault_tolerance(), TextTable::fmt(enc_mbs, 0),
            TextTable::fmt(dec_mbs, 0));
    }
    t.print(std::cout);
  }

  std::cout << "\n=== E8b: read availability under random provider outages "
               "(8 providers, k=3, 20 trials per cell) ===\n";
  {
    TextTable t({"raid", "0 down", "1 down", "2 down", "3 down"});
    for (auto level : {raid::RaidLevel::kRaid0, raid::RaidLevel::kRaid1,
                       raid::RaidLevel::kRaid5, raid::RaidLevel::kRaid6}) {
      std::vector<std::string> row{std::string(raid_level_name(level))};
      for (std::size_t kill = 0; kill <= 3; ++kill) {
        row.push_back(TextTable::fmt(
            availability(level, kill, 0xE8B + kill), 2));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  std::cout << "\n=== E8c: repair after a provider exits the market "
               "(RAID-5 vs RAID-6, 1 MiB file, 12 providers) ===\n";
  {
    TextTable t({"raid", "shards repaired", "file intact after repair",
                 "survives second failure"});
    for (auto level : {raid::RaidLevel::kRaid5, raid::RaidLevel::kRaid6}) {
      const Bytes payload = make_payload(1024 * 1024);
      storage::ProviderRegistry registry = storage::make_default_registry(12);
      DistributorConfig config;
      config.default_raid = level;
      config.stripe_data_shards = 3;
      CloudDataDistributor cdd(registry, config);
      (void)cdd.register_client("C");
      (void)cdd.add_password("C", "pw", PrivacyLevel::kHigh);
      PutOptions opts;
      opts.privacy_level = PrivacyLevel::kPublic;
      Status st = cdd.put_file("C", "pw", "f", payload, opts);
      CS_REQUIRE(st.ok(), st.to_string());
      ProviderIndex victim = 0;
      for (ProviderIndex p = 0; p < registry.size(); ++p) {
        if (registry.at(p).object_count() > 0) {
          victim = p;
          break;
        }
      }
      registry.at(victim).go_out_of_business();
      Result<std::size_t> repaired = cdd.repair();
      const bool intact =
          repaired.ok() &&
          equal(cdd.get_file("C", "pw", "f").value_or(Bytes{}), payload);
      // Second failure after repair.
      bool survives_second = false;
      for (ProviderIndex p = 0; p < registry.size(); ++p) {
        if (p != victim && registry.at(p).object_count() > 0) {
          registry.at(p).set_online(false);
          Result<Bytes> back = cdd.get_file("C", "pw", "f");
          survives_second = back.ok() && equal(back.value(), payload);
          registry.at(p).set_online(true);
          break;
        }
      }
      t.add(raid_level_name(level),
            repaired.ok() ? std::to_string(repaired.value()) : "FAILED",
            intact ? "yes" : "NO", survives_second ? "yes" : "NO");
    }
    t.print(std::cout);
  }
  std::cout << "expected shape: raid0 dies with any outage; raid5 rides out "
               "1, raid6 rides out 2; repair restores full redundancy so a "
               "further failure is survivable; parity costs 1.25-1.5x "
               "storage vs 2-3x for replication.\n";
  return 0;
}

// E2/E3 -- Figures 4, 5 and 6: dendrograms of GPS data, entire vs
// fragmented.
//
// Paper: hierarchical binary clustering of 30 Dhaka users from GPS
// observations. Figure 4 uses >3000 observations per user; Figures 5-6 use
// 500-observation fragments, and "many entities have moved from their
// original cluster to other clusters due to fragmentation of data".
//
// We regenerate the same artifacts on the synthetic mobility workload
// (DESIGN.md substitution): the full-data dendrogram, two disjoint
// 500-observation fragment dendrograms, and the quantitative divergence
// (membership churn at a 4-cluster cut, adjusted Rand index, cophenetic
// correlation, Baker's gamma) that the paper shows visually.
#include <iostream>

#include "attack/harness.hpp"
#include "mining/hierarchical.hpp"
#include "mining/metrics.hpp"
#include "util/table.hpp"
#include "workload/gps.hpp"

namespace {

using namespace cshield;

/// Row indices of each user's observations in [obs_lo, obs_hi).
std::vector<std::size_t> window_rows(const mining::Dataset& obs,
                                     std::size_t num_users,
                                     std::size_t obs_lo, std::size_t obs_hi) {
  std::vector<std::size_t> idx;
  std::vector<std::size_t> seen(num_users, 0);
  const std::size_t user_col = obs.column_index("user");
  for (std::size_t r = 0; r < obs.num_rows(); ++r) {
    const auto u = static_cast<std::size_t>(obs.at(r, user_col));
    if (seen[u] >= obs_lo && seen[u] < obs_hi) idx.push_back(r);
    ++seen[u];
  }
  return idx;
}

}  // namespace

int main() {
  workload::GpsConfig cfg;  // 30 users, 3000 obs/user, 4 neighbourhoods
  const workload::GpsTraces traces = workload::generate_gps(cfg);
  const std::size_t k = cfg.num_communities;

  const mining::Dataset full_features =
      workload::gps_user_features(traces.observations, cfg.num_users);
  const mining::Dendrogram fig4 = mining::cluster_rows(
      mining::standardize(full_features), mining::Linkage::kAverage);

  std::cout << "=== Figure 4: dendrogram of entire GPS data (" << cfg.num_users
            << " users x " << cfg.observations_per_user
            << " obs, average linkage) ===\n"
            << fig4.to_text() << "\n";

  // Figures 5 and 6: two disjoint 500-observation fragments (time windows),
  // as a fragmented system would hand two different providers.
  struct Fragment {
    const char* figure;
    std::size_t lo, hi;
  };
  const Fragment fragments[] = {{"Figure 5", 0, 500}, {"Figure 6", 500, 1000}};

  TextTable summary({"artifact", "obs/user", "churn @k=4 cut",
                     "ARI vs Fig.4", "cophenetic corr", "Baker's gamma"});
  summary.add("Figure 4 (reference)", cfg.observations_per_user, "0.000",
              "1.000", "1.000", "1.000");

  const std::vector<int> ref_labels = fig4.cut(k);
  for (const Fragment& frag : fragments) {
    const mining::Dataset features = workload::gps_user_features(
        traces.observations.select_rows(
            window_rows(traces.observations, cfg.num_users, frag.lo, frag.hi)),
        cfg.num_users);
    const attack::ClusteringAttackResult r =
        attack::clustering_attack(features, fig4, k);
    CS_REQUIRE(r.mining_succeeded, "fragment clustering failed");
    const mining::Dendrogram tree = mining::cluster_rows(
        mining::standardize(features), mining::Linkage::kAverage);
    std::cout << "=== " << frag.figure << ": dendrogram of fragmented GPS "
              << "data (obs " << frag.lo << ".." << frag.hi << ") ===\n"
              << tree.to_text() << "\n";
    summary.add(frag.figure, frag.hi - frag.lo,
                TextTable::fmt(r.churn_vs_reference),
                TextTable::fmt(r.ari_vs_reference),
                TextTable::fmt(r.cophenetic_corr),
                TextTable::fmt(r.bakers_gamma));
  }

  std::cout << "=== Fragmentation effect summary (paper: \"many entities "
               "have moved from their original cluster\") ===\n";
  summary.print(std::cout);

  // Series: divergence as the fragment shrinks (the trend behind the
  // figures).
  std::cout << "\n=== Series: fragment size vs clustering fidelity ===\n";
  TextTable series({"obs/user", "churn", "ARI", "cophenetic"});
  for (std::size_t size : {3000u, 1500u, 1000u, 500u, 250u, 100u}) {
    const mining::Dataset features = workload::gps_user_features(
        traces.observations.select_rows(
            window_rows(traces.observations, cfg.num_users, 0, size)),
        cfg.num_users);
    const attack::ClusteringAttackResult r =
        attack::clustering_attack(features, fig4, k);
    series.add(size, TextTable::fmt(r.churn_vs_reference),
               TextTable::fmt(r.ari_vs_reference),
               TextTable::fmt(r.cophenetic_corr));
  }
  series.print(std::cout);
  std::cout << "expected shape: smaller fragments -> more cluster churn, "
               "lower ARI/cophenetic agreement with the full-data tree.\n";
  return 0;
}

// E20: dynamic-topology migration gates.
//
// Measures how much data a single fleet change actually moves, and whether
// the fleet stays available while it moves:
//
//   1. Join gate: add a 9th provider to an 8-provider fleet holding a
//      multi-file corpus. The consistent-hash ring must relocate at most
//      35% of the live shard slots (fair share is 1/9 ~= 11%; a naive
//      `key % n` rehash moves ~100%). Every file must read back
//      byte-identical afterwards.
//   2. Drain gate: drain the most-loaded provider of the now-9-wide fleet.
//      Moved fraction <= 35% again (exactly the subject's share), reads
//      byte-identical, subject left empty.
//   3. Availability gate: a throttled background drain under a 5% seeded
//      transient fault plan while a client hammers get_file. Zero read
//      failures tolerated.
//
// Results land in BENCH_migration.json (default; first CLI arg overrides).
// Exit status is non-zero when any gate fails, so CI can gate on it.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/distributor.hpp"
#include "core/migrator.hpp"
#include "storage/fault_plan.hpp"
#include "storage/provider_registry.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace cshield {
namespace {

using core::CloudDataDistributor;
using core::MigrationKind;
using core::Migrator;

constexpr double kMovedLimit = 0.35;

Bytes make_payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

storage::ProviderRegistry flat_registry(std::size_t n) {
  storage::ProviderRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    storage::ProviderDescriptor d;
    d.name = "P" + std::to_string(i);
    d.privacy_level = PrivacyLevel::kHigh;
    d.cost_level = static_cast<CostLevel>(i % 4);
    registry.add(std::move(d), storage::LatencyModel{}, 0xB16'0000ULL + i);
  }
  return registry;
}

core::DistributorConfig bench_config(std::uint64_t seed) {
  core::DistributorConfig config;
  config.stripe_data_shards = 3;
  config.misleading_fraction = 0.05;
  config.worker_threads = 2;
  config.seed = seed;
  return config;
}

std::size_t total_shards(const core::MetadataStore& metadata) {
  std::size_t n = 0;
  for (const core::ChunkEntry& entry : metadata.chunk_table()) {
    if (!entry.deleted) n += entry.stripe.size();
  }
  return n;
}

std::size_t shards_on(const core::MetadataStore& metadata, ProviderIndex p) {
  std::size_t n = 0;
  for (const core::ChunkEntry& entry : metadata.chunk_table()) {
    if (entry.deleted) continue;
    for (const core::ShardLocation& loc : entry.stripe) {
      if (loc.provider == p) ++n;
    }
  }
  return n;
}

struct MoveGate {
  std::string kind;
  std::size_t fleet = 0;
  std::size_t shard_slots = 0;
  std::uint64_t shards_moved = 0;
  std::uint64_t bytes_moved = 0;
  bool reads_ok = false;

  [[nodiscard]] double fraction() const {
    return shard_slots == 0
               ? 0.0
               : static_cast<double>(shards_moved) /
                     static_cast<double>(shard_slots);
  }
  [[nodiscard]] bool pass() const {
    return reads_ok && shards_moved > 0 && fraction() <= kMovedLimit;
  }
};

struct AvailabilityGate {
  std::uint64_t reads = 0;
  std::uint64_t failures = 0;
  bool drained = false;

  [[nodiscard]] bool pass() const {
    return drained && reads > 0 && failures == 0;
  }
};

void emit_json(const std::string& path, const MoveGate& join,
               const MoveGate& drain, const AvailabilityGate& avail) {
  std::ofstream out(path, std::ios::trunc);
  CS_REQUIRE(static_cast<bool>(out), "cannot write " + path);
  auto move_obj = [&out](const MoveGate& g) {
    out << "{\"fleet\": " << g.fleet << ", \"shard_slots\": " << g.shard_slots
        << ", \"shards_moved\": " << g.shards_moved
        << ", \"bytes_moved\": " << g.bytes_moved
        << ", \"moved_fraction\": " << g.fraction()
        << ", \"limit\": " << kMovedLimit
        << ", \"reads_ok\": " << (g.reads_ok ? "true" : "false")
        << ", \"pass\": " << (g.pass() ? "true" : "false") << "}";
  };
  out << "{\n  \"schema\": \"cshield.bench.migration.v1\",\n  \"join\": ";
  move_obj(join);
  out << ",\n  \"drain\": ";
  move_obj(drain);
  out << ",\n  \"availability\": {\"reads\": " << avail.reads
      << ", \"failures\": " << avail.failures
      << ", \"drained\": " << (avail.drained ? "true" : "false")
      << ", \"pass\": " << (avail.pass() ? "true" : "false") << "}";
  const bool all = join.pass() && drain.pass() && avail.pass();
  out << ",\n  \"gate\": {\"pass\": " << (all ? "true" : "false") << "}\n}\n";
}

}  // namespace
}  // namespace cshield

int main(int argc, char** argv) {
  using namespace cshield;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_migration.json";

  // --- corpus + join gate ---------------------------------------------------
  storage::ProviderRegistry registry = flat_registry(8);
  CloudDataDistributor cdd(registry, bench_config(0xE20));
  CS_REQUIRE(cdd.register_client("bench").ok(), "register");
  CS_REQUIRE(cdd.add_password("bench", "pw", PrivacyLevel::kHigh).ok(), "pw");
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kHigh;
  std::vector<Bytes> corpus;
  for (std::uint64_t i = 0; i < 4; ++i) {
    corpus.push_back(make_payload(20000 + 3000 * i, 0xC0 + i));
    const Status st = cdd.put_file("bench", "pw", "f" + std::to_string(i),
                                   corpus.back(), opts);
    CS_REQUIRE(st.ok(), st.to_string());
  }
  auto verify_corpus = [&] {
    for (std::uint64_t i = 0; i < corpus.size(); ++i) {
      Result<Bytes> back =
          cdd.get_file("bench", "pw", "f" + std::to_string(i));
      if (!back.ok() || back.value() != corpus[i]) return false;
    }
    return true;
  };

  MoveGate join_gate;
  join_gate.kind = "join";
  join_gate.fleet = registry.size();
  join_gate.shard_slots = total_shards(cdd.metadata());
  storage::ProviderDescriptor newcomer;
  newcomer.name = "Newcomer";
  newcomer.privacy_level = PrivacyLevel::kHigh;
  newcomer.cost_level = CostLevel::kCheap;
  Result<ProviderIndex> added = cdd.add_provider(newcomer);
  CS_REQUIRE(added.ok(), added.status().to_string());
  {
    Migrator migrator(cdd);
    Result<Migrator::Report> report =
        migrator.run(MigrationKind::kJoin, added.value());
    CS_REQUIRE(report.ok(), report.status().to_string());
    CS_REQUIRE(report.value().committed, "join did not commit");
    join_gate.shards_moved = report.value().shards_moved;
    join_gate.bytes_moved = report.value().bytes_moved;
  }
  join_gate.reads_ok = verify_corpus();
  std::cout << "join:  moved " << join_gate.shards_moved << "/"
            << join_gate.shard_slots << " shard slots ("
            << join_gate.fraction() * 100 << "%, limit "
            << kMovedLimit * 100 << "%) -> "
            << (join_gate.pass() ? "PASS" : "FAIL") << "\n";

  // --- drain gate -----------------------------------------------------------
  MoveGate drain_gate;
  drain_gate.kind = "drain";
  drain_gate.fleet = registry.size();
  drain_gate.shard_slots = total_shards(cdd.metadata());
  ProviderIndex subject = 0;
  for (ProviderIndex p = 1; p < registry.size(); ++p) {
    if (shards_on(cdd.metadata(), p) > shards_on(cdd.metadata(), subject)) {
      subject = p;
    }
  }
  {
    Migrator migrator(cdd);
    Result<Migrator::Report> report =
        migrator.run(MigrationKind::kDrain, subject);
    CS_REQUIRE(report.ok(), report.status().to_string());
    CS_REQUIRE(report.value().committed, "drain did not commit");
    drain_gate.shards_moved = report.value().shards_moved;
    drain_gate.bytes_moved = report.value().bytes_moved;
  }
  drain_gate.reads_ok =
      verify_corpus() && shards_on(cdd.metadata(), subject) == 0;
  std::cout << "drain: moved " << drain_gate.shards_moved << "/"
            << drain_gate.shard_slots << " shard slots ("
            << drain_gate.fraction() * 100 << "%, limit "
            << kMovedLimit * 100 << "%) -> "
            << (drain_gate.pass() ? "PASS" : "FAIL") << "\n";

  // --- availability under a throttled drain + fault plan --------------------
  AvailabilityGate avail;
  {
    storage::ProviderRegistry fleet = flat_registry(8);
    CloudDataDistributor live(fleet, bench_config(0xE21));
    CS_REQUIRE(live.register_client("bench").ok(), "register");
    CS_REQUIRE(live.add_password("bench", "pw", PrivacyLevel::kHigh).ok(),
               "pw");
    const Bytes data = make_payload(24000, 0xAA);
    CS_REQUIRE(live.put_file("bench", "pw", "hot", data, opts).ok(), "put");
    fleet.apply_fault_plan(std::make_shared<const storage::FaultPlan>(
        storage::FaultPlan::transient(0x5EED, 0.05)));

    ProviderIndex victim = 0;
    for (ProviderIndex p = 1; p < fleet.size(); ++p) {
      if (shards_on(live.metadata(), p) >
          shards_on(live.metadata(), victim)) {
        victim = p;
      }
    }
    Migrator::Config mconfig;
    mconfig.stripes_per_sec = 75.0;
    mconfig.max_in_flight = 2;
    Migrator migrator(live, mconfig);
    migrator.start(MigrationKind::kDrain, victim);
    while (migrator.progress().running) {
      Result<Bytes> back = live.get_file("bench", "pw", "hot");
      ++avail.reads;
      if (!back.ok() || back.value() != data) ++avail.failures;
    }
    Result<Migrator::Report> report = migrator.wait();
    bool committed = report.ok() && report.value().committed;
    for (int pass = 0; pass < 5 && !committed; ++pass) {
      report = migrator.run(MigrationKind::kDrain, victim);
      committed = report.ok() && report.value().committed;
    }
    avail.drained = committed && shards_on(live.metadata(), victim) == 0;
    Result<Bytes> final_read = live.get_file("bench", "pw", "hot");
    if (!final_read.ok() || final_read.value() != data) ++avail.failures;
    ++avail.reads;
  }
  std::cout << "availability: " << avail.reads << " reads during drain, "
            << avail.failures << " failures -> "
            << (avail.pass() ? "PASS" : "FAIL") << "\n";

  emit_json(out_path, join_gate, drain_gate, avail);
  const bool all = join_gate.pass() && drain_gate.pass() && avail.pass();
  std::cout << "gate: " << (all ? "PASS" : "FAIL") << " -> " << out_path
            << "\n";
  return all ? 0 : 1;
}

#include "raid/raid.hpp"

#include <algorithm>

#include "crypto/gf256.hpp"
#include "obs/telemetry.hpp"
#include "util/sim_clock.hpp"

namespace cshield::raid {
namespace {

/// Splits data into k zero-padded shards of equal size.
std::vector<Bytes> split_data(BytesView data, std::size_t k) {
  const std::size_t shard_size = (data.size() + k - 1) / k;
  std::vector<Bytes> shards(k);
  for (std::size_t i = 0; i < k; ++i) {
    Bytes shard(shard_size, 0);
    const std::size_t begin = i * shard_size;
    if (begin < data.size()) {
      const std::size_t n = std::min(shard_size, data.size() - begin);
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(begin), n,
                  shard.begin());
    }
    shards[i] = std::move(shard);
  }
  return shards;
}

/// Concatenates data shards and trims to the original length.
Bytes join_data(const std::vector<Bytes>& data_shards,
                std::size_t original_size) {
  Bytes out;
  out.reserve(original_size);
  for (const auto& s : data_shards) {
    append(out, s);
    if (out.size() >= original_size) break;
  }
  out.resize(original_size);
  return out;
}

/// XOR parity over the given shards.
Bytes xor_parity(const std::vector<Bytes>& shards) {
  CS_REQUIRE(!shards.empty(), "xor_parity over empty shard set");
  Bytes p(shards[0].size(), 0);
  for (const auto& s : shards) xor_into(p, s);
  return p;
}

/// RAID-6 Q parity: Q = sum over i of g^i * d_i with g = 0x02.
Bytes q_parity(const std::vector<Bytes>& data_shards) {
  CS_REQUIRE(!data_shards.empty(), "q_parity over empty shard set");
  Bytes q(data_shards[0].size(), 0);
  for (std::size_t i = 0; i < data_shards.size(); ++i) {
    gf256::mul_add(gf256::exp(static_cast<unsigned>(i)),
                   data_shards[i].data(), q.data(), q.size());
  }
  return q;
}

std::size_t count_missing(const std::vector<std::optional<Bytes>>& shards,
                          std::size_t begin, std::size_t end) {
  std::size_t missing = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (!shards[i].has_value()) ++missing;
  }
  return missing;
}

Result<Bytes> decode_raid6(const StripeLayout& layout,
                           const std::vector<std::optional<Bytes>>& shards,
                           std::size_t original_size) {
  const std::size_t k = layout.data_shards;
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < k; ++i) {
    if (!shards[i].has_value()) missing.push_back(i);
  }
  const bool have_p = shards[k].has_value();
  const bool have_q = shards[k + 1].has_value();

  // Shard size from any survivor.
  std::size_t shard_size = 0;
  for (const auto& s : shards) {
    if (s.has_value()) {
      shard_size = s->size();
      break;
    }
  }

  std::vector<Bytes> data(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (shards[i].has_value()) data[i] = *shards[i];
  }

  if (missing.empty()) {
    return join_data(data, original_size);
  }
  if (missing.size() == 1) {
    const std::size_t x = missing[0];
    if (have_p) {
      // d_x = P xor (sum of surviving data shards).
      Bytes dx = *shards[k];
      for (std::size_t i = 0; i < k; ++i) {
        if (i != x) xor_into(dx, data[i]);
      }
      data[x] = std::move(dx);
      return join_data(data, original_size);
    }
    if (have_q) {
      // d_x = (Q xor sum g^i d_i) / g^x.
      Bytes acc = *shards[k + 1];
      Bytes partial(shard_size, 0);
      for (std::size_t i = 0; i < k; ++i) {
        if (i != x) {
          gf256::mul_add(gf256::exp(static_cast<unsigned>(i)), data[i].data(),
                         partial.data(), partial.size());
        }
      }
      xor_into(acc, partial);
      const std::uint8_t gx_inv = gf256::inv(gf256::exp(static_cast<unsigned>(x)));
      Bytes dx(shard_size, 0);
      gf256::mul_add(gx_inv, acc.data(), dx.data(), dx.size());
      data[x] = std::move(dx);
      return join_data(data, original_size);
    }
    return Status::ResourceExhausted(
        "raid6: one data shard and both parities lost");
  }
  if (missing.size() == 2 && have_p && have_q) {
    const std::size_t x = missing[0];
    const std::size_t y = missing[1];
    // A = d_x xor d_y, B = g^x d_x xor g^y d_y.
    Bytes a = *shards[k];
    Bytes b = *shards[k + 1];
    Bytes partial_q(shard_size, 0);
    for (std::size_t i = 0; i < k; ++i) {
      if (i != x && i != y) {
        xor_into(a, data[i]);
        gf256::mul_add(gf256::exp(static_cast<unsigned>(i)), data[i].data(),
                       partial_q.data(), partial_q.size());
      }
    }
    xor_into(b, partial_q);
    const std::uint8_t gx = gf256::exp(static_cast<unsigned>(x));
    const std::uint8_t gy = gf256::exp(static_cast<unsigned>(y));
    const std::uint8_t denom_inv = gf256::inv(gf256::add(gx, gy));
    // d_y = (B xor g^x * A) / (g^x xor g^y); d_x = A xor d_y.
    Bytes dy(shard_size, 0);
    gf256::mul_add(gx, a.data(), dy.data(), dy.size());
    xor_into(dy, b);  // dy now holds B xor g^x*A
    Bytes dy_final(shard_size, 0);
    gf256::mul_add(denom_inv, dy.data(), dy_final.data(), dy_final.size());
    Bytes dx = a;
    xor_into(dx, dy_final);
    data[x] = std::move(dx);
    data[y] = std::move(dy_final);
    return join_data(data, original_size);
  }
  return Status::ResourceExhausted("raid6: more erasures than tolerated (" +
                                   std::to_string(missing.size()) +
                                   " data shards missing, P " +
                                   (have_p ? "ok" : "lost") + ", Q " +
                                   (have_q ? "ok" : "lost") + ")");
}

}  // namespace

StripeLayout StripeLayout::make(RaidLevel level, std::size_t k,
                                std::size_t redundancy) {
  StripeLayout layout;
  layout.level = level;
  switch (level) {
    case RaidLevel::kNone:
      layout.data_shards = 1;
      layout.parity_shards = 0;
      break;
    case RaidLevel::kRaid0:
      CS_REQUIRE(k >= 1, "raid0 needs k >= 1");
      layout.data_shards = k;
      layout.parity_shards = 0;
      break;
    case RaidLevel::kRaid1:
      CS_REQUIRE(redundancy >= 1, "raid1 needs at least one extra copy");
      layout.data_shards = 1;
      layout.parity_shards = redundancy;
      break;
    case RaidLevel::kRaid5:
      CS_REQUIRE(k >= 2, "raid5 needs k >= 2");
      layout.data_shards = k;
      layout.parity_shards = 1;
      break;
    case RaidLevel::kRaid6:
      CS_REQUIRE(k >= 2, "raid6 needs k >= 2");
      CS_REQUIRE(k <= 255, "raid6 supports at most 255 data shards");
      layout.data_shards = k;
      layout.parity_shards = 2;
      break;
  }
  return layout;
}

namespace {

/// Records `ns` into the process-global registry when telemetry is on.
/// Histogram handles are cached once (the global registry never dies), so
/// the enabled-path cost is one atomic load plus the observe itself.
void observe_kernel(obs::Histogram* h, std::int64_t ns) {
  h->observe(static_cast<double>(ns));
}

[[nodiscard]] bool telemetry_on() {
  return obs::Telemetry::global()->enabled();
}

obs::Histogram& kernel_histogram(const char* name) {
  return obs::Telemetry::global()->metrics().histogram(name);
}

}  // namespace

static EncodedStripe encode_impl(const StripeLayout& layout, BytesView data) {
  EncodedStripe out;
  out.original_size = data.size();
  switch (layout.level) {
    case RaidLevel::kNone: {
      out.shards.emplace_back(data.begin(), data.end());
      break;
    }
    case RaidLevel::kRaid0: {
      out.shards = split_data(data, layout.data_shards);
      break;
    }
    case RaidLevel::kRaid1: {
      for (std::size_t i = 0; i < layout.total_shards(); ++i) {
        out.shards.emplace_back(data.begin(), data.end());
      }
      break;
    }
    case RaidLevel::kRaid5: {
      out.shards = split_data(data, layout.data_shards);
      out.shards.push_back(xor_parity(out.shards));
      break;
    }
    case RaidLevel::kRaid6: {
      out.shards = split_data(data, layout.data_shards);
      Bytes p = xor_parity(out.shards);
      Bytes q = q_parity(out.shards);
      out.shards.push_back(std::move(p));
      out.shards.push_back(std::move(q));
      break;
    }
  }
  return out;
}

static Result<Bytes> decode_impl(const StripeLayout& layout,
                                 const std::vector<std::optional<Bytes>>& shards,
                                 std::size_t original_size) {
  CS_REQUIRE(shards.size() == layout.total_shards(),
             "decode: shard vector arity mismatch");
  switch (layout.level) {
    case RaidLevel::kNone: {
      if (!shards[0].has_value()) {
        return Status::ResourceExhausted("single copy lost");
      }
      Bytes out = *shards[0];
      out.resize(original_size);
      return out;
    }
    case RaidLevel::kRaid0: {
      if (count_missing(shards, 0, layout.data_shards) > 0) {
        return Status::ResourceExhausted("raid0 tolerates no erasures");
      }
      std::vector<Bytes> data;
      data.reserve(layout.data_shards);
      for (std::size_t i = 0; i < layout.data_shards; ++i) {
        data.push_back(*shards[i]);
      }
      return join_data(data, original_size);
    }
    case RaidLevel::kRaid1: {
      for (const auto& s : shards) {
        if (s.has_value()) {
          Bytes out = *s;
          out.resize(original_size);
          return out;
        }
      }
      return Status::ResourceExhausted("raid1: all replicas lost");
    }
    case RaidLevel::kRaid5: {
      const std::size_t k = layout.data_shards;
      const std::size_t data_missing = count_missing(shards, 0, k);
      if (data_missing == 0) {
        std::vector<Bytes> data;
        data.reserve(k);
        for (std::size_t i = 0; i < k; ++i) data.push_back(*shards[i]);
        return join_data(data, original_size);
      }
      if (data_missing == 1 && shards[k].has_value()) {
        std::vector<Bytes> data(k);
        std::size_t x = 0;
        Bytes dx = *shards[k];
        for (std::size_t i = 0; i < k; ++i) {
          if (shards[i].has_value()) {
            data[i] = *shards[i];
            xor_into(dx, data[i]);
          } else {
            x = i;
          }
        }
        data[x] = std::move(dx);
        return join_data(data, original_size);
      }
      return Status::ResourceExhausted("raid5: more erasures than tolerated");
    }
    case RaidLevel::kRaid6:
      return decode_raid6(layout, shards, original_size);
  }
  return Status::Internal("decode: invalid raid level");
}

static Result<Bytes> reconstruct_shard_impl(
    const StripeLayout& layout, const std::vector<std::optional<Bytes>>& shards,
    std::size_t target) {
  CS_REQUIRE(shards.size() == layout.total_shards(),
             "reconstruct_shard: shard vector arity mismatch");
  CS_REQUIRE(target < shards.size(), "reconstruct_shard: target out of range");
  // Shard size from any survivor; the padded payload length is
  // shard_size * k, so decoding at that length preserves padding bytes and
  // re-encoding reproduces every shard bit-exactly.
  std::size_t shard_size = 0;
  bool found = false;
  for (const auto& s : shards) {
    if (s.has_value()) {
      shard_size = s->size();
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::ResourceExhausted("reconstruct_shard: no survivors");
  }
  const std::size_t padded =
      layout.level == RaidLevel::kRaid1 ? shard_size
                                        : shard_size * layout.data_shards;
  Result<Bytes> payload = decode_impl(layout, shards, padded);
  if (!payload.ok()) return payload.status();
  EncodedStripe re = encode_impl(layout, payload.value());
  return std::move(re.shards[target]);
}

// Public entry points: the erasure-code kernels run hot inside the
// distributor's compute pool, so each records its wall time into the
// global telemetry (raid.encode_ns / raid.decode_ns / raid.reconstruct_ns)
// when enabled, and costs a single relaxed load when not.

EncodedStripe encode(const StripeLayout& layout, BytesView data) {
  if (!telemetry_on()) return encode_impl(layout, data);
  static obs::Histogram& h = kernel_histogram("raid.encode_ns");
  Stopwatch w;
  EncodedStripe out = encode_impl(layout, data);
  observe_kernel(&h, w.elapsed_ns());
  return out;
}

Result<Bytes> decode(const StripeLayout& layout,
                     const std::vector<std::optional<Bytes>>& shards,
                     std::size_t original_size) {
  if (!telemetry_on()) return decode_impl(layout, shards, original_size);
  static obs::Histogram& h = kernel_histogram("raid.decode_ns");
  Stopwatch w;
  Result<Bytes> out = decode_impl(layout, shards, original_size);
  observe_kernel(&h, w.elapsed_ns());
  return out;
}

Result<Bytes> reconstruct_shard(const StripeLayout& layout,
                                const std::vector<std::optional<Bytes>>& shards,
                                std::size_t target) {
  if (!telemetry_on()) return reconstruct_shard_impl(layout, shards, target);
  static obs::Histogram& h = kernel_histogram("raid.reconstruct_ns");
  Stopwatch w;
  Result<Bytes> out = reconstruct_shard_impl(layout, shards, target);
  observe_kernel(&h, w.elapsed_ns());
  return out;
}

}  // namespace cshield::raid

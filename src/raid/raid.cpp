#include "raid/raid.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/gf256.hpp"
#include "crypto/gf256_kernels.hpp"
#include "obs/telemetry.hpp"
#include "util/sim_clock.hpp"

namespace cshield::raid {
namespace {

namespace kern = gf256::kernels;

/// Copies shard content `s` into slot `i` of the decoded payload, trimming
/// at the payload end (the last data shard carries the zero padding).
void place_shard(Bytes& out, std::size_t i, std::size_t shard_size,
                 const std::uint8_t* s) {
  const std::size_t begin = i * shard_size;
  if (begin >= out.size()) return;
  const std::size_t n = std::min(shard_size, out.size() - begin);
  if (n != 0) std::memcpy(out.data() + begin, s, n);
}

std::size_t count_missing(const std::vector<std::optional<Bytes>>& shards,
                          std::size_t begin, std::size_t end) {
  std::size_t missing = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (!shards[i].has_value()) ++missing;
  }
  return missing;
}

/// Shard width from any survivor; nullopt when everything is lost.
std::optional<std::size_t> survivor_shard_size(
    const std::vector<std::optional<Bytes>>& shards) {
  for (const auto& s : shards) {
    if (s.has_value()) return s->size();
  }
  return std::nullopt;
}

/// All present shards must be exactly `shard_size` wide; a short read is
/// provider-side corruption, surfaced as a Status rather than decoded into
/// garbage (the kernels index by shard_size, not per-shard lengths).
Status check_shard_sizes(const std::vector<std::optional<Bytes>>& shards,
                         std::size_t shard_size) {
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].has_value() && shards[i]->size() != shard_size) {
      return Status::Internal("raid: shard " + std::to_string(i) + " is " +
                              std::to_string(shards[i]->size()) +
                              " bytes, stripe width " +
                              std::to_string(shard_size));
    }
  }
  return Status::Ok();
}

Result<Bytes> decode_raid6(const StripeLayout& layout,
                           const std::vector<std::optional<Bytes>>& shards,
                           std::size_t original_size, std::size_t shard_size) {
  const std::size_t k = layout.data_shards;
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < k; ++i) {
    if (!shards[i].has_value()) missing.push_back(i);
  }
  const bool have_p = shards[k].has_value();
  const bool have_q = shards[k + 1].has_value();

  Bytes out(original_size);
  auto place_survivors = [&](std::size_t skip_a, std::size_t skip_b) {
    for (std::size_t i = 0; i < k; ++i) {
      if (i == skip_a || i == skip_b) continue;
      place_shard(out, i, shard_size, shards[i]->data());
    }
  };

  if (missing.empty()) {
    place_survivors(k, k);
    return out;
  }
  if (missing.size() == 1) {
    const std::size_t x = missing[0];
    place_survivors(x, x);
    if (have_p) {
      // d_x = P xor (sum of surviving data shards).
      Bytes dx = *shards[k];
      for (std::size_t i = 0; i < k; ++i) {
        if (i != x) kern::xor_into(dx.data(), shards[i]->data(), shard_size);
      }
      place_shard(out, x, shard_size, dx.data());
      return out;
    }
    if (have_q) {
      // d_x = (Q xor sum g^i d_i) / g^x; the per-shard coefficient g^i is
      // iterated with one table-free mul_g step instead of exp(i) per shard.
      Bytes acc = *shards[k + 1];
      std::uint8_t coeff = 1;
      for (std::size_t i = 0; i < k; ++i) {
        if (i != x) {
          kern::mul_add(coeff, shards[i]->data(), acc.data(), shard_size);
        }
        coeff = gf256::mul_g(coeff);
      }
      const std::uint8_t gx_inv =
          gf256::inv(gf256::exp(static_cast<unsigned>(x)));
      Bytes dx(shard_size, 0);
      kern::mul_add(gx_inv, acc.data(), dx.data(), shard_size);
      place_shard(out, x, shard_size, dx.data());
      return out;
    }
    return Status::ResourceExhausted(
        "raid6: one data shard and both parities lost");
  }
  if (missing.size() == 2 && have_p && have_q) {
    const std::size_t x = missing[0];
    const std::size_t y = missing[1];
    place_survivors(x, y);
    // A = d_x xor d_y, B = g^x d_x xor g^y d_y.
    Bytes a = *shards[k];
    Bytes b = *shards[k + 1];
    std::uint8_t coeff = 1;
    for (std::size_t i = 0; i < k; ++i) {
      if (i != x && i != y) {
        kern::xor_into(a.data(), shards[i]->data(), shard_size);
        kern::mul_add(coeff, shards[i]->data(), b.data(), shard_size);
      }
      coeff = gf256::mul_g(coeff);
    }
    const std::uint8_t gx = gf256::exp(static_cast<unsigned>(x));
    const std::uint8_t gy = gf256::exp(static_cast<unsigned>(y));
    const std::uint8_t denom_inv = gf256::inv(gf256::add(gx, gy));
    // d_y = (B xor g^x * A) / (g^x xor g^y); d_x = A xor d_y.
    Bytes tmp(shard_size, 0);
    kern::mul_add(gx, a.data(), tmp.data(), shard_size);
    kern::xor_into(tmp.data(), b.data(), shard_size);
    Bytes dy(shard_size, 0);
    kern::mul_add(denom_inv, tmp.data(), dy.data(), shard_size);
    kern::xor_into(a.data(), dy.data(), shard_size);  // a is now d_x
    place_shard(out, x, shard_size, a.data());
    place_shard(out, y, shard_size, dy.data());
    return out;
  }
  return Status::ResourceExhausted("raid6: more erasures than tolerated (" +
                                   std::to_string(missing.size()) +
                                   " data shards missing, P " +
                                   (have_p ? "ok" : "lost") + ", Q " +
                                   (have_q ? "ok" : "lost") + ")");
}

}  // namespace

StripeLayout StripeLayout::make(RaidLevel level, std::size_t k,
                                std::size_t redundancy) {
  StripeLayout layout;
  layout.level = level;
  switch (level) {
    case RaidLevel::kNone:
      layout.data_shards = 1;
      layout.parity_shards = 0;
      break;
    case RaidLevel::kRaid0:
      CS_REQUIRE(k >= 1, "raid0 needs k >= 1");
      layout.data_shards = k;
      layout.parity_shards = 0;
      break;
    case RaidLevel::kRaid1:
      CS_REQUIRE(redundancy >= 1, "raid1 needs at least one extra copy");
      layout.data_shards = 1;
      layout.parity_shards = redundancy;
      break;
    case RaidLevel::kRaid5:
      CS_REQUIRE(k >= 2, "raid5 needs k >= 2");
      layout.data_shards = k;
      layout.parity_shards = 1;
      break;
    case RaidLevel::kRaid6:
      CS_REQUIRE(k >= 2, "raid6 needs k >= 2");
      CS_REQUIRE(k <= 255, "raid6 supports at most 255 data shards");
      layout.data_shards = k;
      layout.parity_shards = 2;
      break;
  }
  return layout;
}

namespace {

/// Records `ns` into the process-global registry when telemetry is on.
/// Histogram handles are cached once (the global registry never dies), so
/// the enabled-path cost is one atomic load plus the observe itself.
void observe_kernel(obs::Histogram* h, std::int64_t ns) {
  h->observe(static_cast<double>(ns));
}

[[nodiscard]] bool telemetry_on() {
  return obs::Telemetry::global()->enabled();
}

obs::Histogram& kernel_histogram(const char* name) {
  return obs::Telemetry::global()->metrics().histogram(name);
}

}  // namespace

static EncodedStripe encode_impl(const StripeLayout& layout, BytesView data) {
  EncodedStripe out;
  out.original_size = data.size();
  out.shard_count = layout.total_shards();
  switch (layout.level) {
    case RaidLevel::kNone: {
      out.shard_size = data.size();
      out.arena.assign(data.begin(), data.end());
      break;
    }
    case RaidLevel::kRaid1: {
      out.shard_size = data.size();
      out.arena.resize(out.shard_size * out.shard_count);
      for (std::size_t i = 0; i < out.shard_count && !data.empty(); ++i) {
        std::memcpy(out.arena.data() + i * out.shard_size, data.data(),
                    data.size());
      }
      break;
    }
    case RaidLevel::kRaid0:
    case RaidLevel::kRaid5:
    case RaidLevel::kRaid6: {
      // Data shards are consecutive slices of the payload, so striping is a
      // single bulk copy into the zeroed arena; parity is computed in place
      // over the arena slices.
      const std::size_t k = layout.data_shards;
      out.shard_size = (data.size() + k - 1) / k;
      out.arena.assign(out.shard_size * out.shard_count, 0);
      if (!data.empty()) {
        std::memcpy(out.arena.data(), data.data(), data.size());
      }
      if (layout.level != RaidLevel::kRaid0) {
        std::uint8_t* p = out.arena.data() + k * out.shard_size;
        for (std::size_t i = 0; i < k; ++i) {
          kern::xor_into(p, out.arena.data() + i * out.shard_size,
                         out.shard_size);
        }
      }
      if (layout.level == RaidLevel::kRaid6) {
        // Q = sum g^i d_i; the coefficient row is iterated with mul_g
        // (one shift+fold) instead of a mod-255 exp() lookup per shard.
        std::uint8_t* q = out.arena.data() + (k + 1) * out.shard_size;
        std::uint8_t coeff = 1;
        for (std::size_t i = 0; i < k; ++i) {
          kern::mul_add(coeff, out.arena.data() + i * out.shard_size, q,
                        out.shard_size);
          coeff = gf256::mul_g(coeff);
        }
      }
      break;
    }
  }
  return out;
}

static Result<Bytes> decode_impl(const StripeLayout& layout,
                                 const std::vector<std::optional<Bytes>>& shards,
                                 std::size_t original_size) {
  CS_REQUIRE(shards.size() == layout.total_shards(),
             "decode: shard vector arity mismatch");
  const std::optional<std::size_t> width = survivor_shard_size(shards);
  if (width.has_value()) {
    CS_RETURN_IF_ERROR(check_shard_sizes(shards, *width));
  }
  const std::size_t shard_size = width.value_or(0);
  switch (layout.level) {
    case RaidLevel::kNone: {
      if (!shards[0].has_value()) {
        return Status::ResourceExhausted("single copy lost");
      }
      Bytes out = *shards[0];
      out.resize(original_size);
      return out;
    }
    case RaidLevel::kRaid0: {
      if (count_missing(shards, 0, layout.data_shards) > 0) {
        return Status::ResourceExhausted("raid0 tolerates no erasures");
      }
      Bytes out(original_size);
      for (std::size_t i = 0; i < layout.data_shards; ++i) {
        place_shard(out, i, shard_size, shards[i]->data());
      }
      return out;
    }
    case RaidLevel::kRaid1: {
      for (const auto& s : shards) {
        if (s.has_value()) {
          Bytes out = *s;
          out.resize(original_size);
          return out;
        }
      }
      return Status::ResourceExhausted("raid1: all replicas lost");
    }
    case RaidLevel::kRaid5: {
      const std::size_t k = layout.data_shards;
      const std::size_t data_missing = count_missing(shards, 0, k);
      if (data_missing == 0) {
        Bytes out(original_size);
        for (std::size_t i = 0; i < k; ++i) {
          place_shard(out, i, shard_size, shards[i]->data());
        }
        return out;
      }
      if (data_missing == 1 && shards[k].has_value()) {
        Bytes out(original_size);
        std::size_t x = 0;
        Bytes dx = *shards[k];
        for (std::size_t i = 0; i < k; ++i) {
          if (shards[i].has_value()) {
            kern::xor_into(dx.data(), shards[i]->data(), shard_size);
            place_shard(out, i, shard_size, shards[i]->data());
          } else {
            x = i;
          }
        }
        place_shard(out, x, shard_size, dx.data());
        return out;
      }
      return Status::ResourceExhausted("raid5: more erasures than tolerated");
    }
    case RaidLevel::kRaid6:
      return decode_raid6(layout, shards, original_size, shard_size);
  }
  return Status::Internal("decode: invalid raid level");
}

// Targeted shard rebuild: recompute exactly the erased shard from the
// survivors instead of decoding the whole stripe and re-encoding every
// parity (the old path paid a full decode + full encode per repaired
// shard). P comes from one XOR sweep of the surviving data, Q from one
// mul_add sweep, and an erased data shard from the applicable single- or
// double-erasure solve -- O(k * shard_size) kernel bytes, and never the
// re-encode of the parity that was not asked for. Results are bit-identical
// to the old path (raid_test sweeps every target under both dispatch arms).
static Result<Bytes> reconstruct_shard_impl(
    const StripeLayout& layout, const std::vector<std::optional<Bytes>>& shards,
    std::size_t target) {
  CS_REQUIRE(shards.size() == layout.total_shards(),
             "reconstruct_shard: shard vector arity mismatch");
  CS_REQUIRE(target < shards.size(), "reconstruct_shard: target out of range");
  const std::optional<std::size_t> width = survivor_shard_size(shards);
  if (!width.has_value()) {
    return Status::ResourceExhausted("reconstruct_shard: no survivors");
  }
  const std::size_t shard_size = *width;
  CS_RETURN_IF_ERROR(check_shard_sizes(shards, shard_size));
  // The target still being present makes the rebuild a copy.
  if (shards[target].has_value()) return *shards[target];

  const std::size_t k = layout.data_shards;
  switch (layout.level) {
    case RaidLevel::kNone:
    case RaidLevel::kRaid0:
      return Status::ResourceExhausted(
          std::string(raid_level_name(layout.level)) +
          ": lost shard is unrecoverable (no redundancy)");
    case RaidLevel::kRaid1: {
      for (const auto& s : shards) {
        if (s.has_value()) return *s;
      }
      return Status::ResourceExhausted("raid1: all replicas lost");
    }
    case RaidLevel::kRaid5: {
      // Every shard (data or P) is the XOR of the other k survivors.
      for (std::size_t i = 0; i <= k; ++i) {
        if (i != target && !shards[i].has_value()) {
          return Status::ResourceExhausted(
              "raid5: more erasures than tolerated");
        }
      }
      Bytes out(shard_size, 0);
      for (std::size_t i = 0; i <= k; ++i) {
        if (i != target) {
          kern::xor_into(out.data(), shards[i]->data(), shard_size);
        }
      }
      return out;
    }
    case RaidLevel::kRaid6:
      break;  // handled below
  }

  // RAID-6. Gather the erased data indices besides a possible data target.
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < k; ++i) {
    if (i != target && !shards[i].has_value()) missing.push_back(i);
  }
  const bool have_p = shards[k].has_value();
  const bool have_q = shards[k + 1].has_value();

  // Solves one erased data shard `x` from Q and the other data shards
  // (which must all be present): d_x = (Q xor sum g^i d_i) / g^x.
  auto solve_via_q = [&](std::size_t x) {
    Bytes acc = *shards[k + 1];
    std::uint8_t coeff = 1;
    for (std::size_t i = 0; i < k; ++i) {
      if (i != x) kern::mul_add(coeff, shards[i]->data(), acc.data(), shard_size);
      coeff = gf256::mul_g(coeff);
    }
    Bytes dx(shard_size, 0);
    kern::mul_add(gf256::inv(gf256::exp(static_cast<unsigned>(x))), acc.data(),
                  dx.data(), shard_size);
    return dx;
  };
  // Solves one erased data shard `x` from P: d_x = P xor sum d_i.
  auto solve_via_p = [&](std::size_t x) {
    Bytes dx = *shards[k];
    for (std::size_t i = 0; i < k; ++i) {
      if (i != x) kern::xor_into(dx.data(), shards[i]->data(), shard_size);
    }
    return dx;
  };
  // XOR of the data row with one shard substituted (nullptr = none).
  auto p_over_data = [&](std::size_t sub, const Bytes* dsub) {
    Bytes p(shard_size, 0);
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint8_t* d = i == sub ? dsub->data() : shards[i]->data();
      kern::xor_into(p.data(), d, shard_size);
    }
    return p;
  };
  // Q sweep of the data row with one shard substituted.
  auto q_over_data = [&](std::size_t sub, const Bytes* dsub) {
    Bytes q(shard_size, 0);
    std::uint8_t coeff = 1;
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint8_t* d = i == sub ? dsub->data() : shards[i]->data();
      kern::mul_add(coeff, d, q.data(), shard_size);
      coeff = gf256::mul_g(coeff);
    }
    return q;
  };
  const auto unrecoverable = [&] {
    return Status::ResourceExhausted(
        "raid6: more erasures than tolerated (" +
        std::to_string(missing.size() + (target < k ? 1 : 0)) +
        " data shards missing, P " + (have_p ? "ok" : "lost") + ", Q " +
        (have_q ? "ok" : "lost") + ")");
  };

  if (target < k) {
    if (missing.empty()) {
      if (have_p) return solve_via_p(target);
      if (have_q) return solve_via_q(target);
      return unrecoverable();
    }
    if (missing.size() == 1 && have_p && have_q) {
      // Double-erasure solve for (target, y):
      //   A = P xor sum d_i = d_t xor d_y
      //   B = Q xor sum g^i d_i = g^t d_t xor g^y d_y
      //   d_y = (B xor g^t A) / (g^t xor g^y),  d_t = A xor d_y.
      const std::size_t y = missing[0];
      Bytes a = *shards[k];
      Bytes b = *shards[k + 1];
      std::uint8_t coeff = 1;
      for (std::size_t i = 0; i < k; ++i) {
        if (i != target && i != y) {
          kern::xor_into(a.data(), shards[i]->data(), shard_size);
          kern::mul_add(coeff, shards[i]->data(), b.data(), shard_size);
        }
        coeff = gf256::mul_g(coeff);
      }
      const std::uint8_t gt = gf256::exp(static_cast<unsigned>(target));
      const std::uint8_t gy = gf256::exp(static_cast<unsigned>(y));
      Bytes tmp(shard_size, 0);
      kern::mul_add(gt, a.data(), tmp.data(), shard_size);
      kern::xor_into(tmp.data(), b.data(), shard_size);
      Bytes dy(shard_size, 0);
      kern::mul_add(gf256::inv(gf256::add(gt, gy)), tmp.data(), dy.data(),
                    shard_size);
      kern::xor_into(a.data(), dy.data(), shard_size);  // a is now d_target
      return a;
    }
    return unrecoverable();
  }
  if (target == k) {  // P: XOR sweep over the data row.
    if (missing.empty()) return p_over_data(k, nullptr);
    if (missing.size() == 1 && have_q) {
      const Bytes dm = solve_via_q(missing[0]);
      return p_over_data(missing[0], &dm);
    }
    return unrecoverable();
  }
  // Q: single mul_add sweep over the data row.
  if (missing.empty()) return q_over_data(k, nullptr);
  if (missing.size() == 1 && have_p) {
    const Bytes dm = solve_via_p(missing[0]);
    return q_over_data(missing[0], &dm);
  }
  return unrecoverable();
}

// Public entry points: the erasure-code kernels run hot inside the
// distributor's compute pool, so each records its wall time into the
// global telemetry (raid.encode_ns / raid.decode_ns / raid.reconstruct_ns)
// when enabled, and costs a single relaxed load when not.

EncodedStripe encode(const StripeLayout& layout, BytesView data) {
  if (!telemetry_on()) return encode_impl(layout, data);
  static obs::Histogram& h = kernel_histogram("raid.encode_ns");
  Stopwatch w;
  EncodedStripe out = encode_impl(layout, data);
  observe_kernel(&h, w.elapsed_ns());
  return out;
}

Result<Bytes> decode(const StripeLayout& layout,
                     const std::vector<std::optional<Bytes>>& shards,
                     std::size_t original_size) {
  if (!telemetry_on()) return decode_impl(layout, shards, original_size);
  static obs::Histogram& h = kernel_histogram("raid.decode_ns");
  Stopwatch w;
  Result<Bytes> out = decode_impl(layout, shards, original_size);
  observe_kernel(&h, w.elapsed_ns());
  return out;
}

Result<Bytes> reconstruct_shard(const StripeLayout& layout,
                                const std::vector<std::optional<Bytes>>& shards,
                                std::size_t target) {
  if (!telemetry_on()) return reconstruct_shard_impl(layout, shards, target);
  static obs::Histogram& h = kernel_histogram("raid.reconstruct_ns");
  Stopwatch w;
  Result<Bytes> out = reconstruct_shard_impl(layout, shards, target);
  observe_kernel(&h, w.elapsed_ns());
  return out;
}

}  // namespace cshield::raid

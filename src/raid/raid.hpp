// RAID-style striping across cloud providers (SIII-B, SIV-A).
//
// The paper places chunks with "Redundant Array of Independent Disks (RAID)
// strategy ... The default choice is RAID level 5. In case of higher
// assurance, RAID level 6 is used", treating each cloud provider as one
// disk (after RACS). This module implements the byte-level codes:
//
//   kNone   -- single copy (the paper's baseline single-provider world)
//   kRaid0  -- striping only, no redundancy (pure distribution)
//   kRaid1  -- full replication, `parity_shards` extra copies
//   kRaid5  -- k data shards + 1 XOR parity; survives any 1 erasure
//   kRaid6  -- k data shards + P,Q Reed-Solomon parity over GF(2^8);
//              survives any 2 erasures
//
// A chunk payload is encoded into `total_shards()` equal-size shards, one
// per provider; decode() rebuilds the payload from any sufficient subset.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace cshield::raid {

enum class RaidLevel { kNone, kRaid0, kRaid1, kRaid5, kRaid6 };

[[nodiscard]] constexpr std::string_view raid_level_name(RaidLevel l) {
  switch (l) {
    case RaidLevel::kNone: return "none";
    case RaidLevel::kRaid0: return "raid0";
    case RaidLevel::kRaid1: return "raid1";
    case RaidLevel::kRaid5: return "raid5";
    case RaidLevel::kRaid6: return "raid6";
  }
  return "invalid";
}

/// Shape of a stripe: how many data and parity shards.
struct StripeLayout {
  RaidLevel level = RaidLevel::kRaid5;
  std::size_t data_shards = 4;    ///< k (for kRaid1: always 1 logical copy)
  std::size_t parity_shards = 1;  ///< derived from level except kRaid1

  /// Canonical layout for a level with `k` data shards. For kRaid1,
  /// `redundancy` is the number of *extra* replicas.
  [[nodiscard]] static StripeLayout make(RaidLevel level, std::size_t k,
                                         std::size_t redundancy = 1);

  [[nodiscard]] std::size_t total_shards() const {
    return data_shards + parity_shards;
  }

  /// Storage blow-up factor relative to the raw payload.
  [[nodiscard]] double overhead_factor() const {
    if (level == RaidLevel::kRaid1) {
      return static_cast<double>(1 + parity_shards);
    }
    return static_cast<double>(total_shards()) /
           static_cast<double>(data_shards);
  }

  /// Max erasures decode() tolerates.
  [[nodiscard]] std::size_t fault_tolerance() const {
    switch (level) {
      case RaidLevel::kNone:
      case RaidLevel::kRaid0: return 0;
      case RaidLevel::kRaid1: return parity_shards;
      case RaidLevel::kRaid5: return 1;
      case RaidLevel::kRaid6: return 2;
    }
    return 0;
  }
};

/// Result of encoding one payload. Shards live back-to-back in a single
/// contiguous arena (`shard_count` slices of `shard_size` bytes); `shard(i)`
/// hands out zero-copy views over it. Data shards occupy slices [0, k), the
/// parity shards follow, so encoding a payload is one bulk copy into the
/// arena plus in-place parity sweeps -- no per-shard allocations.
struct EncodedStripe {
  Bytes arena;                    ///< shard_count * shard_size bytes
  std::size_t shard_size = 0;     ///< bytes per shard
  std::size_t shard_count = 0;    ///< == layout.total_shards()
  std::size_t original_size = 0;  ///< pre-padding payload length

  /// Read-only view of shard `i` (no copy).
  [[nodiscard]] BytesView shard(std::size_t i) const {
    return BytesView(arena.data() + i * shard_size, shard_size);
  }

  /// Mutable view of shard `i` (encode internals, tests).
  [[nodiscard]] MutBytesView shard_mut(std::size_t i) {
    return MutBytesView(arena.data() + i * shard_size, shard_size);
  }

  /// Owned copy of shard `i` (callers that must outlive the stripe).
  [[nodiscard]] Bytes shard_copy(std::size_t i) const {
    const BytesView v = shard(i);
    return Bytes(v.begin(), v.end());
  }
};

/// Copies every shard of an encoded stripe into the decode-side input format
/// (nullopt marks an erasure). Tests and benches use this to build erasure
/// patterns; the hot production paths hand the arena views around instead.
[[nodiscard]] inline std::vector<std::optional<Bytes>> shard_copies(
    const EncodedStripe& stripe) {
  std::vector<std::optional<Bytes>> out(stripe.shard_count);
  for (std::size_t i = 0; i < stripe.shard_count; ++i) {
    out[i] = stripe.shard_copy(i);
  }
  return out;
}

/// Encodes `data` under the layout. Data is zero-padded to a multiple of
/// data_shards; original_size records the true length for decode.
[[nodiscard]] EncodedStripe encode(const StripeLayout& layout, BytesView data);

/// Rebuilds the payload from the available shards (nullopt = erased).
/// `shards.size()` must equal layout.total_shards(). Fails with
/// kResourceExhausted when more shards are missing than the code tolerates.
[[nodiscard]] Result<Bytes> decode(const StripeLayout& layout,
                                   const std::vector<std::optional<Bytes>>& shards,
                                   std::size_t original_size);

/// Recomputes the single shard at `target` from the surviving shards
/// (repair path after a provider outage). Fails under the same conditions
/// as decode.
[[nodiscard]] Result<Bytes> reconstruct_shard(
    const StripeLayout& layout,
    const std::vector<std::optional<Bytes>>& shards, std::size_t target);

}  // namespace cshield::raid

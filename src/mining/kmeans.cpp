#include "mining/kmeans.hpp"

#include <cmath>
#include <limits>

namespace cshield::mining {
namespace {

double sq_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

Result<KMeansResult> kmeans(const Dataset& data, std::size_t k,
                            std::size_t max_iterations, std::uint64_t seed) {
  const std::size_t n = data.num_rows();
  const std::size_t dims = data.num_cols();
  if (k == 0) return Status::InvalidArgument("kmeans: k must be >= 1");
  if (n < k) {
    return Status::InvalidArgument("kmeans: " + std::to_string(n) +
                                   " rows cannot form " + std::to_string(k) +
                                   " clusters");
  }

  Rng rng(seed);
  KMeansResult result;
  result.centroids.reserve(k);

  // k-means++ seeding: first centroid uniform, the rest proportional to the
  // squared distance from the nearest chosen centroid.
  result.centroids.push_back(data.row(rng.below(n)));
  std::vector<double> min_sq(n, std::numeric_limits<double>::infinity());
  while (result.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_sq[i] = std::min(min_sq[i],
                           sq_distance(data.row(i), result.centroids.back()));
      total += min_sq[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= min_sq[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.below(n);  // all points identical; any seed works
    }
    result.centroids.push_back(data.row(chosen));
  }

  result.labels.assign(n, -1);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_distance(data.row(i), result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (result.labels[i] != best) {
        result.labels[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed) {
      result.converged = true;
      break;
    }
    // Update step; empty clusters re-seed at the farthest point to avoid
    // collapsing k.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& row = data.row(i);
      auto& s = sums[static_cast<std::size_t>(result.labels[i])];
      for (std::size_t c = 0; c < dims; ++c) s[c] += row[c];
      ++counts[static_cast<std::size_t>(result.labels[i])];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        std::size_t farthest = 0;
        double best_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = sq_distance(
              data.row(i),
              result.centroids[static_cast<std::size_t>(result.labels[i])]);
          if (d > best_d) {
            best_d = d;
            farthest = i;
          }
        }
        result.centroids[c] = data.row(farthest);
        continue;
      }
      for (std::size_t dcol = 0; dcol < dims; ++dcol) {
        result.centroids[c][dcol] =
            sums[c][dcol] / static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia += sq_distance(
        data.row(i),
        result.centroids[static_cast<std::size_t>(result.labels[i])]);
  }
  return result;
}

}  // namespace cshield::mining

// Multiple linear regression via the normal equations.
//
// This is the paper's flagship attack (SVII-A): a malicious provider
// employee runs "multivariate analysis (linear multiple regression using
// MATLAB)" on the Hercules bidding history and recovers the bid formula
// `1.4*Materials + 1.5*Production + 3.1*Maintenance + 5436`. With the table
// split across three providers, each fragment yields a different, misleading
// equation. LinearModel reproduces both sides of that comparison.
#pragma once

#include <string>
#include <vector>

#include "mining/dataset.hpp"
#include "util/status.hpp"

namespace cshield::mining {

/// A fitted model y = intercept + sum_i coefficients[i] * x_i.
struct LinearModel {
  std::vector<double> coefficients;
  double intercept = 0.0;
  double r_squared = 0.0;
  double rmse = 0.0;
  std::size_t observations = 0;

  [[nodiscard]] double predict(const std::vector<double>& x) const {
    CS_REQUIRE(x.size() == coefficients.size(),
               "predict: feature arity mismatch");
    double y = intercept;
    for (std::size_t i = 0; i < x.size(); ++i) y += coefficients[i] * x[i];
    return y;
  }

  /// Human-readable equation, e.g. "(1.400*Materials + ... ) + 5436.0".
  [[nodiscard]] std::string equation(
      const std::vector<std::string>& feature_names) const;
};

/// Fits y (named `target`) on the named feature columns. Fails with
/// kInvalidArgument when the system is singular -- fewer observations than
/// parameters, or perfectly collinear features -- which is precisely the
/// "mining failure" outcome fragmentation aims to force.
[[nodiscard]] Result<LinearModel> fit_linear(
    const Dataset& data, const std::vector<std::string>& features,
    const std::string& target);

/// L2 distance between two coefficient vectors (plus intercept), normalized
/// by the reference norm -- the "how wrong is the attacker's equation"
/// metric used by E1/E5 benches.
[[nodiscard]] double coefficient_error(const LinearModel& reference,
                                       const LinearModel& estimate);

}  // namespace cshield::mining

#include "mining/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iomanip>
#include <limits>
#include <numeric>
#include <sstream>

namespace cshield::mining {

DistanceMatrix euclidean_distances(const Dataset& data) {
  const std::size_t n = data.num_rows();
  DistanceMatrix d(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& ri = data.row(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto& rj = data.row(j);
      double s = 0.0;
      for (std::size_t c = 0; c < ri.size(); ++c) {
        const double diff = ri[c] - rj[c];
        s += diff * diff;
      }
      d.set(i, j, std::sqrt(s));
    }
  }
  return d;
}

Dendrogram agglomerate(const DistanceMatrix& dist, Linkage linkage) {
  const std::size_t n = dist.size();
  CS_REQUIRE(n >= 1, "agglomerate: empty input");

  // Working copy of pairwise distances between *active* clusters. Cluster
  // slots reuse the matrix rows; `id[slot]` maps a slot to its dendrogram
  // cluster id, `size[slot]` its leaf count, `active[slot]` liveness.
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) d[i][j] = dist.at(i, j);
  }
  std::vector<std::size_t> id(n);
  std::iota(id.begin(), id.end(), 0);
  std::vector<std::size_t> size(n, 1);
  std::vector<bool> active(n, true);

  std::vector<Merge> merges;
  merges.reserve(n > 0 ? n - 1 : 0);

  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Closest active pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0;
    std::size_t bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }

    Merge m;
    m.a = std::min(id[bi], id[bj]);
    m.b = std::max(id[bi], id[bj]);
    m.distance = best;
    m.size = size[bi] + size[bj];
    merges.push_back(m);

    // Lance-Williams update into slot bi; slot bj dies.
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double nd = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          nd = std::min(d[bi][k], d[bj][k]);
          break;
        case Linkage::kComplete:
          nd = std::max(d[bi][k], d[bj][k]);
          break;
        case Linkage::kAverage: {
          const double wi = static_cast<double>(size[bi]);
          const double wj = static_cast<double>(size[bj]);
          nd = (wi * d[bi][k] + wj * d[bj][k]) / (wi + wj);
          break;
        }
      }
      d[bi][k] = nd;
      d[k][bi] = nd;
    }
    id[bi] = n + step;
    size[bi] = m.size;
    active[bj] = false;
  }
  return Dendrogram(n, std::move(merges));
}

Dendrogram cluster_rows(const Dataset& data, Linkage linkage) {
  return agglomerate(euclidean_distances(data), linkage);
}

std::vector<int> Dendrogram::cut(std::size_t k) const {
  CS_REQUIRE(k >= 1 && k <= num_leaves_, "cut: k outside 1..num_leaves");
  // Union-find over the first (n - k) merges.
  std::vector<std::size_t> parent(num_leaves_ + merges_.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const std::size_t merges_to_apply = num_leaves_ - k;
  for (std::size_t i = 0; i < merges_to_apply; ++i) {
    const std::size_t new_id = num_leaves_ + i;
    parent[find(merges_[i].a)] = new_id;
    parent[find(merges_[i].b)] = new_id;
  }
  std::vector<int> labels(num_leaves_, -1);
  std::vector<int> remap(num_leaves_ + merges_.size(), -1);
  int next = 0;
  for (std::size_t leaf = 0; leaf < num_leaves_; ++leaf) {
    const std::size_t root = find(leaf);
    if (remap[root] < 0) remap[root] = next++;
    labels[leaf] = remap[root];
  }
  return labels;
}

DistanceMatrix Dendrogram::cophenetic() const {
  DistanceMatrix out(num_leaves_);
  // Track the leaf membership of every cluster id as merges happen.
  std::vector<std::vector<std::size_t>> members(num_leaves_ + merges_.size());
  for (std::size_t leaf = 0; leaf < num_leaves_; ++leaf) {
    members[leaf] = {leaf};
  }
  for (std::size_t i = 0; i < merges_.size(); ++i) {
    const Merge& m = merges_[i];
    for (std::size_t x : members[m.a]) {
      for (std::size_t y : members[m.b]) {
        out.set(x, y, m.distance);
      }
    }
    auto& dst = members[num_leaves_ + i];
    dst = std::move(members[m.a]);
    dst.insert(dst.end(), members[m.b].begin(), members[m.b].end());
    members[m.a].clear();
    members[m.b].clear();
  }
  return out;
}

std::vector<std::size_t> Dendrogram::leaf_order() const {
  if (merges_.empty()) {
    std::vector<std::size_t> order(num_leaves_);
    std::iota(order.begin(), order.end(), 0);
    return order;
  }
  std::vector<std::size_t> order;
  order.reserve(num_leaves_);
  // Iterative DFS from the final cluster; left child first.
  std::vector<std::size_t> stack{num_leaves_ + merges_.size() - 1};
  while (!stack.empty()) {
    const std::size_t node = stack.back();
    stack.pop_back();
    if (node < num_leaves_) {
      order.push_back(node);
    } else {
      const Merge& m = merges_[node - num_leaves_];
      stack.push_back(m.b);  // pushed first so `a` pops (renders) first
      stack.push_back(m.a);
    }
  }
  return order;
}

std::string Dendrogram::to_text(
    const std::vector<std::string>& leaf_names) const {
  auto name_of = [&](std::size_t leaf) {
    return leaf < leaf_names.size() ? leaf_names[leaf]
                                    : std::to_string(leaf + 1);
  };
  std::ostringstream ss;
  ss << "leaf order: ";
  const auto order = leaf_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) ss << ' ';
    ss << name_of(order[i]);
  }
  ss << "\nmerges (cluster-a, cluster-b, height, size):\n" << std::fixed
     << std::setprecision(4);
  for (std::size_t i = 0; i < merges_.size(); ++i) {
    const Merge& m = merges_[i];
    ss << "  #" << (num_leaves_ + i) << " = (" << m.a << ", " << m.b << ", "
       << m.distance << ", " << m.size << ")\n";
  }
  return ss.str();
}

}  // namespace cshield::mining

// Agglomerative hierarchical clustering with dendrogram output.
//
// Reproduces the paper's Figures 4-6: "dendrogram plot of the hierarchical
// binary cluster tree of 30 users based on GPS" (MATLAB linkage). The
// algorithm merges the closest pair of clusters until one remains, using a
// Lance-Williams distance update for single/complete/average linkage. The
// result exposes the merge sequence (the dendrogram), flat cuts, the
// cophenetic matrix used to compare two trees quantitatively, and the leaf
// ordering a dendrogram plot would display.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mining/dataset.hpp"
#include "util/status.hpp"

namespace cshield::mining {

enum class Linkage { kSingle, kComplete, kAverage };

[[nodiscard]] constexpr std::string_view linkage_name(Linkage l) {
  switch (l) {
    case Linkage::kSingle: return "single";
    case Linkage::kComplete: return "complete";
    case Linkage::kAverage: return "average";
  }
  return "invalid";
}

/// One merge step: clusters `a` and `b` joined at height `distance`.
/// Cluster ids: 0..n-1 are leaves; the i-th merge creates id n+i.
struct Merge {
  std::size_t a = 0;
  std::size_t b = 0;
  double distance = 0.0;
  std::size_t size = 0;  ///< leaves under the new cluster
};

/// Symmetric pairwise-distance matrix (only i<j stored logically; full
/// storage for simplicity).
class DistanceMatrix {
 public:
  explicit DistanceMatrix(std::size_t n) : n_(n), d_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    CS_REQUIRE(i < n_ && j < n_, "DistanceMatrix index out of range");
    return d_[i * n_ + j];
  }
  void set(std::size_t i, std::size_t j, double v) {
    CS_REQUIRE(i < n_ && j < n_, "DistanceMatrix index out of range");
    d_[i * n_ + j] = v;
    d_[j * n_ + i] = v;
  }

  /// Flattened upper triangle (i<j) in row order -- the vector form used by
  /// cophenetic correlation.
  [[nodiscard]] std::vector<double> condensed() const {
    std::vector<double> out;
    out.reserve(n_ * (n_ - 1) / 2);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i + 1; j < n_; ++j) out.push_back(at(i, j));
    }
    return out;
  }

 private:
  std::size_t n_;
  std::vector<double> d_;
};

/// Euclidean distances between all row pairs of a dataset.
[[nodiscard]] DistanceMatrix euclidean_distances(const Dataset& data);

/// The fitted tree.
class Dendrogram {
 public:
  Dendrogram(std::size_t num_leaves, std::vector<Merge> merges)
      : num_leaves_(num_leaves), merges_(std::move(merges)) {}

  [[nodiscard]] std::size_t num_leaves() const { return num_leaves_; }
  [[nodiscard]] const std::vector<Merge>& merges() const { return merges_; }

  /// Flat clustering with exactly k clusters (stop k-1 merges early).
  /// Labels are 0..k-1, renumbered by first appearance.
  [[nodiscard]] std::vector<int> cut(std::size_t k) const;

  /// Cophenetic distance matrix: entry (i,j) is the merge height at which
  /// leaves i and j first share a cluster.
  [[nodiscard]] DistanceMatrix cophenetic() const;

  /// Left-to-right leaf order of the dendrogram plot (recursive traversal,
  /// matching how MATLAB/scipy lay out Figures 4-6's x axes).
  [[nodiscard]] std::vector<std::size_t> leaf_order() const;

  /// Compact text rendering: leaf order line plus per-merge heights -- the
  /// textual stand-in for the paper's dendrogram figures.
  [[nodiscard]] std::string to_text(
      const std::vector<std::string>& leaf_names = {}) const;

 private:
  std::size_t num_leaves_;
  std::vector<Merge> merges_;
};

/// Runs agglomerative clustering over a distance matrix.
[[nodiscard]] Dendrogram agglomerate(const DistanceMatrix& dist,
                                     Linkage linkage);

/// Convenience: Euclidean distances over dataset rows, then agglomerate.
[[nodiscard]] Dendrogram cluster_rows(const Dataset& data, Linkage linkage);

}  // namespace cshield::mining

// k-nearest-neighbour classifier (brute force, Euclidean on z-scored
// features). The third prediction attack in the harness -- memorizes the
// leaked records outright, so its accuracy tracks the adversary's coverage
// more directly than the parametric models.
#pragma once

#include <string>
#include <vector>

#include "mining/dataset.hpp"
#include "util/status.hpp"

namespace cshield::mining {

class KnnClassifier {
 public:
  /// Stores (standardized) training rows. Fails on an empty set or k = 0;
  /// k is clamped to the training-set size.
  [[nodiscard]] static Result<KnnClassifier> fit(
      const Dataset& data, const std::string& label_column, std::size_t k = 5);

  [[nodiscard]] int predict(const std::vector<double>& features) const;

  [[nodiscard]] double accuracy(const Dataset& data,
                                const std::string& label_column) const;

  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  std::size_t k_ = 5;
  std::vector<std::size_t> feature_cols_;
  std::vector<std::vector<double>> train_features_;  ///< standardized
  std::vector<int> train_labels_;
  std::vector<double> mean_;
  std::vector<double> stddev_;

  [[nodiscard]] std::vector<double> standardize_point(
      const std::vector<double>& features) const;
};

}  // namespace cshield::mining

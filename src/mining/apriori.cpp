#include "mining/apriori.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace cshield::mining {
namespace {

/// True when `needle` (sorted) is a subset of `haystack` (sorted).
bool is_subset(const std::vector<std::uint32_t>& needle,
               const std::vector<std::uint32_t>& haystack) {
  return std::includes(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end());
}

std::size_t count_support(const std::vector<Transaction>& txns,
                          const std::vector<std::uint32_t>& itemset) {
  std::size_t count = 0;
  for (const auto& t : txns) {
    if (is_subset(itemset, t)) ++count;
  }
  return count;
}

std::string itemset_key(const std::vector<std::uint32_t>& items) {
  std::ostringstream ss;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) ss << ',';
    ss << items[i];
  }
  return ss.str();
}

/// Joins two sorted (k)-itemsets sharing a (k-1)-prefix into a (k+1)-set.
bool try_join(const std::vector<std::uint32_t>& a,
              const std::vector<std::uint32_t>& b,
              std::vector<std::uint32_t>& out) {
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  if (a.back() >= b.back()) return false;
  out = a;
  out.push_back(b.back());
  return true;
}

}  // namespace

std::string AssociationRule::key() const {
  return itemset_key(lhs) + "=>" + itemset_key(rhs);
}

Result<AprioriResult> apriori(const std::vector<Transaction>& transactions,
                              const AprioriOptions& opts) {
  if (transactions.empty()) {
    return Status::InvalidArgument("apriori: empty transaction database");
  }
  CS_REQUIRE(opts.min_support > 0.0 && opts.min_support <= 1.0,
             "apriori: min_support outside (0,1]");
  const double n = static_cast<double>(transactions.size());
  const std::size_t min_count = static_cast<std::size_t>(
      std::max(1.0, std::ceil(opts.min_support * n)));

  AprioriResult result;

  // L1: frequent single items.
  std::map<std::uint32_t, std::size_t> item_counts;
  for (const auto& t : transactions) {
    for (std::uint32_t item : t) ++item_counts[item];
  }
  std::vector<std::vector<std::uint32_t>> level;
  for (const auto& [item, count] : item_counts) {
    if (count >= min_count) {
      level.push_back({item});
      result.itemsets.push_back(
          {{item}, count, static_cast<double>(count) / n});
    }
  }

  // Levelwise expansion with the Apriori pruning property.
  std::unordered_set<std::string> frequent_keys;
  for (const auto& fs : result.itemsets) {
    frequent_keys.insert(itemset_key(fs.items));
  }
  for (std::size_t k = 2;
       k <= opts.max_itemset_size && level.size() >= 2; ++k) {
    std::vector<std::vector<std::uint32_t>> next;
    for (std::size_t i = 0; i < level.size(); ++i) {
      for (std::size_t j = i + 1; j < level.size(); ++j) {
        std::vector<std::uint32_t> candidate;
        if (!try_join(level[i], level[j], candidate)) continue;
        // Prune: every (k-1)-subset must be frequent.
        bool all_frequent = true;
        for (std::size_t drop = 0; drop < candidate.size() && all_frequent;
             ++drop) {
          std::vector<std::uint32_t> sub;
          sub.reserve(candidate.size() - 1);
          for (std::size_t m = 0; m < candidate.size(); ++m) {
            if (m != drop) sub.push_back(candidate[m]);
          }
          all_frequent = frequent_keys.count(itemset_key(sub)) != 0;
        }
        if (!all_frequent) continue;
        const std::size_t count = count_support(transactions, candidate);
        if (count >= min_count) {
          result.itemsets.push_back(
              {candidate, count, static_cast<double>(count) / n});
          frequent_keys.insert(itemset_key(candidate));
          next.push_back(std::move(candidate));
        }
      }
    }
    level = std::move(next);
  }

  // Rule generation: for each frequent set of size >= 2, try every
  // non-empty proper subset as the antecedent.
  std::map<std::string, double> support_by_key;
  for (const auto& fs : result.itemsets) {
    support_by_key[itemset_key(fs.items)] = fs.support;
  }
  for (const auto& fs : result.itemsets) {
    const std::size_t sz = fs.items.size();
    if (sz < 2) continue;
    const std::uint32_t subsets = (1U << sz) - 1;
    for (std::uint32_t mask = 1; mask < subsets; ++mask) {
      AssociationRule rule;
      for (std::size_t i = 0; i < sz; ++i) {
        if (mask & (1U << i)) {
          rule.lhs.push_back(fs.items[i]);
        } else {
          rule.rhs.push_back(fs.items[i]);
        }
      }
      const double lhs_support = support_by_key.at(itemset_key(rule.lhs));
      rule.support = fs.support;
      rule.confidence = lhs_support > 0.0 ? fs.support / lhs_support : 0.0;
      if (rule.confidence < opts.min_confidence) continue;
      const double rhs_support = support_by_key.at(itemset_key(rule.rhs));
      rule.lift = rhs_support > 0.0 ? rule.confidence / rhs_support : 0.0;
      result.rules.push_back(std::move(rule));
    }
  }
  return result;
}

RuleSetComparison compare_rules(const std::vector<AssociationRule>& reference,
                                const std::vector<AssociationRule>& mined) {
  RuleSetComparison cmp;
  cmp.reference_rules = reference.size();
  cmp.mined_rules = mined.size();
  std::unordered_set<std::string> ref_keys;
  for (const auto& r : reference) ref_keys.insert(r.key());
  for (const auto& m : mined) {
    if (ref_keys.count(m.key()) != 0) ++cmp.matched;
  }
  cmp.recall = reference.empty()
                   ? 1.0
                   : static_cast<double>(cmp.matched) /
                         static_cast<double>(reference.size());
  cmp.precision = mined.empty() ? 0.0
                                : static_cast<double>(cmp.matched) /
                                      static_cast<double>(mined.size());
  return cmp;
}

}  // namespace cshield::mining

#include "mining/knn.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace cshield::mining {

Result<KnnClassifier> KnnClassifier::fit(const Dataset& data,
                                         const std::string& label_column,
                                         std::size_t k) {
  if (data.empty()) {
    return Status::InvalidArgument("knn: empty training set");
  }
  if (k == 0) {
    return Status::InvalidArgument("knn: k must be >= 1");
  }
  KnnClassifier model;
  model.k_ = std::min(k, data.num_rows());
  const std::size_t label_col = data.column_index(label_column);
  for (std::size_t c = 0; c < data.num_cols(); ++c) {
    if (c != label_col) model.feature_cols_.push_back(c);
  }
  if (model.feature_cols_.empty()) {
    return Status::InvalidArgument("knn: no feature columns");
  }

  const std::size_t p = model.feature_cols_.size();
  model.mean_.assign(p, 0.0);
  model.stddev_.assign(p, 0.0);
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    for (std::size_t f = 0; f < p; ++f) {
      model.mean_[f] += data.at(r, model.feature_cols_[f]);
    }
  }
  for (auto& m : model.mean_) m /= static_cast<double>(data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    for (std::size_t f = 0; f < p; ++f) {
      const double d = data.at(r, model.feature_cols_[f]) - model.mean_[f];
      model.stddev_[f] += d * d;
    }
  }
  for (auto& s : model.stddev_) {
    s = data.num_rows() > 1
            ? std::sqrt(s / static_cast<double>(data.num_rows() - 1))
            : 0.0;
    if (s == 0.0) s = 1.0;  // constant feature: leave centred values at 0
  }

  model.train_features_.reserve(data.num_rows());
  model.train_labels_.reserve(data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    std::vector<double> raw;
    raw.reserve(p);
    for (std::size_t f : model.feature_cols_) raw.push_back(data.at(r, f));
    model.train_features_.push_back(model.standardize_point(raw));
    model.train_labels_.push_back(static_cast<int>(data.at(r, label_col)));
  }
  return model;
}

std::vector<double> KnnClassifier::standardize_point(
    const std::vector<double>& features) const {
  std::vector<double> out(features.size());
  for (std::size_t f = 0; f < features.size(); ++f) {
    out[f] = (features[f] - mean_[f]) / stddev_[f];
  }
  return out;
}

int KnnClassifier::predict(const std::vector<double>& features) const {
  CS_REQUIRE(features.size() == feature_cols_.size(),
             "knn predict: feature arity mismatch");
  const std::vector<double> q = standardize_point(features);
  // Partial sort of (distance, index) pairs.
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(train_features_.size());
  for (std::size_t i = 0; i < train_features_.size(); ++i) {
    double d = 0.0;
    for (std::size_t f = 0; f < q.size(); ++f) {
      const double diff = q[f] - train_features_[i][f];
      d += diff * diff;
    }
    dist.emplace_back(d, i);
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k_),
                    dist.end());
  std::map<int, std::size_t> votes;
  for (std::size_t i = 0; i < k_; ++i) {
    ++votes[train_labels_[dist[i].second]];
  }
  int best_label = train_labels_[dist[0].second];  // tie-break: nearest
  std::size_t best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

double KnnClassifier::accuracy(const Dataset& data,
                               const std::string& label_column) const {
  if (data.empty()) return 0.0;
  const std::size_t label_col = data.column_index(label_column);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    std::vector<double> features;
    features.reserve(feature_cols_.size());
    for (std::size_t f : feature_cols_) features.push_back(data.at(r, f));
    if (predict(features) == static_cast<int>(data.at(r, label_col))) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

}  // namespace cshield::mining

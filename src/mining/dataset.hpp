// Tabular dataset abstraction used by every mining algorithm.
//
// A Dataset is a named-column matrix of doubles (row = observation). The
// attack harness reconstructs Datasets from whatever chunks an adversary
// obtained; the mining algorithms then run identically on full or
// fragmentary data, which is exactly the comparison the paper's SVII/SVIII
// make.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace cshield::mining {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> column_names)
      : columns_(std::move(column_names)) {}

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return columns_.size(); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }

  [[nodiscard]] const std::vector<std::string>& column_names() const {
    return columns_;
  }

  /// Index of a named column; throws if absent.
  [[nodiscard]] std::size_t column_index(std::string_view name) const {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i] == name) return i;
    }
    throw std::invalid_argument("Dataset: no column named " +
                                std::string(name));
  }

  void add_row(std::vector<double> row) {
    CS_REQUIRE(row.size() == columns_.size(), "Dataset row arity mismatch");
    rows_.push_back(std::move(row));
  }

  [[nodiscard]] const std::vector<double>& row(std::size_t i) const {
    CS_REQUIRE(i < rows_.size(), "Dataset row index out of range");
    return rows_[i];
  }

  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    CS_REQUIRE(r < rows_.size() && c < columns_.size(),
               "Dataset cell out of range");
    return rows_[r][c];
  }

  /// Extracts one column as a vector.
  [[nodiscard]] std::vector<double> column(std::size_t c) const {
    CS_REQUIRE(c < columns_.size(), "Dataset column out of range");
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto& r : rows_) out.push_back(r[c]);
    return out;
  }

  /// Dataset with only the rows in [begin, end) -- a contiguous fragment,
  /// which is what row-order chunking hands each provider.
  [[nodiscard]] Dataset slice_rows(std::size_t begin, std::size_t end) const {
    CS_REQUIRE(begin <= end && end <= rows_.size(), "slice_rows bad range");
    Dataset out(columns_);
    for (std::size_t i = begin; i < end; ++i) out.add_row(rows_[i]);
    return out;
  }

  /// Dataset with the selected row indices (arbitrary subset).
  [[nodiscard]] Dataset select_rows(const std::vector<std::size_t>& idx) const {
    Dataset out(columns_);
    for (std::size_t i : idx) {
      CS_REQUIRE(i < rows_.size(), "select_rows index out of range");
      out.add_row(rows_[i]);
    }
    return out;
  }

  /// Dataset restricted to the named columns (feature selection).
  [[nodiscard]] Dataset select_columns(
      const std::vector<std::string>& names) const {
    std::vector<std::size_t> idx;
    idx.reserve(names.size());
    for (const auto& n : names) idx.push_back(column_index(n));
    Dataset out(names);
    for (const auto& r : rows_) {
      std::vector<double> row;
      row.reserve(idx.size());
      for (std::size_t c : idx) row.push_back(r[c]);
      out.add_row(std::move(row));
    }
    return out;
  }

  /// Appends all rows of `other` (columns must match by name and order).
  void append(const Dataset& other) {
    CS_REQUIRE(other.columns_ == columns_, "Dataset append: schema mismatch");
    rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
  }

  /// Splits into `parts` near-equal contiguous fragments (round-robin
  /// remainder to the front), mirroring the paper's "distributes his data
  /// equally among 3 providers" example.
  [[nodiscard]] std::vector<Dataset> split_contiguous(std::size_t parts) const {
    CS_REQUIRE(parts > 0, "split_contiguous needs parts > 0");
    std::vector<Dataset> out;
    out.reserve(parts);
    const std::size_t base = rows_.size() / parts;
    const std::size_t extra = rows_.size() % parts;
    std::size_t begin = 0;
    for (std::size_t p = 0; p < parts; ++p) {
      const std::size_t len = base + (p < extra ? 1 : 0);
      out.push_back(slice_rows(begin, begin + len));
      begin += len;
    }
    return out;
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

/// Z-score standardization per column (constant columns become all-zero).
/// Clustering attacks standardize features so no single unit dominates the
/// Euclidean metric.
[[nodiscard]] inline Dataset standardize(const Dataset& data) {
  Dataset out(data.column_names());
  if (data.empty()) return out;
  const std::size_t p = data.num_cols();
  std::vector<double> mean(p, 0.0);
  std::vector<double> sd(p, 0.0);
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    for (std::size_t c = 0; c < p; ++c) mean[c] += data.at(r, c);
  }
  for (auto& m : mean) m /= static_cast<double>(data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    for (std::size_t c = 0; c < p; ++c) {
      const double d = data.at(r, c) - mean[c];
      sd[c] += d * d;
    }
  }
  for (auto& s : sd) {
    s = data.num_rows() > 1
            ? std::sqrt(s / static_cast<double>(data.num_rows() - 1))
            : 0.0;
  }
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    std::vector<double> row(p);
    for (std::size_t c = 0; c < p; ++c) {
      row[c] = sd[c] > 0.0 ? (data.at(r, c) - mean[c]) / sd[c] : 0.0;
    }
    out.add_row(std::move(row));
  }
  return out;
}

}  // namespace cshield::mining

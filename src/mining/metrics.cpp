#include "mining/metrics.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <tuple>

#include "util/stats.hpp"

namespace cshield::mining {
namespace {

/// Contingency table between two labelings.
std::map<std::pair<int, int>, std::size_t> contingency(
    const std::vector<int>& a, const std::vector<int>& b) {
  std::map<std::pair<int, int>, std::size_t> table;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++table[{a[i], b[i]}];
  }
  return table;
}

double choose2(double n) { return n * (n - 1.0) / 2.0; }

/// Average ranks with tie handling.
std::vector<double> ranks(const std::vector<double>& v) {
  std::vector<std::size_t> order(v.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return v[i] < v[j]; });
  std::vector<double> r(v.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}

}  // namespace

double adjusted_rand_index(const std::vector<int>& a,
                           const std::vector<int>& b) {
  CS_REQUIRE(a.size() == b.size(), "ARI: length mismatch");
  const double n = static_cast<double>(a.size());
  if (a.size() < 2) return 1.0;

  std::map<int, std::size_t> sizes_a;
  std::map<int, std::size_t> sizes_b;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++sizes_a[a[i]];
    ++sizes_b[b[i]];
  }
  double sum_pairs = 0.0;
  for (const auto& [key, count] : contingency(a, b)) {
    (void)key;
    sum_pairs += choose2(static_cast<double>(count));
  }
  double sum_a = 0.0;
  for (const auto& [_, c] : sizes_a) sum_a += choose2(static_cast<double>(c));
  double sum_b = 0.0;
  for (const auto& [_, c] : sizes_b) sum_b += choose2(static_cast<double>(c));
  const double expected = sum_a * sum_b / choose2(n);
  const double max_index = 0.5 * (sum_a + sum_b);
  const double denom = max_index - expected;
  if (denom == 0.0) return 1.0;  // both partitions trivial and identical
  return (sum_pairs - expected) / denom;
}

double rand_index(const std::vector<int>& a, const std::vector<int>& b) {
  CS_REQUIRE(a.size() == b.size(), "rand_index: length mismatch");
  if (a.size() < 2) return 1.0;
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      const bool same_a = a[i] == a[j];
      const bool same_b = b[i] == b[j];
      agree += (same_a == same_b) ? 1 : 0;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

double membership_churn(const std::vector<int>& a, const std::vector<int>& b) {
  CS_REQUIRE(a.size() == b.size(), "membership_churn: length mismatch");
  if (a.empty()) return 0.0;
  // Greedy maximum-overlap matching from clusters of `a` to clusters of `b`.
  auto table = contingency(a, b);
  std::vector<std::tuple<std::size_t, int, int>> cells;
  cells.reserve(table.size());
  for (const auto& [key, count] : table) {
    cells.emplace_back(count, key.first, key.second);
  }
  std::sort(cells.begin(), cells.end(),
            [](const auto& x, const auto& y) { return x > y; });
  std::map<int, int> mapping;  // a-label -> b-label
  std::set<int> used_b;
  for (const auto& [count, la, lb] : cells) {
    (void)count;
    if (mapping.count(la) == 0 && used_b.count(lb) == 0) {
      mapping[la] = lb;
      used_b.insert(lb);
    }
  }
  std::size_t moved = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto it = mapping.find(a[i]);
    if (it == mapping.end() || it->second != b[i]) ++moved;
  }
  return static_cast<double>(moved) / static_cast<double>(a.size());
}

double cophenetic_correlation(const Dendrogram& a, const Dendrogram& b) {
  CS_REQUIRE(a.num_leaves() == b.num_leaves(),
             "cophenetic_correlation: leaf count mismatch");
  return pearson(a.cophenetic().condensed(), b.cophenetic().condensed());
}

double bakers_gamma(const Dendrogram& a, const Dendrogram& b) {
  CS_REQUIRE(a.num_leaves() == b.num_leaves(),
             "bakers_gamma: leaf count mismatch");
  return spearman(a.cophenetic().condensed(), b.cophenetic().condensed());
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  CS_REQUIRE(x.size() == y.size(), "spearman: length mismatch");
  if (x.size() < 2) return 0.0;
  return pearson(ranks(x), ranks(y));
}

}  // namespace cshield::mining

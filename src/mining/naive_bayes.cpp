#include "mining/naive_bayes.hpp"

#include <cmath>
#include <limits>
#include <map>

namespace cshield::mining {

Result<NaiveBayes> NaiveBayes::fit(const Dataset& data,
                                   const std::string& label_column) {
  if (data.empty()) {
    return Status::InvalidArgument("naive_bayes: empty training set");
  }
  const std::size_t label_col = data.column_index(label_column);

  NaiveBayes model;
  for (std::size_t c = 0; c < data.num_cols(); ++c) {
    if (c != label_col) model.feature_cols_.push_back(c);
  }
  const std::size_t p = model.feature_cols_.size();
  if (p == 0) {
    return Status::InvalidArgument("naive_bayes: no feature columns");
  }

  std::map<int, std::vector<std::size_t>> rows_by_class;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    rows_by_class[static_cast<int>(data.at(r, label_col))].push_back(r);
  }
  if (rows_by_class.size() < 2) {
    return Status::InvalidArgument(
        "naive_bayes: training data covers a single class");
  }

  const double n = static_cast<double>(data.num_rows());
  for (const auto& [label, rows] : rows_by_class) {
    if (rows.size() < 2) {
      return Status::InvalidArgument(
          "naive_bayes: class " + std::to_string(label) +
          " has fewer than 2 observations");
    }
    ClassStats cs;
    cs.label = label;
    cs.log_prior = std::log(static_cast<double>(rows.size()) / n);
    cs.mean.assign(p, 0.0);
    cs.variance.assign(p, 0.0);
    for (std::size_t r : rows) {
      for (std::size_t f = 0; f < p; ++f) {
        cs.mean[f] += data.at(r, model.feature_cols_[f]);
      }
    }
    for (std::size_t f = 0; f < p; ++f) {
      cs.mean[f] /= static_cast<double>(rows.size());
    }
    for (std::size_t r : rows) {
      for (std::size_t f = 0; f < p; ++f) {
        const double d = data.at(r, model.feature_cols_[f]) - cs.mean[f];
        cs.variance[f] += d * d;
      }
    }
    for (std::size_t f = 0; f < p; ++f) {
      cs.variance[f] =
          std::max(cs.variance[f] / static_cast<double>(rows.size() - 1),
                   1e-9);
    }
    model.classes_.push_back(std::move(cs));
  }
  return model;
}

int NaiveBayes::predict(const std::vector<double>& features) const {
  CS_REQUIRE(features.size() == feature_cols_.size(),
             "naive_bayes predict: feature arity mismatch");
  double best_score = -std::numeric_limits<double>::infinity();
  int best_label = classes_.front().label;
  for (const auto& cs : classes_) {
    double score = cs.log_prior;
    for (std::size_t f = 0; f < features.size(); ++f) {
      const double d = features[f] - cs.mean[f];
      score += -0.5 * (std::log(2.0 * M_PI * cs.variance[f]) +
                       d * d / cs.variance[f]);
    }
    if (score > best_score) {
      best_score = score;
      best_label = cs.label;
    }
  }
  return best_label;
}

double NaiveBayes::accuracy(const Dataset& data,
                            const std::string& label_column) const {
  if (data.empty()) return 0.0;
  const std::size_t label_col = data.column_index(label_column);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    std::vector<double> features;
    features.reserve(feature_cols_.size());
    for (std::size_t f : feature_cols_) features.push_back(data.at(r, f));
    if (predict(features) == static_cast<int>(data.at(r, label_col))) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

}  // namespace cshield::mining

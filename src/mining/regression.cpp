#include "mining/regression.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "mining/linalg.hpp"
#include "util/stats.hpp"

namespace cshield::mining {

std::string LinearModel::equation(
    const std::vector<std::string>& feature_names) const {
  CS_REQUIRE(feature_names.size() == coefficients.size(),
             "equation: name arity mismatch");
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(2) << "(";
  for (std::size_t i = 0; i < coefficients.size(); ++i) {
    if (i > 0) ss << " + ";
    ss << coefficients[i] << "*" << feature_names[i];
  }
  ss << ") + " << std::setprecision(0) << intercept;
  return ss.str();
}

Result<LinearModel> fit_linear(const Dataset& data,
                               const std::vector<std::string>& features,
                               const std::string& target) {
  CS_REQUIRE(!features.empty(), "fit_linear: no features");
  const std::size_t n = data.num_rows();
  const std::size_t p = features.size();
  if (n < p + 1) {
    return Status::InvalidArgument(
        "fit_linear: " + std::to_string(n) + " observations cannot fit " +
        std::to_string(p + 1) + " parameters");
  }

  // Design matrix with a leading 1s column for the intercept.
  Matrix x(n, p + 1);
  std::vector<std::size_t> feature_cols;
  feature_cols.reserve(p);
  for (const auto& f : features) feature_cols.push_back(data.column_index(f));
  const std::size_t target_col = data.column_index(target);

  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    x.at(r, 0) = 1.0;
    for (std::size_t c = 0; c < p; ++c) {
      x.at(r, c + 1) = data.at(r, feature_cols[c]);
    }
    y[r] = data.at(r, target_col);
  }

  Result<std::vector<double>> beta = solve(x.gram(), x.transpose_times(y));
  if (!beta.ok()) return beta.status();
  for (double b : beta.value()) {
    if (!std::isfinite(b)) {
      return Status::InvalidArgument(
          "fit_linear: non-finite solution (corrupted observations)");
    }
  }

  LinearModel model;
  model.intercept = beta.value()[0];
  model.coefficients.assign(beta.value().begin() + 1, beta.value().end());
  model.observations = n;

  // Goodness of fit.
  const double y_mean = mean_of(y);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<double> xr(p);
    for (std::size_t c = 0; c < p; ++c) xr[c] = x.at(r, c + 1);
    const double e = y[r] - model.predict(xr);
    ss_res += e * e;
    ss_tot += (y[r] - y_mean) * (y[r] - y_mean);
  }
  model.rmse = std::sqrt(ss_res / static_cast<double>(n));
  model.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return model;
}

double coefficient_error(const LinearModel& reference,
                         const LinearModel& estimate) {
  CS_REQUIRE(reference.coefficients.size() == estimate.coefficients.size(),
             "coefficient_error: arity mismatch");
  double diff2 = 0.0;
  double ref2 = reference.intercept * reference.intercept;
  const double di = reference.intercept - estimate.intercept;
  diff2 += di * di;
  for (std::size_t i = 0; i < reference.coefficients.size(); ++i) {
    const double d = reference.coefficients[i] - estimate.coefficients[i];
    diff2 += d * d;
    ref2 += reference.coefficients[i] * reference.coefficients[i];
  }
  return ref2 > 0.0 ? std::sqrt(diff2 / ref2) : std::sqrt(diff2);
}

}  // namespace cshield::mining

// Apriori frequent-itemset and association-rule mining.
//
// SII-B: "association rule mining can be used to discover association
// relationships among large number of business transaction records". The
// attack harness mines rules from transaction chunks; E5 measures how rule
// recall collapses as each provider sees fewer transactions.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace cshield::mining {

/// One transaction = sorted set of item ids.
using Transaction = std::vector<std::uint32_t>;

/// A frequent itemset with its support count.
struct FrequentItemset {
  std::vector<std::uint32_t> items;  ///< sorted
  std::size_t support_count = 0;
  double support = 0.0;  ///< fraction of transactions containing the set
};

/// Association rule lhs => rhs.
struct AssociationRule {
  std::vector<std::uint32_t> lhs;  ///< sorted antecedent
  std::vector<std::uint32_t> rhs;  ///< sorted consequent
  double support = 0.0;
  double confidence = 0.0;
  double lift = 0.0;

  /// Canonical text form "a,b=>c" used for set comparison in metrics.
  [[nodiscard]] std::string key() const;
};

struct AprioriOptions {
  double min_support = 0.1;     ///< fraction of transactions
  double min_confidence = 0.6;
  std::size_t max_itemset_size = 4;
};

struct AprioriResult {
  std::vector<FrequentItemset> itemsets;
  std::vector<AssociationRule> rules;
};

/// Mines frequent itemsets (levelwise Apriori) and confidence-filtered rules.
/// Fails with kInvalidArgument on an empty transaction database.
[[nodiscard]] Result<AprioriResult> apriori(
    const std::vector<Transaction>& transactions, const AprioriOptions& opts);

/// Rule-set recall/precision of `mined` against `reference`, keyed by
/// canonical rule text. Returns {recall, precision}.
struct RuleSetComparison {
  double recall = 0.0;
  double precision = 0.0;
  std::size_t reference_rules = 0;
  std::size_t mined_rules = 0;
  std::size_t matched = 0;
};

[[nodiscard]] RuleSetComparison compare_rules(
    const std::vector<AssociationRule>& reference,
    const std::vector<AssociationRule>& mined);

}  // namespace cshield::mining

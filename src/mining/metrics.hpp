// Comparison metrics quantifying what fragmentation does to mining output.
//
// The paper shows Figures 4-6 side by side and says "many entities have
// moved from their original cluster to other clusters"; these metrics turn
// that visual claim into numbers: adjusted Rand index and membership churn
// for flat clusterings, cophenetic correlation and Baker's gamma for
// dendrograms.
#pragma once

#include <vector>

#include "mining/hierarchical.hpp"
#include "util/status.hpp"

namespace cshield::mining {

/// Adjusted Rand index between two flat clusterings of the same items.
/// 1 = identical partitions, ~0 = chance agreement.
[[nodiscard]] double adjusted_rand_index(const std::vector<int>& a,
                                         const std::vector<int>& b);

/// Unadjusted Rand index (fraction of concordant pairs).
[[nodiscard]] double rand_index(const std::vector<int>& a,
                                const std::vector<int>& b);

/// Fraction of items whose cluster changed, after optimally matching
/// cluster labels between the two partitions (greedy maximum-overlap
/// matching). This is the paper's "entities moved" number.
[[nodiscard]] double membership_churn(const std::vector<int>& a,
                                      const std::vector<int>& b);

/// Cophenetic correlation between two dendrograms over the same leaves:
/// Pearson correlation of the condensed cophenetic matrices.
[[nodiscard]] double cophenetic_correlation(const Dendrogram& a,
                                            const Dendrogram& b);

/// Baker's gamma: Spearman rank correlation of the two cophenetic vectors
/// (robust to monotone height rescaling between trees).
[[nodiscard]] double bakers_gamma(const Dendrogram& a, const Dendrogram& b);

/// Spearman rank correlation of two equal-length series (average ranks for
/// ties).
[[nodiscard]] double spearman(const std::vector<double>& x,
                              const std::vector<double>& y);

}  // namespace cshield::mining

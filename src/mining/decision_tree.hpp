// CART-style decision tree classifier (Gini impurity, axis-aligned splits).
//
// SII-B: "companies dealing with financial, educational, health or legal
// issues of people are prominent targets" -- a classifier over leaked
// records predicts exactly the "likelihood of an individual getting a
// terminal illness" class of information the paper worries about. The
// attack harness trains a tree on whatever an adversary reconstructed and
// scores it on held-out truth.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mining/dataset.hpp"
#include "util/status.hpp"

namespace cshield::mining {

struct DecisionTreeOptions {
  std::size_t max_depth = 8;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
};

class DecisionTree {
 public:
  /// Trains on `data`; `label_column` values are truncated to ints as class
  /// ids. Fails on an empty set or a single class.
  [[nodiscard]] static Result<DecisionTree> fit(
      const Dataset& data, const std::string& label_column,
      const DecisionTreeOptions& options = {});

  [[nodiscard]] int predict(const std::vector<double>& features) const;

  /// Fraction of `data` rows classified correctly.
  [[nodiscard]] double accuracy(const Dataset& data,
                                const std::string& label_column) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const { return depth_; }

 private:
  struct Node {
    // Internal: feature/threshold + children. Leaf: label, children = -1.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int label = 0;
    [[nodiscard]] bool is_leaf() const { return left < 0; }
  };

  int build(const Dataset& data, std::vector<std::size_t> rows,
            std::size_t label_col, std::size_t depth,
            const DecisionTreeOptions& options);

  std::vector<Node> nodes_;
  std::vector<std::size_t> feature_cols_;
  std::size_t label_col_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace cshield::mining

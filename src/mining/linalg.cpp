#include "mining/linalg.hpp"

#include <cmath>

namespace cshield::mining {

Result<std::vector<double>> solve(Matrix a, std::vector<double> b) {
  CS_REQUIRE(a.rows() == a.cols(), "solve: matrix must be square");
  CS_REQUIRE(b.size() == a.rows(), "solve: rhs dimension mismatch");
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in this column at or below the
    // diagonal.
    std::size_t pivot = col;
    double best = std::abs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-10) {
      return Status::InvalidArgument(
          "solve: singular system (insufficient or collinear observations)");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(col, c), a.at(pivot, c));
      }
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) / a.at(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) -= f * a.at(col, c);
      }
      b[r] -= f * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) {
      s -= a.at(ri, c) * x[c];
    }
    x[ri] = s / a.at(ri, ri);
  }
  return x;
}

}  // namespace cshield::mining

// Minimal dense linear algebra for the mining layer: just enough to solve
// the normal equations behind multiple linear regression (the paper's
// "multivariate analysis (linear multiple regression using MATLAB)").
#pragma once

#include <cstddef>
#include <vector>

#include "util/status.hpp"

namespace cshield::mining {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    CS_REQUIRE(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    CS_REQUIRE(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// this^T * this (Gram matrix), the left side of the normal equations.
  [[nodiscard]] Matrix gram() const {
    Matrix g(cols_, cols_);
    for (std::size_t i = 0; i < cols_; ++i) {
      for (std::size_t j = i; j < cols_; ++j) {
        double s = 0.0;
        for (std::size_t r = 0; r < rows_; ++r) {
          s += at(r, i) * at(r, j);
        }
        g.at(i, j) = s;
        g.at(j, i) = s;
      }
    }
    return g;
  }

  /// this^T * v.
  [[nodiscard]] std::vector<double> transpose_times(
      const std::vector<double>& v) const {
    CS_REQUIRE(v.size() == rows_, "transpose_times: dimension mismatch");
    std::vector<double> out(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        out[c] += at(r, c) * v[r];
      }
    }
    return out;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns kInvalidArgument when A is (numerically) singular -- for the
/// attacker this is the "too few observations to fit" case.
[[nodiscard]] Result<std::vector<double>> solve(Matrix a,
                                                std::vector<double> b);

}  // namespace cshield::mining

// Gaussian naive Bayes classifier.
//
// The paper's SVII-A mentions prediction algorithms "may reveal misleading
// results as they lack numbers of observations" once data is fragmented.
// Naive Bayes is the prediction attack in the harness: train on whatever an
// adversary reconstructed, test on held-out truth, watch accuracy fall.
#pragma once

#include <vector>

#include "mining/dataset.hpp"
#include "util/status.hpp"

namespace cshield::mining {

class NaiveBayes {
 public:
  /// Trains on `data`: features are all columns except `label_column`,
  /// whose values are truncated to integers as class ids. Fails when any
  /// class has fewer than 2 observations (degenerate variance).
  [[nodiscard]] static Result<NaiveBayes> fit(const Dataset& data,
                                              const std::string& label_column);

  /// Predicts the class id for a feature vector.
  [[nodiscard]] int predict(const std::vector<double>& features) const;

  /// Fraction of rows of `data` classified correctly.
  [[nodiscard]] double accuracy(const Dataset& data,
                                const std::string& label_column) const;

  [[nodiscard]] std::size_t num_classes() const { return classes_.size(); }

 private:
  struct ClassStats {
    int label = 0;
    double log_prior = 0.0;
    std::vector<double> mean;
    std::vector<double> variance;  ///< floored to avoid zero-variance spikes
  };
  std::vector<ClassStats> classes_;
  std::vector<std::size_t> feature_cols_;
};

}  // namespace cshield::mining

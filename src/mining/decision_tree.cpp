#include "mining/decision_tree.hpp"

#include <algorithm>
#include <map>

namespace cshield::mining {
namespace {

/// Gini impurity of a label histogram.
double gini(const std::map<int, std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const auto& [label, count] : counts) {
    (void)label;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

int majority(const std::map<int, std::size_t>& counts) {
  int best_label = 0;
  std::size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace

Result<DecisionTree> DecisionTree::fit(const Dataset& data,
                                       const std::string& label_column,
                                       const DecisionTreeOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("decision_tree: empty training set");
  }
  DecisionTree tree;
  tree.label_col_ = data.column_index(label_column);
  for (std::size_t c = 0; c < data.num_cols(); ++c) {
    if (c != tree.label_col_) tree.feature_cols_.push_back(c);
  }
  if (tree.feature_cols_.empty()) {
    return Status::InvalidArgument("decision_tree: no feature columns");
  }
  std::map<int, std::size_t> classes;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    ++classes[static_cast<int>(data.at(r, tree.label_col_))];
  }
  if (classes.size() < 2) {
    return Status::InvalidArgument(
        "decision_tree: training data covers a single class");
  }
  std::vector<std::size_t> all_rows(data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r) all_rows[r] = r;
  tree.build(data, std::move(all_rows), tree.label_col_, 0, options);
  return tree;
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t> rows,
                        std::size_t label_col, std::size_t depth,
                        const DecisionTreeOptions& options) {
  depth_ = std::max(depth_, depth);
  std::map<int, std::size_t> counts;
  for (std::size_t r : rows) {
    ++counts[static_cast<int>(data.at(r, label_col))];
  }
  const double impurity = gini(counts, rows.size());

  auto make_leaf = [&]() {
    Node leaf;
    leaf.label = majority(counts);
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size() - 1);
  };
  if (depth >= options.max_depth || rows.size() < options.min_samples_split ||
      impurity == 0.0) {
    return make_leaf();
  }

  // Exhaustive best split: for each feature, sort rows and scan midpoints.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = impurity;
  for (std::size_t f : feature_cols_) {
    std::vector<std::size_t> sorted = rows;
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return data.at(a, f) < data.at(b, f);
              });
    std::map<int, std::size_t> left_counts;
    std::map<int, std::size_t> right_counts = counts;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const int label = static_cast<int>(data.at(sorted[i], label_col));
      ++left_counts[label];
      if (--right_counts[label] == 0) right_counts.erase(label);
      const double v = data.at(sorted[i], f);
      const double next = data.at(sorted[i + 1], f);
      if (v == next) continue;  // no boundary between equal values
      const std::size_t nl = i + 1;
      const std::size_t nr = sorted.size() - nl;
      if (nl < options.min_samples_leaf || nr < options.min_samples_leaf) {
        continue;
      }
      const double score =
          (static_cast<double>(nl) * gini(left_counts, nl) +
           static_cast<double>(nr) * gini(right_counts, nr)) /
          static_cast<double>(sorted.size());
      if (score < best_score - 1e-12) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = (v + next) / 2.0;
      }
    }
  }
  if (best_feature < 0) return make_leaf();

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    if (data.at(r, static_cast<std::size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  // Reserve this node's slot before recursing so child indices are stable.
  nodes_.emplace_back();
  const int index = static_cast<int>(nodes_.size() - 1);
  const int left = build(data, std::move(left_rows), label_col, depth + 1,
                         options);
  const int right = build(data, std::move(right_rows), label_col, depth + 1,
                          options);
  Node& node = nodes_[static_cast<std::size_t>(index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return index;
}

int DecisionTree::predict(const std::vector<double>& features) const {
  CS_REQUIRE(features.size() == feature_cols_.size(),
             "decision_tree predict: feature arity mismatch");
  // Map the dense feature vector back to original column positions.
  std::size_t node = 0;
  for (;;) {
    const Node& n = nodes_[node];
    if (n.is_leaf()) return n.label;
    // n.feature is an original column index; find its dense slot.
    std::size_t slot = 0;
    for (std::size_t i = 0; i < feature_cols_.size(); ++i) {
      if (feature_cols_[i] == static_cast<std::size_t>(n.feature)) {
        slot = i;
        break;
      }
    }
    node = static_cast<std::size_t>(features[slot] <= n.threshold ? n.left
                                                                  : n.right);
  }
}

double DecisionTree::accuracy(const Dataset& data,
                              const std::string& label_column) const {
  if (data.empty()) return 0.0;
  const std::size_t label_col = data.column_index(label_column);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    std::vector<double> features;
    features.reserve(feature_cols_.size());
    for (std::size_t f : feature_cols_) features.push_back(data.at(r, f));
    if (predict(features) == static_cast<int>(data.at(r, label_col))) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

}  // namespace cshield::mining

// Lloyd's k-means with k-means++ seeding.
//
// SII-B names clustering as a canonical mining attack ("clustering
// algorithms can be used to categorize people or entities and are suitable
// for finding behavioral patterns"); the attack harness uses k-means as a
// second clustering attack alongside the hierarchical one, and E5 measures
// how its quality (ARI vs. ground truth) decays as chunks shrink.
#pragma once

#include <vector>

#include "mining/dataset.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace cshield::mining {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k centroids
  std::vector<int> labels;                     ///< per-row assignment
  double inertia = 0.0;  ///< sum of squared distances to assigned centroid
  std::size_t iterations = 0;
  bool converged = false;
};

/// Clusters the dataset's rows into k groups. Requires k >= 1 and
/// num_rows >= k (kInvalidArgument otherwise -- the "too little data at this
/// provider" mining-failure case).
[[nodiscard]] Result<KMeansResult> kmeans(const Dataset& data, std::size_t k,
                                          std::size_t max_iterations = 100,
                                          std::uint64_t seed = 0x5EED);

}  // namespace cshield::mining

#include "workload/gps.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

namespace cshield::workload {
namespace {

/// Dhaka-area neighbourhood centres (lat, lon) used as community anchors.
constexpr double kCommunityCentres[][2] = {
    {23.7104, 90.4074},  // Old Dhaka
    {23.7925, 90.4078},  // Gulshan
    {23.7561, 90.3872},  // Dhanmondi
    {23.8759, 90.3795},  // Uttara
    {23.7298, 90.4277},  // Motijheel
    {23.8151, 90.4255},  // Badda
};
constexpr std::size_t kNumCentres = std::size(kCommunityCentres);

struct UserProfile {
  int community = 0;
  double home_lat = 0.0, home_lon = 0.0;
  double work_lat = 0.0, work_lon = 0.0;
};

}  // namespace

GpsTraces generate_gps(const GpsConfig& config) {
  CS_REQUIRE(config.num_users > 0, "generate_gps: num_users must be > 0");
  CS_REQUIRE(config.num_communities > 0 &&
                 config.num_communities <= kNumCentres,
             "generate_gps: unsupported community count");
  Rng rng(config.seed);

  // Assign users round-robin to communities; home near the community
  // centre, work in the central business district area for everyone (so
  // day-time positions discriminate less than night-time ones).
  std::vector<UserProfile> users(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    UserProfile& p = users[u];
    p.community = static_cast<int>(u % config.num_communities);
    const auto& centre = kCommunityCentres[static_cast<std::size_t>(p.community)];
    p.home_lat = centre[0] + rng.normal(0.0, 0.006);
    p.home_lon = centre[1] + rng.normal(0.0, 0.006);
    p.work_lat = 23.7298 + rng.normal(0.0, 0.010);  // Motijheel CBD
    p.work_lon = 90.4277 + rng.normal(0.0, 0.010);
  }

  GpsTraces traces;
  traces.observations =
      mining::Dataset({"user", "day", "hour", "lat", "lon"});
  traces.community_of_user.reserve(config.num_users);
  for (const auto& p : users) traces.community_of_user.push_back(p.community);

  // ~12 observations/day -> observations_per_user spans ~250 days. Rows are
  // emitted TIME-MAJOR (day, then user, then slot): an LBS backend appends
  // fixes as they arrive across its whole user base, so a contiguous chunk
  // of the stored file is a time window over every user -- the shape of the
  // paper's 500-observation fragments.
  constexpr std::size_t kObsPerDay = 12;
  const std::size_t days =
      (config.observations_per_user + kObsPerDay - 1) / kObsPerDay;

  // Per-user excursion state: while away, off-hours life moves to a
  // temporary anchor elsewhere in the city for a geometric number of days.
  struct Excursion {
    int days_left = 0;
    double lat = 0.0;
    double lon = 0.0;
  };
  std::vector<Excursion> exc(config.num_users);

  for (std::size_t day = 0; day < days; ++day) {
    for (std::size_t u = 0; u < config.num_users; ++u) {
      const UserProfile& p = users[u];
      Excursion& e = exc[u];
      if (e.days_left > 0) {
        --e.days_left;
      } else if (config.excursion_start_prob > 0.0 &&
                 rng.chance(config.excursion_start_prob)) {
        e.days_left = 1 + static_cast<int>(
                              rng.exponential(1.0 / config.excursion_mean_days));
        e.lat = rng.uniform(23.69, 23.90);
        e.lon = rng.uniform(90.33, 90.46);
      }
      const bool away = e.days_left > 0;
      const double base_lat = away ? e.lat : p.home_lat;
      const double base_lon = away ? e.lon : p.home_lon;
      const std::size_t slots = std::min(
          kObsPerDay, config.observations_per_user - day * kObsPerDay);
      for (std::size_t slot = 0; slot < slots; ++slot) {
        const double hour = 2.0 * static_cast<double>(slot);
        double lat = 0.0;
        double lon = 0.0;
        if (rng.chance(config.errand_prob)) {
          // Heavy-tailed errand anywhere in greater Dhaka.
          lat = rng.uniform(23.69, 23.90);
          lon = rng.uniform(90.33, 90.46);
        } else if (!away && hour >= 9.0 && hour < 18.0 && rng.chance(0.85)) {
          lat = p.work_lat + rng.normal(0.0, config.anchor_noise_deg);
          lon = p.work_lon + rng.normal(0.0, config.anchor_noise_deg);
        } else {
          lat = base_lat + rng.normal(0.0, config.anchor_noise_deg);
          lon = base_lon + rng.normal(0.0, config.anchor_noise_deg);
        }
        traces.observations.add_row({static_cast<double>(u),
                                     static_cast<double>(day), hour, lat,
                                     lon});
      }
    }
  }
  return traces;
}

namespace {

double median_of(std::vector<double>& v) {
  CS_REQUIRE(!v.empty(), "median of empty vector");
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

mining::Dataset gps_user_features(const mining::Dataset& observations,
                                  std::size_t num_users) {
  const std::size_t user_col = observations.column_index("user");
  const std::size_t hour_col = observations.column_index("hour");
  const std::size_t lat_col = observations.column_index("lat");
  const std::size_t lon_col = observations.column_index("lon");

  struct Acc {
    std::vector<double> night_lats, night_lons;
    std::vector<double> lats, lons;
  };
  std::vector<Acc> acc(num_users);

  for (std::size_t r = 0; r < observations.num_rows(); ++r) {
    const auto uid = static_cast<std::size_t>(observations.at(r, user_col));
    if (uid >= num_users) continue;
    const double hour = observations.at(r, hour_col);
    const double lat = observations.at(r, lat_col);
    const double lon = observations.at(r, lon_col);
    Acc& a = acc[uid];
    a.lats.push_back(lat);
    a.lons.push_back(lon);
    if (hour < 7.0 || hour >= 21.0) {
      a.night_lats.push_back(lat);
      a.night_lons.push_back(lon);
    }
  }

  mining::Dataset features({"home_lat", "home_lon"});
  for (std::size_t u = 0; u < num_users; ++u) {
    Acc& a = acc[u];
    if (a.lats.empty()) {
      features.add_row({0, 0});
      continue;
    }
    // Home estimate: coordinate-wise median of off-hours fixes (fall back
    // to all fixes when the fragment has no night observations).
    const double home_lat =
        median_of(a.night_lats.empty() ? a.lats : a.night_lats);
    const double home_lon =
        median_of(a.night_lons.empty() ? a.lons : a.night_lons);
    features.add_row({home_lat, home_lon});
  }
  return features;
}

}  // namespace cshield::workload

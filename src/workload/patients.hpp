// Synthetic health-record workload.
//
// SII-A motivates the system with "companies dealing with financial,
// educational, health or legal issues of people" and information like "the
// likelihood of an individual getting a terminal illness". This generator
// produces patient records with clinical features and a planted risk-class
// structure, so the classification attacks (naive Bayes, decision tree,
// k-NN) have a ground truth to recover -- and lose, once the table is
// fragmented.
//
// Columns: {age, bmi, systolic_bp, glucose, cholesterol, risk} with risk in
// {0 = low, 1 = elevated, 2 = high} generated from a latent score over the
// clinical features plus noise.
#pragma once

#include <cstdint>
#include <vector>

#include "mining/dataset.hpp"
#include "util/random.hpp"

namespace cshield::workload {

struct PatientConfig {
  std::size_t num_patients = 2000;
  double label_noise = 0.05;  ///< fraction of randomly re-labelled records
  std::uint64_t seed = 0x9A71E7;
};

[[nodiscard]] const std::vector<std::string>& patient_columns();

/// Generates the record table; the "risk" column is the classification
/// target.
[[nodiscard]] mining::Dataset generate_patients(const PatientConfig& config);

}  // namespace cshield::workload

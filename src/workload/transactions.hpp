// Market-basket transaction workload for the association-rule attack.
//
// SII-B cites association rule mining over "large number of business
// transaction records" as a privacy threat. This generator plants a set of
// ground-truth item bundles (co-purchase patterns); transactions draw one
// or more bundles plus noise items. With the full database, Apriori
// recovers the planted rules; with one provider's fragment, support counts
// starve and recall collapses -- the E5 measurement.
#pragma once

#include <cstdint>
#include <vector>

#include "mining/apriori.hpp"
#include "mining/dataset.hpp"
#include "util/random.hpp"

namespace cshield::workload {

struct TransactionConfig {
  std::size_t num_transactions = 2000;
  std::uint32_t num_items = 60;       ///< catalogue size
  std::size_t num_bundles = 6;        ///< planted co-purchase patterns
  std::size_t bundle_size = 3;        ///< items per pattern
  double bundle_prob = 0.30;          ///< chance a transaction uses a bundle
  std::size_t noise_items_mean = 3;   ///< random filler items
  std::uint64_t seed = 0xBA5CE7;
};

struct TransactionWorkload {
  std::vector<mining::Transaction> transactions;
  std::vector<std::vector<std::uint32_t>> planted_bundles;  ///< sorted item sets
};

[[nodiscard]] TransactionWorkload generate_transactions(
    const TransactionConfig& config);

/// Encodes transactions as a Dataset for distribution through the system:
/// columns {txn, item}, one row per (transaction, item) pair. Row order is
/// transaction-major so contiguous chunks hold whole leading transactions.
[[nodiscard]] mining::Dataset transactions_to_dataset(
    const std::vector<mining::Transaction>& transactions);

/// Inverse of transactions_to_dataset (tolerates missing transactions --
/// the fragment case; partially-present transactions keep the items seen).
[[nodiscard]] std::vector<mining::Transaction> dataset_to_transactions(
    const mining::Dataset& data);

}  // namespace cshield::workload

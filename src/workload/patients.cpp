#include "workload/patients.hpp"

#include <algorithm>

namespace cshield::workload {

const std::vector<std::string>& patient_columns() {
  static const std::vector<std::string> kColumns = {
      "age", "bmi", "systolic_bp", "glucose", "cholesterol", "risk"};
  return kColumns;
}

mining::Dataset generate_patients(const PatientConfig& config) {
  Rng rng(config.seed);
  mining::Dataset d(patient_columns());
  for (std::size_t i = 0; i < config.num_patients; ++i) {
    const double age = std::clamp(rng.normal(52.0, 16.0), 18.0, 95.0);
    const double bmi = std::clamp(rng.normal(26.5, 4.5), 15.0, 50.0);
    const double bp = std::clamp(
        rng.normal(112.0 + 0.35 * age, 12.0), 85.0, 220.0);
    const double glucose = std::clamp(
        rng.normal(88.0 + 0.8 * std::max(0.0, bmi - 25.0), 14.0), 60.0,
        320.0);
    const double chol = std::clamp(
        rng.normal(165.0 + 0.6 * age + 1.2 * std::max(0.0, bmi - 25.0), 25.0),
        100.0, 400.0);

    // Latent risk score: the "pattern" a mining attack extracts.
    const double score = 0.028 * (age - 50.0) + 0.060 * (bmi - 26.0) +
                         0.018 * (bp - 125.0) + 0.016 * (glucose - 95.0) +
                         0.006 * (chol - 190.0) + rng.normal(0.0, 0.35);
    double risk = 0.0;
    if (score > 0.9) {
      risk = 2.0;
    } else if (score > 0.0) {
      risk = 1.0;
    }
    if (rng.chance(config.label_noise)) {
      risk = static_cast<double>(rng.below(3));
    }
    d.add_row({age, bmi, bp, glucose, chol, risk});
  }
  return d;
}

}  // namespace cshield::workload

#include "workload/bidding.hpp"

#include <algorithm>

namespace cshield::workload {

const std::vector<std::string>& bidding_columns() {
  static const std::vector<std::string> kColumns = {
      "Year", "Company", "Materials", "Production", "Maintenance", "Bid"};
  return kColumns;
}

const std::vector<std::string>& bidding_features() {
  static const std::vector<std::string> kFeatures = {"Materials", "Production",
                                                     "Maintenance"};
  return kFeatures;
}

mining::Dataset hercules_table() {
  // Table IV, verbatim. Company: Greece = 0, Rome = 1.
  mining::Dataset d(bidding_columns());
  d.add_row({2001, 0, 1300, 600, 3200, 18111});
  d.add_row({2002, 1, 1400, 600, 3300, 18627});
  d.add_row({2002, 0, 1900, 800, 3200, 19337});
  d.add_row({2004, 1, 1700, 900, 3500, 20078});
  d.add_row({2005, 0, 1700, 700, 3100, 18383});
  d.add_row({2006, 1, 1800, 800, 3300, 19600});
  d.add_row({2009, 0, 1500, 1000, 3600, 20320});
  d.add_row({2010, 1, 1700, 900, 3700, 20667});
  d.add_row({2010, 0, 1800, 700, 3500, 19937});
  d.add_row({2011, 1, 2100, 800, 3700, 21135});
  d.add_row({2011, 0, 1900, 1100, 3600, 20945});
  d.add_row({2011, 1, 2000, 1000, 3700, 21199});
  return d;
}

mining::Dataset BiddingGenerator::generate(std::size_t rows,
                                           double noise_stddev) {
  mining::Dataset d(bidding_columns());
  double materials = 1300.0;
  double production = 600.0;
  double maintenance = 3200.0;
  int year = 2001;
  for (std::size_t r = 0; r < rows; ++r) {
    // Mild upward drift with noise, clamped to plausible tender ranges.
    materials = std::clamp(materials + rng_.normal(15.0, 120.0), 800.0, 4000.0);
    production = std::clamp(production + rng_.normal(10.0, 80.0), 300.0, 2500.0);
    maintenance =
        std::clamp(maintenance + rng_.normal(12.0, 100.0), 2000.0, 6000.0);
    const double company = rng_.chance(0.5) ? 1.0 : 0.0;
    const double bid = truth_.coefficients[0] * materials +
                       truth_.coefficients[1] * production +
                       truth_.coefficients[2] * maintenance +
                       truth_.intercept +
                       (noise_stddev > 0.0 ? rng_.normal(0.0, noise_stddev)
                                           : 0.0);
    d.add_row({static_cast<double>(year), company, materials, production,
               maintenance, bid});
    if (rng_.chance(0.6)) ++year;
  }
  return d;
}

}  // namespace cshield::workload

// The Hercules bidding-history workload (Table IV and SVII-A).
//
// Two forms:
//  * hercules_table(): the paper's exact 12-row table, so
//    bench_table4_regression reproduces the published equations verbatim;
//  * BiddingGenerator: a scalable synthetic version drawn from the same
//    ground-truth formula bid = 1.4*Materials + 1.5*Production +
//    3.1*Maintenance + 5436 (+ noise), for sweeps over row counts and
//    provider counts.
//
// Columns: Year, Company (0 = Greece, 1 = Rome), Materials, Production,
// Maintenance, Bid.
#pragma once

#include <vector>

#include "mining/dataset.hpp"
#include "mining/regression.hpp"
#include "util/random.hpp"

namespace cshield::workload {

/// Column names shared by both forms.
[[nodiscard]] const std::vector<std::string>& bidding_columns();

/// Feature names used when fitting the bid model.
[[nodiscard]] const std::vector<std::string>& bidding_features();

/// The exact 12 rows of Table IV.
[[nodiscard]] mining::Dataset hercules_table();

/// Ground truth the synthetic generator plants (and Table IV approximates):
/// coefficients for {Materials, Production, Maintenance} plus intercept.
struct BiddingGroundTruth {
  std::vector<double> coefficients{1.4, 1.5, 3.1};
  double intercept = 5436.0;
};

class BiddingGenerator {
 public:
  explicit BiddingGenerator(std::uint64_t seed = 0xB1DD1E)
      : rng_(seed) {}

  /// Generates `rows` bidding records. Cost inputs follow mild year-on-year
  /// drift like the paper's table; noise_stddev perturbs the planted bid
  /// formula (0 = exact).
  [[nodiscard]] mining::Dataset generate(std::size_t rows,
                                         double noise_stddev = 120.0);

  [[nodiscard]] const BiddingGroundTruth& ground_truth() const {
    return truth_;
  }

 private:
  Rng rng_;
  BiddingGroundTruth truth_;
};

}  // namespace cshield::workload

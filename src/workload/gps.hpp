// Synthetic GPS mobility workload standing in for the paper's real traces.
//
// The paper's SVIII clusters "30 people living in Dhaka city" from GPS
// observations collected by an Android location-based-service app: Figure 4
// uses >3000 observations per user, Figures 5-6 use 500-observation
// fragments, and "many entities have moved from their original cluster".
// We cannot obtain those traces, so this generator produces the closest
// synthetic equivalent (see DESIGN.md): each user lives in one of a few
// Dhaka neighbourhoods (latent community = clustering ground truth), moves
// between a home anchor, a work anchor and heavy-tailed errand locations on
// a daily rhythm, and emits chronologically-ordered observations. The
// heavy-tailed errands make small observation samples noisy, which is the
// property that makes fragment-level clustering churn.
#pragma once

#include <cstdint>
#include <vector>

#include "mining/dataset.hpp"
#include "util/random.hpp"

namespace cshield::workload {

struct GpsConfig {
  std::size_t num_users = 30;
  std::size_t observations_per_user = 3000;
  std::size_t num_communities = 4;  ///< latent neighbourhoods (ground truth)
  double anchor_noise_deg = 0.004;  ///< GPS jitter around an anchor (~400 m)
  double errand_prob = 0.12;        ///< heavy-tailed city-wide trips
  /// Multi-day excursions (family visits, work rotations): each day a user
  /// may leave for a temporary anchor elsewhere in the city. Over the full
  /// ~250-day trace these average out; a 500-observation (~42-day) fragment
  /// can be dominated by one excursion -- the mechanism that makes entities
  /// "move from their original cluster" in the Figs. 5-6 reproduction.
  double excursion_start_prob = 0.02;  ///< per day, when not excursioning
  double excursion_mean_days = 10.0;
  std::uint64_t seed = 0xD4AC4;  ///< Dhaka
};

/// Observation-level table: columns {user, day, hour, lat, lon}. Rows are
/// ordered chronologically within each user (day-major), so a contiguous
/// row fragment is a time window -- matching how the distributor chunks the
/// file and how the paper took its 500-observation fragments.
struct GpsTraces {
  mining::Dataset observations;      ///< one row per observation
  std::vector<int> community_of_user;  ///< ground-truth community per user
};

[[nodiscard]] GpsTraces generate_gps(const GpsConfig& config);

/// Per-user profile computed from (a subset of) observations:
/// {home_lat, home_lon}. The home anchor is the attacker's standard
/// estimator -- the coordinate-wise MEDIAN of off-hours (night) fixes --
/// which shrugs off errand/excursion contamination given months of data but
/// flips to an excursion anchor when a short time-window fragment is
/// dominated by one trip. Returns one row per user id in [0, num_users);
/// users with no observations get all-zero rows (the adversary knows
/// nothing about them). This is the profile the clustering attack runs on
/// -- "creating a comprehensive profile of a person" (SII-B).
[[nodiscard]] mining::Dataset gps_user_features(
    const mining::Dataset& observations, std::size_t num_users);

}  // namespace cshield::workload

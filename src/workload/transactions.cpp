#include "workload/transactions.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace cshield::workload {

TransactionWorkload generate_transactions(const TransactionConfig& config) {
  CS_REQUIRE(config.num_items >= config.num_bundles * config.bundle_size,
             "generate_transactions: catalogue too small for bundles");
  Rng rng(config.seed);

  TransactionWorkload out;
  // Disjoint planted bundles from the front of the catalogue, so they are
  // easy to identify in tests and rule keys.
  out.planted_bundles.reserve(config.num_bundles);
  std::uint32_t next_item = 0;
  for (std::size_t b = 0; b < config.num_bundles; ++b) {
    std::vector<std::uint32_t> bundle;
    for (std::size_t i = 0; i < config.bundle_size; ++i) {
      bundle.push_back(next_item++);
    }
    out.planted_bundles.push_back(std::move(bundle));
  }

  out.transactions.reserve(config.num_transactions);
  for (std::size_t t = 0; t < config.num_transactions; ++t) {
    std::set<std::uint32_t> items;
    if (rng.chance(config.bundle_prob)) {
      const auto& bundle =
          out.planted_bundles[rng.below(out.planted_bundles.size())];
      items.insert(bundle.begin(), bundle.end());
    }
    const std::size_t noise =
        1 + rng.below(std::max<std::size_t>(1, config.noise_items_mean * 2));
    for (std::size_t i = 0; i < noise; ++i) {
      items.insert(static_cast<std::uint32_t>(rng.below(config.num_items)));
    }
    out.transactions.emplace_back(items.begin(), items.end());
  }
  return out;
}

mining::Dataset transactions_to_dataset(
    const std::vector<mining::Transaction>& transactions) {
  mining::Dataset d({"txn", "item"});
  for (std::size_t t = 0; t < transactions.size(); ++t) {
    for (std::uint32_t item : transactions[t]) {
      d.add_row({static_cast<double>(t), static_cast<double>(item)});
    }
  }
  return d;
}

std::vector<mining::Transaction> dataset_to_transactions(
    const mining::Dataset& data) {
  const std::size_t txn_col = data.column_index("txn");
  const std::size_t item_col = data.column_index("item");
  std::map<std::uint64_t, std::set<std::uint32_t>> grouped;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    grouped[static_cast<std::uint64_t>(data.at(r, txn_col))].insert(
        static_cast<std::uint32_t>(data.at(r, item_col)));
  }
  std::vector<mining::Transaction> out;
  out.reserve(grouped.size());
  for (const auto& [txn, items] : grouped) {
    (void)txn;
    out.emplace_back(items.begin(), items.end());
  }
  return out;
}

}  // namespace cshield::workload

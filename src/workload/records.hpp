// Row-oriented binary record codec: the bridge between datasets and bytes.
//
// The distributor stores opaque byte chunks; the mining layer wants
// Datasets. RecordCodec fixes a row-aligned wire format (little-endian
// doubles, one fixed-width record per row) so that
//   * a file is the concatenation of whole records,
//   * any chunk whose size is a multiple of the record width decodes to a
//     valid row subset -- which is exactly what an attacker does with the
//     chunks found at a compromised provider, and
//   * chunk sizes can be row-aligned by the core layer so fragmentation
//     never splits a record (the paper's example hands whole table rows to
//     each provider).
//
// A self-describing header variant (serialize_dataset) is provided for
// whole-file round trips in examples and tests.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "mining/dataset.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace cshield::workload {

/// Fixed-schema row codec.
class RecordCodec {
 public:
  explicit RecordCodec(std::vector<std::string> column_names)
      : columns_(std::move(column_names)) {
    CS_REQUIRE(!columns_.empty(), "RecordCodec needs at least one column");
  }

  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }

  /// Bytes per encoded row.
  [[nodiscard]] std::size_t record_size() const {
    return columns_.size() * sizeof(double);
  }

  /// Encodes every row of `data` (schema must match by order).
  [[nodiscard]] Bytes encode(const mining::Dataset& data) const;

  /// Decodes a buffer of whole records into a Dataset. Fails when the
  /// buffer length is not a multiple of record_size().
  [[nodiscard]] Result<mining::Dataset> decode(BytesView bytes) const;

  /// Decodes as many *whole* leading records as the buffer holds,
  /// discarding a trailing partial record -- the lenient path an adversary
  /// uses on chunks that may cut a record at the end.
  [[nodiscard]] mining::Dataset decode_prefix(BytesView bytes) const;

 private:
  std::vector<std::string> columns_;
};

/// Self-describing serialization: magic, column names, row count, rows.
[[nodiscard]] Bytes serialize_dataset(const mining::Dataset& data);

/// Inverse of serialize_dataset.
[[nodiscard]] Result<mining::Dataset> deserialize_dataset(BytesView bytes);

}  // namespace cshield::workload

#include "workload/records.hpp"

#include <cstdint>

namespace cshield::workload {
namespace {

constexpr std::uint32_t kMagic = 0xC5D47A5E;

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_double(Bytes& out, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(d));
  put_u64(out, bits);
}

/// Cursor-based reader returning false on underflow.
class Reader {
 public:
  explicit Reader(BytesView b) : b_(b) {}

  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > b_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(b_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > b_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(b_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool real(double& d) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&d, &bits, sizeof(d));
    return true;
  }

  bool str(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (pos_ + len > b_.size()) return false;
    s.assign(reinterpret_cast<const char*>(b_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return b_.size() - pos_; }

 private:
  BytesView b_;
  std::size_t pos_ = 0;
};

}  // namespace

Bytes RecordCodec::encode(const mining::Dataset& data) const {
  CS_REQUIRE(data.num_cols() == columns_.size(),
             "RecordCodec::encode schema arity mismatch");
  Bytes out;
  out.reserve(data.num_rows() * record_size());
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      put_double(out, data.at(r, c));
    }
  }
  return out;
}

Result<mining::Dataset> RecordCodec::decode(BytesView bytes) const {
  if (bytes.size() % record_size() != 0) {
    return Status::InvalidArgument(
        "RecordCodec::decode: buffer is not a whole number of records (" +
        std::to_string(bytes.size()) + " bytes, record=" +
        std::to_string(record_size()) + ")");
  }
  return decode_prefix(bytes);
}

mining::Dataset RecordCodec::decode_prefix(BytesView bytes) const {
  mining::Dataset out(columns_);
  Reader reader(bytes);
  const std::size_t rows = bytes.size() / record_size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row(columns_.size());
    for (auto& cell : row) {
      const bool ok = reader.real(cell);
      CS_REQUIRE(ok, "decode_prefix underflow on whole record");
    }
    out.add_row(std::move(row));
  }
  return out;
}

Bytes serialize_dataset(const mining::Dataset& data) {
  Bytes out;
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(data.num_cols()));
  for (const auto& name : data.column_names()) {
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    append(out, BytesView(reinterpret_cast<const std::uint8_t*>(name.data()),
                          name.size()));
  }
  put_u64(out, data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    for (std::size_t c = 0; c < data.num_cols(); ++c) {
      put_double(out, data.at(r, c));
    }
  }
  return out;
}

Result<mining::Dataset> deserialize_dataset(BytesView bytes) {
  Reader reader(bytes);
  std::uint32_t magic = 0;
  if (!reader.u32(magic) || magic != kMagic) {
    return Status::InvalidArgument("deserialize_dataset: bad magic");
  }
  std::uint32_t ncols = 0;
  if (!reader.u32(ncols) || ncols == 0 ||
      static_cast<std::size_t>(ncols) > reader.remaining()) {
    return Status::InvalidArgument("deserialize_dataset: bad column count");
  }
  std::vector<std::string> names(ncols);
  for (auto& n : names) {
    if (!reader.str(n)) {
      return Status::InvalidArgument("deserialize_dataset: truncated names");
    }
  }
  std::uint64_t nrows = 0;
  if (!reader.u64(nrows)) {
    return Status::InvalidArgument("deserialize_dataset: truncated row count");
  }
  mining::Dataset out(std::move(names));
  for (std::uint64_t r = 0; r < nrows; ++r) {
    std::vector<double> row(ncols);
    for (auto& cell : row) {
      if (!reader.real(cell)) {
        return Status::InvalidArgument("deserialize_dataset: truncated rows");
      }
    }
    out.add_row(std::move(row));
  }
  return out;
}

}  // namespace cshield::workload

// Consistent-hash ring for the client-side distributor variant (SIV-C).
//
// The paper proposes eliminating the third-party Cloud Data Distributor by
// letting clients map <filename, chunk serial> pairs to providers with a
// "CAN or CHORD like" hash table built from a downloadable provider list.
// This is that structure: a CHORD-style identifier circle where each
// provider owns the arc preceding its virtual nodes. Virtual nodes smooth
// the load split; lookups are O(log n) binary searches on the sorted ring.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "util/hash.hpp"
#include "util/status.hpp"

namespace cshield::dht {

/// One ring entry: a virtual node belonging to a provider.
struct RingNode {
  std::uint64_t position;  ///< point on the 2^64 identifier circle
  ProviderIndex provider;
};

class HashRing {
 public:
  /// `virtual_nodes` ring points are created per provider join.
  explicit HashRing(std::size_t virtual_nodes = 64)
      : virtual_nodes_(virtual_nodes) {
    CS_REQUIRE(virtual_nodes_ > 0, "HashRing needs >= 1 virtual node");
  }

  /// Adds a provider under a stable name (ring positions derive from the
  /// name so every client that downloads the same provider list builds the
  /// identical ring -- the property SIV-C relies on).
  void add_provider(ProviderIndex provider, std::string_view name) {
    for (std::size_t v = 0; v < virtual_nodes_; ++v) {
      const std::uint64_t pos =
          mix64(hash_combine(fnv1a64(name), v + 1));
      nodes_.push_back(RingNode{pos, provider});
    }
    std::sort(nodes_.begin(), nodes_.end(),
              [](const RingNode& a, const RingNode& b) {
                return a.position < b.position ||
                       (a.position == b.position && a.provider < b.provider);
              });
  }

  /// Removes every virtual node of a provider (provider leaves the market).
  void remove_provider(ProviderIndex provider) {
    nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                                [provider](const RingNode& n) {
                                  return n.provider == provider;
                                }),
                 nodes_.end());
  }

  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Successor lookup: the provider owning `key`'s arc.
  [[nodiscard]] ProviderIndex lookup(std::uint64_t key) const {
    CS_REQUIRE(!nodes_.empty(), "lookup on empty ring");
    auto it = std::lower_bound(
        nodes_.begin(), nodes_.end(), key,
        [](const RingNode& n, std::uint64_t k) { return n.position < k; });
    if (it == nodes_.end()) it = nodes_.begin();  // wrap around the circle
    return it->provider;
  }

  /// The first `count` *distinct* providers clockwise from the key -- the
  /// replica/stripe set for a chunk.
  [[nodiscard]] std::vector<ProviderIndex> lookup_many(std::uint64_t key,
                                                       std::size_t count) const {
    CS_REQUIRE(!nodes_.empty(), "lookup_many on empty ring");
    std::vector<ProviderIndex> out;
    auto it = std::lower_bound(
        nodes_.begin(), nodes_.end(), key,
        [](const RingNode& n, std::uint64_t k) { return n.position < k; });
    for (std::size_t step = 0; step < nodes_.size() && out.size() < count;
         ++step) {
      if (it == nodes_.end()) it = nodes_.begin();
      if (std::find(out.begin(), out.end(), it->provider) == out.end()) {
        out.push_back(it->provider);
      }
      ++it;
    }
    return out;
  }

  /// Hash for a <filename, serial> chunk coordinate (SIV-C's map key).
  [[nodiscard]] static std::uint64_t chunk_key(std::string_view filename,
                                               std::uint64_t serial) {
    return mix64(hash_combine(fnv1a64(filename), serial));
  }

  /// Fraction of the keyspace owned per provider (load-balance metric).
  [[nodiscard]] std::map<ProviderIndex, double> ownership() const {
    std::map<ProviderIndex, double> share;
    if (nodes_.empty()) return share;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const RingNode& cur = nodes_[i];
      const std::uint64_t prev =
          i == 0 ? nodes_.back().position : nodes_[i - 1].position;
      // Arc length from predecessor to this node (wrapping).
      const std::uint64_t arc = cur.position - prev;  // mod 2^64 wrap is free
      share[cur.provider] +=
          static_cast<double>(arc) / 18446744073709551615.0;
    }
    return share;
  }

 private:
  std::size_t virtual_nodes_;
  std::vector<RingNode> nodes_;
};

}  // namespace cshield::dht

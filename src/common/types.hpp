// Domain vocabulary shared by the storage, core and attack layers.
//
// The paper fixes a 4-level sensitivity scale for both data and providers
// (SIV-A): PL0 public, PL1 low, PL2 moderate, PL3 highly sensitive. Provider
// cost levels mirror that with "the higher the cost level, the more costly
// the provider". Virtual ids are the only name a provider ever sees for a
// chunk -- they carry no client identity.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/status.hpp"

namespace cshield {

/// Mining-sensitivity level of a file/chunk, or trustworthiness of a
/// provider. Ordered: higher = more sensitive / more trustworthy.
enum class PrivacyLevel : std::uint8_t {
  kPublic = 0,     ///< PL0 -- accessible to everyone including the adversary
  kLow = 1,        ///< PL1 -- no private info, but pattern-minable
  kModerate = 2,   ///< PL2 -- protected financial/legal/health data
  kHigh = 3,       ///< PL3 -- private data; leakage is disastrous
};

inline constexpr int kNumPrivacyLevels = 4;

[[nodiscard]] constexpr int level_index(PrivacyLevel pl) {
  return static_cast<int>(pl);
}

[[nodiscard]] inline PrivacyLevel privacy_level_from_int(int v) {
  CS_REQUIRE(v >= 0 && v < kNumPrivacyLevels, "privacy level outside 0..3");
  return static_cast<PrivacyLevel>(v);
}

[[nodiscard]] constexpr std::string_view privacy_level_name(PrivacyLevel pl) {
  switch (pl) {
    case PrivacyLevel::kPublic: return "PL0-public";
    case PrivacyLevel::kLow: return "PL1-low";
    case PrivacyLevel::kModerate: return "PL2-moderate";
    case PrivacyLevel::kHigh: return "PL3-high";
  }
  return "PL?-invalid";
}

/// A password at privilege p may read a chunk at level c iff p >= c (SV).
[[nodiscard]] constexpr bool privileged_for(PrivacyLevel password_level,
                                            PrivacyLevel chunk_level) {
  return level_index(password_level) >= level_index(chunk_level);
}

/// How a chunk's payload is protected against mining at the providers
/// beyond dispersal itself. Values are on-disk (Table III); append-only,
/// never renumber. kPartialAes is 0 so pre-ProtectionMode metadata images
/// (which carry no mode field) decode to it -- with zero encrypted bytes
/// recorded, making the legacy read path a no-op.
enum class ProtectionMode : std::uint8_t {
  /// AES-128-CTR over a PL-dependent prefix of each chunk (the paper's
  /// "encrypt a portion of it"); the legacy/default wire value.
  kPartialAes = 0,
  /// Misleading-bytes chaff only (SVII-D) -- the pre-PR-8 behavior.
  kMisleadingBytes = 1,
  /// Key-less fragment entanglement (Kapusta-Memmi fast fragmentation):
  /// GF(256) mixing sweeps tie every data shard to every other, so no
  /// k-1-of-k provider coalition can invert its view.
  kFragmentation = 2,
};

inline constexpr int kNumProtectionModes = 3;

[[nodiscard]] constexpr std::string_view protection_mode_name(
    ProtectionMode m) {
  switch (m) {
    case ProtectionMode::kPartialAes: return "partial-aes";
    case ProtectionMode::kMisleadingBytes: return "misleading";
    case ProtectionMode::kFragmentation: return "fragmentation";
  }
  return "invalid";
}

[[nodiscard]] inline ProtectionMode protection_mode_from_int(int v) {
  CS_REQUIRE(v >= 0 && v < kNumProtectionModes,
             "protection mode outside 0..2");
  return static_cast<ProtectionMode>(v);
}

/// Provider storage-cost tier, 0 (cheapest) .. 3 (most expensive). The
/// distributor prefers the cheaper provider among equally-trusted ones.
enum class CostLevel : std::uint8_t { kCheapest = 0, kCheap = 1, kPricey = 2, kPremium = 3 };

inline constexpr int kNumCostLevels = 4;

[[nodiscard]] constexpr int level_index(CostLevel cl) {
  return static_cast<int>(cl);
}

/// Runtime membership state of a provider in the fleet (the dynamic
/// topology of §IV-C: providers join, drain and leave without a restart).
/// Values are on-disk (metadata image v3 provider rows and kBeginMigrate /
/// kCommitMigrate journal records); append-only, never renumber.
enum class ProviderLifecycle : std::uint8_t {
  /// Registered but not yet placed: a joiner receives migrated shards while
  /// invisible to placement; activated once it holds its ring share.
  kJoining = 0,
  kActive = 1,  ///< full member: placement targets it, reads hit it
  /// Excluded from new placement but still readable while the migrator
  /// moves its shards off; the state a crash mid-drain persists.
  kDraining = 2,
  kDecommissioned = 3,  ///< fully out: holds no data, never addressed
};

inline constexpr int kNumProviderLifecycles = 4;

[[nodiscard]] constexpr std::string_view provider_lifecycle_name(
    ProviderLifecycle s) {
  switch (s) {
    case ProviderLifecycle::kJoining: return "joining";
    case ProviderLifecycle::kActive: return "active";
    case ProviderLifecycle::kDraining: return "draining";
    case ProviderLifecycle::kDecommissioned: return "decommissioned";
  }
  return "invalid";
}

[[nodiscard]] inline ProviderLifecycle provider_lifecycle_from_int(int v) {
  CS_REQUIRE(v >= 0 && v < kNumProviderLifecycles,
             "provider lifecycle outside 0..3");
  return static_cast<ProviderLifecycle>(v);
}

/// Opaque 64-bit chunk identity; the only key providers ever see.
using VirtualId = std::uint64_t;

/// Index of a provider row in the Cloud Provider Table / ProviderRegistry.
using ProviderIndex = std::size_t;

inline constexpr ProviderIndex kNoProvider = static_cast<ProviderIndex>(-1);

}  // namespace cshield

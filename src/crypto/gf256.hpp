// GF(2^8) arithmetic for the RAID-6 Reed-Solomon code.
//
// The field is defined by the reduction polynomial x^8+x^4+x^3+x^2+1 (0x11D),
// the conventional choice for storage erasure codes (it has 0x02 as a
// primitive element, so RAID-6's Q parity can use powers of the generator).
// Note this is deliberately NOT the AES polynomial 0x11B; AES carries its own
// field arithmetic in aes.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/status.hpp"

namespace cshield::gf256 {

inline constexpr unsigned kPoly = 0x11D;  ///< reduction polynomial

/// Carry-less multiply-and-reduce; reference implementation used to build the
/// log/antilog tables and in tests as the ground truth.
[[nodiscard]] constexpr std::uint8_t mul_slow(std::uint8_t a, std::uint8_t b) {
  unsigned acc = 0;
  unsigned aa = a;
  unsigned bb = b;
  while (bb != 0) {
    if (bb & 1U) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100U) aa ^= kPoly;
    bb >>= 1;
  }
  return static_cast<std::uint8_t>(acc);
}

namespace detail {

struct Tables {
  // exp_ doubled to 512 entries so mul() can skip the mod-255 reduction.
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint8_t, 256> log{};
};

[[nodiscard]] constexpr Tables build_tables() {
  Tables t{};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = x;
    t.log[x] = static_cast<std::uint8_t>(i);
    x = mul_slow(x, 2);  // 0x02 generates the multiplicative group mod 0x11D
  }
  for (int i = 255; i < 512; ++i) {
    t.exp[static_cast<std::size_t>(i)] = t.exp[static_cast<std::size_t>(i - 255)];
  }
  return t;
}

inline constexpr Tables kTables = build_tables();

}  // namespace detail

/// Field addition = XOR (also subtraction).
[[nodiscard]] constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return a ^ b;
}

/// Table-driven multiply.
[[nodiscard]] constexpr std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return detail::kTables.exp[static_cast<std::size_t>(detail::kTables.log[a]) +
                             detail::kTables.log[b]];
}

/// g^n for the generator g = 0x02 (n taken mod 255).
[[nodiscard]] constexpr std::uint8_t exp(unsigned n) {
  return detail::kTables.exp[n % 255];
}

/// a * g for the generator g = 0x02: one shift plus a conditional fold of the
/// reduction polynomial -- no table and no mod-255 division. Hot RAID-6 loops
/// iterate the per-shard coefficient g^i with this instead of calling exp(i)
/// per shard.
[[nodiscard]] constexpr std::uint8_t mul_g(std::uint8_t a) {
  return static_cast<std::uint8_t>((unsigned{a} << 1) ^
                                   ((a & 0x80U) != 0 ? kPoly : 0U));
}

/// Discrete log base 0x02; precondition a != 0.
[[nodiscard]] inline std::uint8_t log(std::uint8_t a) {
  CS_REQUIRE(a != 0, "gf256::log(0) undefined");
  return detail::kTables.log[a];
}

/// Multiplicative inverse; precondition a != 0.
[[nodiscard]] inline std::uint8_t inv(std::uint8_t a) {
  CS_REQUIRE(a != 0, "gf256::inv(0) undefined");
  return detail::kTables.exp[255 - detail::kTables.log[a]];
}

/// a / b; precondition b != 0.
[[nodiscard]] inline std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  CS_REQUIRE(b != 0, "gf256::div by zero");
  if (a == 0) return 0;
  return detail::kTables.exp[255 + detail::kTables.log[a] -
                             detail::kTables.log[b]];
}

/// dst[i] ^= coeff * src[i] -- the bulk Reed-Solomon kernel. Lengths must
/// match; the caller (raid layer) guarantees equal stripe-block sizes.
void mul_add(std::uint8_t coeff, const std::uint8_t* src, std::uint8_t* dst,
             std::size_t n);

}  // namespace cshield::gf256

#include "crypto/fragmentation.hpp"

#include <algorithm>

#include "crypto/gf256_kernels.hpp"
#include "util/hash.hpp"

namespace cshield::crypto::fragmentation {
namespace {

/// One fragment's [pointer, length) within the payload. Fragment i occupies
/// [i*L, min((i+1)*L, n)) for L = ceil(n/k) -- raid::encode's shard slices.
struct Frag {
  std::uint8_t* data = nullptr;
  std::size_t len = 0;
};

[[nodiscard]] Frag frag_at(std::uint8_t* data, std::size_t n, std::size_t len,
                           std::size_t i) {
  const std::size_t begin = i * len;
  if (begin >= n) return {};
  return {data + begin, std::min(len, n - begin)};
}

/// XORs the SplitMix64-finalizer keystream expanded from `nonce` over the
/// buffer, 8 bytes per mix64 call. Self-inverse. Byte j of block b is byte
/// j of mix64(nonce ^ phi*(b+1)) in little-endian order -- a fixed formula
/// so the pinned reference in tests/fragmentation_test.cpp can reproduce it
/// byte-at-a-time.
void whiten(std::uint8_t* data, std::size_t n, std::uint64_t nonce) {
  constexpr std::uint64_t kPhi = 0x9E3779B97F4A7C15ULL;
  std::size_t off = 0;
  std::uint64_t block = 0;
  while (off < n) {
    const std::uint64_t ks = mix64(nonce ^ (kPhi * (block + 1)));
    const std::size_t take = std::min<std::size_t>(8, n - off);
    for (std::size_t j = 0; j < take; ++j) {
      data[off + j] ^= static_cast<std::uint8_t>(ks >> (8 * j));
    }
    off += take;
    ++block;
  }
}

/// Nonzero coefficient in [1, 255] from a mixed index; `salt` separates the
/// forward and backward schedules.
[[nodiscard]] std::uint8_t coeff(std::size_t i, std::uint64_t salt) {
  return static_cast<std::uint8_t>(1 + mix64(salt ^ i) % 255);
}

}  // namespace

std::uint8_t forward_coeff(std::size_t i) { return coeff(i, 0xF0A4C1D5ULL); }

std::uint8_t backward_coeff(std::size_t i) { return coeff(i, 0xB1E55EDULL); }

void entangle(std::uint8_t* data, std::size_t n, std::size_t fragments,
              std::uint64_t nonce) {
  whiten(data, n, nonce);
  const std::size_t k = std::max<std::size_t>(1, fragments);
  if (k == 1 || n == 0) return;
  const std::size_t len = (n + k - 1) / k;
  for (std::size_t i = 1; i < k; ++i) {
    const Frag dst = frag_at(data, n, len, i);
    const Frag src = frag_at(data, n, len, i - 1);
    const std::size_t m = std::min(dst.len, src.len);
    if (m != 0) gf256::kernels::mul_add(forward_coeff(i), src.data, dst.data, m);
  }
  for (std::size_t i = k - 1; i-- > 0;) {
    const Frag dst = frag_at(data, n, len, i);
    const Frag src = frag_at(data, n, len, i + 1);
    const std::size_t m = std::min(dst.len, src.len);
    if (m != 0) {
      gf256::kernels::mul_add(backward_coeff(i), src.data, dst.data, m);
    }
  }
}

void detangle(std::uint8_t* data, std::size_t n, std::size_t fragments,
              std::uint64_t nonce) {
  const std::size_t k = std::max<std::size_t>(1, fragments);
  if (k > 1 && n != 0) {
    const std::size_t len = (n + k - 1) / k;
    // Undo the elementary row operations in exact reverse order: each reads
    // a fragment the sweep did not modify after that step, so the XOR update
    // cancels with the same operand bytes.
    for (std::size_t i = 0; i + 1 < k; ++i) {
      const Frag dst = frag_at(data, n, len, i);
      const Frag src = frag_at(data, n, len, i + 1);
      const std::size_t m = std::min(dst.len, src.len);
      if (m != 0) {
        gf256::kernels::mul_add(backward_coeff(i), src.data, dst.data, m);
      }
    }
    for (std::size_t i = k - 1; i >= 1; --i) {
      const Frag dst = frag_at(data, n, len, i);
      const Frag src = frag_at(data, n, len, i - 1);
      const std::size_t m = std::min(dst.len, src.len);
      if (m != 0) {
        gf256::kernels::mul_add(forward_coeff(i), src.data, dst.data, m);
      }
    }
  }
  whiten(data, n, nonce);
}

}  // namespace cshield::crypto::fragmentation

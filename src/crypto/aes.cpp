#include "crypto/aes.hpp"

#include <cstring>

namespace cshield::crypto {
namespace {

// --- AES field arithmetic (polynomial 0x11B; distinct from gf256.hpp's
// storage field 0x11D) -------------------------------------------------------

constexpr std::uint8_t aes_mul(std::uint8_t a, std::uint8_t b) {
  unsigned acc = 0;
  unsigned aa = a;
  unsigned bb = b;
  while (bb != 0) {
    if (bb & 1U) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100U) aa ^= 0x11B;
    bb >>= 1;
  }
  return static_cast<std::uint8_t>(acc);
}

constexpr std::uint8_t aes_inv(std::uint8_t a) {
  if (a == 0) return 0;
  // a^254 = a^-1 in GF(2^8); exponentiation by squaring keeps this constexpr.
  std::uint8_t result = 1;
  std::uint8_t base = a;
  unsigned e = 254;
  while (e != 0) {
    if (e & 1U) result = aes_mul(result, base);
    base = aes_mul(base, base);
    e >>= 1;
  }
  return result;
}

struct SBoxes {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};
};

constexpr SBoxes build_sboxes() {
  SBoxes s{};
  for (unsigned x = 0; x < 256; ++x) {
    const std::uint8_t q = aes_inv(static_cast<std::uint8_t>(x));
    // FIPS-197 affine transform.
    const std::uint8_t y = static_cast<std::uint8_t>(
        q ^ static_cast<std::uint8_t>((q << 1) | (q >> 7)) ^
        static_cast<std::uint8_t>((q << 2) | (q >> 6)) ^
        static_cast<std::uint8_t>((q << 3) | (q >> 5)) ^
        static_cast<std::uint8_t>((q << 4) | (q >> 4)) ^ 0x63);
    s.fwd[x] = y;
    s.inv[y] = static_cast<std::uint8_t>(x);
  }
  return s;
}

constexpr SBoxes kSBox = build_sboxes();

constexpr std::array<std::uint8_t, 10> kRcon = {0x01, 0x02, 0x04, 0x08, 0x10,
                                                0x20, 0x40, 0x80, 0x1B, 0x36};

void sub_bytes(AesBlock& s) {
  for (auto& b : s) b = kSBox.fwd[b];
}

void inv_sub_bytes(AesBlock& s) {
  for (auto& b : s) b = kSBox.inv[b];
}

// State layout: column-major as in FIPS-197 -- s[r + 4c] is row r, column c.
void shift_rows(AesBlock& s) {
  AesBlock t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(r + 4 * c)] =
          t[static_cast<std::size_t>(r + 4 * ((c + r) % 4))];
    }
  }
}

void inv_shift_rows(AesBlock& s) {
  AesBlock t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(r + 4 * ((c + r) % 4))] =
          t[static_cast<std::size_t>(r + 4 * c)];
    }
  }
}

void mix_columns(AesBlock& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s.data() + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(aes_mul(a0, 2) ^ aes_mul(a1, 3) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ aes_mul(a1, 2) ^ aes_mul(a2, 3) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ aes_mul(a2, 2) ^ aes_mul(a3, 3));
    col[3] = static_cast<std::uint8_t>(aes_mul(a0, 3) ^ a1 ^ a2 ^ aes_mul(a3, 2));
  }
}

void inv_mix_columns(AesBlock& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s.data() + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(aes_mul(a0, 14) ^ aes_mul(a1, 11) ^
                                       aes_mul(a2, 13) ^ aes_mul(a3, 9));
    col[1] = static_cast<std::uint8_t>(aes_mul(a0, 9) ^ aes_mul(a1, 14) ^
                                       aes_mul(a2, 11) ^ aes_mul(a3, 13));
    col[2] = static_cast<std::uint8_t>(aes_mul(a0, 13) ^ aes_mul(a1, 9) ^
                                       aes_mul(a2, 14) ^ aes_mul(a3, 11));
    col[3] = static_cast<std::uint8_t>(aes_mul(a0, 11) ^ aes_mul(a1, 13) ^
                                       aes_mul(a2, 9) ^ aes_mul(a3, 14));
  }
}

}  // namespace

Aes128::Aes128(const AesKey& key) {
  std::memcpy(round_keys_.data(), key.data(), 16);
  for (int i = 4; i < 44; ++i) {
    std::array<std::uint8_t, 4> temp{};
    std::memcpy(temp.data(), round_keys_.data() + 4 * (i - 1), 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSBox.fwd[temp[1]] ^
                                          kRcon[static_cast<std::size_t>(i / 4 - 1)]);
      temp[1] = kSBox.fwd[temp[2]];
      temp[2] = kSBox.fwd[temp[3]];
      temp[3] = kSBox.fwd[t0];
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[static_cast<std::size_t>(4 * i + b)] = static_cast<std::uint8_t>(
          round_keys_[static_cast<std::size_t>(4 * (i - 4) + b)] ^
          temp[static_cast<std::size_t>(b)]);
    }
  }
}

void Aes128::encrypt_block(AesBlock& block) const {
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) {
      block[static_cast<std::size_t>(i)] ^=
          round_keys_[static_cast<std::size_t>(16 * round + i)];
    }
  };
  add_round_key(0);
  for (int round = 1; round < 10; ++round) {
    sub_bytes(block);
    shift_rows(block);
    mix_columns(block);
    add_round_key(round);
  }
  sub_bytes(block);
  shift_rows(block);
  add_round_key(10);
}

void Aes128::decrypt_block(AesBlock& block) const {
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) {
      block[static_cast<std::size_t>(i)] ^=
          round_keys_[static_cast<std::size_t>(16 * round + i)];
    }
  };
  add_round_key(10);
  for (int round = 9; round > 0; --round) {
    inv_shift_rows(block);
    inv_sub_bytes(block);
    add_round_key(round);
    inv_mix_columns(block);
  }
  inv_shift_rows(block);
  inv_sub_bytes(block);
  add_round_key(0);
}

Bytes aes128_ctr(const AesKey& key, std::uint64_t nonce, BytesView data) {
  const Aes128 cipher(key);
  Bytes out(data.begin(), data.end());
  AesBlock counter{};
  for (int i = 0; i < 8; ++i) {
    counter[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  std::uint64_t block_index = 0;
  for (std::size_t offset = 0; offset < out.size(); offset += 16) {
    AesBlock keystream = counter;
    for (int i = 0; i < 8; ++i) {
      keystream[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(block_index >> (56 - 8 * i));
    }
    cipher.encrypt_block(keystream);
    const std::size_t n = std::min<std::size_t>(16, out.size() - offset);
    for (std::size_t i = 0; i < n; ++i) out[offset + i] ^= keystream[i];
    ++block_index;
  }
  return out;
}

}  // namespace cshield::crypto

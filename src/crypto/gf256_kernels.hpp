// Runtime-dispatched bulk kernels for the erasure-code data plane.
//
// Two primitives carry every byte the RAID layer touches:
//
//   xor_into(dst, src, n)        dst[i] ^= src[i]            (P parity)
//   mul_add(c, src, dst, n)      dst[i] ^= c * src[i]        (Q parity / RS)
//
// Each has four arms:
//
//   kScalar  byte-at-a-time reference (table lookup for mul_add). This is the
//            ground-truth arm the differential tests compare against; it is
//            deliberately kept un-vectorized.
//   kSwar    portable 64-bit SWAR: word-wide XOR, and mul_add as
//            double-and-add over eight byte lanes packed in a uint64_t.
//            The fallback on non-x86 hosts.
//   kSsse3   split-nibble PSHUFB: two 16-entry product tables (low/high
//            nibble) per coefficient, 16 bytes per shuffle pair.
//   kAvx2    the same technique at 32 bytes per iteration.
//
// The dispatcher binds the widest arm the CPU supports once at startup
// (util/cpu.hpp; CSHIELD_FORCE_SCALAR env/CMake overrides it) and the public
// entry points route through it. All arms are bit-identical by construction
// and by test (tests/kernels_test.cpp sweeps every coefficient, tail length
// and misalignment against gf256::mul_slow).
//
// The dispatched entry points also maintain relaxed per-process work
// counters (bytes pushed through each primitive). They exist so tests can
// prove algorithmic claims -- e.g. that a targeted parity rebuild performs
// O(k * shard) kernel work instead of a full decode + re-encode -- and cost
// two relaxed atomic adds per bulk call.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/cpu.hpp"

namespace cshield::gf256::kernels {

using Arm = cpu::SimdLevel;

/// True when `arm` can execute on this host (scalar/swar always can; the
/// SIMD arms need hardware support and a build that did not force them out).
[[nodiscard]] bool arm_available(Arm arm);

/// The arm the dispatched entry points currently route to. Defaults to
/// cpu::preferred_level() resolved on first use.
[[nodiscard]] Arm active_arm();

/// Rebinds the dispatcher (test/bench hook; thread-safe, takes effect on the
/// next call). Requires arm_available(arm). Returns the previous arm.
Arm set_active_arm(Arm arm);

// --- dispatched hot entry points -------------------------------------------

/// dst[i] ^= src[i] for i in [0, n). Buffers may be arbitrarily aligned but
/// must not overlap.
void xor_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

/// dst[i] ^= c * src[i] over GF(2^8)/0x11D. c == 0 is a no-op; c == 1
/// degrades to xor_into. Buffers may be arbitrarily aligned, no overlap.
void mul_add(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
             std::size_t n);

// --- per-arm entry points (tests and benches) ------------------------------
//
// Calling a SIMD arm on a host where arm_available() is false is undefined
// (illegal instruction); callers must check first.

void xor_into_arm(Arm arm, std::uint8_t* dst, const std::uint8_t* src,
                  std::size_t n);
void mul_add_arm(Arm arm, std::uint8_t c, const std::uint8_t* src,
                 std::uint8_t* dst, std::size_t n);

// --- work accounting -------------------------------------------------------

struct WorkStats {
  std::uint64_t xor_bytes = 0;  ///< bytes through dispatched xor_into
  std::uint64_t mul_bytes = 0;  ///< bytes through dispatched mul_add (c >= 2)
};

/// Snapshot of the process-wide counters (relaxed reads).
[[nodiscard]] WorkStats work_stats();

/// Zeroes the counters (tests only; racing writers simply land in the next
/// window).
void reset_work_stats();

}  // namespace cshield::gf256::kernels

#include "crypto/gf256.hpp"

#include "crypto/gf256_kernels.hpp"

namespace cshield::gf256 {

void mul_add(std::uint8_t coeff, const std::uint8_t* src, std::uint8_t* dst,
             std::size_t n) {
  // Routed through the runtime-dispatched kernel layer (AVX2 / SSSE3 /
  // SWAR / scalar, picked once at startup -- see gf256_kernels.hpp).
  kernels::mul_add(coeff, src, dst, n);
}

}  // namespace cshield::gf256

#include "crypto/gf256.hpp"

namespace cshield::gf256 {

void mul_add(std::uint8_t coeff, const std::uint8_t* src, std::uint8_t* dst,
             std::size_t n) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  // One row of the exp table addressed by log(coeff)+log(src[i]) -- hoists
  // the coefficient log out of the loop.
  const std::uint8_t lc = detail::kTables.log[coeff];
  const auto& log_tab = detail::kTables.log;
  const auto& exp_tab = detail::kTables.exp;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) {
      dst[i] ^= exp_tab[static_cast<std::size_t>(lc) + log_tab[s]];
    }
  }
}

}  // namespace cshield::gf256

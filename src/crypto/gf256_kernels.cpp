#include "crypto/gf256_kernels.hpp"

#include <array>
#include <atomic>
#include <cstring>

#include "crypto/gf256.hpp"
#include "util/status.hpp"

#if !defined(CSHIELD_FORCE_SCALAR) && (defined(__x86_64__) || defined(__i386__))
#define CSHIELD_HAVE_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace cshield::gf256::kernels {
namespace {

// --- scalar reference arms -------------------------------------------------
//
// These are the ground truth the differential tests compare every other arm
// against, and the baseline the bench gate measures speedups from, so they
// must stay genuinely byte-at-a-time: GCC vectorizes simple loops at -O2
// since GCC 12, which would silently turn the "scalar" baseline into SSE.

#if defined(__GNUC__) && !defined(__clang__)
#define CSHIELD_NO_AUTOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define CSHIELD_NO_AUTOVEC
#endif

CSHIELD_NO_AUTOVEC
void xor_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
#if defined(__clang__)
#pragma clang loop vectorize(disable)
#endif
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

CSHIELD_NO_AUTOVEC
void mul_add_scalar(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
                    std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_scalar(dst, src, n);
    return;
  }
  const std::uint8_t lc = detail::kTables.log[c];
  const auto& log_tab = detail::kTables.log;
  const auto& exp_tab = detail::kTables.exp;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) {
      dst[i] ^= exp_tab[static_cast<std::size_t>(lc) + log_tab[s]];
    }
  }
}

// --- portable 64-bit SWAR arms ---------------------------------------------

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

void xor_swar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    store64(dst + i, load64(dst + i) ^ load64(src + i));
    store64(dst + i + 8, load64(dst + i + 8) ^ load64(src + i + 8));
    store64(dst + i + 16, load64(dst + i + 16) ^ load64(src + i + 16));
    store64(dst + i + 24, load64(dst + i + 24) ^ load64(src + i + 24));
  }
  for (; i + 8 <= n; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(src + i));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// Multiplies eight packed GF(256) lanes by `c` via double-and-add. Each
/// doubling step is the 0x11D xtime applied lane-wise: shift left, then fold
/// the carried-out high bits back as 0x1D (the low byte of the polynomial) --
/// (hi >> 7) has lanes in {0,1}, so * 0x1D never carries across lanes.
inline std::uint64_t mul_lanes_swar(std::uint64_t x, std::uint8_t c) {
  std::uint64_t acc = 0;
  while (c != 0) {
    if (c & 1U) acc ^= x;
    c >>= 1;
    const std::uint64_t hi = x & 0x8080808080808080ULL;
    x = ((x << 1) & 0xFEFEFEFEFEFEFEFEULL) ^ ((hi >> 7) * 0x1DULL);
  }
  return acc;
}

void mul_add_swar(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
                  std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_swar(dst, src, n);
    return;
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store64(dst + i, load64(dst + i) ^ mul_lanes_swar(load64(src + i), c));
  }
  if (i < n) mul_add_scalar(c, src + i, dst + i, n - i);
}

// --- split-nibble product tables -------------------------------------------
//
// For every coefficient c, lo[i] = c*i and hi[i] = c*(i<<4); then
// c*s = lo[s & 0xF] ^ hi[s >> 4]. PSHUFB evaluates 16 (SSSE3) or 2x16 (AVX2)
// of those lookups per instruction. 256 coefficients x 32 bytes = 8 KiB of
// constexpr tables.

struct NibbleTables {
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
};

constexpr std::array<NibbleTables, 256> build_nibble_tables() {
  std::array<NibbleTables, 256> t{};
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned i = 0; i < 16; ++i) {
      t[c].lo[i] = mul_slow(static_cast<std::uint8_t>(c),
                            static_cast<std::uint8_t>(i));
      t[c].hi[i] = mul_slow(static_cast<std::uint8_t>(c),
                            static_cast<std::uint8_t>(i << 4));
    }
  }
  return t;
}

[[maybe_unused]] constexpr std::array<NibbleTables, 256> kNibble =
    build_nibble_tables();

#if defined(CSHIELD_HAVE_X86_KERNELS)

// --- SSSE3 arms ------------------------------------------------------------

__attribute__((target("ssse3"))) void xor_ssse3(std::uint8_t* dst,
                                                const std::uint8_t* src,
                                                std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, s));
  }
  if (i < n) xor_swar(dst + i, src + i, n - i);
}

__attribute__((target("ssse3"))) void mul_add_ssse3(std::uint8_t c,
                                                    const std::uint8_t* src,
                                                    std::uint8_t* dst,
                                                    std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_ssse3(dst, src, n);
    return;
  }
  const NibbleTables& t = kNibble[c];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(pl, ph)));
  }
  if (i < n) mul_add_swar(c, src + i, dst + i, n - i);
}

// --- AVX2 arms -------------------------------------------------------------

__attribute__((target("avx2"))) void xor_avx2(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, s1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  if (i < n) xor_swar(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) void mul_add_avx2(std::uint8_t c,
                                                  const std::uint8_t* src,
                                                  std::uint8_t* dst,
                                                  std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_avx2(dst, src, n);
    return;
  }
  const NibbleTables& t = kNibble[c];
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i ph = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(pl, ph)));
  }
  if (i < n) mul_add_ssse3(c, src + i, dst + i, n - i);
}

#endif  // CSHIELD_HAVE_X86_KERNELS

// --- dispatch --------------------------------------------------------------

std::atomic<Arm> g_active{[] {
  return cpu::preferred_level();
}()};

std::atomic<std::uint64_t> g_xor_bytes{0};
std::atomic<std::uint64_t> g_mul_bytes{0};

}  // namespace

bool arm_available(Arm arm) {
  switch (arm) {
    case Arm::kScalar:
    case Arm::kSwar:
      return true;
    case Arm::kSsse3:
      return cpu::hardware_level() >= Arm::kSsse3;
    case Arm::kAvx2:
      return cpu::hardware_level() >= Arm::kAvx2;
  }
  return false;
}

Arm active_arm() { return g_active.load(std::memory_order_relaxed); }

Arm set_active_arm(Arm arm) {
  CS_REQUIRE(arm_available(arm), "set_active_arm: arm not available");
  return g_active.exchange(arm, std::memory_order_relaxed);
}

void xor_into_arm(Arm arm, std::uint8_t* dst, const std::uint8_t* src,
                  std::size_t n) {
  switch (arm) {
    case Arm::kScalar: xor_scalar(dst, src, n); return;
    case Arm::kSwar: xor_swar(dst, src, n); return;
#if defined(CSHIELD_HAVE_X86_KERNELS)
    case Arm::kSsse3: xor_ssse3(dst, src, n); return;
    case Arm::kAvx2: xor_avx2(dst, src, n); return;
#else
    default: xor_swar(dst, src, n); return;
#endif
  }
}

void mul_add_arm(Arm arm, std::uint8_t c, const std::uint8_t* src,
                 std::uint8_t* dst, std::size_t n) {
  switch (arm) {
    case Arm::kScalar: mul_add_scalar(c, src, dst, n); return;
    case Arm::kSwar: mul_add_swar(c, src, dst, n); return;
#if defined(CSHIELD_HAVE_X86_KERNELS)
    case Arm::kSsse3: mul_add_ssse3(c, src, dst, n); return;
    case Arm::kAvx2: mul_add_avx2(c, src, dst, n); return;
#else
    default: mul_add_swar(c, src, dst, n); return;
#endif
  }
}

void xor_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  g_xor_bytes.fetch_add(n, std::memory_order_relaxed);
  xor_into_arm(active_arm(), dst, src, n);
}

void mul_add(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
             std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_into(dst, src, n);
    return;
  }
  g_mul_bytes.fetch_add(n, std::memory_order_relaxed);
  mul_add_arm(active_arm(), c, src, dst, n);
}

WorkStats work_stats() {
  return {g_xor_bytes.load(std::memory_order_relaxed),
          g_mul_bytes.load(std::memory_order_relaxed)};
}

void reset_work_stats() {
  g_xor_bytes.store(0, std::memory_order_relaxed);
  g_mul_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace cshield::gf256::kernels

// SHA-256 (FIPS 180-4).
//
// Used for chunk integrity digests: the distributor stores a digest per chunk
// so silent corruption at a provider is detected on read (the paper's threat
// model includes providers an attacker has compromised). Verified against the
// FIPS test vectors in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace cshield::crypto {

/// 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental hasher; also see the one-shot sha256() below.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  [[nodiscard]] Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot digest.
[[nodiscard]] Digest sha256(BytesView data);

/// Hex rendering for logs/tests.
[[nodiscard]] std::string digest_hex(const Digest& d);

}  // namespace cshield::crypto

// AES-128 block cipher and CTR-mode stream (FIPS 197 / SP 800-38A).
//
// This is the "encrypt everything at the client" baseline the paper argues
// against in SVII-E: it exists so bench_encryption_vs_fragmentation can put a
// real cipher's cost on the scale, not a strawman. Portable table-free
// byte-oriented implementation; correctness is pinned to the FIPS-197 and
// SP 800-38A test vectors in tests/crypto_test.cpp. (Not hardened against
// timing side channels -- it encrypts synthetic benchmark data only.)
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace cshield::crypto {

using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

/// AES-128 with a precomputed key schedule.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(AesBlock& block) const;

  /// Decrypts one 16-byte block in place.
  void decrypt_block(AesBlock& block) const;

 private:
  std::array<std::uint8_t, 176> round_keys_{};  // 11 round keys x 16 bytes
};

/// CTR mode: encryption and decryption are the same operation.
/// `nonce` occupies the first 8 bytes of the counter block; the remaining 8
/// form a big-endian block counter starting at 0.
[[nodiscard]] Bytes aes128_ctr(const AesKey& key, std::uint64_t nonce,
                               BytesView data);

}  // namespace cshield::crypto

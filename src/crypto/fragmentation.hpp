// Key-less fragment entanglement (fast fragmentation).
//
// Kapusta & Memmi ("A Fast Fragmentation Algorithm For Data Protection In a
// Multi-Cloud Environment", PAPERS.md) replace bulk encryption with an
// all-or-nothing transform over the fragments of a dispersed object: every
// output fragment is a mix of ALL input fragments, so an adversary holding
// j < k of them faces 256^((k-j)*L) candidate preimages -- the security
// comes from dispersal, not from a client-held key.
//
// Our construction over the distributor's contiguous padded chunk payload
// (the stripe arena raid::encode slices into k data shards):
//
//   1. whiten   -- XOR a SplitMix64 keystream expanded from a per-chunk
//                  nonce (stored in the distributor-side Chunk Table, never
//                  shipped to providers). Destroys plaintext byte statistics
//                  inside each fragment; costs ~1 cycle/byte.
//   2. forward  -- for i = 1..k-1:   f[i] ^= c_i * f[i-1]   over GF(2^8)
//   3. backward -- for i = k-2..0:   f[i] ^= d_i * f[i+1]
//
// The sweeps run on the dispatched gf256::kernels::mul_add arms (scalar /
// SWAR / SSSE3 / AVX2 -- bit-identical by construction and by
// tests/fragmentation_test.cpp), so entangling rides the same 20+ GB/s
// data plane as parity. After the forward chain f[k-1] depends on every
// fragment; the backward chain then propagates that dependency to every
// earlier fragment, so each output fragment is a full-rank linear
// combination of all k inputs. Detangling replays the elementary row
// operations in exact reverse order (each is a self-inverse XOR update),
// then strips the whitening.
//
// The mixing coefficients are public constants derived from the fragment
// index -- the all-or-nothing argument does not rest on their secrecy, only
// on the adversary's missing fragments. The nonce adds defense in depth:
// without the metadata tables even the keystream is unknown.
//
// Fragment geometry: a payload of n bytes splits into k fragments of
// L = ceil(n/k) bytes, the last one short (possibly empty). This matches
// raid::encode's shard slicing exactly, so "fragment i" and "data shard i"
// are the same bytes. Sweeps at the ragged tail mix over the overlap
// length; every byte still depends on every fragment that has a byte at
// its offset.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"

namespace cshield::crypto::fragmentation {

/// Public mixing coefficient of the forward sweep at fragment i (1..k-1).
/// Always nonzero, so every sweep step is a proper row operation.
[[nodiscard]] std::uint8_t forward_coeff(std::size_t i);

/// Public mixing coefficient of the backward sweep at fragment i (0..k-2).
[[nodiscard]] std::uint8_t backward_coeff(std::size_t i);

/// Entangles `n` bytes in place as `fragments` contiguous fragments.
/// fragments == 0 is treated as 1 (whitening only); n == 0 is a no-op.
void entangle(std::uint8_t* data, std::size_t n, std::size_t fragments,
              std::uint64_t nonce);

/// Exact inverse of entangle with the same (fragments, nonce).
void detangle(std::uint8_t* data, std::size_t n, std::size_t fragments,
              std::uint64_t nonce);

inline void entangle(Bytes& data, std::size_t fragments,
                     std::uint64_t nonce) {
  entangle(data.data(), data.size(), fragments, nonce);
}

inline void detangle(Bytes& data, std::size_t fragments,
                     std::uint64_t nonce) {
  detangle(data.data(), data.size(), fragments, nonce);
}

}  // namespace cshield::crypto::fragmentation

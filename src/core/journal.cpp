#include "core/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <set>
#include <thread>

#include "common/types.hpp"
#include "core/metadata_io.hpp"
#include "obs/watchdog.hpp"
#include "util/hash.hpp"
#include "util/wire.hpp"

namespace cshield::core {
namespace {

constexpr std::uint32_t kJournalMagic = 0xC5D17A6EU;
// v2 journals may carry protection-aware chunk rows (the rows themselves
// are self-versioned -- see write_chunk_entry -- so v1 files, and v1 rows
// inside them, replay unchanged). v3 adds the topology records
// (kBeginMigrate/kCommitMigrate) and an optional lifecycle byte on
// kRegisterProvider; older files replay unchanged. v4 appends a shard
// stamp (u32 shard_index | u32 shard_count) to the header and is written
// only by members of an N > 1 plane -- a 1-shard journal stays v3 so its
// image is bit-identical to the unsharded layout.
constexpr std::uint32_t kJournalVersion = 3;
constexpr std::uint32_t kJournalShardVersion = 4;
constexpr std::uint32_t kOldestReadableJournalVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 8;
constexpr std::size_t kShardHeaderSize = kHeaderSize + 4 + 4;
constexpr std::size_t kFrameOverhead = 4 + 4;  // length + crc

[[nodiscard]] std::uint32_t load_u32(BytesView image, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(image[off + i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] Status errno_status(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Writes `data` fully at the current file offset.
[[nodiscard]] Status write_all(int fd, BytesView data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("journal write");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

[[nodiscard]] Bytes encode_header(std::uint64_t checkpoint_ops,
                                  std::uint32_t shard_index,
                                  std::uint32_t shard_count) {
  Bytes out;
  wire::Writer w(out);
  w.u32(kJournalMagic);
  w.u32(shard_count > 1 ? kJournalShardVersion : kJournalVersion);
  w.u64(checkpoint_ops);
  if (shard_count > 1) {
    w.u32(shard_index);
    w.u32(shard_count);
  }
  return out;
}

/// fsyncs the directory containing `p` so a rename/creation inside it is
/// durable (best-effort: some filesystems reject O_RDONLY dir fsync).
void fsync_parent_dir(const std::filesystem::path& p) {
  const std::filesystem::path dir =
      p.has_parent_path() ? p.parent_path() : std::filesystem::path(".");
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    (void)::close(dfd);
  }
}

[[nodiscard]] Result<Bytes> read_file_bytes(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return Status::Internal("cannot open " + p.string());
  Bytes data{std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>()};
  if (in.bad()) return Status::Internal("read failed for " + p.string());
  return data;
}

}  // namespace

Bytes encode_record(const JournalRecord& rec) {
  Bytes out;
  wire::Writer w(out);
  w.u8(static_cast<std::uint8_t>(rec.op));
  switch (rec.op) {
    case JournalOp::kRegisterProvider:
      w.u64(rec.provider_index);
      w.str(rec.client);  // provider name
      w.u8(rec.level);
      w.u8(rec.cost);
      w.u8(rec.lifecycle);  // v3 suffix; absent in pre-topology records
      break;
    case JournalOp::kRegisterClient:
      w.str(rec.client);
      break;
    case JournalOp::kAddPassword:
      w.str(rec.client);
      w.str(rec.filename);  // password
      w.u8(rec.level);
      break;
    case JournalOp::kBeginPut:
    case JournalOp::kAbortPut:
      w.str(rec.client);
      w.str(rec.filename);
      break;
    case JournalOp::kCommitPut:
    case JournalOp::kUpdateChunk:
      w.str(rec.client);
      w.str(rec.filename);
      w.u32(static_cast<std::uint32_t>(rec.chunks.size()));
      for (const JournalChunk& c : rec.chunks) {
        w.u64(c.serial);
        w.u64(c.index);
        write_chunk_entry(w, c.entry);
      }
      break;
    case JournalOp::kRemoveChunk:
    case JournalOp::kRemoveFile:
      w.str(rec.client);
      w.str(rec.filename);
      w.u32(static_cast<std::uint32_t>(rec.chunks.size()));
      for (const JournalChunk& c : rec.chunks) {
        w.u64(c.serial);
        w.u64(c.index);
      }
      break;
    case JournalOp::kBeginMigrate:
    case JournalOp::kCommitMigrate:
      w.u64(rec.provider_index);
      w.str(rec.client);  // provider name
      w.u8(rec.level);    // MigrationKind
      break;
  }
  return out;
}

bool decode_record(BytesView payload, JournalRecord& rec) {
  wire::Reader r(payload);
  std::uint8_t op = 0;
  if (!r.u8(op)) return false;
  if (op < static_cast<std::uint8_t>(JournalOp::kRegisterProvider) ||
      op > static_cast<std::uint8_t>(JournalOp::kCommitMigrate)) {
    return false;
  }
  rec.op = static_cast<JournalOp>(op);
  switch (rec.op) {
    case JournalOp::kRegisterProvider:
      if (!r.u64(rec.provider_index) || !r.str(rec.client) ||
          !r.u8(rec.level) || !r.u8(rec.cost)) {
        return false;
      }
      if (rec.level >= kNumPrivacyLevels || rec.cost >= kNumCostLevels) {
        return false;
      }
      // v3 suffix: initial lifecycle. A pre-topology record ends here and
      // decodes to kActive -- the only state a static fleet could be in.
      rec.lifecycle =
          static_cast<std::uint8_t>(ProviderLifecycle::kActive);
      if (r.remaining() > 0) {
        if (!r.u8(rec.lifecycle) ||
            rec.lifecycle >= kNumProviderLifecycles) {
          return false;
        }
      }
      break;
    case JournalOp::kRegisterClient:
      if (!r.str(rec.client)) return false;
      break;
    case JournalOp::kAddPassword:
      if (!r.str(rec.client) || !r.str(rec.filename) || !r.u8(rec.level)) {
        return false;
      }
      if (rec.level >= kNumPrivacyLevels) return false;
      break;
    case JournalOp::kBeginPut:
    case JournalOp::kAbortPut:
      if (!r.str(rec.client) || !r.str(rec.filename)) return false;
      break;
    case JournalOp::kCommitPut:
    case JournalOp::kUpdateChunk: {
      std::uint32_t n = 0;
      if (!r.str(rec.client) || !r.str(rec.filename) || !r.u32(n) ||
          static_cast<std::size_t>(n) > r.remaining()) {
        return false;
      }
      rec.chunks.resize(n);
      for (JournalChunk& c : rec.chunks) {
        if (!r.u64(c.serial) || !r.u64(c.index) ||
            !read_chunk_entry(r, c.entry)) {
          return false;
        }
      }
      break;
    }
    case JournalOp::kRemoveChunk:
    case JournalOp::kRemoveFile: {
      std::uint32_t n = 0;
      if (!r.str(rec.client) || !r.str(rec.filename) || !r.u32(n) ||
          static_cast<std::size_t>(n) > r.remaining()) {
        return false;
      }
      rec.chunks.resize(n);
      for (JournalChunk& c : rec.chunks) {
        if (!r.u64(c.serial) || !r.u64(c.index)) return false;
      }
      break;
    }
    case JournalOp::kBeginMigrate:
    case JournalOp::kCommitMigrate:
      if (!r.u64(rec.provider_index) || !r.str(rec.client) ||
          !r.u8(rec.level)) {
        return false;
      }
      if (rec.level >= kNumMigrationKinds) return false;
      break;
  }
  return r.remaining() == 0;
}

Result<JournalReplay> replay_journal_image(BytesView image) {
  if (image.size() < kHeaderSize) {
    return Status::InvalidArgument("journal: truncated header");
  }
  if (load_u32(image, 0) != kJournalMagic) {
    return Status::InvalidArgument("journal: bad magic");
  }
  const std::uint32_t version = load_u32(image, 4);
  if (version < kOldestReadableJournalVersion ||
      version > kJournalShardVersion) {
    return Status::InvalidArgument("journal: unsupported version");
  }
  JournalReplay out;
  for (int i = 0; i < 8; ++i) {
    out.checkpoint_ops |= static_cast<std::uint64_t>(image[8 + i]) << (8 * i);
  }
  std::size_t header = kHeaderSize;
  if (version >= kJournalShardVersion) {
    if (image.size() < kShardHeaderSize) {
      return Status::InvalidArgument("journal: truncated shard header");
    }
    out.shard_index = load_u32(image, 16);
    out.shard_count = load_u32(image, 20);
    if (out.shard_count < 2 || out.shard_index >= out.shard_count) {
      return Status::InvalidArgument("journal: implausible shard stamp");
    }
    header = kShardHeaderSize;
  }
  out.valid_bytes = header;

  std::size_t off = header;
  while (off + kFrameOverhead <= image.size()) {
    const std::uint32_t len = load_u32(image, off);
    const std::uint32_t crc = load_u32(image, off + 4);
    if (static_cast<std::size_t>(len) > image.size() - off - kFrameOverhead) {
      break;  // torn tail: length runs past the file
    }
    const BytesView payload = image.subspan(off + kFrameOverhead, len);
    if (crc32(payload) != crc) break;  // torn or corrupt frame
    JournalRecord rec;
    if (!decode_record(payload, rec)) break;
    out.records.push_back(std::move(rec));
    off += kFrameOverhead + len;
    out.valid_bytes = off;
  }
  return out;
}

Journal::Journal(std::filesystem::path path, int fd, std::size_t records,
                 std::uint64_t bytes, std::uint64_t checkpoint_ops,
                 std::uint32_t shard_index, std::uint32_t shard_count)
    : path_(std::move(path)),
      fd_(fd),
      records_(records),
      bytes_(bytes),
      checkpoint_ops_(checkpoint_ops),
      shard_index_(shard_index),
      shard_count_(shard_count),
      header_size_(shard_count > 1 ? kShardHeaderSize : kHeaderSize) {
  if (shard_count_ > 1) {
    shard_flush_metric_ =
        "journal.shard." + std::to_string(shard_index_) + ".flush_ns";
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Journal>> Journal::open(std::filesystem::path path,
                                               std::uint32_t shard_index,
                                               std::uint32_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  if (shard_index >= shard_count) {
    return Status::InvalidArgument("journal: shard index out of range");
  }
  Bytes image;
  if (std::filesystem::exists(path)) {
    auto read = read_file_bytes(path);
    CS_RETURN_IF_ERROR(read.status());
    image = std::move(read).value();
  }
  // A file shorter than its full header is a crash while creating a fresh
  // journal -- it cannot hold records, so recreate it. A v4 header is
  // longer, so a v4 file cut inside its shard stamp is fresh too.
  bool fresh = image.size() < kHeaderSize;
  if (!fresh && load_u32(image, 4) >= kJournalShardVersion &&
      image.size() < kShardHeaderSize) {
    fresh = true;
  }
  std::size_t records = 0;
  std::size_t valid =
      shard_count > 1 ? kShardHeaderSize : kHeaderSize;
  std::uint64_t checkpoint_ops = 0;
  if (!fresh) {
    auto replay = replay_journal_image(image);
    CS_RETURN_IF_ERROR(replay.status());
    if (replay.value().shard_index != shard_index ||
        replay.value().shard_count != shard_count) {
      return Status::InvalidArgument(
          "journal " + path.string() + ": shard stamp mismatch: file is shard " +
          std::to_string(replay.value().shard_index) + " of " +
          std::to_string(replay.value().shard_count) + ", opened as shard " +
          std::to_string(shard_index) + " of " + std::to_string(shard_count));
    }
    records = replay.value().records.size();
    valid = replay.value().valid_bytes;
    checkpoint_ops = replay.value().checkpoint_ops;
  }

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return errno_status("journal open " + path.string());
  if (fresh) {
    if (::ftruncate(fd, 0) != 0) {
      ::close(fd);
      return errno_status("journal truncate");
    }
    const Bytes header = encode_header(0, shard_index, shard_count);
    if (Status st = write_all(fd, header); !st.ok()) {
      ::close(fd);
      return st;
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return errno_status("journal fsync");
    }
    fsync_parent_dir(path);
  } else if (valid < image.size()) {
    // Torn tail from a mid-append crash: cut it so the next append starts
    // on a frame boundary.
    if (::ftruncate(fd, static_cast<off_t>(valid)) != 0) {
      ::close(fd);
      return errno_status("journal truncate");
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return errno_status("journal fsync");
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return errno_status("journal seek");
  }
  return std::unique_ptr<Journal>(new Journal(std::move(path), fd, records,
                                              valid, checkpoint_ops,
                                              shard_index, shard_count));
}

void Journal::set_group_commit(const GroupCommitConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  gc_ = cfg;
  if (gc_.batch_ops == 0) gc_.batch_ops = 1;
}

void Journal::attach_telemetry(const std::shared_ptr<obs::Telemetry>& tel) {
  std::lock_guard<std::mutex> lock(mu_);
  telemetry_ = tel;
}

void Journal::attach_watchdog(obs::StallWatchdog* wd) {
  std::lock_guard<std::mutex> lock(mu_);
  watchdog_ = wd;
}

Status Journal::append(const JournalRecord& rec) {
  // Frame encoding needs no journal state -- do it before taking the lock
  // so contending appenders only serialize on the queue and the disk.
  Waiter w;
  w.rec = &rec;
  const Bytes payload = encode_record(rec);
  wire::Writer wr(w.frame);
  wr.u32(static_cast<std::uint32_t>(payload.size()));
  wr.u32(crc32(payload));
  w.frame.insert(w.frame.end(), payload.begin(), payload.end());

  std::unique_lock<std::mutex> lk(mu_);
  queue_.push_back(&w);
  cv_.notify_all();  // a waiting leader may be counting the batch fill
  while (!w.done) {
    // Leader election: the front waiter flushes while no other flush is in
    // progress; everyone else sleeps until their batch's fsync completes.
    if (!flushing_ && queue_.front() == &w) {
      flush_batch(lk);
    } else {
      cv_.wait(lk);
    }
  }
  return w.status;
}

void Journal::flush_batch(std::unique_lock<std::mutex>& lk) {
  flushing_ = true;
  if (gc_.batch_ops > 1 && gc_.batch_interval.count() > 0 &&
      queue_.size() < gc_.batch_ops) {
    // Close the batch at batch_ops records or batch_interval, whichever
    // comes first. Arrivals notify, so a filled batch flushes immediately.
    cv_.wait_for(lk, gc_.batch_interval,
                 [&] { return queue_.size() >= gc_.batch_ops; });
  }
  std::vector<Waiter*> batch;
  const std::size_t n = std::min(queue_.size(), gc_.batch_ops);
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  // The watchdog pointer is read under the lock (attach_watchdog races are
  // the caller's problem per its contract, but keep the read disciplined);
  // the brackets themselves run outside it, around the real I/O.
  obs::StallWatchdog* wd = watchdog_;
  lk.unlock();

  if (wd != nullptr) wd->fsync_begin();
  const auto flush_start = std::chrono::steady_clock::now();
  Status st = Status::Ok();
  std::uint64_t batch_bytes = 0;
  for (Waiter* w : batch) {
    if (test_hook_before_append) test_hook_before_append(*w->rec);
    if (st.ok()) st = write_all(fd_, w->frame);
    if (st.ok()) batch_bytes += w->frame.size();
  }
  if (st.ok() && ::fsync(fd_) != 0) st = errno_status("journal fsync");
  const auto flush_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - flush_start);
  if (wd != nullptr) wd->fsync_end();

  lk.lock();
  if (st.ok()) {
    bytes_ += batch_bytes;
    records_ += batch.size();
    total_appended_ += batch.size();
    ++flushes_;
    if (batch.size() > 1) ++group_commits_;
    if (telemetry_ != nullptr && telemetry_->enabled()) {
      obs::MetricsRegistry& m = telemetry_->metrics();
      m.histogram("journal.batch_size")
          .observe(static_cast<double>(batch.size()));
      m.histogram("journal.flush_ns")
          .observe(static_cast<double>(flush_ns.count()));
      if (!shard_flush_metric_.empty()) {
        // Plane members also report their own flush lane so the SLO engine
        // can tell one slow shard from a plane-wide sick disk.
        m.histogram(shard_flush_metric_)
            .observe(static_cast<double>(flush_ns.count()));
      }
      if (batch.size() > 1) m.counter("journal.group_commits").inc();
    }
  }
  for (Waiter* w : batch) {
    // The whole batch shares one fsync, so it shares one fate: a write or
    // sync error fails every append in it (none of them is durable).
    w->status = st;
    w->done = true;
    if (st.ok() && test_hook_after_append) test_hook_after_append(*w->rec);
  }
  flushing_ = false;
  cv_.notify_all();
}

Status Journal::checkpoint(const std::function<Bytes()>& snapshot,
                           const std::filesystem::path& checkpoint_path) {
  std::unique_lock<std::mutex> lock(mu_);
  // Quiesce group commit: wait out any in-flight flush and drain queued
  // appends (their leaders run while we wait -- the predicate releases the
  // lock). New appends then block at the mutex for the checkpoint's
  // duration, exactly like the per-op path.
  cv_.wait(lock, [&] { return !flushing_ && queue_.empty(); });
  // Appends are blocked, so the snapshot covers exactly the records about
  // to be truncated (ops journal *after* mutating the store, so anything
  // already journaled is visible to the snapshot).
  const Bytes image = snapshot();

  const std::filesystem::path tmp = checkpoint_path.string() + ".tmp";
  {
    const int cfd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (cfd < 0) return errno_status("checkpoint open " + tmp.string());
    Status st = write_all(cfd, image);
    if (st.ok() && ::fsync(cfd) != 0) st = errno_status("checkpoint fsync");
    ::close(cfd);
    if (!st.ok()) {
      std::error_code ignore;
      std::filesystem::remove(tmp, ignore);
      return st;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, checkpoint_path, ec);
  if (ec) {
    std::error_code ignore;
    std::filesystem::remove(tmp, ignore);
    return Status::Internal("checkpoint rename: " + ec.message());
  }
  fsync_parent_dir(checkpoint_path);

  // The checkpoint is durable; fold the journaled records into it. A crash
  // before the truncate lands just replays them onto the new checkpoint --
  // apply_journal_record is idempotent for exactly this window.
  checkpoint_ops_ += records_;
  records_ = 0;
  if (::ftruncate(fd_, static_cast<off_t>(header_size_)) != 0) {
    return errno_status("journal truncate");
  }
  const Bytes header =
      encode_header(checkpoint_ops_, shard_index_, shard_count_);
  if (::lseek(fd_, 0, SEEK_SET) < 0) return errno_status("journal seek");
  CS_RETURN_IF_ERROR(write_all(fd_, header));
  if (::fsync(fd_) != 0) return errno_status("journal fsync");
  if (::lseek(fd_, 0, SEEK_END) < 0) return errno_status("journal seek");
  bytes_ = header_size_;
  return Status::Ok();
}

std::size_t Journal::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::uint64_t Journal::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::uint64_t Journal::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_appended_;
}

std::uint64_t Journal::last_checkpoint_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_ops_;
}

std::uint64_t Journal::flushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushes_;
}

std::uint64_t Journal::group_commits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return group_commits_;
}

namespace {

/// Re-derives the provider virtual-id bookkeeping for one chunk-row
/// transition: locations leaving the row are removed, locations entering
/// it are placed. Set-based insert/erase makes double application a no-op.
void sync_placements(MetadataStore& store, const ChunkEntry* before,
                     const ChunkEntry& after) {
  const std::size_t providers = store.provider_count();
  auto locations = [](const ChunkEntry& e) {
    std::set<std::pair<ProviderIndex, VirtualId>> out;
    for (const auto& s : e.stripe) out.emplace(s.provider, s.virtual_id);
    for (const auto& s : e.snapshot) out.emplace(s.provider, s.virtual_id);
    return out;
  };
  const auto now = locations(after);
  if (before != nullptr) {
    for (const auto& [p, id] : locations(*before)) {
      if (now.count({p, id}) == 0 && p < providers) {
        store.record_removal(p, id);
      }
    }
  }
  for (const auto& [p, id] : now) {
    if (p < providers) store.record_placement(p, id);
  }
}

/// Fetches the current row at `index`, if the table reaches that far.
[[nodiscard]] std::optional<ChunkEntry> row_at(const MetadataStore& store,
                                               std::size_t index) {
  auto r = store.chunk_entry(index);
  if (!r.ok()) return std::nullopt;
  return std::move(r).value();
}

}  // namespace

Status apply_journal_record(MetadataStore& store, const JournalRecord& rec) {
  switch (rec.op) {
    case JournalOp::kRegisterProvider: {
      const std::size_t known = store.provider_count();
      if (rec.provider_index < known) return Status::Ok();  // in checkpoint
      if (rec.provider_index != known) {
        return Status::Internal("journal: provider index gap at " +
                                std::to_string(rec.provider_index));
      }
      store.register_provider(
          rec.client, static_cast<PrivacyLevel>(rec.level),
          static_cast<CostLevel>(rec.cost),
          static_cast<ProviderLifecycle>(rec.lifecycle));
      return Status::Ok();
    }
    case JournalOp::kRegisterClient: {
      Status st = store.register_client(rec.client);
      if (st.code() == ErrorCode::kAlreadyExists) return Status::Ok();
      return st;
    }
    case JournalOp::kAddPassword: {
      Status st = store.add_password(rec.client, rec.filename,
                                     static_cast<PrivacyLevel>(rec.level));
      if (st.code() == ErrorCode::kAlreadyExists) return Status::Ok();
      return st;
    }
    case JournalOp::kBeginPut: {
      Status st = store.claim_file(rec.client, rec.filename);
      if (st.code() == ErrorCode::kAlreadyExists) return Status::Ok();
      return st;
    }
    case JournalOp::kAbortPut:
      store.release_file(rec.client, rec.filename);
      return Status::Ok();
    case JournalOp::kCommitPut: {
      for (const JournalChunk& c : rec.chunks) {
        const auto before = row_at(store, c.index);
        CS_RETURN_IF_ERROR(store.put_chunk_at(rec.client, rec.filename,
                                              c.serial, c.index, c.entry));
        sync_placements(store, before ? &*before : nullptr, c.entry);
      }
      return Status::Ok();
    }
    case JournalOp::kUpdateChunk: {
      for (const JournalChunk& c : rec.chunks) {
        const auto before = row_at(store, c.index);
        store.set_chunk(c.index, c.entry);
        sync_placements(store, before ? &*before : nullptr, c.entry);
      }
      return Status::Ok();
    }
    case JournalOp::kRemoveChunk:
    case JournalOp::kRemoveFile: {
      for (const JournalChunk& c : rec.chunks) {
        const auto before = row_at(store, c.index);
        ChunkEntry tombstone;
        if (before) tombstone = *before;
        tombstone.deleted = true;
        tombstone.stripe.clear();
        tombstone.snapshot.clear();
        tombstone.has_snapshot = false;
        store.set_chunk(c.index, tombstone);
        sync_placements(store, before ? &*before : nullptr, tombstone);
        Status st = store.unlink_chunk(rec.client, rec.filename, c.serial);
        if (!st.ok() && st.code() != ErrorCode::kNotFound) return st;
      }
      return Status::Ok();
    }
    case JournalOp::kBeginMigrate:
    case JournalOp::kCommitMigrate: {
      // Lifecycle transitions mirror the distributor's begin/commit
      // protocol so checkpoint and replay agree on where the fleet stands:
      //   Begin join      -> kJoining    Commit join          -> kActive
      //   Begin drain     -> kDraining   Commit drain         -> kDraining
      //   Begin decommiss.-> kDraining   Commit decommission  -> kDecommissioned
      if (rec.provider_index >= store.provider_count()) {
        return Status::Internal("journal: migrate of unknown provider " +
                                std::to_string(rec.provider_index));
      }
      const auto kind = static_cast<MigrationKind>(rec.level);
      const auto p = static_cast<ProviderIndex>(rec.provider_index);
      if (rec.op == JournalOp::kBeginMigrate) {
        store.set_provider_lifecycle(p, kind == MigrationKind::kJoin
                                            ? ProviderLifecycle::kJoining
                                            : ProviderLifecycle::kDraining);
      } else if (kind == MigrationKind::kJoin) {
        store.set_provider_lifecycle(p, ProviderLifecycle::kActive);
      } else if (kind == MigrationKind::kDecommission) {
        store.set_provider_lifecycle(p, ProviderLifecycle::kDecommissioned);
      }  // committed drain: stays kDraining (emptied, awaiting decommission)
      return Status::Ok();
    }
  }
  return Status::Internal("journal: unknown op");
}

Result<RecoveredState> recover_metadata(
    const std::filesystem::path& checkpoint_path,
    const std::filesystem::path& journal_path,
    std::uint32_t expected_shard_index,
    std::uint32_t expected_shard_count) {
  if (expected_shard_count == 0) expected_shard_count = 1;
  RecoveredState out;
  if (std::filesystem::exists(checkpoint_path)) {
    auto image = read_file_bytes(checkpoint_path);
    CS_RETURN_IF_ERROR(image.status());
    MetadataShardStamp stamp;
    auto restored = deserialize_metadata(image.value(), &stamp);
    CS_RETURN_IF_ERROR(restored.status());
    if (stamp.shard_index != expected_shard_index ||
        stamp.shard_count != expected_shard_count) {
      return Status::InvalidArgument(
          "checkpoint " + checkpoint_path.string() +
          ": shard stamp mismatch: image is shard " +
          std::to_string(stamp.shard_index) + " of " +
          std::to_string(stamp.shard_count) + ", recovering as shard " +
          std::to_string(expected_shard_index) + " of " +
          std::to_string(expected_shard_count));
    }
    out.metadata = std::move(restored).value();
  } else {
    out.metadata = std::make_shared<MetadataStore>();
  }

  if (std::filesystem::exists(journal_path)) {
    auto image = read_file_bytes(journal_path);
    CS_RETURN_IF_ERROR(image.status());
    // Shorter than its header = crash while creating the file: no records.
    const bool sub_header =
        image.value().size() < kHeaderSize ||
        (load_u32(image.value(), 4) >= kJournalShardVersion &&
         image.value().size() < kShardHeaderSize);
    if (!sub_header) {
      auto replay = replay_journal_image(image.value());
      CS_RETURN_IF_ERROR(replay.status());
      if (replay.value().shard_index != expected_shard_index ||
          replay.value().shard_count != expected_shard_count) {
        return Status::InvalidArgument(
            "journal " + journal_path.string() +
            ": shard stamp mismatch: file is shard " +
            std::to_string(replay.value().shard_index) + " of " +
            std::to_string(replay.value().shard_count) +
            ", recovering as shard " + std::to_string(expected_shard_index) +
            " of " + std::to_string(expected_shard_count));
      }
      out.checkpoint_ops = replay.value().checkpoint_ops;
      std::set<std::pair<std::string, std::string>> open_puts;
      for (const JournalRecord& rec : replay.value().records) {
        CS_RETURN_IF_ERROR(apply_journal_record(*out.metadata, rec));
        switch (rec.op) {
          case JournalOp::kBeginPut:
            open_puts.emplace(rec.client, rec.filename);
            break;
          case JournalOp::kCommitPut:
          case JournalOp::kAbortPut:
            open_puts.erase({rec.client, rec.filename});
            break;
          case JournalOp::kBeginMigrate:
            out.pending_migrations.push_back(MigrationIntent{
                static_cast<MigrationKind>(rec.level),
                static_cast<ProviderIndex>(rec.provider_index), rec.client});
            break;
          case JournalOp::kCommitMigrate:
            out.pending_migrations.erase(
                std::remove_if(out.pending_migrations.begin(),
                               out.pending_migrations.end(),
                               [&](const MigrationIntent& m) {
                                 return m.provider == rec.provider_index;
                               }),
                out.pending_migrations.end());
            break;
          default:
            break;
        }
      }
      out.replayed_records = replay.value().records.size();
      out.in_flight.assign(open_puts.begin(), open_puts.end());
    }
  }
  // A checkpoint mid-migration folds the kBeginMigrate away, but the
  // lifecycle it set survives in the image: a provider still kJoining or
  // kDraining with no journaled intent is a migration to resume. (A
  // decommission interrupted this way resumes as a drain -- the data move
  // is identical; the operator re-issues the decommission to finalize.)
  {
    const auto rows = out.metadata->provider_table();
    for (ProviderIndex p = 0; p < rows.size(); ++p) {
      const bool pending =
          std::any_of(out.pending_migrations.begin(),
                      out.pending_migrations.end(),
                      [&](const MigrationIntent& m) { return m.provider == p; });
      if (pending) continue;
      if (rows[p].lifecycle == ProviderLifecycle::kJoining) {
        out.pending_migrations.push_back(
            MigrationIntent{MigrationKind::kJoin, p, rows[p].name});
      } else if (rows[p].lifecycle == ProviderLifecycle::kDraining &&
                 !rows[p].virtual_ids.empty()) {
        // Still holds placements: the drain did not finish. An emptied
        // draining provider is a *completed* drain awaiting decommission,
        // not a pending migration.
        out.pending_migrations.push_back(
            MigrationIntent{MigrationKind::kDrain, p, rows[p].name});
      }
    }
  }
  return out;
}

std::filesystem::path shard_file_path(const std::filesystem::path& base,
                                      std::size_t shard) {
  if (shard == 0) return base;
  return std::filesystem::path(base.string() + ".s" + std::to_string(shard));
}

Result<JournalShardInfo> probe_journal_shard(
    const std::filesystem::path& path) {
  if (!std::filesystem::exists(path)) {
    return Status::NotFound("journal " + path.string() + ": no file");
  }
  auto image = read_file_bytes(path);
  CS_RETURN_IF_ERROR(image.status());
  const Bytes& bytes = image.value();
  if (bytes.size() < kHeaderSize) {
    return Status::NotFound("journal " + path.string() + ": no header");
  }
  if (load_u32(bytes, 0) != kJournalMagic) {
    return Status::InvalidArgument("journal " + path.string() + ": bad magic");
  }
  JournalShardInfo info;
  info.version = load_u32(bytes, 4);
  if (info.version < kOldestReadableJournalVersion ||
      info.version > kJournalShardVersion) {
    return Status::InvalidArgument("journal " + path.string() +
                                   ": unsupported version");
  }
  if (info.version >= kJournalShardVersion) {
    if (bytes.size() < kShardHeaderSize) {
      return Status::NotFound("journal " + path.string() +
                              ": truncated shard header");
    }
    info.shard_index = load_u32(bytes, 16);
    info.shard_count = load_u32(bytes, 20);
    if (info.shard_count < 2 || info.shard_index >= info.shard_count) {
      return Status::InvalidArgument("journal " + path.string() +
                                     ": implausible shard stamp");
    }
  }
  return info;
}

Result<PlaneRecovery> recover_plane(
    const std::filesystem::path& checkpoint_base,
    const std::filesystem::path& journal_base, std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  PlaneRecovery out;
  out.shards.resize(shard_count);
  std::vector<Result<RecoveredState>> results(
      shard_count, Result<RecoveredState>(Status::Internal("not run")));
  {
    // One recovery worker per shard, clamped to the core count: each shard
    // replays its own checkpoint + journal, so plane MTTR is the slowest
    // shard, not the sum. Replay is CPU-bound, so threads beyond the
    // hardware only add scheduling overhead; on a single-core host the
    // whole plane recovers inline.
    const std::size_t workers = std::min<std::size_t>(
        shard_count,
        std::max(1u, std::thread::hardware_concurrency()));
    std::atomic<std::size_t> next{0};
    const auto drain = [&] {
      for (std::size_t s = next.fetch_add(1); s < shard_count;
           s = next.fetch_add(1)) {
        results[s] = recover_metadata(
            shard_file_path(checkpoint_base, s),
            shard_file_path(journal_base, s), static_cast<std::uint32_t>(s),
            static_cast<std::uint32_t>(shard_count));
      }
    };
    if (workers <= 1) {
      drain();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(drain);
      for (auto& t : threads) t.join();
    }
  }
  std::set<std::pair<std::string, std::string>> in_flight;
  std::set<std::pair<std::uint8_t, ProviderIndex>> intents;
  for (std::size_t s = 0; s < shard_count; ++s) {
    CS_RETURN_IF_ERROR(results[s].status());
    out.shards[s] = std::move(results[s]).value();
    out.replayed_records += out.shards[s].replayed_records;
    for (const auto& put : out.shards[s].in_flight) in_flight.insert(put);
    for (const MigrationIntent& m : out.shards[s].pending_migrations) {
      if (intents.emplace(static_cast<std::uint8_t>(m.kind), m.provider)
              .second) {
        out.pending_migrations.push_back(m);
      }
    }
  }
  out.in_flight.assign(in_flight.begin(), in_flight.end());
  return out;
}

}  // namespace cshield::core

// Client-side distributor built on a CHORD-like hash ring (SIV-C).
//
// "The Cloud Data Distributor can be implemented at client side by using
// CAN or CHORD like hash tables that will map each <filename, chunk Sl>
// pair to a Cloud Provider. A downloadable list of Cloud Providers can be
// used to generate the Cloud Provider Table. Client will also have to
// maintain a Chunk Table for his chunks. This approach has some
// limitations: client will require some memory where the tables will
// reside."
//
// One ring per privacy tier (a chunk at PL p hashes onto the ring of
// providers trusted at >= p), replication via the ring's successor list.
// There is no third party: the client keeps its own chunk table (digests,
// sizes, chaff positions) and talks to providers directly.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/chunker.hpp"
#include "crypto/sha256.hpp"
#include "dht/ring.hpp"
#include "storage/provider_registry.hpp"
#include "util/random.hpp"

namespace cshield::core {

struct ClientSideConfig {
  ChunkSizePolicy chunk_sizes;
  std::size_t replicas = 2;        ///< copies per chunk (ring successors)
  double misleading_fraction = 0.0;
  std::size_t virtual_nodes = 64;  ///< ring smoothing
  /// Per-client secret; virtual ids derive from it. Two clients MUST use
  /// different seeds or same-named files collide on virtual ids at the
  /// providers.
  std::uint64_t seed = 0xC11E47;
};

class ClientSideDistributor {
 public:
  /// `registry` is the "downloadable list of Cloud Providers"; the client
  /// derives the per-tier rings from provider names so every client builds
  /// the same mapping.
  ClientSideDistributor(storage::ProviderRegistry& registry,
                        ClientSideConfig config);

  /// Uploads a file at the given privacy level.
  Status put_file(const std::string& filename, BytesView data,
                  PrivacyLevel pl);

  [[nodiscard]] Result<Bytes> get_file(const std::string& filename);
  [[nodiscard]] Result<Bytes> get_chunk(const std::string& filename,
                                        std::uint64_t serial);
  Status remove_file(const std::string& filename);

  /// The client-resident chunk-table footprint in bytes -- the paper's
  /// "client will require some memory" limitation, made measurable.
  [[nodiscard]] std::size_t local_table_bytes() const;

  [[nodiscard]] const dht::HashRing& ring_for(PrivacyLevel pl) const {
    return rings_[static_cast<std::size_t>(level_index(pl))];
  }

 private:
  /// Client-local chunk-table row (replaces the third party's Table III).
  struct LocalChunk {
    std::uint64_t serial = 0;
    PrivacyLevel privacy_level = PrivacyLevel::kPublic;
    std::vector<ProviderIndex> replicas;
    VirtualId virtual_id = 0;
    std::size_t padded_size = 0;
    std::vector<std::uint32_t> misleading;
    crypto::Digest digest{};
  };

  storage::ProviderRegistry& registry_;
  ClientSideConfig config_;
  std::array<dht::HashRing, kNumPrivacyLevels> rings_;
  std::map<std::string, std::vector<LocalChunk>> files_;
  Rng rng_;
  std::uint64_t id_key_;
};

}  // namespace cshield::core

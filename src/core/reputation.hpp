// Provider reputation tracking (SIV-A).
//
// "Cloud Data Distributor maintains privacy level ... for each provider.
// Privacy level of a provider indicates its reliability. The higher the
// privacy level, the more trustworthy the provider." The paper leaves
// *how* reliability is established to deployment; this module makes it
// operational: an exponentially-weighted reliability score per provider,
// fed by observed request outcomes, mapped onto the four trust tiers. When
// a provider's tier drops below the sensitivity of chunks it holds, the
// distributor's rebalance() migrates those shards to providers that still
// qualify.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "util/status.hpp"

namespace cshield::core {

struct ReputationConfig {
  double initial_score = 0.95;  ///< optimistic prior
  double decay = 0.05;          ///< EWMA weight of each new observation
  /// Minimum score for tiers PL1 / PL2 / PL3 (below the first = PL0).
  std::array<double, 3> tier_floor = {0.50, 0.75, 0.90};
};

class ReputationTracker {
 public:
  explicit ReputationTracker(std::size_t providers,
                             ReputationConfig config = {})
      : config_(config), scores_(providers, config.initial_score) {
    CS_REQUIRE(config_.decay > 0.0 && config_.decay <= 1.0,
               "ReputationTracker: decay outside (0,1]");
  }

  [[nodiscard]] std::size_t size() const { return scores_.size(); }

  /// EWMA update: outcome 1.0 for a correct, timely response; 0.0 for an
  /// outage, refusal or integrity failure.
  void record(ProviderIndex p, bool success) {
    CS_REQUIRE(p < scores_.size(), "ReputationTracker: index out of range");
    scores_[p] = (1.0 - config_.decay) * scores_[p] +
                 config_.decay * (success ? 1.0 : 0.0);
  }

  [[nodiscard]] double score(ProviderIndex p) const {
    CS_REQUIRE(p < scores_.size(), "ReputationTracker: index out of range");
    return scores_[p];
  }

  /// Trust tier implied by the current score.
  [[nodiscard]] PrivacyLevel tier(ProviderIndex p) const {
    const double s = score(p);
    if (s >= config_.tier_floor[2]) return PrivacyLevel::kHigh;
    if (s >= config_.tier_floor[1]) return PrivacyLevel::kModerate;
    if (s >= config_.tier_floor[0]) return PrivacyLevel::kLow;
    return PrivacyLevel::kPublic;
  }

  /// Number of consecutive failures needed to drop a perfect score below
  /// the PL3 floor (diagnostic; used in tests to validate the dynamics).
  [[nodiscard]] int failures_to_demote_from_high() const {
    double s = 1.0;
    int n = 0;
    while (s >= config_.tier_floor[2] && n < 1000) {
      s *= (1.0 - config_.decay);
      ++n;
    }
    return n;
  }

 private:
  ReputationConfig config_;
  std::vector<double> scores_;
};

}  // namespace cshield::core

// Misleading-byte injection (SIV-A, SVII-D).
//
// "To ensure greater dimension of privacy, the Cloud Data Distributor may
// add misleading data into chunks depending on the demand of clients. The
// positions of misleading data bytes are also maintained by the distributor
// and these misleading bytes are removed while providing the chunks to the
// clients."
//
// The injected bytes are drawn to look like plausible payload (random
// values), at pseudo-random positions recorded in the Chunk Table only --
// a provider or attacker holding the chunk cannot tell real bytes from
// chaff, so any mining over the raw chunk reads poisoned records.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace cshield::core {

/// Result of injecting chaff into a chunk: the padded payload plus the
/// positions (indices in the padded buffer, strictly increasing) that hold
/// misleading bytes. The position list is Table III's "M" column.
struct MisleadingCodec {
  /// Injects floor(fraction * data.size()) misleading bytes (at least 1
  /// when fraction > 0 and data non-empty). Positions are uniform over the
  /// output buffer.
  struct Encoded {
    Bytes data;
    std::vector<std::uint32_t> positions;  ///< sorted indices into data
  };

  [[nodiscard]] static Encoded inject(BytesView data, double fraction,
                                      Rng& rng);

  /// Removes the recorded misleading bytes, restoring the original payload.
  [[nodiscard]] static Bytes strip(BytesView data,
                                   const std::vector<std::uint32_t>& positions);
};

}  // namespace cshield::core

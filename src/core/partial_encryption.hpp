// Partial encryption of record streams (SVII-E).
//
// "Clients can also use partial encryption along with fragmentation, that
// involves partitioning data and encrypting a portion of it."
//
// Given a record schema, a set of sensitive columns and a client-held key,
// the codec encrypts exactly those fields in place (AES-128-CTR, one
// keystream per record derived from the record index, so random access by
// row stays O(1)). Non-sensitive fields remain plaintext and minable by
// authorized analytics; the sensitive fields are ciphertext to every
// provider. Layout (record boundaries, sizes) is unchanged, so the
// distributor's chunking and the RecordCodec are oblivious to it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/aes.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace cshield::core {

class PartialEncryptor {
 public:
  /// `schema` is the record's column list; `sensitive` names the columns to
  /// encrypt. Throws if a sensitive column is not in the schema.
  PartialEncryptor(std::vector<std::string> schema,
                   std::vector<std::string> sensitive,
                   const crypto::AesKey& key);

  /// Encrypts the sensitive fields of every whole record in `data`
  /// (length must be a multiple of the record size). Self-inverse
  /// (CTR mode), so the same call decrypts.
  [[nodiscard]] Result<Bytes> apply(BytesView data,
                                    std::uint64_t base_record = 0) const;

  [[nodiscard]] std::size_t record_size() const {
    return schema_.size() * sizeof(double);
  }

  [[nodiscard]] const std::vector<std::size_t>& sensitive_columns() const {
    return sensitive_cols_;
  }

 private:
  std::vector<std::string> schema_;
  std::vector<std::size_t> sensitive_cols_;  ///< sorted column indices
  crypto::AesKey key_;
};

}  // namespace cshield::core

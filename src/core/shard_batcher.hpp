// Cross-operation shard-RPC batcher.
//
// Placement puts every shard of a stripe on a DISTINCT provider (rule 4 in
// core/placement.hpp), so for small files -- one stripe, a handful of
// shards -- there is nothing to coalesce *within* an operation: each
// provider receives exactly one shard. The round-trip amortization the
// batched provider path offers therefore has to come from coalescing
// *across* concurrent operations: under 64 small-file clients, each
// provider sees a steady stream of single-shard puts from different
// stripes, and this batcher folds them into put_many RPCs.
//
// One lane per provider: a queue, a condition variable, and a dedicated
// flusher thread. Writers enqueue a shard and get a future; the flusher
// closes a batch at `batch_shards` items or `max_wait` after the lane's
// first pending item (whichever first -- the same close rule as the
// journal's group commit), sends it through RequestLayer::put_many (per
// batch breaker/retry accounting, per-shard partial-failure splitting),
// and completes every future with its item's status.
//
// Shard bytes are NOT copied: the BytesView handed to put() must stay
// valid until its future resolves. The distributor guarantees this --
// write_stripe blocks on the futures while the encoded stripe arena is
// alive.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/request_layer.hpp"
#include "obs/telemetry.hpp"
#include "util/status.hpp"

namespace cshield::core {

class ShardBatcher {
 public:
  struct Config {
    /// Flush a lane once it holds this many shards.
    std::size_t batch_shards = 16;
    /// Flush an under-full lane this long after its first pending shard.
    std::chrono::microseconds max_wait{500};
    /// Opportunistic close: flush an under-full lane once no new shard has
    /// arrived for this long. Under light concurrency a lane almost never
    /// fills, and without this every batch waited out the full `max_wait`
    /// -- a pure latency tax that made 8-client batched throughput WORSE
    /// than per-op RPCs. With it, a drained queue closes after one idle
    /// window while a hot queue keeps filling until `batch_shards` or
    /// `max_wait`. 0 = always wait out max_wait (the old behavior).
    std::chrono::microseconds idle_close{50};
  };

  /// What one shard's enqueue resolved to.
  struct PutResult {
    Status status;
    /// This shard's share of the batch RPC's modeled time (batch time
    /// divided evenly -- the round trip was genuinely shared).
    SimDuration time{0};
    /// Batch RPC retries, attributed to the batch's first shard only so
    /// per-op sums stay exact when shards of one batch report to
    /// different operations.
    std::uint32_t retries = 0;
    /// Shards in the flushed batch (diagnostics).
    std::uint32_t batch = 1;
  };

  /// `rt` must outlive the batcher; `providers` sizes the lane array.
  /// `telemetry` may be null (no instrumentation).
  ShardBatcher(RequestLayer& rt, std::size_t providers, Config cfg,
               obs::Telemetry* telemetry)
      : rt_(rt), cfg_(cfg), telemetry_(telemetry), lanes_(providers) {
    if (cfg_.batch_shards == 0) cfg_.batch_shards = 1;
    if (telemetry_ != nullptr) {
      // Cached once: the queue-depth gauge is touched on every enqueue and
      // every flush (the health engine's batcher-backlog SLO feed).
      depth_gauge_ = &telemetry_->metrics().gauge("cdd.shard_batch_queue_depth");
    }
    threads_.reserve(providers);
    for (std::size_t p = 0; p < providers; ++p) {
      threads_.emplace_back([this, p] { run_lane(p); });
    }
  }

  ~ShardBatcher() {
    for (Lane& lane : lanes_) {
      std::lock_guard<std::mutex> lock(lane.mu);
      lane.stop = true;
      lane.cv.notify_all();
    }
    for (std::thread& t : threads_) t.join();
  }

  ShardBatcher(const ShardBatcher&) = delete;
  ShardBatcher& operator=(const ShardBatcher&) = delete;

  /// Lane capacity. Providers added to the registry after construction have
  /// no lane; the stripe writer routes their shards around the batcher.
  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }

  /// Enqueues one shard put for provider `p`. `data` must stay valid until
  /// the returned future resolves.
  std::future<PutResult> put(ProviderIndex p, VirtualId id, BytesView data) {
    CS_REQUIRE(p < lanes_.size(), "ShardBatcher: provider out of range");
    Lane& lane = lanes_[p];
    Pending item;
    item.id = id;
    item.data = data;
    std::future<PutResult> result = item.promise.get_future();
    {
      std::lock_guard<std::mutex> lock(lane.mu);
      if (lane.queue.empty()) {
        lane.first_enqueue = std::chrono::steady_clock::now();
      }
      lane.queue.push_back(std::move(item));
      lane.cv.notify_all();
    }
    if (depth_gauge_ != nullptr && telemetry_->enabled()) {
      depth_gauge_->add(1);
    }
    return result;
  }

 private:
  struct Pending {
    VirtualId id = 0;
    BytesView data;
    std::promise<PutResult> promise;
  };

  struct Lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    std::chrono::steady_clock::time_point first_enqueue;
    bool stop = false;
  };

  void run_lane(std::size_t p) {
    Lane& lane = lanes_[p];
    std::unique_lock<std::mutex> lk(lane.mu);
    for (;;) {
      lane.cv.wait(lk, [&] { return lane.stop || !lane.queue.empty(); });
      if (lane.queue.empty()) return;  // stop with nothing left to flush
      // Close the batch at batch_shards, at max_wait after the lane's first
      // pending shard, or -- opportunistically -- once the queue has been
      // idle for `idle_close` (nothing new arrived in a whole window, so
      // waiting longer only taxes the shards already queued). Shutdown
      // flushes immediately -- enqueued shards still complete.
      const auto deadline = lane.first_enqueue + cfg_.max_wait;
      while (!lane.stop && lane.queue.size() < cfg_.batch_shards) {
        auto close_at = deadline;
        if (cfg_.idle_close.count() > 0) {
          close_at = std::min(
              deadline, std::chrono::steady_clock::now() + cfg_.idle_close);
        }
        const std::size_t before = lane.queue.size();
        if (lane.cv.wait_until(lk, close_at) == std::cv_status::timeout &&
            lane.queue.size() == before) {
          break;  // hard deadline, or one idle window with no arrivals
        }
      }
      std::vector<Pending> batch;
      const std::size_t n = std::min(lane.queue.size(), cfg_.batch_shards);
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(lane.queue.front()));
        lane.queue.pop_front();
      }
      if (!lane.queue.empty()) {
        // Leftovers start the next batch's clock now, not at their
        // original enqueue (their wait so far bought them nothing).
        lane.first_enqueue = std::chrono::steady_clock::now();
      }
      if (depth_gauge_ != nullptr && telemetry_->enabled()) {
        depth_gauge_->add(-static_cast<std::int64_t>(n));
      }
      lk.unlock();
      flush(static_cast<ProviderIndex>(p), batch);
      lk.lock();
    }
  }

  void flush(ProviderIndex p, std::vector<Pending>& batch) {
    std::vector<storage::BatchPut> items;
    items.reserve(batch.size());
    for (const Pending& item : batch) {
      items.push_back(storage::BatchPut{item.id, item.data});
    }
    RequestLayer::BatchOutcome rpc = rt_.put_many(p, items);
    if (telemetry_ != nullptr && telemetry_->enabled()) {
      obs::MetricsRegistry& m = telemetry_->metrics();
      m.counter("cdd.shard_batches").inc();
      m.histogram("cdd.shard_batch_size")
          .observe(static_cast<double>(batch.size()));
      m.histogram("cdd.shard_batch_flush_ns")
          .observe(static_cast<double>(rpc.time.count()));
    }
    const SimDuration share = rpc.time / static_cast<std::int64_t>(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      PutResult r;
      r.status = rpc.statuses[i];
      r.time = share;
      r.retries = i == 0 ? rpc.retries : 0;
      r.batch = static_cast<std::uint32_t>(batch.size());
      batch[i].promise.set_value(std::move(r));
    }
  }

  RequestLayer& rt_;
  Config cfg_;
  obs::Telemetry* telemetry_;
  obs::Gauge* depth_gauge_ = nullptr;  ///< cdd.shard_batch_queue_depth
  std::vector<Lane> lanes_;
  std::vector<std::thread> threads_;
};

}  // namespace cshield::core

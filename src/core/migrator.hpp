// Background topology-migration engine.
//
// When the provider fleet changes at runtime -- a provider joins, drains or
// decommissions (§IV-C dynamic membership) -- some shards must change homes.
// The distributor supplies the per-chunk unit of work (migrate_chunk) and
// the journaled begin/commit protocol; the Migrator wraps them in an
// operable engine: a throttled, bounded-concurrency walk of the chunk table
// that can run synchronously (the CLI's drain command) or as a background
// thread alongside live traffic, reporting progress through atomics and the
// migration.* metrics the health engine and watchdog consume.
//
// Crash safety is inherited, not reimplemented: every shard move the walk
// performs is copy -> commit (metadata + journal) -> delete, and the
// begin/commit records bracket the whole migration, so a crash at any point
// resumes by simply re-running -- already-moved shards are skipped, and
// reconcile() sweeps any orphan duplicates the crash left.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/distributor.hpp"
#include "core/journal.hpp"

namespace cshield::core {

class Migrator {
 public:
  struct Config {
    /// Chunk-visit rate ceiling; 0 = unthrottled (migrate as fast as the
    /// request layer allows).
    double stripes_per_sec = 0.0;
    /// Concurrent migrate_chunk calls in flight (>= 1). Each call fans its
    /// own shard RPCs out on the distributor's I/O pool, so this bounds
    /// chunk-level, not shard-level, parallelism.
    std::size_t max_in_flight = 4;
  };

  /// What one run() accomplished (also readable mid-run via progress()).
  struct Report {
    std::uint64_t chunks_visited = 0;
    std::uint64_t shards_moved = 0;
    std::uint64_t bytes_moved = 0;
    std::uint64_t errors = 0;  ///< shards left for the next pass
    bool committed = false;    ///< kCommitMigrate was journaled
  };

  /// Live view of the current/last run.
  struct Progress {
    std::uint64_t chunks_visited = 0;
    std::uint64_t shards_moved = 0;
    std::uint64_t bytes_moved = 0;
    std::uint64_t errors = 0;
    std::size_t cursor = 0;  ///< chunk index the walk is at
    bool running = false;    ///< background thread active
  };

  /// `dist` must outlive the migrator.
  explicit Migrator(CloudDataDistributor& dist) : dist_(dist) {}
  Migrator(CloudDataDistributor& dist, Config config)
      : dist_(dist), config_(config) {}

  Migrator(const Migrator&) = delete;
  Migrator& operator=(const Migrator&) = delete;

  ~Migrator() { stop(); }

  /// One full synchronous migration: begin_migration, a throttled walk of
  /// the chunk table (bounded by Config::max_in_flight), then
  /// commit_migration -- skipped when shards could not be moved this pass
  /// (the returned Report says so; re-running resumes idempotently) or when
  /// stop() interrupted the walk. Safe to re-run after a crash: the begin
  /// record is re-issued idempotently and already-moved shards are skipped.
  Result<Report> run(MigrationKind kind, ProviderIndex subject);

  /// Launches run() on a background thread. No-op while one is still
  /// running; a finished (completed, errored or stopped) background run is
  /// reaped and superseded, so start() also resumes an open migration.
  void start(MigrationKind kind, ProviderIndex subject);

  /// Asks a background run to stop at the next chunk boundary and joins
  /// it. The migration stays open (begun, uncommitted) -- run() again to
  /// resume. Safe to call when not running.
  void stop();

  /// Joins the background thread (without requesting a stop) and returns
  /// its final report. Ok/empty when none was started.
  Result<Report> wait();

  [[nodiscard]] Progress progress() const {
    Progress p;
    p.chunks_visited = chunks_visited_.load(std::memory_order_relaxed);
    p.shards_moved = shards_moved_.load(std::memory_order_relaxed);
    p.bytes_moved = bytes_moved_.load(std::memory_order_relaxed);
    p.errors = errors_.load(std::memory_order_relaxed);
    p.cursor = cursor_.load(std::memory_order_relaxed);
    p.running = running_.load(std::memory_order_relaxed);
    return p;
  }

 private:
  /// The walk itself; assumes stop_ was reset by the caller (run() for the
  /// synchronous path, start() -- under mu_ -- for the background one, so a
  /// stop() racing a fresh start() is never lost).
  Result<Report> do_run(MigrationKind kind, ProviderIndex subject);

  /// Paces the walk to Config::stripes_per_sec; wakes early on stop().
  void throttle();

  CloudDataDistributor& dist_;
  Config config_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> chunks_visited_{0};
  std::atomic<std::uint64_t> shards_moved_{0};
  std::atomic<std::uint64_t> bytes_moved_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::size_t> cursor_{0};
  mutable std::mutex mu_;  ///< guards thread_/result_ and backs cv_
  std::condition_variable cv_;
  std::thread thread_;
  /// Last background run's outcome, consumed by wait().
  Status bg_status_ = Status::Ok();
  Report bg_report_;
};

}  // namespace cshield::core

// Extended architecture with multiple Cloud Data Distributors (Fig. 2).
//
// "A single data distributor can create a bottleneck in the system as it can
// be the single point of failure. To eliminate this, multiple distributors
// of cloud data can be introduced. In case of multiple data distributors,
// for each client, a specific distributor will act as the primary
// distributor that will upload data, whereas other distributors will act as
// secondary distributors who can perform the data retrieval operations."
//
// All front-ends share one MetadataStore (the consistent namespace) and one
// ProviderRegistry; writes route to the client's primary, reads to any
// distributor -- round-robin here, modelling read load spreading.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/distributor.hpp"
#include "util/hash.hpp"

namespace cshield::core {

class DistributorGroup {
 public:
  /// Builds `count` distributors over the shared registry/metadata. Seeds
  /// are derived from config.seed so the group is reproducible.
  DistributorGroup(storage::ProviderRegistry& registry,
                   DistributorConfig config, std::size_t count)
      : metadata_(std::make_shared<MetadataStore>()) {
    CS_REQUIRE(count > 0, "DistributorGroup needs >= 1 distributor");
    distributors_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      DistributorConfig c = config;
      c.seed = config.seed + 0x9E3779B9ULL * (i + 1);
      distributors_.push_back(std::make_unique<CloudDataDistributor>(
          registry, c, metadata_));
    }
  }

  [[nodiscard]] std::size_t size() const { return distributors_.size(); }

  /// The client's primary distributor (stable hash of the client name).
  [[nodiscard]] CloudDataDistributor& primary_for(const std::string& client) {
    return *distributors_[fnv1a64(client) % distributors_.size()];
  }

  /// Any distributor, round-robin -- the read path.
  [[nodiscard]] CloudDataDistributor& any() {
    return *distributors_[next_.fetch_add(1, std::memory_order_relaxed) %
                          distributors_.size()];
  }

  [[nodiscard]] CloudDataDistributor& at(std::size_t i) {
    CS_REQUIRE(i < distributors_.size(), "DistributorGroup index");
    return *distributors_[i];
  }

  // --- client-facing convenience that enforces the primary/secondary
  //     routing discipline --------------------------------------------------

  Status register_client(const std::string& client) {
    return primary_for(client).register_client(client);
  }

  Status add_password(const std::string& client, const std::string& password,
                      PrivacyLevel pl) {
    return primary_for(client).add_password(client, password, pl);
  }

  /// Uploads go through the client's primary.
  Status put_file(const std::string& client, const std::string& password,
                  const std::string& filename, BytesView data,
                  const PutOptions& options, OpReport* report = nullptr) {
    return primary_for(client).put_file(client, password, filename, data,
                                        options, report);
  }

  /// Retrievals may hit any distributor (they share the tables).
  [[nodiscard]] Result<Bytes> get_file(const std::string& client,
                                       const std::string& password,
                                       const std::string& filename,
                                       OpReport* report = nullptr) {
    return any().get_file(client, password, filename, report);
  }

  [[nodiscard]] Result<Bytes> get_chunk(const std::string& client,
                                        const std::string& password,
                                        const std::string& filename,
                                        std::uint64_t serial,
                                        OpReport* report = nullptr) {
    return any().get_chunk(client, password, filename, serial, report);
  }

  [[nodiscard]] const MetadataStore& metadata() const { return *metadata_; }

 private:
  std::shared_ptr<MetadataStore> metadata_;
  std::vector<std::unique_ptr<CloudDataDistributor>> distributors_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace cshield::core

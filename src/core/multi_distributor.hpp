// Extended architecture with multiple Cloud Data Distributors (Fig. 2).
//
// "A single data distributor can create a bottleneck in the system as it can
// be the single point of failure. To eliminate this, multiple distributors
// of cloud data can be introduced. In case of multiple data distributors,
// for each client, a specific distributor will act as the primary
// distributor that will upload data, whereas other distributors will act as
// secondary distributors who can perform the data retrieval operations."
//
// All front-ends share one MetadataPlane (the consistent namespace,
// N-way sharded -- see core/metadata_plane.hpp) and one ProviderRegistry.
// Writes route to the client's primary front-end (a stable hash of the
// client name, so every group member computes the same assignment); reads
// go to any front-end, round-robin. Either way the op resolves against the
// (client, filename) pair's owning shard partition inside the plane, so a
// read served by a secondary sees exactly what the primary committed.
//
// The group keeps per-front-end read/write counters for the convenience
// API below: routing a read through front-end i charges front-end i, never
// the primary that originally wrote the file -- per-distributor load
// attribution stays correct even though the data resolves elsewhere.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/distributor.hpp"
#include "core/metadata_plane.hpp"
#include "util/hash.hpp"

namespace cshield::core {

class DistributorGroup {
 public:
  /// Builds `count` front-ends over the shared registry and a shared
  /// metadata plane. `config.plane` (when set) is used as-is -- pass a
  /// journaled N-shard plane for a durable group; otherwise an in-memory
  /// plane with `meta_shards` partitions is created. Seeds are derived
  /// from config.seed so the group is reproducible.
  DistributorGroup(storage::ProviderRegistry& registry,
                   DistributorConfig config, std::size_t count,
                   std::size_t meta_shards = 1)
      : plane_(config.plane != nullptr
                   ? config.plane
                   : MetadataPlane::make_in_memory(meta_shards)),
        reads_(std::make_unique<std::atomic<std::uint64_t>[]>(count)),
        writes_(std::make_unique<std::atomic<std::uint64_t>[]>(count)) {
    CS_REQUIRE(count > 0, "DistributorGroup needs >= 1 distributor");
    distributors_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      DistributorConfig c = config;
      c.plane = plane_;
      c.seed = config.seed + 0x9E3779B9ULL * (i + 1);
      distributors_.push_back(
          std::make_unique<CloudDataDistributor>(registry, c));
      reads_[i].store(0, std::memory_order_relaxed);
      writes_[i].store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t size() const { return distributors_.size(); }

  /// The client's primary front-end index: a stable hash of the client
  /// name, identical on every group member (and across restarts). File
  /// renames do not move a client to another primary -- only the client
  /// name feeds the hash.
  [[nodiscard]] std::size_t primary_index(const std::string& client) const {
    return fnv1a64(client) % distributors_.size();
  }

  /// The client's primary distributor (stable hash of the client name).
  [[nodiscard]] CloudDataDistributor& primary_for(const std::string& client) {
    return *distributors_[primary_index(client)];
  }

  /// Any distributor, round-robin -- the read path.
  [[nodiscard]] CloudDataDistributor& any() {
    return *distributors_[next_.fetch_add(1, std::memory_order_relaxed) %
                          distributors_.size()];
  }

  [[nodiscard]] CloudDataDistributor& at(std::size_t i) {
    CS_REQUIRE(i < distributors_.size(), "DistributorGroup index");
    return *distributors_[i];
  }

  // --- client-facing convenience that enforces the primary/secondary
  //     routing discipline --------------------------------------------------

  Status register_client(const std::string& client) {
    return write_via(primary_index(client)).register_client(client);
  }

  Status add_password(const std::string& client, const std::string& password,
                      PrivacyLevel pl) {
    return write_via(primary_index(client)).add_password(client, password, pl);
  }

  /// Uploads go through the client's primary.
  Status put_file(const std::string& client, const std::string& password,
                  const std::string& filename, BytesView data,
                  const PutOptions& options, OpReport* report = nullptr) {
    return write_via(primary_index(client))
        .put_file(client, password, filename, data, options, report);
  }

  /// Modifications are writes: they go through the primary too.
  Status update_chunk(const std::string& client, const std::string& password,
                      const std::string& filename, std::uint64_t serial,
                      BytesView new_data, OpReport* report = nullptr) {
    return write_via(primary_index(client))
        .update_chunk(client, password, filename, serial, new_data, report);
  }

  Status remove_file(const std::string& client, const std::string& password,
                     const std::string& filename) {
    return write_via(primary_index(client))
        .remove_file(client, password, filename);
  }

  /// Retrievals may hit any distributor; the serving front-end is charged
  /// the read (its spans/counters carry the op), while the data resolves
  /// against the owning shard of the shared plane.
  [[nodiscard]] Result<Bytes> get_file(const std::string& client,
                                       const std::string& password,
                                       const std::string& filename,
                                       OpReport* report = nullptr) {
    return read_via(next_read_index())
        .get_file(client, password, filename, report);
  }

  [[nodiscard]] Result<Bytes> get_chunk(const std::string& client,
                                        const std::string& password,
                                        const std::string& filename,
                                        std::uint64_t serial,
                                        OpReport* report = nullptr) {
    return read_via(next_read_index())
        .get_chunk(client, password, filename, serial, report);
  }

  [[nodiscard]] Result<std::vector<CloudDataDistributor::FileInfo>>
  list_files(const std::string& client, const std::string& password) {
    return read_via(next_read_index()).list_files(client, password);
  }

  /// Per-front-end load attribution for the convenience API above.
  struct FrontEndLoad {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };
  [[nodiscard]] std::vector<FrontEndLoad> load() const {
    std::vector<FrontEndLoad> out(distributors_.size());
    for (std::size_t i = 0; i < distributors_.size(); ++i) {
      out[i].reads = reads_[i].load(std::memory_order_relaxed);
      out[i].writes = writes_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// The shared metadata plane (and its shard-0 partition, kept for
  /// callers that predate sharding).
  [[nodiscard]] const std::shared_ptr<MetadataPlane>& plane() const {
    return plane_;
  }
  [[nodiscard]] const MetadataStore& metadata() const {
    return plane_->store(0);
  }

 private:
  [[nodiscard]] std::size_t next_read_index() {
    return next_.fetch_add(1, std::memory_order_relaxed) %
           distributors_.size();
  }
  CloudDataDistributor& read_via(std::size_t i) {
    reads_[i].fetch_add(1, std::memory_order_relaxed);
    return *distributors_[i];
  }
  CloudDataDistributor& write_via(std::size_t i) {
    writes_[i].fetch_add(1, std::memory_order_relaxed);
    return *distributors_[i];
  }

  std::shared_ptr<MetadataPlane> plane_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> reads_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> writes_;
  std::vector<std::unique_ptr<CloudDataDistributor>> distributors_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace cshield::core

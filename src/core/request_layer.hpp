// Fault-tolerant request layer between the distributor and the providers.
//
// Every shard put/get/remove goes through RequestLayer, which wraps the
// raw provider RPC in:
//
//   - a RetryPolicy: capped exponential backoff with deterministic seeded
//     jitter, a per-op attempt budget, and a modeled deadline. Only
//     kUnavailable retries -- a definitive answer (kNotFound, kCorrupted)
//     means the provider is healthy and the erasure layer should handle it.
//   - the provider's circuit breaker (owned by the registry): an open
//     breaker fails fast without provider I/O; every `probe_after`-th
//     rejection is admitted as the half-open probe that can heal it.
//   - hedge advice: should_hedge() compares an observed shard-read time
//     against a percentile of the provider's own get-latency histogram, so
//     the read path can race the parity path against a slow provider.
//
// Backoff jitter is hash-derived from (seed, provider, virtual id,
// attempt) -- no RNG stream that concurrent requests could perturb -- so a
// replayed FaultPlan scenario reproduces identical modeled times.
//
// Metrics (under `rt.`): retries, giveups, deadline_exceeded, fail_fast,
// probes, breaker_trips, breaker_closes, gauge open_breakers, histogram
// backoff_ns.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"
#include "storage/provider_registry.hpp"
#include "util/hash.hpp"
#include "util/sim_clock.hpp"

namespace cshield::core {

struct RetryPolicy {
  /// false = single attempt, no breaker gating (the pre-retry behavior;
  /// kept for A/B comparison and for harnesses that script raw faults).
  bool enabled = true;
  std::size_t max_attempts = 4;
  /// Attempt budget for data-shard reads when parity can reconstruct --
  /// the degraded-read mode: don't wait out the full budget on a slow or
  /// flaky provider when the erasure code can route around it.
  std::size_t degraded_attempts = 1;
  SimDuration base_backoff{std::chrono::milliseconds(2)};
  SimDuration max_backoff{std::chrono::milliseconds(64)};
  double backoff_multiplier = 2.0;
  /// Cap on one request's total modeled time (service + backoff waits);
  /// retries stop rather than cross it.
  SimDuration deadline{std::chrono::seconds(2)};
  // --- hedged reads ---
  bool hedged_reads = true;
  /// A shard read slower than this percentile of the provider's get_ns
  /// history (times hedge_factor) triggers the parity hedge.
  double hedge_percentile = 0.95;
  /// Margin over the percentile: the natural jitter tail crosses p95 by
  /// construction, a genuinely slow provider crosses p95 * factor.
  double hedge_factor = 2.0;
  /// Minimum get_ns samples before hedging arms (cold histograms lie).
  std::uint64_t hedge_min_samples = 64;
};

class RequestLayer {
 public:
  /// `watchdog` (optional) gets an armed in-flight entry per run()/
  /// run_batch(), carrying the policy deadline as the modeled bound the
  /// stall detector scales.
  RequestLayer(storage::ProviderRegistry& registry, const RetryPolicy& policy,
               obs::Telemetry* telemetry, std::uint64_t seed,
               obs::StallWatchdog* watchdog = nullptr)
      : registry_(registry),
        policy_(policy),
        telemetry_(telemetry),
        watchdog_(watchdog),
        seed_(mix64(seed ^ 0x5E7B9ULL)) {}

  struct Outcome {
    Status status = Status::Ok();
    SimDuration time{0};        ///< modeled: provider service + backoff waits
    std::uint32_t attempts = 0; ///< provider RPCs actually issued
    std::uint32_t retries = 0;  ///< attempts beyond the first
    bool fail_fast = false;     ///< breaker rejected before any provider I/O
  };
  struct GetOutcome : Outcome {
    std::optional<Bytes> data;
  };
  /// Outcome of one batched RPC. Per-item statuses align with the input
  /// batch; attempts/retries count batch RPCs, not items.
  struct BatchOutcome {
    std::vector<Status> statuses;
    SimDuration time{0};
    std::uint32_t attempts = 0;
    std::uint32_t retries = 0;
    bool fail_fast = false;
  };
  struct BatchGetOutcome : BatchOutcome {
    /// results[i] holds bytes iff statuses[i] is OK.
    std::vector<std::optional<Bytes>> results;
  };

  /// `attempt_budget` 0 = the policy's max_attempts.
  Outcome put(ProviderIndex p, VirtualId id, BytesView data,
              std::size_t attempt_budget = 0) {
    return run(p, id, attempt_budget, [&](SimDuration* t) {
      return registry_.at(p).put(id, data, t);
    });
  }

  GetOutcome get(ProviderIndex p, VirtualId id,
                 std::size_t attempt_budget = 0) {
    GetOutcome out;
    static_cast<Outcome&>(out) = run(p, id, attempt_budget,
                                     [&](SimDuration* t) {
      Result<Bytes> r = registry_.at(p).get(id, t);
      if (r.ok()) out.data = std::move(r).value();
      return r.status();
    });
    return out;
  }

  Outcome remove(ProviderIndex p, VirtualId id,
                 std::size_t attempt_budget = 0) {
    return run(p, id, attempt_budget, [&](SimDuration* t) {
      return registry_.at(p).remove(id, t);
    });
  }

  /// Batched put with the same retry/breaker discipline as run(), accounted
  /// per batch RPC: one breaker admit per attempt, one on_success /
  /// on_failure per attempt, one backoff between attempts. Partial-failure
  /// splitting: after each attempt only the items that came back
  /// kUnavailable stay pending -- a retry re-sends just that subset, and a
  /// definitive per-item answer (OK, kNotFound, kInternal...) is final.
  BatchOutcome put_many(ProviderIndex p,
                        const std::vector<storage::BatchPut>& batch) {
    return run_batch(
        p, batch.size(),
        [&](const std::vector<std::size_t>& pending, SimDuration* t) {
          std::vector<storage::BatchPut> subset;
          subset.reserve(pending.size());
          for (std::size_t i : pending) subset.push_back(batch[i]);
          return registry_.at(p).put_many(subset, t);
        },
        batch.empty() ? VirtualId{0} : batch.front().id);
  }

  /// Batched get; see put_many for the retry/breaker semantics.
  BatchGetOutcome get_many(ProviderIndex p,
                           const std::vector<VirtualId>& ids) {
    BatchGetOutcome out;
    out.results.resize(ids.size());
    static_cast<BatchOutcome&>(out) = run_batch(
        p, ids.size(),
        [&](const std::vector<std::size_t>& pending, SimDuration* t) {
          std::vector<VirtualId> subset;
          subset.reserve(pending.size());
          for (std::size_t i : pending) subset.push_back(ids[i]);
          std::vector<Result<Bytes>> got = registry_.at(p).get_many(subset, t);
          std::vector<Status> statuses;
          statuses.reserve(got.size());
          for (std::size_t s = 0; s < got.size(); ++s) {
            statuses.push_back(got[s].status());
            if (got[s].ok()) out.results[pending[s]] = std::move(got[s]).value();
          }
          return statuses;
        },
        ids.empty() ? VirtualId{0} : ids.front());
    return out;
  }

  /// Hedge advice for a completed data-shard read: true when `observed`
  /// exceeds hedge_percentile of the provider's own get_ns histogram by
  /// hedge_factor (with enough history to trust the percentile).
  [[nodiscard]] bool should_hedge(ProviderIndex p, SimDuration observed) {
    if (!policy_.enabled || !policy_.hedged_reads) return false;
    if (telemetry_ == nullptr || !telemetry_->enabled()) return false;
    const obs::Histogram::Snapshot snap =
        telemetry_->metrics()
            .histogram("provider." + registry_.at(p).descriptor().name +
                       ".get_ns")
            .snapshot();
    if (snap.count < policy_.hedge_min_samples) return false;
    return static_cast<double>(observed.count()) >
           snap.percentile(policy_.hedge_percentile) * policy_.hedge_factor;
  }

  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

 private:
  template <typename AttemptFn>
  Outcome run(ProviderIndex p, VirtualId id, std::size_t attempt_budget,
              AttemptFn&& attempt) {
    Outcome out;
    obs::StallWatchdog::Armed armed(watchdog_, "shard_rpc",
                                    policy_.deadline.count());
    const std::size_t budget =
        policy_.enabled
            ? std::max<std::size_t>(1, attempt_budget != 0
                                           ? attempt_budget
                                           : policy_.max_attempts)
            : 1;
    storage::CircuitBreaker& breaker = registry_.breaker(p);
    for (std::size_t a = 1; a <= budget; ++a) {
      const auto admitted = policy_.enabled
                                ? breaker.admit()
                                : storage::CircuitBreaker::Decision::kProceed;
      if (admitted == storage::CircuitBreaker::Decision::kReject) {
        // Fail fast: no provider I/O, no time burned, and no point
        // retrying -- the breaker already knows this provider is down.
        out.status = Status::Unavailable(
            registry_.at(p).descriptor().name + " quarantined (breaker open)");
        out.fail_fast = out.attempts == 0;
        count("rt.fail_fast");
        publish_breaker_state(p, breaker);
        break;
      }
      if (admitted == storage::CircuitBreaker::Decision::kProbe) {
        count("rt.probes");
        publish_breaker_state(p, breaker);
      }
      ++out.attempts;
      SimDuration t{0};
      out.status = attempt(&t);
      out.time += t;
      if (out.status.ok() || out.status.code() != ErrorCode::kUnavailable) {
        // The provider answered -- success, or a definitive error that the
        // erasure layer owns. Either way it is healthy.
        if (policy_.enabled && breaker.on_success()) {
          count("rt.breaker_closes");
          gauge_add("rt.open_breakers", -1);
        }
        if (policy_.enabled) publish_breaker_state(p, breaker);
        break;
      }
      if (policy_.enabled && breaker.on_failure()) {
        count("rt.breaker_trips");
        gauge_add("rt.open_breakers", 1);
      }
      if (policy_.enabled) publish_breaker_state(p, breaker);
      if (a == budget) {
        count("rt.giveups");
        break;
      }
      const SimDuration pause = backoff(p, id, a);
      if (out.time + pause > policy_.deadline) {
        count("rt.deadline_exceeded");
        break;
      }
      out.time += pause;
      ++out.retries;
      count("rt.retries");
      if (telemetry_ != nullptr && telemetry_->enabled()) {
        telemetry_->metrics().histogram("rt.backoff_ns")
            .observe(static_cast<double>(pause.count()));
      }
    }
    return out;
  }

  /// Batched analogue of run(). `attempt` receives the indices (into the
  /// original batch) still pending and must return one Status per index,
  /// in order. `backoff_key` seeds the deterministic jitter (the first
  /// item's virtual id -- stable across retries of the same batch).
  template <typename BatchAttemptFn>
  BatchOutcome run_batch(ProviderIndex p, std::size_t n,
                         BatchAttemptFn&& attempt, VirtualId backoff_key) {
    BatchOutcome out;
    out.statuses.assign(n, Status::Ok());
    if (n == 0) return out;
    obs::StallWatchdog::Armed armed(watchdog_, "shard_batch_rpc",
                                    policy_.deadline.count());
    const std::size_t budget =
        policy_.enabled ? std::max<std::size_t>(1, policy_.max_attempts) : 1;
    storage::CircuitBreaker& breaker = registry_.breaker(p);
    std::vector<std::size_t> pending(n);
    std::iota(pending.begin(), pending.end(), std::size_t{0});
    for (std::size_t a = 1; a <= budget; ++a) {
      const auto admitted = policy_.enabled
                                ? breaker.admit()
                                : storage::CircuitBreaker::Decision::kProceed;
      if (admitted == storage::CircuitBreaker::Decision::kReject) {
        const Status quarantined = Status::Unavailable(
            registry_.at(p).descriptor().name + " quarantined (breaker open)");
        for (std::size_t i : pending) out.statuses[i] = quarantined;
        out.fail_fast = out.attempts == 0;
        count("rt.fail_fast");
        publish_breaker_state(p, breaker);
        break;
      }
      if (admitted == storage::CircuitBreaker::Decision::kProbe) {
        count("rt.probes");
        publish_breaker_state(p, breaker);
      }
      ++out.attempts;
      if (telemetry_ != nullptr && telemetry_->enabled()) {
        telemetry_->metrics().counter("rt.batch_rpcs").inc();
        telemetry_->metrics().histogram("rt.batch_size")
            .observe(static_cast<double>(pending.size()));
      }
      SimDuration t{0};
      const std::vector<Status> statuses = attempt(pending, &t);
      out.time += t;
      // Partial-failure split: only kUnavailable items remain pending; a
      // definitive per-item answer is final (same rule as run()).
      std::vector<std::size_t> still;
      for (std::size_t s = 0; s < pending.size(); ++s) {
        out.statuses[pending[s]] = statuses[s];
        if (statuses[s].code() == ErrorCode::kUnavailable) {
          still.push_back(pending[s]);
        }
      }
      if (still.empty()) {
        // The provider answered every remaining item -- it is healthy,
        // whatever the erasure layer makes of the individual answers.
        if (policy_.enabled && breaker.on_success()) {
          count("rt.breaker_closes");
          gauge_add("rt.open_breakers", -1);
        }
        if (policy_.enabled) publish_breaker_state(p, breaker);
        break;
      }
      if (policy_.enabled && breaker.on_failure()) {
        count("rt.breaker_trips");
        gauge_add("rt.open_breakers", 1);
      }
      if (policy_.enabled) publish_breaker_state(p, breaker);
      pending = std::move(still);
      if (a == budget) {
        count("rt.giveups");
        break;
      }
      const SimDuration pause = backoff(p, backoff_key, a);
      if (out.time + pause > policy_.deadline) {
        count("rt.deadline_exceeded");
        break;
      }
      out.time += pause;
      ++out.retries;
      count("rt.retries");
      if (telemetry_ != nullptr && telemetry_->enabled()) {
        telemetry_->metrics().histogram("rt.backoff_ns")
            .observe(static_cast<double>(pause.count()));
      }
    }
    return out;
  }

  /// Backoff before attempt `attempt + 1`: capped exponential with
  /// deterministic jitter in [0.5, 1.0) of the nominal step.
  [[nodiscard]] SimDuration backoff(ProviderIndex p, VirtualId id,
                                    std::size_t attempt) const {
    double step = static_cast<double>(policy_.base_backoff.count()) *
                  std::pow(policy_.backoff_multiplier,
                           static_cast<double>(attempt - 1));
    step = std::min(step, static_cast<double>(policy_.max_backoff.count()));
    std::uint64_t h = hash_combine(seed_, p);
    h = hash_combine(h, id);
    h = hash_combine(h, attempt);
    const double u = static_cast<double>(mix64(h) >> 11) * 0x1.0p-53;
    return SimDuration(
        static_cast<std::int64_t>(step * (0.5 + 0.5 * u)));
  }

  void count(const char* name) {
    if (telemetry_ != nullptr && telemetry_->enabled()) {
      telemetry_->metrics().counter(name).inc();
    }
  }

  void gauge_add(const char* name, std::int64_t delta) {
    if (telemetry_ != nullptr && telemetry_->enabled()) {
      telemetry_->metrics().gauge(name).add(delta);
    }
  }

  /// Mirrors the breaker's current state into a sample-able gauge
  /// (`provider.<name>.breaker_state`: 0 closed, 1 open, 2 half-open).
  /// Refreshed after every breaker interaction so a scrape always sees the
  /// post-RPC state; the health engine treats it as authoritative.
  void publish_breaker_state(ProviderIndex p,
                             storage::CircuitBreaker& breaker) {
    if (telemetry_ == nullptr || !telemetry_->enabled()) return;
    std::int64_t v = 0;
    switch (breaker.state()) {
      case storage::CircuitBreaker::State::kOpen: v = 1; break;
      case storage::CircuitBreaker::State::kHalfOpen: v = 2; break;
      case storage::CircuitBreaker::State::kClosed: v = 0; break;
    }
    telemetry_->metrics()
        .gauge("provider." + registry_.at(p).descriptor().name +
               ".breaker_state")
        .set(v);
  }

  storage::ProviderRegistry& registry_;
  RetryPolicy policy_;
  obs::Telemetry* telemetry_;
  obs::StallWatchdog* watchdog_ = nullptr;
  std::uint64_t seed_;
};

}  // namespace cshield::core

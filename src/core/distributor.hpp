// CloudDataDistributor -- the paper's central entity (SIV-A, SV, SVI).
//
// "Cloud Data Distributor is the entity that receives data (files) from
// clients, performs fragmentation of data (splits files into chunks) and
// distributes these fragments (chunks) among Cloud Providers. ... Clients do
// not interact with Cloud Providers directly rather via Cloud Data
// Distributor."
//
// The pipeline per file:
//   categorize (client-chosen privacy level)
//     -> fragment (PL-sized chunks, optionally record-aligned)
//     -> chaff (optional misleading bytes, positions kept in the tables)
//     -> erasure-code (RAID-5 default, RAID-6 for high assurance)
//     -> place (trust-eligible, cost-preferring, randomized providers)
//     -> upload under fresh virtual ids that carry no client identity.
//
// Reads authenticate a <password, PL> pair, check privilege against the
// chunk PL, fetch the stripe in parallel, verify per-shard SHA-256 digests
// (a corrupted shard counts as an erasure and RAID recovers through it),
// decode, strip chaff, and return the plaintext chunk.
//
// Several distributor front-ends may share one MetadataStore -- that is the
// Fig. 2 multi-distributor architecture (see multi_distributor.hpp).
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/chunker.hpp"
#include "dht/ring.hpp"
#include "crypto/aes.hpp"
#include "core/journal.hpp"
#include "core/metadata_plane.hpp"
#include "core/placement.hpp"
#include "core/request_layer.hpp"
#include "core/shard_batcher.hpp"
#include "core/tables.hpp"
#include "obs/telemetry.hpp"
#include "raid/raid.hpp"
#include "storage/provider_registry.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_pool.hpp"

namespace cshield::core {

struct DistributorConfig {
  ChunkSizePolicy chunk_sizes;
  raid::RaidLevel default_raid = raid::RaidLevel::kRaid5;
  std::size_t stripe_data_shards = 3;  ///< k data shards per stripe
  std::size_t replication = 1;         ///< extra copies when RAID-1 is chosen
  double misleading_fraction = 0.0;    ///< default chaff ratio
  /// Default protection transform per privacy level (PutOptions::protection
  /// overrides). kMisleadingBytes applies no payload transform beyond the
  /// chaff governed by misleading_fraction -- the pre-ProtectionMode
  /// behavior. kPartialAes encrypts a PL-dependent prefix of each chunk
  /// with AES-128-CTR under `protection_key`; kFragmentation entangles the
  /// chunk's data shards key-lessly (crypto/fragmentation.hpp).
  std::array<ProtectionMode, kNumPrivacyLevels> protection_by_pl{
      ProtectionMode::kMisleadingBytes, ProtectionMode::kMisleadingBytes,
      ProtectionMode::kMisleadingBytes, ProtectionMode::kMisleadingBytes};
  /// Key for the partial-AES mode. Stable across restarts by default so a
  /// recovered distributor can still decrypt; a real deployment injects the
  /// client's key here.
  crypto::AesKey protection_key{0xC5, 0x1E, 0x1D, 0x00, 0x01, 0x02, 0x03,
                                0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A,
                                0x0B, 0x0C};
  PlacementMode placement = PlacementMode::kCostAware;
  std::size_t worker_threads = 8;      ///< chunk-level compute channels
  /// Shard RPC channels. Shard I/O is latency-bound, not CPU-bound, so the
  /// I/O pool is wider than the compute pool (real object-store clients do
  /// the same). 0 = 4 x worker_threads.
  std::size_t io_threads = 0;
  /// Chunk-level pipelining for file-granularity ops: put_file/get_file fan
  /// every chunk's stripe out to the pool as independent work instead of
  /// walking chunks serially with a barrier per stripe. false reproduces the
  /// serial per-stripe loop (the pre-pipeline baseline; kept for A/B
  /// benchmarking -- see bench_throughput).
  bool pipelined = true;
  /// Runtime telemetry toggle. When true the distributor records per-op
  /// trace spans and pipeline metrics into `telemetry_sink` (or, when that
  /// is null, the process-global obs::Telemetry::global()), and wires the
  /// provider registry + placement policy into the same sink. When false
  /// the distributor carries a private disabled sink: every
  /// instrumentation site reduces to one relaxed atomic load.
  bool telemetry = true;
  std::shared_ptr<obs::Telemetry> telemetry_sink;
  /// Fault tolerance for every shard RPC: retry budget, backoff, deadline,
  /// breaker gating and hedged reads (see core/request_layer.hpp).
  /// `retry.enabled = false` reproduces the raw single-attempt behavior.
  RetryPolicy retry;
  /// Cross-operation shard-RPC batching (see core/shard_batcher.hpp): when
  /// > 1, the stripe writer routes every shard put through a per-provider
  /// batcher that coalesces shards from concurrent operations into one
  /// put_many RPC, closed at `rpc_batch_shards` shards or `rpc_batch_wait`
  /// after a lane's first pending shard. 1 = per-shard RPCs (the
  /// pre-batching behavior; default -- batching trades a bounded latency
  /// wait for round-trip amortization, a good trade only under concurrent
  /// small-op load).
  std::size_t rpc_batch_shards = 1;
  std::chrono::microseconds rpc_batch_wait{500};
  /// Write-ahead journal for metadata durability (see core/journal.hpp).
  /// When set, every metadata mutation is journaled before the op returns
  /// OK; null = in-memory-only metadata (the pre-journal behavior).
  std::shared_ptr<Journal> journal;
  /// Where checkpoint() writes the metadata snapshot. Required for
  /// checkpointing; ignored when `journal` is null.
  std::string checkpoint_path;
  /// Auto-checkpoint once the journal holds this many records (0 = only
  /// explicit checkpoint() calls). Bounds both journal growth and replay
  /// time after a crash.
  std::size_t checkpoint_interval = 0;
  /// N-way sharded metadata/journal plane (see core/metadata_plane.hpp).
  /// When set it supersedes `journal`/`checkpoint_path` and the `metadata`
  /// constructor argument: per-(client, filename) state routes to the
  /// partition shard_of(client, filename), each with its own lock, its own
  /// WAL commit lane and its own checkpoint image. Journaling is
  /// all-or-nothing across partitions (shard 0 decides). Null = the
  /// distributor wraps its store + `journal` + `checkpoint_path` into a
  /// 1-shard plane, reproducing the unsharded behavior (and its on-disk
  /// bytes) exactly.
  std::shared_ptr<MetadataPlane> plane;
  /// Stall watchdog (see obs/watchdog.hpp). When set, every client-visible
  /// op and every request-layer RPC arms an in-flight entry carrying its
  /// modeled deadline, and the journal's flush leader brackets its
  /// write+fsync window; the watchdog's poll turns any of them exceeding
  /// its threshold into a one-shot diagnostic dump. Null = off.
  std::shared_ptr<obs::StallWatchdog> watchdog;
  std::uint64_t seed = 0xC10D0D15;
};

/// Per-upload overrides (the client's "demands": sensitivity, assurance,
/// chaff).
struct PutOptions {
  PrivacyLevel privacy_level = PrivacyLevel::kModerate;
  std::optional<raid::RaidLevel> raid;  ///< e.g. kRaid6 for "higher assurance"
  std::optional<double> misleading_fraction;
  /// Protection transform; default is the config's per-PL choice.
  std::optional<ProtectionMode> protection;
  std::size_t record_align = 0;  ///< chunk sizes snap to this record width
};

/// Measured footprint of one operation. Filled from the same accumulator
/// that produces the op's root trace span (see OpScope in distributor.cpp),
/// so the report and the span can never disagree.
struct OpReport {
  std::size_t chunks = 0;
  std::size_t shards = 0;
  std::size_t bytes_logical = 0;  ///< client payload bytes
  std::size_t bytes_stored = 0;   ///< bytes at providers (chaff + parity)
  std::size_t parity_reads = 0;   ///< parity shards actually fetched
  std::size_t retries = 0;        ///< shard RPCs re-issued after kUnavailable
  std::size_t hedges = 0;         ///< parity hedges raced against slow reads
  std::size_t replaced_shards = 0;  ///< shards re-placed off failing providers
  bool rolled_back = false;       ///< op unwound already-written stripes
  SimDuration sim_time_parallel{0};  ///< modeled makespan over worker channels
  SimDuration sim_time_serial{0};    ///< modeled sum of all provider requests
  double wall_seconds = 0.0;         ///< executed CPU time (chunk/parity math)
};

class CloudDataDistributor {
 public:
  /// `registry` must outlive the distributor. Passing a shared MetadataStore
  /// lets several distributors serve one namespace; by default the
  /// distributor creates (and registers providers into) its own.
  CloudDataDistributor(storage::ProviderRegistry& registry,
                       DistributorConfig config,
                       std::shared_ptr<MetadataStore> metadata = nullptr);

  // --- client management ----------------------------------------------

  Status register_client(const std::string& name);
  Status add_password(const std::string& client, const std::string& password,
                      PrivacyLevel pl);

  // --- SVI "Distribute Data" --------------------------------------------

  /// Uploads a file: split -> chaff -> encode -> place -> put. The password
  /// must be privileged for the file's privacy level. Duplicate filenames
  /// per client are rejected.
  Status put_file(const std::string& client, const std::string& password,
                  const std::string& filename, BytesView data,
                  const PutOptions& options, OpReport* report = nullptr);

  // --- SVI "Retrieve Data" ------------------------------------------------

  /// get_file(client name, password, filename) -- all chunks, in parallel.
  [[nodiscard]] Result<Bytes> get_file(const std::string& client,
                                       const std::string& password,
                                       const std::string& filename,
                                       OpReport* report = nullptr);

  /// get_chunk(client name, password, filename, sl no.).
  [[nodiscard]] Result<Bytes> get_chunk(const std::string& client,
                                        const std::string& password,
                                        const std::string& filename,
                                        std::uint64_t serial,
                                        OpReport* report = nullptr);

  /// A client's file inventory from its Table II rows. Only files whose
  /// privacy level the password can read are listed -- a low-privilege
  /// password cannot even learn the names of more sensitive files.
  struct FileInfo {
    std::string filename;
    PrivacyLevel privacy_level = PrivacyLevel::kPublic;
    std::size_t chunks = 0;
  };
  [[nodiscard]] Result<std::vector<FileInfo>> list_files(
      const std::string& client, const std::string& password);

  // --- modification & snapshots (Table III's SP column) ------------------

  /// Overwrites one chunk's payload. The pre-state moves to a snapshot
  /// stripe on distinct providers first, so the previous version stays
  /// retrievable.
  Status update_chunk(const std::string& client, const std::string& password,
                      const std::string& filename, std::uint64_t serial,
                      BytesView new_data, OpReport* report = nullptr);

  /// Retrieves the pre-modification state of a chunk.
  [[nodiscard]] Result<Bytes> get_chunk_snapshot(const std::string& client,
                                                 const std::string& password,
                                                 const std::string& filename,
                                                 std::uint64_t serial);

  // --- SVI "Remove Data" ---------------------------------------------------

  Status remove_chunk(const std::string& client, const std::string& password,
                      const std::string& filename, std::uint64_t serial);
  Status remove_file(const std::string& client, const std::string& password,
                     const std::string& filename);

  // --- maintenance -----------------------------------------------------

  /// Scans every live stripe, re-derives shards that are missing or fail
  /// their digest, and re-places them on healthy eligible providers not
  /// already holding stripe members. Returns the number of shards repaired
  /// via the Result value.
  Result<std::size_t> repair();

  /// Trust-driven migration: when a provider's privacy level has been
  /// demoted (reputation loss, see core/reputation.hpp) below the
  /// sensitivity of chunks it holds, moves those shards to providers that
  /// still qualify and deletes them at the demoted provider. Returns the
  /// number of shards migrated.
  Result<std::size_t> rebalance();

  // --- dynamic provider topology (runtime join/drain/decommission) -------
  //
  // The fleet changes at runtime without a restart. A join registers the
  // provider as kJoining (invisible to placement), then a migration moves it
  // exactly its consistent-hash ring share -- ~1/n of the shard population,
  // not the ~100% a naive rehash would move -- and activates it. A drain
  // removes the provider from the ring and placement, moves its resident
  // shards to ring successors, and leaves it emptied (still serving reads)
  // until decommissioned. Every step is journaled (kBeginMigrate /
  // kCommitMigrate) so a crash at any point resumes idempotently: shard
  // moves copy-then-commit-then-delete, so the worst a crash leaves is an
  // orphan duplicate for reconcile() to sweep, never a hole.
  //
  // The per-chunk unit of work is migrate_chunk(); core/migrator.hpp wraps
  // it in a throttled, observable background engine.

  /// Outcome of migrating one chunk (stripe + snapshot).
  struct ChunkMigrateStats {
    std::size_t moved = 0;   ///< shards re-homed
    std::size_t bytes = 0;   ///< shard bytes copied
    std::size_t errors = 0;  ///< shards that could not be moved this pass
  };

  /// Registers a brand-new provider as kJoining: registry + metadata +
  /// journal. It owns no ring share and takes no placement until a kJoin
  /// migration runs and commits. `seed` 0 derives one from the fleet size.
  Result<ProviderIndex> add_provider(storage::ProviderDescriptor descriptor,
                                     const storage::LatencyModel& latency = {},
                                     std::uint64_t seed = 0);

  /// Opens a migration: validates/applies the lifecycle transition, updates
  /// the ring (join: subject added; drain/decommission: subject removed) and
  /// journals kBeginMigrate. Idempotent -- crash-resume re-issues it.
  Status begin_migration(MigrationKind kind, ProviderIndex subject);

  /// Closes a migration: journals kCommitMigrate and applies the final
  /// lifecycle (join -> kActive, decommission -> kDecommissioned, drain
  /// stays kDraining awaiting decommission). Idempotent.
  Status commit_migration(MigrationKind kind, ProviderIndex subject);

  /// Moves the affected shards of one chunk. kJoin: shards whose virtual id
  /// the ring now assigns to `subject` (its stolen arc); kDrain /
  /// kDecommission: shards resident on `subject`, re-homed to ring
  /// successors. Crash-safe ordering (copy, commit metadata + journal, then
  /// delete the old copy) and idempotent: a re-run skips shards already
  /// moved. Unreachable source shards are RAID-reconstructed from stripe
  /// survivors; a shard that cannot be moved this pass is counted in
  /// `errors` and left in place for the next pass.
  Result<ChunkMigrateStats> migrate_chunk(std::size_t index,
                                          MigrationKind kind,
                                          ProviderIndex subject);

  /// The ring's owner for a virtual id (kNoProvider on an empty ring).
  /// Exposed so tests and benches can predict a join's stolen share.
  [[nodiscard]] ProviderIndex ring_owner(VirtualId key) const;

  // --- durability & crash recovery (see core/journal.hpp) ---------------

  /// Folds the journal into an atomic metadata snapshot at
  /// config().checkpoint_path. Requires a configured journal.
  Status checkpoint();

  /// What reconcile() had to clean up after a crash.
  struct ReconcileReport {
    std::size_t orphans_removed = 0;  ///< provider objects no chunk references
    std::size_t stale_ids = 0;        ///< provider-table ids with no object
    std::size_t aborted_files = 0;    ///< in-flight puts rolled back
    std::size_t repaired_shards = 0;  ///< shards healed by the repair pass
  };

  /// Post-recovery reconciliation. Construct the distributor with
  /// recover_metadata()'s store, then call this with its `in_flight` list:
  /// sweeps provider objects no committed chunk references (shards of
  /// uncommitted puts, drops a crash interrupted), clears stale provider-
  /// table ids, aborts the in-flight puts, and runs a full repair pass for
  /// stripes degraded by the crash.
  Result<ReconcileReport> reconcile(
      const std::vector<std::pair<std::string, std::string>>& in_flight);

  /// Integrity-verifies one chunk: re-fetches every shard of its stripe
  /// (and snapshot), checks SHA-256 digests, and routes any mismatch or
  /// loss through the repair path. Returns shards repaired;
  /// `digest_mismatches` (optional) receives the count of shards that
  /// answered with corrupt bytes, and the holding providers are charged a
  /// scrub error. The scrubber's per-chunk entry point (core/scrubber.hpp).
  Result<std::size_t> scrub_chunk(std::size_t index,
                                  std::size_t* digest_mismatches = nullptr);

  /// Shard-0 partition of the metadata plane -- the whole namespace on an
  /// unsharded (1-shard) plane, one partition of it otherwise.
  [[nodiscard]] const MetadataStore& metadata() const { return *metadata_; }
  [[nodiscard]] std::shared_ptr<MetadataStore> metadata_ptr() { return metadata_; }
  /// The (possibly 1-shard) metadata plane every op routes through.
  [[nodiscard]] const std::shared_ptr<MetadataPlane>& plane() const {
    return plane_;
  }
  /// Exclusive upper bound of the global chunk index space maintenance
  /// loops sweep (repair/scrub/rebalance/migrate). Globals may be sparse on
  /// a sharded plane -- a missing slot reads as NotFound and is skipped.
  /// Equals metadata().total_chunks() on a 1-shard plane.
  [[nodiscard]] std::size_t chunk_index_bound() const {
    return plane_->global_chunk_bound();
  }
  [[nodiscard]] storage::ProviderRegistry& registry() { return registry_; }
  [[nodiscard]] const DistributorConfig& config() const { return config_; }

  /// The telemetry sink this distributor reports into. Never null; when
  /// config().telemetry is false it is a private, permanently-disabled
  /// instance.
  [[nodiscard]] const std::shared_ptr<obs::Telemetry>& telemetry() const {
    return telemetry_;
  }

 private:
  struct StripeWriteResult {
    std::vector<ShardLocation> locations;
    std::vector<crypto::Digest> digests;
    std::size_t bytes_stored = 0;
    std::size_t retries = 0;   ///< shard RPC retries across the stripe
    std::size_t replaced = 0;  ///< shards re-placed off failing providers
  };

  /// Stripe read strategy. kEager fetches every shard of the stripe
  /// concurrently (lowest latency for a single chunk). kLazyParity first
  /// fetches only the data shards -- encode() lays shards out data-first --
  /// and touches parity solely when a data shard is missing or corrupt;
  /// the pipelined get_file uses it to cut per-stripe work by the parity
  /// fraction.
  enum class ReadMode { kEager, kLazyParity };

  /// What a stripe read had to do beyond the happy path (feeds the
  /// parity-fallback counters and OpReport::parity_reads).
  struct StripeReadStats {
    std::size_t parity_reads = 0;  ///< parity shards fetched for recovery
    std::size_t retries = 0;       ///< shard RPC retries across the stripe
    std::size_t hedges = 0;        ///< parity hedges raced vs slow shards
    bool fallback = false;         ///< a data shard was missing/corrupt
  };

  /// Authenticates and checks privilege against `required`.
  Result<PrivacyLevel> authorize(const std::string& client,
                                 const std::string& password,
                                 PrivacyLevel required) const;

  /// Applies the protection transform to a chaffed padded payload, in
  /// place, before it is encoded/digested/uploaded. Returns the AES-
  /// encrypted prefix length (0 for the other modes), which the chunk row
  /// must record for the inverse.
  std::size_t apply_protection(Bytes& padded, ProtectionMode mode,
                               PrivacyLevel pl,
                               const raid::StripeLayout& layout,
                               std::uint64_t nonce) const;

  /// Inverse of apply_protection on a decoded padded payload (runs before
  /// the chaff strip). A v1 chunk row decodes to kPartialAes with
  /// protect_bytes == 0, making this a no-op on pre-ProtectionMode blobs.
  void remove_protection(Bytes& padded, ProtectionMode mode,
                         const raid::StripeLayout& layout,
                         std::uint64_t nonce, std::size_t protect_bytes) const;

  VirtualId next_virtual_id();

  /// Encodes `payload` under `layout` and uploads shards to `targets` via
  /// the I/O pool, appending per-request service times to `times`.
  /// Per-shard SHA-256 digests are computed inside the upload tasks, off
  /// the caller thread. Safe to call from pool_ tasks: shard work runs on
  /// io_pool_, whose tasks never submit further work, so blocking on them
  /// cannot deadlock the compute pool.
  /// `pl` is the chunk's privacy level -- needed so a shard whose provider
  /// keeps failing can be re-placed on another *trust-eligible* provider
  /// (the write-quarantine path) instead of failing the stripe.
  /// `shard` is the metadata partition owning the chunk being written --
  /// its provider table records the placements, keeping each partition's
  /// checkpoint self-consistent with its own chunk rows.
  Result<StripeWriteResult> write_stripe(BytesView payload,
                                         const raid::StripeLayout& layout,
                                         const std::vector<ProviderIndex>& targets,
                                         PrivacyLevel pl,
                                         std::vector<SimDuration>& times,
                                         const obs::SpanCtx& span,
                                         std::size_t shard);

  /// Fetches + digest-verifies + RAID-decodes one stripe into its padded
  /// payload (chaff still present). Shard fetches run on io_pool_ (same
  /// deadlock-freedom argument as write_stripe).
  Result<Bytes> read_stripe(const raid::StripeLayout& layout,
                            const std::vector<ShardLocation>& stripe,
                            const std::vector<crypto::Digest>& digests,
                            std::size_t padded_size,
                            std::vector<SimDuration>& times,
                            ReadMode mode = ReadMode::kEager,
                            const obs::SpanCtx& span = {},
                            StripeReadStats* stats = nullptr);

  /// Deletes stripe shards at providers and updates the provider table of
  /// the owning metadata partition.
  void drop_stripe(const std::vector<ShardLocation>& stripe,
                   std::vector<SimDuration>* times, std::size_t shard);

  /// Healthy (online, not quarantined) trust-eligible provider outside
  /// `stripe`; kNoProvider when none. Shared by write-quarantine re-placement
  /// and repair/rebalance home selection.
  [[nodiscard]] ProviderIndex replacement_target(
      PrivacyLevel pl, const std::vector<ShardLocation>& stripe) const;

  /// Idempotent ring membership updates (guarded by ring_mu_).
  void ring_insert(ProviderIndex p, std::string_view name);
  void ring_erase(ProviderIndex p);

  /// New home for a shard leaving `subject` during a drain: walks the ring
  /// successors of the shard's key and returns the first active,
  /// trust-eligible, online, unquarantined provider outside the stripe;
  /// falls back to replacement_target. kNoProvider when the fleet has no
  /// qualifying member.
  [[nodiscard]] ProviderIndex drain_home(
      PrivacyLevel pl, const std::vector<ShardLocation>& stripe,
      VirtualId key, ProviderIndex subject) const;

  /// What healing one chunk found and fixed.
  struct StripeHealStats {
    std::size_t fixed = 0;       ///< shards reconstructed and re-homed
    std::size_t mismatches = 0;  ///< shards returned with a bad digest
  };

  /// Shared core of repair() and scrub_chunk(): probes every shard of the
  /// chunk at `index` (stripe + snapshot) through the I/O pool, RAID-
  /// reconstructs what is missing or corrupt, re-homes it, and commits the
  /// new locations (metadata + journal). `note_scrub` charges providers
  /// that served corrupt bytes with a scrub error.
  Result<StripeHealStats> heal_chunk(std::size_t index, bool note_scrub);

  /// True when the plane journals (all-or-nothing across partitions).
  [[nodiscard]] bool journaling() const {
    return plane_->journal(0) != nullptr;
  }

  /// Appends to `shard`'s journal (no-op on an unjournaled plane) and
  /// triggers that shard's auto-checkpoint when the interval is reached.
  Status journal_append(const JournalRecord& rec, std::size_t shard);

  /// Broadcast append: the record goes to every shard journal, so each
  /// partition's checkpoint+journal pair stays self-contained (client rows,
  /// provider rows, migration intents).
  Status journal_append_all(const JournalRecord& rec);

  /// Folds one partition's journal into its checkpoint image.
  Status checkpoint_shard(std::size_t shard);

  storage::ProviderRegistry& registry_;
  DistributorConfig config_;
  std::shared_ptr<obs::Telemetry> telemetry_;
  std::shared_ptr<MetadataPlane> plane_;
  std::shared_ptr<MetadataStore> metadata_;  ///< shard-0 partition
  RequestLayer rt_;  ///< retry/breaker/hedge wrapper for every shard RPC
  PlacementPolicy placement_;
  ThreadPool pool_;     ///< chunk-level pipeline stages
  ThreadPool io_pool_;  ///< shard-level provider RPCs (leaf tasks only)
  Rng chaff_rng_;
  std::atomic<std::uint64_t> id_counter_{1};
  std::uint64_t id_key_;
  mutable std::mutex mu_;  ///< guards placement_ and chaff_rng_
  /// Consistent-hash ring over placement-participating providers (kActive,
  /// plus a joiner from its kBeginMigrate on). Joins/drains consult it to
  /// identify the minimal affected shard set instead of rehashing the world.
  mutable std::mutex ring_mu_;
  dht::HashRing ring_;
  std::unordered_set<ProviderIndex> ring_members_;
  /// Cross-op shard-put coalescing; null when rpc_batch_shards <= 1.
  /// Declared last: its flusher threads use rt_/telemetry_, so it must be
  /// destroyed (drained and joined) before them.
  std::unique_ptr<ShardBatcher> batcher_;
};

/// Models the makespan of `times` scheduled greedily onto `channels`
/// parallel provider connections (how long the batch of requests takes with
/// the distributor's thread pool). Exposed for tests/benches.
[[nodiscard]] SimDuration parallel_makespan(std::vector<SimDuration> times,
                                            std::size_t channels);

}  // namespace cshield::core

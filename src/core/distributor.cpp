#include "core/distributor.hpp"

#include <algorithm>
#include <future>
#include <queue>
#include <unordered_set>

#include "core/metadata_io.hpp"
#include "core/misleading.hpp"
#include "crypto/fragmentation.hpp"
#include "util/hash.hpp"

namespace cshield::core {
namespace {

/// Chaff ratio recorded implicitly by a chunk entry (positions / original).
double chaff_fraction_of(const ChunkEntry& entry) {
  const std::size_t original = entry.padded_size - entry.misleading.size();
  return original == 0 ? 0.0
                       : static_cast<double>(entry.misleading.size()) /
                             static_cast<double>(original);
}

/// Quarters of each chunk the partial-AES mode encrypts, per privacy level:
/// the paper's "partitioning data and encrypting a portion of it", scaled
/// with sensitivity. PL0 is public -- nothing to hide.
std::size_t aes_quarters_for(PrivacyLevel pl) {
  switch (pl) {
    case PrivacyLevel::kPublic: return 0;
    case PrivacyLevel::kLow: return 1;
    case PrivacyLevel::kModerate: return 2;
    case PrivacyLevel::kHigh: return 4;
  }
  return 4;
}

}  // namespace

SimDuration parallel_makespan(std::vector<SimDuration> times,
                              std::size_t channels) {
  if (times.empty()) return SimDuration{0};
  CS_REQUIRE(channels > 0, "parallel_makespan: zero channels");
  // Greedy list scheduling in submission order onto the earliest-free
  // channel -- matches how the thread pool drains its FIFO queue.
  std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                      std::greater<>> ends;
  for (std::size_t c = 0; c < channels; ++c) ends.push(0);
  std::int64_t makespan = 0;
  for (const SimDuration& t : times) {
    const std::int64_t start = ends.top();
    ends.pop();
    const std::int64_t end = start + t.count();
    makespan = std::max(makespan, end);
    ends.push(end);
  }
  return SimDuration{makespan};
}

namespace {

/// Accumulates one client-visible operation's footprint and, at finish,
/// emits BOTH the op's root trace span and its OpReport from the same
/// numbers -- deriving the report from the root span's accumulator is what
/// keeps the two from ever disagreeing. Construct it after authentication
/// (auth failures are counted separately, not traced as pipeline ops) and
/// route every subsequent return through finish().
class OpScope {
 public:
  /// `wd` (optional) registers the op in the stall watchdog's in-flight
  /// table for its lifetime, carrying `deadline_ns` as the modeled bound
  /// the stall detector scales (the request-layer deadline).
  OpScope(obs::Telemetry* tel, const char* name, std::string_view client,
          std::string_view file, obs::StallWatchdog* wd = nullptr,
          std::int64_t deadline_ns = 0)
      : tel_(tel != nullptr && tel->enabled() ? tel : nullptr), name_(name) {
    if (tel_ == nullptr) return;
    armed_ = obs::StallWatchdog::Armed(wd, name_, deadline_ns);
    obs::Tracer& tr = tel_->tracer();
    rec_.op_id = tr.next_id();
    rec_.span_id = tr.next_id();
    rec_.name = name_;
    rec_.client = client;
    rec_.file = file;
    rec_.start_ns = tr.now_ns();
    tel_->metrics().gauge("cdd.inflight_ops").add(1);
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  ~OpScope() {
    // Belt-and-braces: a return path that skipped finish() still closes the
    // gauge and records the span, marked as an internal error.
    if (!finished_) (void)finish(Status::Internal(name_ + " left open"),
                                 nullptr, 1);
  }

  [[nodiscard]] bool armed() const { return tel_ != nullptr; }

  /// Linkage for child spans (chunk stages, shard RPCs).
  [[nodiscard]] obs::SpanCtx ctx() const {
    return armed() ? obs::SpanCtx{rec_.op_id, rec_.span_id} : obs::SpanCtx{};
  }

  // Accumulators. Written by the op body -- either on the caller thread or
  // from pool tasks that are joined before finish() reads them.
  std::size_t chunks = 0;
  std::size_t shards = 0;
  std::size_t bytes_logical = 0;
  std::size_t bytes_stored = 0;
  std::size_t parity_reads = 0;
  std::size_t retries = 0;
  std::size_t hedges = 0;
  std::size_t replaced_shards = 0;
  bool rolled_back = false;
  std::uint64_t chunk_serial = obs::kNoChunk;  ///< for chunk-granularity ops
  std::vector<SimDuration> times;  ///< every provider request's service time

  /// Fills `report` (always -- error paths now report their footprint too,
  /// which is how rolled_back becomes observable), records the root span
  /// and per-op metrics, and passes `status` through.
  Status finish(Status status, OpReport* report, std::size_t channels) {
    finished_ = true;
    armed_.release();  // the op is no longer in flight, whatever its status
    SimDuration serial{0};
    for (const SimDuration& t : times) serial += t;
    const SimDuration par = parallel_makespan(times, channels);
    const double wall = wall_.elapsed_seconds();
    if (report != nullptr) {
      report->chunks = chunks;
      report->shards = shards;
      report->bytes_logical = bytes_logical;
      report->bytes_stored = bytes_stored;
      report->parity_reads = parity_reads;
      report->retries = retries;
      report->hedges = hedges;
      report->replaced_shards = replaced_shards;
      report->rolled_back = rolled_back;
      report->sim_time_parallel = par;
      report->sim_time_serial = serial;
      report->wall_seconds = wall;
    }
    if (tel_ != nullptr) {
      obs::MetricsRegistry& m = tel_->metrics();
      const std::string prefix = "cdd." + name_;
      m.counter(prefix + (status.ok() ? "_total" : "_errors")).inc();
      m.histogram(prefix + "_wall_ns").observe(wall * 1e9);
      m.histogram(prefix + "_sim_ns").observe(static_cast<double>(par.count()));
      if (rolled_back) m.counter("cdd.rollbacks").inc();
      m.gauge("cdd.inflight_ops").add(-1);
      rec_.wall_ns = static_cast<std::int64_t>(wall * 1e9);
      rec_.sim_ns = serial.count();  // children sum to this by construction
      rec_.bytes = bytes_logical;
      rec_.chunk = chunk_serial;
      rec_.outcome = status.code();
      tel_->tracer().record(std::move(rec_));
      tel_ = nullptr;
    }
    return status;
  }

 private:
  obs::Telemetry* tel_;
  std::string name_;
  obs::SpanRecord rec_;
  obs::StallWatchdog::Armed armed_;
  Stopwatch wall_;
  bool finished_ = false;
};

}  // namespace

CloudDataDistributor::CloudDataDistributor(
    storage::ProviderRegistry& registry, DistributorConfig config,
    std::shared_ptr<MetadataStore> metadata)
    : registry_(registry),
      config_(std::move(config)),
      telemetry_(config_.telemetry
                     ? (config_.telemetry_sink ? config_.telemetry_sink
                                               : obs::Telemetry::global())
                     : std::make_shared<obs::Telemetry>(false)),
      plane_(config_.plane),
      metadata_(plane_ != nullptr
                    ? plane_->store_ptr(0)
                    : (metadata ? std::move(metadata)
                                : std::make_shared<MetadataStore>())),
      rt_(registry_, config_.retry, telemetry_.get(), config_.seed,
          config_.watchdog.get()),
      placement_(config_.seed ^ 0x91ACE, config_.placement),
      pool_(config_.worker_threads),
      io_pool_(config_.io_threads != 0 ? config_.io_threads
                                       : 4 * config_.worker_threads),
      chaff_rng_(config_.seed ^ 0xC4AFF),
      id_key_(mix64(config_.seed ^ 0x1DFEED)) {
  // No explicit plane: wrap the store + journal + checkpoint path into a
  // 1-shard plane, so every op routes uniformly and the on-disk bytes stay
  // identical to the unsharded layout.
  if (plane_ == nullptr) {
    std::vector<MetadataPlane::Partition> parts(1);
    parts[0].store = metadata_;
    parts[0].journal = config_.journal;
    parts[0].checkpoint_path = config_.checkpoint_path;
    plane_ = std::make_shared<MetadataPlane>(std::move(parts));
  }
  if (config_.telemetry) {
    registry_.attach_telemetry(telemetry_);
    placement_.set_metrics(&telemetry_->metrics());
    for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
      if (plane_->journal(s) != nullptr) {
        plane_->journal(s)->attach_telemetry(telemetry_);
      }
    }
  }
  if (config_.watchdog != nullptr) {
    for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
      if (plane_->journal(s) != nullptr) {
        plane_->journal(s)->attach_watchdog(config_.watchdog.get());
      }
    }
    // Breaker/quarantine states for the diagnostic dump: obs cannot depend
    // on the storage layer, so the distributor injects the renderer.
    storage::ProviderRegistry* reg = &registry_;
    config_.watchdog->set_context_fn([reg] {
      std::string out;
      for (ProviderIndex i = 0; i < reg->size(); ++i) {
        const char* state = "closed";
        switch (reg->breaker(i).state()) {
          case storage::CircuitBreaker::State::kOpen: state = "open"; break;
          case storage::CircuitBreaker::State::kHalfOpen:
            state = "half-open";
            break;
          case storage::CircuitBreaker::State::kClosed: break;
        }
        out += "breaker " + reg->at(i).descriptor().name + ": " + state +
               (reg->quarantined(i) ? " (quarantined)\n" : "\n");
      }
      return out;
    });
  }
  if (config_.rpc_batch_shards > 1) {
    batcher_ = std::make_unique<ShardBatcher>(
        rt_, registry_.size(),
        ShardBatcher::Config{config_.rpc_batch_shards, config_.rpc_batch_wait},
        telemetry_.get());
  }
  // Mirror registry rows into every partition's Cloud Provider Table
  // (idempotent when a shared, already-populated plane is handed in). Each
  // partition is topped up independently -- a crash mid-broadcast leaves
  // some partitions a row short, and this loop heals them -- and each new
  // row is journaled to that partition's own WAL: replay onto an empty
  // store must know the providers before any record_placement touches
  // their id sets.
  for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
    MetadataStore& part = plane_->store(s);
    const std::size_t known = part.provider_table().size();
    for (ProviderIndex i = known; i < registry_.size(); ++i) {
      const auto& d = registry_.at(i).descriptor();
      const ProviderLifecycle lc = registry_.lifecycle(i);
      part.register_provider(d.name, d.privacy_level, d.cost_level, lc);
      if (plane_->journal(s) != nullptr) {
        JournalRecord rec;
        rec.op = JournalOp::kRegisterProvider;
        rec.provider_index = i;
        rec.client = d.name;
        rec.level = static_cast<std::uint8_t>(d.privacy_level);
        rec.cost = static_cast<std::uint8_t>(d.cost_level);
        rec.lifecycle = static_cast<std::uint8_t>(lc);
        const Status journaled = journal_append(rec, s);
        CS_REQUIRE(journaled.ok(),
                   "journal unusable at startup: " + journaled.to_string());
      }
    }
  }
  // Seed the topology ring with the placement-participating members. A
  // provider mid-join or mid-drain at construction time (crash-resume)
  // rejoins/stays off the ring when begin_migration re-runs.
  for (ProviderIndex i = 0; i < registry_.size(); ++i) {
    if (registry_.lifecycle(i) == ProviderLifecycle::kActive) {
      ring_insert(i, registry_.at(i).descriptor().name);
    }
  }
}

Status CloudDataDistributor::journal_append(const JournalRecord& rec,
                                            std::size_t shard) {
  Journal* j = plane_->journal(shard);
  if (j == nullptr) return Status::Ok();
  CS_RETURN_IF_ERROR(j->append(rec));
  // Auto-checkpoint folds only the shard whose journal hit the interval --
  // the other partitions' lanes are untouched.
  if (config_.checkpoint_interval > 0 &&
      !plane_->checkpoint_path(shard).empty() &&
      j->record_count() >= config_.checkpoint_interval) {
    return checkpoint_shard(shard);
  }
  return Status::Ok();
}

Status CloudDataDistributor::journal_append_all(const JournalRecord& rec) {
  for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
    CS_RETURN_IF_ERROR(journal_append(rec, s));
  }
  return Status::Ok();
}

Status CloudDataDistributor::checkpoint_shard(std::size_t shard) {
  Journal* j = plane_->journal(shard);
  if (j == nullptr) {
    return Status::InvalidArgument("checkpoint: no journal configured");
  }
  if (plane_->checkpoint_path(shard).empty()) {
    return Status::InvalidArgument("checkpoint: no checkpoint path");
  }
  const std::uint32_t count =
      static_cast<std::uint32_t>(plane_->shard_count());
  Status st = j->checkpoint(
      [this, shard, count] {
        return serialize_metadata(plane_->store(shard),
                                  static_cast<std::uint32_t>(shard), count);
      },
      plane_->checkpoint_path(shard));
  if (st.ok() && telemetry_->enabled()) {
    telemetry_->metrics().counter("cdd.checkpoints").inc();
  }
  return st;
}

Status CloudDataDistributor::checkpoint() {
  for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
    CS_RETURN_IF_ERROR(checkpoint_shard(s));
  }
  return Status::Ok();
}

Status CloudDataDistributor::register_client(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty client name");
  // Client rows are broadcast to every partition: any front-end can then
  // authenticate against any shard, and each shard journal stays
  // self-contained for parallel recovery.
  CS_RETURN_IF_ERROR(metadata_->register_client(name));
  for (std::size_t s = 1; s < plane_->shard_count(); ++s) {
    CS_RETURN_IF_ERROR(plane_->store(s).register_client(name));
  }
  JournalRecord rec;
  rec.op = JournalOp::kRegisterClient;
  rec.client = name;
  return journal_append_all(rec);
}

Status CloudDataDistributor::add_password(const std::string& client,
                                          const std::string& password,
                                          PrivacyLevel pl) {
  if (password.empty()) return Status::InvalidArgument("empty password");
  CS_RETURN_IF_ERROR(metadata_->add_password(client, password, pl));
  for (std::size_t s = 1; s < plane_->shard_count(); ++s) {
    CS_RETURN_IF_ERROR(plane_->store(s).add_password(client, password, pl));
  }
  JournalRecord rec;
  rec.op = JournalOp::kAddPassword;
  rec.client = client;
  rec.filename = password;
  rec.level = static_cast<std::uint8_t>(pl);
  return journal_append_all(rec);
}

Result<PrivacyLevel> CloudDataDistributor::authorize(
    const std::string& client, const std::string& password,
    PrivacyLevel required) const {
  Result<PrivacyLevel> granted = metadata_->authenticate(client, password);
  if (!granted.ok()) {
    if (telemetry_->enabled()) {
      telemetry_->metrics().counter("cdd.auth_failures").inc();
    }
    return granted;
  }
  if (!privileged_for(granted.value(), required)) {
    if (telemetry_->enabled()) {
      telemetry_->metrics().counter("cdd.auth_failures").inc();
    }
    return Status::PermissionDenied(
        "password privilege " +
        std::string(privacy_level_name(granted.value())) +
        " below required " + std::string(privacy_level_name(required)));
  }
  return granted;
}

VirtualId CloudDataDistributor::next_virtual_id() {
  // Counter mixed with a per-distributor key: unique, and reveals neither
  // client identity nor upload order to providers.
  VirtualId id = 0;
  do {
    id = mix64(id_counter_.fetch_add(1, std::memory_order_relaxed) ^ id_key_);
  } while (id == 0);
  return id;
}

std::size_t CloudDataDistributor::apply_protection(
    Bytes& padded, ProtectionMode mode, PrivacyLevel pl,
    const raid::StripeLayout& layout, std::uint64_t nonce) const {
  switch (mode) {
    case ProtectionMode::kMisleadingBytes:
      // Chaff was already injected upstream; the payload itself is stored
      // as-is (the pre-ProtectionMode behavior).
      return 0;
    case ProtectionMode::kPartialAes: {
      const std::size_t prefix =
          (padded.size() * aes_quarters_for(pl) + 3) / 4;
      if (prefix == 0) return 0;
      const Bytes enc = crypto::aes128_ctr(config_.protection_key, nonce,
                                           BytesView(padded.data(), prefix));
      std::copy(enc.begin(), enc.end(), padded.begin());
      return prefix;
    }
    case ProtectionMode::kFragmentation:
      // Entangle across the data-shard fragments raid::encode will slice
      // this payload into: each provider stores one full-rank mix of every
      // fragment. Digests and parity are computed over the entangled bytes,
      // so repair/scrub stay protection-agnostic.
      crypto::fragmentation::entangle(padded, layout.data_shards, nonce);
      return 0;
  }
  return 0;
}

void CloudDataDistributor::remove_protection(Bytes& padded,
                                             ProtectionMode mode,
                                             const raid::StripeLayout& layout,
                                             std::uint64_t nonce,
                                             std::size_t protect_bytes) const {
  switch (mode) {
    case ProtectionMode::kMisleadingBytes:
      return;
    case ProtectionMode::kPartialAes: {
      const std::size_t prefix = std::min(protect_bytes, padded.size());
      if (prefix == 0) return;  // v1 rows land here: nothing was encrypted
      const Bytes dec = crypto::aes128_ctr(config_.protection_key, nonce,
                                           BytesView(padded.data(), prefix));
      std::copy(dec.begin(), dec.end(), padded.begin());
      return;
    }
    case ProtectionMode::kFragmentation:
      crypto::fragmentation::detangle(padded, layout.data_shards, nonce);
      return;
  }
}

Result<CloudDataDistributor::StripeWriteResult>
CloudDataDistributor::write_stripe(BytesView payload,
                                   const raid::StripeLayout& layout,
                                   const std::vector<ProviderIndex>& targets,
                                   PrivacyLevel pl,
                                   std::vector<SimDuration>& times,
                                   const obs::SpanCtx& span,
                                   std::size_t shard) {
  raid::EncodedStripe encoded = raid::encode(layout, payload);
  CS_REQUIRE(targets.size() == encoded.shard_count,
             "write_stripe: target/shard arity mismatch");

  StripeWriteResult result;
  result.locations.resize(encoded.shard_count);
  result.digests.resize(encoded.shard_count);
  for (std::size_t s = 0; s < encoded.shard_count; ++s) {
    result.locations[s] = ShardLocation{targets[s], next_virtual_id()};
    result.bytes_stored += encoded.shard_size;
  }

  struct ShardOutcome {
    Status status = Status::Ok();
    crypto::Digest digest{};
    SimDuration time{0};
    std::uint32_t retries = 0;
  };
  // Digest computation lives inside the upload task, so with Exec::kPool it
  // runs off the caller thread. Shard bytes stay in `encoded`'s arena (each
  // task reads only its own zero-copy slice) so a failed shard can be
  // re-placed below.
  // `span` and `encoded` outlive the futures: write_stripe blocks on them.
  auto upload = [this, &span, &encoded, &layout](std::size_t s,
                                                 ProviderIndex provider,
                                                 VirtualId id) {
    ShardOutcome outcome;
    obs::SpanRecord proto;
    proto.op_id = span.op_id;
    proto.parent_id = span.parent;
    proto.name = "shard_put";
    proto.provider = provider;
    proto.shard_kind = s < layout.data_shards ? obs::ShardKind::kData
                                              : obs::ShardKind::kParity;
    proto.bytes = encoded.shard_size;
    obs::ScopedSpan sp(span.armed() ? telemetry_.get() : nullptr,
                       std::move(proto));
    outcome.digest = crypto::sha256(encoded.shard(s));
    RequestLayer::Outcome rpc = rt_.put(provider, id, encoded.shard(s));
    outcome.status = rpc.status;
    outcome.time = rpc.time;
    outcome.retries = rpc.retries;
    if (sp.armed()) {
      sp.rec().sim_ns = rpc.time.count();
      sp.rec().attempts = std::max<std::uint32_t>(rpc.attempts, 1);
      sp.rec().outcome = rpc.status.code();
    }
    return outcome;
  };

  std::vector<ShardOutcome> outcomes(encoded.shard_count);
  if (batcher_ != nullptr) {
    // Batched-RPC mode: every shard goes to the cross-op batcher, which
    // coalesces it with shards of other in-flight stripes bound for the
    // same provider. Placement makes the stripe's own targets distinct, so
    // within this call each provider sees one shard -- the batching win is
    // across concurrent operations. Digests are computed here on the
    // caller thread (small-op path: the shards are small by construction).
    // Providers joined after the batcher was built have no lane; their
    // shards take the direct per-shard path instead.
    // `encoded` outlives the futures: we block on them below.
    std::vector<std::pair<std::size_t, std::future<ShardBatcher::PutResult>>>
        batched;
    std::vector<std::pair<std::size_t, std::future<ShardOutcome>>> direct;
    batched.reserve(encoded.shard_count);
    for (std::size_t s = 0; s < encoded.shard_count; ++s) {
      if (targets[s] >= batcher_->lanes()) {
        direct.emplace_back(s, io_pool_.submit(upload, s, targets[s],
                                               result.locations[s].virtual_id));
        continue;
      }
      outcomes[s].digest = crypto::sha256(encoded.shard(s));
      batched.emplace_back(s, batcher_->put(targets[s],
                                            result.locations[s].virtual_id,
                                            encoded.shard(s)));
    }
    for (auto& [s, fut] : batched) {
      ShardBatcher::PutResult r = fut.get();
      outcomes[s].status = std::move(r.status);
      outcomes[s].time = r.time;
      outcomes[s].retries = r.retries;
    }
    for (auto& [s, fut] : direct) outcomes[s] = fut.get();
  } else {
    std::vector<std::future<ShardOutcome>> futures;
    futures.reserve(encoded.shard_count);
    for (std::size_t s = 0; s < encoded.shard_count; ++s) {
      futures.push_back(io_pool_.submit(upload, s, targets[s],
                                        result.locations[s].virtual_id));
    }
    for (std::size_t s = 0; s < futures.size(); ++s) {
      outcomes[s] = futures[s].get();
    }
  }

  Status first_error = Status::Ok();
  for (std::size_t s = 0; s < outcomes.size(); ++s) {
    times.push_back(outcomes[s].time);
    result.digests[s] = outcomes[s].digest;
    result.retries += outcomes[s].retries;
    if (outcomes[s].status.ok()) continue;
    // Write quarantine: the target kept failing (its breaker has likely
    // opened by now), so re-place this shard on a healthy trust-eligible
    // provider outside the stripe rather than failing the whole write.
    const ProviderIndex home =
        replacement_target(pl, result.locations);
    if (home != kNoProvider) {
      const VirtualId fresh = next_virtual_id();
      result.locations[s] = ShardLocation{home, fresh};
      const ShardOutcome replaced = upload(s, home, fresh);
      times.push_back(replaced.time);
      result.retries += replaced.retries;
      if (replaced.status.ok()) {
        result.replaced += 1;
        outcomes[s].status = Status::Ok();
        if (telemetry_->enabled()) {
          telemetry_->metrics().counter("cdd.replaced_shards").inc();
        }
        continue;
      }
      outcomes[s].status = replaced.status;
    }
    if (first_error.ok()) first_error = outcomes[s].status;
  }
  if (!first_error.ok()) {
    // Best-effort rollback of the shards that did land (with the request
    // layer's retry budget, so a transient blip cannot orphan a shard).
    for (const auto& loc : result.locations) {
      (void)rt_.remove(loc.provider, loc.virtual_id);
    }
    return first_error;
  }
  MetadataStore& part = plane_->store(shard);
  for (const auto& loc : result.locations) {
    part.record_placement(loc.provider, loc.virtual_id);
  }
  return result;
}

/// Picks a healthy trust-eligible provider not already in `stripe`, for the
/// write-quarantine and repair paths. kNoProvider when none qualifies.
/// Deterministic: first candidate in registry order.
ProviderIndex CloudDataDistributor::replacement_target(
    PrivacyLevel pl, const std::vector<ShardLocation>& stripe) const {
  for (ProviderIndex cand : registry_.eligible_for(pl)) {
    if (!registry_.at(cand).online()) continue;
    if (registry_.quarantined(cand)) continue;
    bool in_stripe = false;
    for (const auto& loc : stripe) {
      if (loc.provider == cand) in_stripe = true;
    }
    if (!in_stripe) return cand;
  }
  return kNoProvider;
}

Result<Bytes> CloudDataDistributor::read_stripe(
    const raid::StripeLayout& layout, const std::vector<ShardLocation>& stripe,
    const std::vector<crypto::Digest>& digests, std::size_t padded_size,
    std::vector<SimDuration>& times, ReadMode mode, const obs::SpanCtx& span,
    StripeReadStats* stats) {
  CS_REQUIRE(stripe.size() == layout.total_shards(),
             "read_stripe: stripe arity mismatch");
  struct ShardFetch {
    std::optional<Bytes> data;
    SimDuration time{0};
    std::uint32_t retries = 0;
  };
  std::vector<std::optional<Bytes>> shards(stripe.size());
  std::vector<SimDuration> fetch_time(stripe.size(), SimDuration{0});
  std::size_t rpc_retries = 0;

  // One shard fetch through the request layer (retries + breaker). A shard
  // that is unreachable OR fails its integrity digest counts as an erasure;
  // the RAID decode below recovers through it if it can.
  auto fetch_one = [&](std::size_t s, std::size_t budget, const char* name) {
    ShardFetch f;
    obs::SpanRecord proto;
    proto.op_id = span.op_id;
    proto.parent_id = span.parent;
    proto.name = name;
    proto.provider = stripe[s].provider;
    proto.shard_kind = s < layout.data_shards ? obs::ShardKind::kData
                                              : obs::ShardKind::kParity;
    obs::ScopedSpan sp(span.armed() ? telemetry_.get() : nullptr,
                       std::move(proto));
    RequestLayer::GetOutcome r =
        rt_.get(stripe[s].provider, stripe[s].virtual_id, budget);
    f.time = r.time;
    f.retries = r.retries;
    const bool intact =
        r.data.has_value() && crypto::sha256(*r.data) == digests[s];
    if (sp.armed()) {
      sp.rec().sim_ns = r.time.count();
      sp.rec().attempts = std::max<std::uint32_t>(r.attempts, 1);
      sp.rec().bytes = r.data.has_value() ? r.data->size() : 0;
      sp.rec().outcome = intact ? ErrorCode::kOk
                                : (r.data.has_value() ? ErrorCode::kCorrupted
                                                      : r.status.code());
    }
    if (intact) f.data = std::move(*r.data);
    return f;
  };
  // Fetches `idxs` concurrently through the I/O pool. `span` outlives the
  // tasks: fetch_set blocks on the futures.
  auto fetch_set = [&](const std::vector<std::size_t>& idxs,
                       std::size_t budget) {
    std::vector<std::future<ShardFetch>> futures;
    futures.reserve(idxs.size());
    for (std::size_t s : idxs) {
      futures.push_back(io_pool_.submit(
          [&fetch_one, s, budget] { return fetch_one(s, budget, "shard_get"); }));
    }
    bool all_present = true;
    for (std::size_t i = 0; i < idxs.size(); ++i) {
      ShardFetch f = futures[i].get();
      const std::size_t s = idxs[i];
      times.push_back(f.time);
      fetch_time[s] = f.time;
      rpc_retries += f.retries;
      if (!f.data.has_value()) all_present = false;
      shards[s] = std::move(f.data);
    }
    return all_present;
  };

  std::vector<std::size_t> data_idx;
  std::vector<std::size_t> parity_idx;
  for (std::size_t s = 0; s < stripe.size(); ++s) {
    (s < layout.data_shards ? data_idx : parity_idx).push_back(s);
  }

  const bool lazy = mode == ReadMode::kLazyParity && layout.parity_shards > 0;
  std::size_t parity_fetched = 0;
  bool data_degraded = false;
  std::size_t hedges = 0;
  if (!lazy) {
    (void)fetch_set(data_idx, 0);
    (void)fetch_set(parity_idx, 0);
    parity_fetched = parity_idx.size();
    for (std::size_t s : data_idx) {
      if (!shards[s].has_value()) data_degraded = true;
    }
  } else {
    // Lazy-parity with a degraded-read budget: data shards get only
    // `degraded_attempts` tries, because waiting out the full retry budget
    // on a slow provider is pointless when parity can reconstruct. On a
    // miss, escalate -- re-fetch the missing data shards at full budget
    // alongside all parity, so one transient blip per shard never
    // outnumbers the stripe's erasure tolerance.
    if (!fetch_set(data_idx, config_.retry.degraded_attempts)) {
      data_degraded = true;
      std::vector<std::size_t> recover = parity_idx;
      for (std::size_t s : data_idx) {
        if (!shards[s].has_value()) recover.push_back(s);
      }
      (void)fetch_set(recover, 0);
      parity_fetched = parity_idx.size();
    } else {
      // Hedged read: when the slowest data shard sits far above its
      // provider's own latency percentile, race the parity path (a shard
      // lives on exactly one provider, so "a second eligible provider"
      // means the stripe's redundancy). The hedge models what a client
      // racing both would pay; the decode uses the data shards either way.
      std::size_t slowest = data_idx.front();
      for (std::size_t s : data_idx) {
        if (fetch_time[s] > fetch_time[slowest]) slowest = s;
      }
      if (rt_.should_hedge(stripe[slowest].provider, fetch_time[slowest])) {
        const ShardFetch hedge =
            fetch_one(parity_idx.front(), 0, "shard_hedge");
        times.push_back(hedge.time);
        rpc_retries += hedge.retries;
        hedges = 1;
        if (telemetry_->enabled()) {
          obs::MetricsRegistry& m = telemetry_->metrics();
          m.counter("cdd.hedged_reads").inc();
          if (hedge.data.has_value() && hedge.time < fetch_time[slowest]) {
            m.counter("cdd.hedge_wins").inc();
          }
        }
      }
    }
  }
  if (telemetry_->enabled()) {
    obs::MetricsRegistry& m = telemetry_->metrics();
    if (data_degraded) m.counter("cdd.parity_fallbacks").inc();
    if (parity_fetched != 0) {
      m.counter("cdd.parity_shard_reads").inc(parity_fetched);
    }
  }
  if (stats != nullptr) {
    stats->parity_reads = parity_fetched;
    stats->fallback = data_degraded;
    stats->retries = rpc_retries;
    stats->hedges = hedges;
  }
  return raid::decode(layout, shards, padded_size);
}

void CloudDataDistributor::drop_stripe(const std::vector<ShardLocation>& stripe,
                                       std::vector<SimDuration>* times,
                                       std::size_t shard) {
  MetadataStore& part = plane_->store(shard);
  for (const auto& loc : stripe) {
    RequestLayer::Outcome rpc = rt_.remove(loc.provider, loc.virtual_id);
    if (times != nullptr) times->push_back(rpc.time);
    part.record_removal(loc.provider, loc.virtual_id);
  }
}

Status CloudDataDistributor::put_file(const std::string& client,
                                      const std::string& password,
                                      const std::string& filename,
                                      BytesView data, const PutOptions& options,
                                      OpReport* report) {
  if (filename.empty()) return Status::InvalidArgument("empty filename");
  Result<PrivacyLevel> auth = authorize(client, password,
                                        options.privacy_level);
  if (!auth.ok()) return auth.status();
  // Owning partition: all of this file's refs, rows and journal records
  // live there, and nowhere else.
  const std::size_t shard = plane_->shard_of(client, filename);
  MetadataStore& md = plane_->store(shard);
  // Atomic duplicate check: reserving the name up front means two
  // concurrent uploads of the same file cannot both pass it.
  CS_RETURN_IF_ERROR(md.claim_file(client, filename));
  // Journal the intent before any shard leaves for a provider: recovery
  // treats a Begin without a matching Commit/Abort as an in-flight put
  // whose shards are orphans to sweep.
  {
    JournalRecord rec;
    rec.op = JournalOp::kBeginPut;
    rec.client = client;
    rec.filename = filename;
    if (Status st = journal_append(rec, shard); !st.ok()) {
      md.release_file(client, filename);
      return st;
    }
  }

  const raid::RaidLevel level = options.raid.value_or(config_.default_raid);
  const raid::StripeLayout layout =
      (level == raid::RaidLevel::kRaid1)
          ? raid::StripeLayout::make(level, 1, config_.replication)
          : raid::StripeLayout::make(level, config_.stripe_data_shards);
  const double chaff =
      options.misleading_fraction.value_or(config_.misleading_fraction);
  const ProtectionMode protection = options.protection.value_or(
      config_.protection_by_pl[static_cast<std::size_t>(
          level_index(options.privacy_level))]);

  OpScope op(telemetry_.get(), "put_file", client, filename,
             config_.watchdog.get(), config_.retry.deadline.count());
  std::vector<RawChunk> chunks = split_file(data, options.privacy_level,
                                            config_.chunk_sizes,
                                            options.record_align);
  op.chunks = chunks.size();
  op.bytes_logical = data.size();

  // One pipeline stage per chunk: chaff -> place -> encode/digest ->
  // upload. `stripe` duplicates entry.stripe so rollback still knows the
  // shard locations after the entry moves into the metadata commit.
  struct ChunkOutcome {
    Status status = Status::Ok();
    ChunkEntry entry;
    std::vector<ShardLocation> stripe;
    std::size_t bytes_stored = 0;
    std::size_t retries = 0;
    std::size_t replaced = 0;
    std::vector<SimDuration> times;
  };
  std::vector<ChunkOutcome> outcomes(chunks.size());
  auto build = [&](std::size_t i) {
    ChunkOutcome& out = outcomes[i];
    obs::SpanRecord proto;
    proto.op_id = op.ctx().op_id;
    proto.parent_id = op.ctx().parent;
    proto.name = "chunk_put";
    proto.chunk = chunks[i].serial;
    proto.bytes = chunks[i].data.size();
    obs::ScopedSpan chunk_span(op.armed() ? telemetry_.get() : nullptr,
                               std::move(proto));
    // Only the seed draw and placement need the shared RNG/policy lock;
    // the chaff injection itself runs unlocked on the chunk's own stream.
    std::uint64_t chaff_seed = 0;
    Result<std::vector<ProviderIndex>> targets = [&] {
      std::lock_guard<std::mutex> lock(mu_);
      chaff_seed = chaff_rng_.next();
      return placement_.choose(registry_, options.privacy_level,
                               layout.total_shards());
    }();
    Rng chunk_rng(chaff_seed);
    MisleadingCodec::Encoded chaffed =
        MisleadingCodec::inject(chunks[i].data, chaff, chunk_rng);
    // Drawn for every mode, so the per-chunk RNG stream (chaff positions
    // included) is byte-identical across protection modes -- the chaos
    // suite's retry-invariance proof depends on it.
    const std::uint64_t protect_nonce = chunk_rng.next();
    const std::size_t protect_bytes = apply_protection(
        chaffed.data, protection, options.privacy_level, layout,
        protect_nonce);
    auto close_span = [&] {
      if (!chunk_span.armed()) return;
      SimDuration chunk_sim{0};
      for (const SimDuration& t : out.times) chunk_sim += t;
      chunk_span.rec().sim_ns = chunk_sim.count();
      chunk_span.rec().outcome = out.status.code();
    };
    if (!targets.ok()) {
      out.status = targets.status();
      close_span();
      return;
    }
    Result<StripeWriteResult> written =
        write_stripe(chaffed.data, layout, targets.value(),
                     options.privacy_level, out.times, chunk_span.ctx(),
                     shard);
    if (!written.ok()) {
      out.status = written.status();
      close_span();
      return;
    }
    out.retries = written.value().retries;
    out.replaced = written.value().replaced;
    out.entry.privacy_level = options.privacy_level;
    out.entry.layout = layout;
    out.entry.stripe = std::move(written.value().locations);
    out.entry.misleading = std::move(chaffed.positions);
    out.entry.padded_size = chaffed.data.size();
    out.entry.protection = protection;
    out.entry.protect_nonce = protect_nonce;
    out.entry.protect_bytes = protect_bytes;
    out.entry.shard_digests = std::move(written.value().digests);
    out.stripe = out.entry.stripe;
    out.bytes_stored = written.value().bytes_stored;
    close_span();
  };

  if (config_.pipelined && chunks.size() > 1) {
    // Fan every chunk's stripe out as independent pool work -- an N-chunk
    // file issues all its shard uploads concurrently instead of N
    // sequential per-stripe barriers.
    std::vector<std::future<void>> futures;
    futures.reserve(chunks.size());
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      futures.push_back(pool_.submit([&build, i] { build(i); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      build(i);
      if (!outcomes[i].status.ok()) break;
    }
  }

  // A failed chunk must not orphan its siblings: drop every stripe this
  // call wrote, then free the filename claim.
  auto rollback = [&](const Status& error) {
    op.rolled_back = true;
    for (const ChunkOutcome& out : outcomes) {
      if (!out.stripe.empty()) drop_stripe(out.stripe, &op.times, shard);
    }
    md.release_file(client, filename);
    // The abort record is best-effort BY DESIGN, not an ignored error: the
    // put is already failing with `error`, and recovery aborts a Begin
    // without Commit whether or not this record lands -- losing it only
    // means more orphan work for reconcile(). It must not mask the
    // original failure, so it is surfaced as a counter instead of a
    // status.
    JournalRecord rec;
    rec.op = JournalOp::kAbortPut;
    rec.client = client;
    rec.filename = filename;
    if (Status aborted = journal_append(rec, shard); !aborted.ok()) {
      if (telemetry_->enabled()) {
        telemetry_->metrics().counter("cdd.abort_journal_errors").inc();
      }
    }
    return error;
  };
  for (ChunkOutcome& out : outcomes) {
    op.times.insert(op.times.end(), out.times.begin(), out.times.end());
    out.times.clear();  // moved into the op accumulator exactly once
    op.retries += out.retries;
    op.replaced_shards += out.replaced;
  }
  for (const ChunkOutcome& out : outcomes) {
    if (!out.status.ok()) {
      return op.finish(rollback(out.status), report, config_.worker_threads);
    }
  }

  // Commit the refs in serial order. The claim makes interference from
  // other writers impossible, so a failure here is exceptional -- but it
  // still unwinds to zero shards and zero refs.
  std::vector<std::size_t> committed;
  committed.reserve(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    ChunkOutcome& out = outcomes[i];
    Result<std::size_t> idx = md.add_chunk(
        client, filename, chunks[i].serial, std::move(out.entry));
    if (!idx.ok()) {
      for (std::size_t j = 0; j < committed.size(); ++j) {
        ChunkEntry tombstone;
        tombstone.privacy_level = options.privacy_level;
        tombstone.layout = layout;
        tombstone.deleted = true;
        (void)md.update_chunk(committed[j], std::move(tombstone));
        (void)md.unlink_chunk(client, filename, chunks[j].serial);
      }
      return op.finish(rollback(idx.status()), report, config_.worker_threads);
    }
    committed.push_back(idx.value());
    op.bytes_stored += out.bytes_stored;
    op.shards += layout.total_shards();
  }
  // Durability commit point: journal every chunk row with its explicit
  // table index (local to the owning partition). Only after this append may
  // the client treat the file as stored -- so a journal failure is a put
  // failure.
  if (journaling()) {
    JournalRecord rec;
    rec.op = JournalOp::kCommitPut;
    rec.client = client;
    rec.filename = filename;
    rec.chunks.reserve(committed.size());
    for (std::size_t i = 0; i < committed.size(); ++i) {
      Result<ChunkEntry> row = md.chunk_entry(committed[i]);
      if (!row.ok()) {
        return op.finish(row.status(), report, config_.worker_threads);
      }
      rec.chunks.push_back(JournalChunk{chunks[i].serial, committed[i],
                                        std::move(row).value()});
    }
    if (Status st = journal_append(rec, shard); !st.ok()) {
      return op.finish(st, report, config_.worker_threads);
    }
  }
  return op.finish(Status::Ok(), report, config_.worker_threads);
}

Result<Bytes> CloudDataDistributor::get_chunk(const std::string& client,
                                              const std::string& password,
                                              const std::string& filename,
                                              std::uint64_t serial,
                                              OpReport* report) {
  // Reads resolve against the owning partition -- any front-end sharing
  // the plane computes the same shard from (client, filename).
  MetadataStore& md = plane_->store(plane_->shard_of(client, filename));
  std::optional<ChunkRef> ref = md.find_chunk(client, filename, serial);
  if (!ref.has_value()) {
    // Authenticate first so an attacker cannot probe the namespace with a
    // bad password.
    Result<PrivacyLevel> auth = metadata_->authenticate(client, password);
    if (!auth.ok()) return auth.status();
    return Status::NotFound("chunk " + filename + "#" +
                            std::to_string(serial));
  }
  Result<PrivacyLevel> auth = authorize(client, password, ref->privacy_level);
  if (!auth.ok()) return auth.status();
  Result<ChunkEntry> entry = md.chunk_entry(ref->chunk_index);
  if (!entry.ok()) return entry.status();

  OpScope op(telemetry_.get(), "get_chunk", client, filename,
             config_.watchdog.get(), config_.retry.deadline.count());
  op.chunk_serial = serial;
  StripeReadStats rstats;
  Result<Bytes> padded =
      read_stripe(entry.value().layout, entry.value().stripe,
                  entry.value().shard_digests, entry.value().padded_size,
                  op.times, ReadMode::kEager, op.ctx(), &rstats);
  op.parity_reads = rstats.parity_reads;
  op.retries = rstats.retries;
  op.hedges = rstats.hedges;
  op.chunks = 1;
  op.shards = entry.value().stripe.size();
  op.bytes_stored = entry.value().padded_size;
  if (!padded.ok()) {
    return op.finish(padded.status(), report, config_.worker_threads);
  }
  remove_protection(padded.value(), entry.value().protection,
                    entry.value().layout, entry.value().protect_nonce,
                    entry.value().protect_bytes);
  Bytes plain = MisleadingCodec::strip(padded.value(),
                                       entry.value().misleading);
  op.bytes_logical = plain.size();
  (void)op.finish(Status::Ok(), report, config_.worker_threads);
  return plain;
}

Result<Bytes> CloudDataDistributor::get_file(const std::string& client,
                                             const std::string& password,
                                             const std::string& filename,
                                             OpReport* report) {
  MetadataStore& md = plane_->store(plane_->shard_of(client, filename));
  std::vector<ChunkRef> refs = md.file_chunks(client, filename);
  if (refs.empty()) {
    Result<PrivacyLevel> auth = metadata_->authenticate(client, password);
    if (!auth.ok()) return auth.status();
    return Status::NotFound("file " + filename + " for client " + client);
  }
  Result<PrivacyLevel> auth =
      authorize(client, password, refs.front().privacy_level);
  if (!auth.ok()) return auth.status();
  for (const ChunkRef& ref : refs) {
    if (!privileged_for(auth.value(), ref.privacy_level)) {
      return Status::PermissionDenied("chunk " + std::to_string(ref.serial) +
                                      " above password privilege");
    }
  }

  OpScope op(telemetry_.get(), "get_file", client, filename,
             config_.watchdog.get(), config_.retry.deadline.count());
  struct ChunkRead {
    Status status = Status::Ok();
    Bytes plain;
    std::size_t padded_size = 0;
    std::size_t shards = 0;
    std::vector<SimDuration> times;
    StripeReadStats rstats;
  };
  std::vector<ChunkRead> reads(refs.size());
  auto read_one = [&](std::size_t i, ReadMode mode) {
    ChunkRead& out = reads[i];
    obs::SpanRecord proto;
    proto.op_id = op.ctx().op_id;
    proto.parent_id = op.ctx().parent;
    proto.name = "chunk_get";
    proto.chunk = refs[i].serial;
    obs::ScopedSpan chunk_span(op.armed() ? telemetry_.get() : nullptr,
                               std::move(proto));
    auto close_span = [&] {
      if (!chunk_span.armed()) return;
      SimDuration chunk_sim{0};
      for (const SimDuration& t : out.times) chunk_sim += t;
      chunk_span.rec().sim_ns = chunk_sim.count();
      chunk_span.rec().bytes = out.plain.size();
      chunk_span.rec().outcome = out.status.code();
    };
    Result<ChunkEntry> entry = md.chunk_entry(refs[i].chunk_index);
    if (!entry.ok()) {
      out.status = entry.status();
      close_span();
      return;
    }
    Result<Bytes> padded =
        read_stripe(entry.value().layout, entry.value().stripe,
                    entry.value().shard_digests, entry.value().padded_size,
                    out.times, mode, chunk_span.ctx(), &out.rstats);
    if (!padded.ok()) {
      out.status = padded.status();
      close_span();
      return;
    }
    remove_protection(padded.value(), entry.value().protection,
                      entry.value().layout, entry.value().protect_nonce,
                      entry.value().protect_bytes);
    out.plain = MisleadingCodec::strip(padded.value(),
                                       entry.value().misleading);
    out.padded_size = entry.value().padded_size;
    out.shards = entry.value().stripe.size();
    close_span();
  };

  if (config_.pipelined && refs.size() > 1) {
    // All chunk stripes in flight at once; reassembly below restores
    // serial order.
    std::vector<std::future<void>> futures;
    futures.reserve(refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
      futures.push_back(
          pool_.submit([&read_one, i] { read_one(i, ReadMode::kLazyParity); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (std::size_t i = 0; i < refs.size(); ++i) {
      read_one(i, ReadMode::kEager);
      if (!reads[i].status.ok()) break;
    }
  }

  Bytes out;
  Status first_error = Status::Ok();
  for (ChunkRead& r : reads) {
    op.times.insert(op.times.end(), r.times.begin(), r.times.end());
    op.parity_reads += r.rstats.parity_reads;
    op.retries += r.rstats.retries;
    op.hedges += r.rstats.hedges;
    if (!r.status.ok()) {
      if (first_error.ok()) first_error = r.status;
      continue;
    }
    op.bytes_stored += r.padded_size;
    op.shards += r.shards;
    ++op.chunks;
    append(out, r.plain);
  }
  if (!first_error.ok()) {
    return op.finish(first_error, report, config_.worker_threads);
  }
  op.bytes_logical = out.size();
  (void)op.finish(Status::Ok(), report, config_.worker_threads);
  return out;
}

Result<std::vector<CloudDataDistributor::FileInfo>>
CloudDataDistributor::list_files(const std::string& client,
                                 const std::string& password) {
  Result<PrivacyLevel> auth = metadata_->authenticate(client, password);
  if (!auth.ok()) return auth.status();
  // The store's filename index does the per-file aggregation (and the
  // privilege filtering) without scanning every ref per file. A client's
  // files scatter across partitions, so the inventory unions all of them;
  // the final sort restores the per-partition map order (a no-op on a
  // 1-shard plane).
  std::vector<FileInfo> files;
  for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
    for (FileSummary& f : plane_->store(s).list_files(client, auth.value())) {
      files.push_back(
          FileInfo{std::move(f.filename), f.privacy_level, f.chunks});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileInfo& a, const FileInfo& b) {
              return a.filename < b.filename;
            });
  return files;
}

Status CloudDataDistributor::update_chunk(const std::string& client,
                                          const std::string& password,
                                          const std::string& filename,
                                          std::uint64_t serial,
                                          BytesView new_data,
                                          OpReport* report) {
  const std::size_t shard = plane_->shard_of(client, filename);
  MetadataStore& md = plane_->store(shard);
  std::optional<ChunkRef> ref = md.find_chunk(client, filename, serial);
  if (!ref.has_value()) {
    return Status::NotFound("chunk " + filename + "#" +
                            std::to_string(serial));
  }
  Result<PrivacyLevel> auth = authorize(client, password, ref->privacy_level);
  if (!auth.ok()) return auth.status();
  Result<ChunkEntry> entry_r = md.chunk_entry(ref->chunk_index);
  if (!entry_r.ok()) return entry_r.status();
  ChunkEntry entry = std::move(entry_r).value();

  OpScope op(telemetry_.get(), "update_chunk", client, filename,
             config_.watchdog.get(), config_.retry.deadline.count());
  op.chunk_serial = serial;
  std::vector<SimDuration>& times = op.times;
  auto fail = [&](const Status& st) {
    return op.finish(st, report, config_.worker_threads);
  };

  // 1. Read the current padded payload (pre-state, chaff included).
  StripeReadStats rstats;
  Result<Bytes> pre_state = read_stripe(entry.layout, entry.stripe,
                                        entry.shard_digests,
                                        entry.padded_size, times,
                                        ReadMode::kEager, op.ctx(), &rstats);
  op.parity_reads = rstats.parity_reads;
  op.retries = rstats.retries;
  op.hedges = rstats.hedges;
  if (!pre_state.ok()) return fail(pre_state.status());

  // 2. Write the pre-state to a NEW snapshot stripe: "snapshot provider
  //    stores the pre-state and cloud provider stores the post-state of a
  //    chunk after each modification" (Table III). The old snapshot and
  //    old stripe are NOT touched until the new state has committed to the
  //    journal -- a crash anywhere in between loses only fresh orphans,
  //    never referenced shards. A failure past this point unwinds the
  //    stripes this op wrote.
  Result<std::vector<ProviderIndex>> snap_targets = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    return placement_.choose(registry_, entry.privacy_level,
                             entry.layout.total_shards());
  }();
  if (!snap_targets.ok()) return fail(snap_targets.status());
  Result<StripeWriteResult> snap = write_stripe(
      pre_state.value(), entry.layout, snap_targets.value(),
      entry.privacy_level, times, op.ctx(), shard);
  if (!snap.ok()) return fail(snap.status());
  op.retries += snap.value().retries;
  op.replaced_shards += snap.value().replaced;
  auto unwind = [&](const Status& st) {
    op.rolled_back = true;
    drop_stripe(snap.value().locations, &times, shard);
    return fail(st);
  };

  // 3. Chaff, re-protect (same mode as the original put, fresh nonce) and
  //    write the post-state under fresh virtual ids.
  MisleadingCodec::Encoded chaffed;
  std::uint64_t protect_nonce = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    chaffed = MisleadingCodec::inject(new_data, chaff_fraction_of(entry),
                                      chaff_rng_);
    protect_nonce = chaff_rng_.next();
  }
  const std::size_t protect_bytes =
      apply_protection(chaffed.data, entry.protection, entry.privacy_level,
                       entry.layout, protect_nonce);
  Result<std::vector<ProviderIndex>> new_targets = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    return placement_.choose(registry_, entry.privacy_level,
                             entry.layout.total_shards());
  }();
  if (!new_targets.ok()) return unwind(new_targets.status());
  Result<StripeWriteResult> written =
      write_stripe(chaffed.data, entry.layout, new_targets.value(),
                   entry.privacy_level, times, op.ctx(), shard);
  if (!written.ok()) return unwind(written.status());
  op.retries += written.value().retries;
  op.replaced_shards += written.value().replaced;

  // 4. Commit: metadata row, then journal. Only after the journal append
  //    is it safe to delete the superseded stripes.
  ChunkEntry updated = entry;
  updated.snapshot = snap.value().locations;
  updated.snapshot_digests = std::move(snap.value().digests);
  updated.snapshot_misleading = entry.misleading;
  updated.snapshot_padded_size = entry.padded_size;
  // The snapshot stripe stores the pre-state exactly as it was protected;
  // its original transform parameters move with it.
  updated.snapshot_protection = entry.protection;
  updated.snapshot_protect_nonce = entry.protect_nonce;
  updated.snapshot_protect_bytes = entry.protect_bytes;
  updated.has_snapshot = true;
  updated.stripe = written.value().locations;
  updated.shard_digests = std::move(written.value().digests);
  updated.misleading = std::move(chaffed.positions);
  updated.padded_size = chaffed.data.size();
  updated.protect_nonce = protect_nonce;
  updated.protect_bytes = protect_bytes;
  Status committed = md.update_chunk(ref->chunk_index, updated);
  if (!committed.ok()) {
    drop_stripe(written.value().locations, &times, shard);
    return unwind(committed);
  }
  {
    JournalRecord rec;
    rec.op = JournalOp::kUpdateChunk;
    rec.client = client;
    rec.filename = filename;
    rec.chunks.push_back(
        JournalChunk{serial, ref->chunk_index, std::move(updated)});
    if (Status st = journal_append(rec, shard); !st.ok()) return fail(st);
  }

  // 5. Retire the old stripe and (if present) the old snapshot -- they are
  //    unreferenced now, so a crash mid-drop leaves only orphans.
  if (entry.has_snapshot) drop_stripe(entry.snapshot, &times, shard);
  drop_stripe(entry.stripe, &times, shard);

  op.chunks = 1;
  op.shards = entry.layout.total_shards() * 2;
  op.bytes_logical = new_data.size();
  op.bytes_stored = chaffed.data.size();
  return op.finish(Status::Ok(), report, config_.worker_threads);
}

Result<Bytes> CloudDataDistributor::get_chunk_snapshot(
    const std::string& client, const std::string& password,
    const std::string& filename, std::uint64_t serial) {
  MetadataStore& md = plane_->store(plane_->shard_of(client, filename));
  std::optional<ChunkRef> ref = md.find_chunk(client, filename, serial);
  if (!ref.has_value()) {
    return Status::NotFound("chunk " + filename + "#" +
                            std::to_string(serial));
  }
  Result<PrivacyLevel> auth = authorize(client, password, ref->privacy_level);
  if (!auth.ok()) return auth.status();
  Result<ChunkEntry> entry = md.chunk_entry(ref->chunk_index);
  if (!entry.ok()) return entry.status();
  if (!entry.value().has_snapshot) {
    return Status::NotFound("chunk has no snapshot (never modified)");
  }
  std::vector<SimDuration> times;
  Result<Bytes> padded = read_stripe(
      entry.value().layout, entry.value().snapshot,
      entry.value().snapshot_digests, entry.value().snapshot_padded_size,
      times);
  if (!padded.ok()) return padded.status();
  remove_protection(padded.value(), entry.value().snapshot_protection,
                    entry.value().layout,
                    entry.value().snapshot_protect_nonce,
                    entry.value().snapshot_protect_bytes);
  return MisleadingCodec::strip(padded.value(),
                                entry.value().snapshot_misleading);
}

Status CloudDataDistributor::remove_chunk(const std::string& client,
                                          const std::string& password,
                                          const std::string& filename,
                                          std::uint64_t serial) {
  const std::size_t shard = plane_->shard_of(client, filename);
  MetadataStore& md = plane_->store(shard);
  std::optional<ChunkRef> ref = md.find_chunk(client, filename, serial);
  if (!ref.has_value()) {
    return Status::NotFound("chunk " + filename + "#" +
                            std::to_string(serial));
  }
  Result<PrivacyLevel> auth = authorize(client, password, ref->privacy_level);
  if (!auth.ok()) return auth.status();
  Result<ChunkEntry> entry = md.chunk_entry(ref->chunk_index);
  if (!entry.ok()) return entry.status();

  OpScope op(telemetry_.get(), "remove_chunk", client, filename,
             config_.watchdog.get(), config_.retry.deadline.count());
  op.chunk_serial = serial;
  op.chunks = 1;
  op.shards = entry.value().stripe.size() + entry.value().snapshot.size();

  // Commit the removal (tombstone + unlink + journal) before any provider-
  // side delete: a crash mid-drop must leave orphans, not a live chunk row
  // pointing at vanished shards.
  ChunkEntry tombstone = entry.value();
  tombstone.deleted = true;
  tombstone.stripe.clear();
  tombstone.snapshot.clear();
  tombstone.has_snapshot = false;
  Status updated = md.update_chunk(ref->chunk_index, std::move(tombstone));
  if (!updated.ok()) return op.finish(updated, nullptr,
                                      config_.worker_threads);
  Status unlinked = md.unlink_chunk(client, filename, serial);
  if (!unlinked.ok()) return op.finish(unlinked, nullptr,
                                       config_.worker_threads);
  {
    JournalRecord rec;
    rec.op = JournalOp::kRemoveChunk;
    rec.client = client;
    rec.filename = filename;
    rec.chunks.push_back(JournalChunk{serial, ref->chunk_index, {}});
    if (Status st = journal_append(rec, shard); !st.ok()) {
      return op.finish(st, nullptr, config_.worker_threads);
    }
  }

  drop_stripe(entry.value().stripe, &op.times, shard);
  if (entry.value().has_snapshot) {
    drop_stripe(entry.value().snapshot, &op.times, shard);
  }
  return op.finish(Status::Ok(), nullptr, config_.worker_threads);
}

Status CloudDataDistributor::remove_file(const std::string& client,
                                         const std::string& password,
                                         const std::string& filename) {
  const std::size_t shard = plane_->shard_of(client, filename);
  MetadataStore& md = plane_->store(shard);
  std::vector<ChunkRef> refs = md.file_chunks(client, filename);
  if (refs.empty()) {
    Result<PrivacyLevel> auth = metadata_->authenticate(client, password);
    if (!auth.ok()) return auth.status();
    return Status::NotFound("file " + filename + " for client " + client);
  }
  // Authorize once against the file's highest chunk PL instead of
  // re-authenticating the password for every chunk.
  PrivacyLevel required = refs.front().privacy_level;
  for (const ChunkRef& ref : refs) {
    if (level_index(ref.privacy_level) > level_index(required)) {
      required = ref.privacy_level;
    }
  }
  Result<PrivacyLevel> auth = authorize(client, password, required);
  if (!auth.ok()) return auth.status();

  std::vector<Result<ChunkEntry>> entries;
  entries.reserve(refs.size());
  for (const ChunkRef& ref : refs) {
    entries.push_back(md.chunk_entry(ref.chunk_index));
  }
  for (const auto& e : entries) {
    if (!e.ok()) return e.status();
  }

  OpScope op(telemetry_.get(), "remove_file", client, filename,
             config_.watchdog.get(), config_.retry.deadline.count());
  op.chunks = refs.size();

  // Commit the removal first -- tombstone + unlink every ref, then one
  // journal record covering the whole file -- and only then delete at
  // providers. A crash mid-drop leaves orphans for reconcile, never a
  // referenced-but-deleted shard.
  for (std::size_t i = 0; i < refs.size(); ++i) {
    ChunkEntry tombstone = entries[i].value();
    tombstone.deleted = true;
    tombstone.stripe.clear();
    tombstone.snapshot.clear();
    tombstone.has_snapshot = false;
    Status updated = md.update_chunk(refs[i].chunk_index,
                                     std::move(tombstone));
    if (!updated.ok()) return op.finish(updated, nullptr,
                                        config_.worker_threads);
    Status unlinked = md.unlink_chunk(client, filename, refs[i].serial);
    if (!unlinked.ok()) return op.finish(unlinked, nullptr,
                                         config_.worker_threads);
  }
  {
    JournalRecord rec;
    rec.op = JournalOp::kRemoveFile;
    rec.client = client;
    rec.filename = filename;
    rec.chunks.reserve(refs.size());
    for (const ChunkRef& ref : refs) {
      rec.chunks.push_back(JournalChunk{ref.serial, ref.chunk_index, {}});
    }
    if (Status st = journal_append(rec, shard); !st.ok()) {
      return op.finish(st, nullptr, config_.worker_threads);
    }
  }

  // Drop all stripes through the pool. Each task owns its slot in
  // `drop_times`, so no lock is needed; the futures are joined before the
  // slots merge into the op accumulator.
  std::vector<std::vector<SimDuration>> drop_times(refs.size());
  auto drop_one = [&](std::size_t i) {
    const ChunkEntry& e = entries[i].value();
    drop_stripe(e.stripe, &drop_times[i], shard);
    if (e.has_snapshot) drop_stripe(e.snapshot, &drop_times[i], shard);
  };
  if (config_.pipelined && refs.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
      futures.push_back(pool_.submit([&drop_one, i] { drop_one(i); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (std::size_t i = 0; i < refs.size(); ++i) drop_one(i);
  }
  for (std::size_t i = 0; i < refs.size(); ++i) {
    op.shards += drop_times[i].size();
    op.times.insert(op.times.end(), drop_times[i].begin(),
                    drop_times[i].end());
  }
  return op.finish(Status::Ok(), nullptr, config_.worker_threads);
}

Result<CloudDataDistributor::StripeHealStats>
CloudDataDistributor::heal_chunk(std::size_t index, bool note_scrub) {
  // `index` is a global chunk index; resolve the owning partition first.
  // A sparse global (no row in its partition) reads as NotFound -- skipped.
  const std::size_t shard = plane_->shard_of_index(index);
  const std::size_t local = plane_->local_index(index);
  MetadataStore& md = plane_->store(shard);
  // Same commit discipline as migrate_chunk: the scrubber/repair walk runs
  // alongside live client updates and the background migrator, so the row
  // write-back goes through the version CAS -- a stale heal result must not
  // overwrite a newer row (whose superseded locations may already be
  // deleted). On a lost race the freshly placed copies are removed and the
  // chunk is redone from the new row; a row too hot to commit is left for
  // the next scrub pass.
  constexpr int kCasAttempts = 8;
  for (int attempt = 0; attempt < kCasAttempts; ++attempt) {
    StripeHealStats stats;
    Result<MetadataStore::VersionedChunk> row =
        md.chunk_entry_versioned(local);
    if (!row.ok()) return stats;  // row gone from under us: nothing to do
    ChunkEntry entry = std::move(row.value().entry);
    const std::uint64_t row_version = row.value().version;
    if (entry.deleted) return stats;

    struct Probe {
      std::optional<Bytes> data;  ///< set only when intact
      bool corrupt = false;       ///< provider answered, digest failed
    };
    // Broken locations re-homed this attempt and their replacements (same
    // index); update_chunk_if() applies the provider-id-table deltas
    // atomically with the row commit.
    std::vector<ShardLocation> replaced_old;
    std::vector<ShardLocation> replaced_new;
    auto heal_stripe = [&](std::vector<ShardLocation>& stripe,
                           const std::vector<crypto::Digest>& digests)
        -> Result<std::size_t> {
      // Probe every shard through the I/O pool (leaf tasks only, so both
      // caller threads and the scrubber thread can block on the futures).
      // Probes take a single attempt through the request layer: a
      // quarantined provider's open breaker rejects without I/O, so its
      // shards read as broken and get re-homed -- this is how repair heals
      // quarantined stripes.
      std::vector<std::future<Probe>> probes;
      probes.reserve(stripe.size());
      for (std::size_t s = 0; s < stripe.size(); ++s) {
        probes.push_back(io_pool_.submit(
            [this, loc = stripe[s], digest = digests[s]]() -> Probe {
              Probe p;
              RequestLayer::GetOutcome r =
                  rt_.get(loc.provider, loc.virtual_id, 1);
              if (!r.data.has_value()) return p;
              if (crypto::sha256(*r.data) == digest) {
                p.data = std::move(*r.data);
              } else {
                p.corrupt = true;
              }
              return p;
            }));
      }
      std::vector<std::optional<Bytes>> shards(stripe.size());
      std::vector<std::size_t> broken;
      for (std::size_t s = 0; s < stripe.size(); ++s) {
        Probe p = probes[s].get();
        if (p.corrupt) {
          ++stats.mismatches;
          if (note_scrub) registry_.at(stripe[s].provider).note_scrub_error();
        }
        shards[s] = std::move(p.data);
        if (!shards[s].has_value()) broken.push_back(s);
      }
      if (broken.empty()) return std::size_t{0};
      std::size_t fixed = 0;
      for (std::size_t s : broken) {
        Result<Bytes> shard =
            raid::reconstruct_shard(entry.layout, shards, s);
        if (!shard.ok()) return shard.status();
        // New home: eligible, online, healthy, not already a stripe member.
        const ProviderIndex home =
            replacement_target(entry.privacy_level, stripe);
        if (home == kNoProvider) {
          return Status::ResourceExhausted(
              "repair: no healthy provider outside the stripe");
        }
        const VirtualId id = next_virtual_id();
        RequestLayer::Outcome rpc = rt_.put(home, id, shard.value());
        CS_RETURN_IF_ERROR(rpc.status);
        replaced_old.push_back(stripe[s]);
        replaced_new.push_back(ShardLocation{home, id});
        stripe[s] = ShardLocation{home, id};
        shards[s] = std::move(shard).value();
        ++fixed;
      }
      return fixed;
    };

    Result<std::size_t> fixed = heal_stripe(entry.stripe, entry.shard_digests);
    if (!fixed.ok()) return fixed.status();
    stats.fixed = fixed.value();
    if (entry.has_snapshot) {
      Result<std::size_t> snap_fixed =
          heal_stripe(entry.snapshot, entry.snapshot_digests);
      if (!snap_fixed.ok()) return snap_fixed.status();
      stats.fixed += snap_fixed.value();
    }
    if (stats.fixed > 0) {
      Status updated = md.update_chunk_if(local, entry, row_version,
                                          replaced_old, replaced_new);
      if (!updated.ok()) {
        // The re-homed copies never became referenced: delete them so the
        // lost race leaves no orphans behind.
        for (const ShardLocation& loc : replaced_new) {
          (void)rt_.remove(loc.provider, loc.virtual_id);
        }
        if (updated.code() == ErrorCode::kFailedPrecondition) {
          continue;  // a concurrent writer rewrote the row: redo from fresh
        }
        return updated;
      }
      JournalRecord rec;
      rec.op = JournalOp::kUpdateChunk;
      rec.chunks.push_back(JournalChunk{0, local, std::move(entry)});
      CS_RETURN_IF_ERROR(journal_append(rec, shard));
    }
    return stats;
  }

  // Every attempt lost its CAS (a hot row): report nothing healed; the
  // next scrub/repair pass revisits.
  return StripeHealStats{};
}

Result<std::size_t> CloudDataDistributor::repair() {
  OpScope op(telemetry_.get(), "repair", "", "", config_.watchdog.get(),
             config_.retry.deadline.count());
  std::size_t repaired = 0;
  const std::size_t n = chunk_index_bound();
  for (std::size_t idx = 0; idx < n; ++idx) {
    Result<StripeHealStats> healed = heal_chunk(idx, /*note_scrub=*/false);
    if (!healed.ok()) {
      return op.finish(healed.status(), nullptr, config_.worker_threads);
    }
    repaired += healed.value().fixed;
  }
  op.shards = repaired;
  if (repaired != 0 && telemetry_->enabled()) {
    telemetry_->metrics().counter("cdd.repaired_shards").inc(repaired);
  }
  (void)op.finish(Status::Ok(), nullptr, config_.worker_threads);
  return repaired;
}

Result<std::size_t> CloudDataDistributor::scrub_chunk(
    std::size_t index, std::size_t* digest_mismatches) {
  Result<StripeHealStats> healed = heal_chunk(index, /*note_scrub=*/true);
  if (!healed.ok()) return healed.status();
  if (digest_mismatches != nullptr) {
    *digest_mismatches = healed.value().mismatches;
  }
  return healed.value().fixed;
}

Result<CloudDataDistributor::ReconcileReport>
CloudDataDistributor::reconcile(
    const std::vector<std::pair<std::string, std::string>>& in_flight) {
  OpScope op(telemetry_.get(), "reconcile", "", "", config_.watchdog.get(),
             config_.retry.deadline.count());
  ReconcileReport report;

  // 1. The referenced set: every (provider, id) a live chunk row points at,
  //    unioned across ALL partitions -- a shard referenced by any partition
  //    must survive the sweep. Everything else -- at a provider or in a
  //    provider table -- is a crash leftover.
  std::vector<std::unordered_set<VirtualId>> referenced(registry_.size());
  for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
    const MetadataStore& part = plane_->store(s);
    const std::size_t n = part.total_chunks();
    for (std::size_t idx = 0; idx < n; ++idx) {
      Result<ChunkEntry> entry = part.chunk_entry(idx);
      if (!entry.ok()) continue;
      for (const std::vector<ShardLocation>* locs :
           {&entry.value().stripe, &entry.value().snapshot}) {
        for (const ShardLocation& loc : *locs) {
          if (loc.provider < referenced.size()) {
            referenced[loc.provider].insert(loc.virtual_id);
          }
        }
      }
    }
  }

  // 2. Sweep provider-side objects no row references: shards of
  //    uncommitted puts, or drops the crash interrupted after their
  //    removal record committed. record_removal goes to every partition --
  //    only the (unknown) owning one has the id, and erasure is a no-op
  //    elsewhere.
  for (ProviderIndex p = 0; p < registry_.size(); ++p) {
    for (VirtualId id : registry_.at(p).list_ids()) {
      if (referenced[p].count(id) != 0) continue;
      RequestLayer::Outcome rpc = rt_.remove(p, id);
      op.times.push_back(rpc.time);
      for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
        plane_->store(s).record_removal(p, id);
      }
      if (rpc.status.ok()) ++report.orphans_removed;
    }
  }

  // 3. Per-partition provider-table ids with neither a referencing row nor
  //    an object (placements of writes whose shards never survived the
  //    crash). An id lives in exactly one partition's table, so the count
  //    does not double.
  for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
    MetadataStore& part = plane_->store(s);
    const auto provider_rows = part.provider_table();
    for (ProviderIndex p = 0; p < provider_rows.size(); ++p) {
      for (VirtualId id : provider_rows[p].virtual_ids) {
        if (p < referenced.size() && referenced[p].count(id) != 0) continue;
        part.record_removal(p, id);
        ++report.stale_ids;
      }
    }
  }

  // 4. Abort the puts the crash caught mid-flight: their claims block the
  //    filename forever otherwise. Shards they uploaded were swept above.
  //    Claim and abort record both live in the file's owning partition.
  for (const auto& [client, filename] : in_flight) {
    const std::size_t shard = plane_->shard_of(client, filename);
    plane_->store(shard).release_file(client, filename);
    JournalRecord rec;
    rec.op = JournalOp::kAbortPut;
    rec.client = client;
    rec.filename = filename;
    if (Status st = journal_append(rec, shard); !st.ok()) {
      return op.finish(st, nullptr, config_.worker_threads);
    }
    ++report.aborted_files;
  }

  // 5. Heal any stripe the crash degraded (e.g. an update that journaled
  //    its commit but died before every superseded-stripe drop, or a
  //    provider that lost writes).
  Result<std::size_t> repaired = repair();
  if (!repaired.ok()) {
    return op.finish(repaired.status(), nullptr, config_.worker_threads);
  }
  report.repaired_shards = repaired.value();

  if (telemetry_->enabled()) {
    obs::MetricsRegistry& m = telemetry_->metrics();
    if (report.orphans_removed != 0) {
      m.counter("cdd.recovery_orphans_removed").inc(report.orphans_removed);
    }
    if (report.aborted_files != 0) {
      m.counter("cdd.recovery_aborted_puts").inc(report.aborted_files);
    }
  }
  (void)op.finish(Status::Ok(), nullptr, config_.worker_threads);
  return report;
}

Result<std::size_t> CloudDataDistributor::rebalance() {
  OpScope op(telemetry_.get(), "rebalance", "", "", config_.watchdog.get(),
             config_.retry.deadline.count());
  auto fail = [&](const Status& st) {
    return op.finish(st, nullptr, config_.worker_threads);
  };
  std::size_t migrated = 0;
  const std::size_t n = chunk_index_bound();
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::size_t part = plane_->shard_of_index(idx);
    const std::size_t local = plane_->local_index(idx);
    MetadataStore& md = plane_->store(part);
    Result<ChunkEntry> entry_r = md.chunk_entry(local);
    if (!entry_r.ok()) continue;
    ChunkEntry entry = std::move(entry_r).value();
    if (entry.deleted) continue;

    // Shards to delete at the demoted provider -- deferred until the new
    // locations have committed (metadata + journal), so a crash mid-
    // migration leaves duplicates (orphans), never a hole.
    std::vector<ShardLocation> retired;
    auto migrate_stripe = [&](std::vector<ShardLocation>& stripe)
        -> Result<std::size_t> {
      std::size_t moved = 0;
      for (std::size_t s = 0; s < stripe.size(); ++s) {
        const auto& holder = registry_.at(stripe[s].provider).descriptor();
        if (privileged_for(holder.privacy_level, entry.privacy_level)) {
          continue;  // still trusted at this sensitivity
        }
        // Fetch the shard from the demoted provider (it is not *offline*,
        // just no longer trusted) and move it to a qualifying home outside
        // the current stripe.
        Result<Bytes> shard =
            registry_.at(stripe[s].provider).get(stripe[s].virtual_id);
        if (!shard.ok()) {
          // Unreachable demoted provider: fall back to RAID
          // reconstruction, probing the survivors through the pool.
          std::vector<std::optional<Bytes>> shards(stripe.size());
          std::vector<std::pair<std::size_t,
                                std::future<std::optional<Bytes>>>> probes;
          probes.reserve(stripe.size());
          for (std::size_t t = 0; t < stripe.size(); ++t) {
            if (t == s) continue;
            probes.emplace_back(
                t, pool_.submit(
                       [this, loc = stripe[t]]() -> std::optional<Bytes> {
                         Result<Bytes> other =
                             registry_.at(loc.provider).get(loc.virtual_id);
                         if (other.ok()) return std::move(other).value();
                         return std::nullopt;
                       }));
          }
          for (auto& [t, fut] : probes) shards[t] = fut.get();
          shard = raid::reconstruct_shard(entry.layout, shards, s);
          if (!shard.ok()) return shard.status();
        }
        const ProviderIndex home =
            replacement_target(entry.privacy_level, stripe);
        if (home == kNoProvider) {
          return Status::ResourceExhausted(
              "rebalance: no trusted provider available for " +
              std::string(privacy_level_name(entry.privacy_level)));
        }
        const VirtualId id = next_virtual_id();
        RequestLayer::Outcome rpc = rt_.put(home, id, shard.value());
        CS_RETURN_IF_ERROR(rpc.status);
        retired.push_back(stripe[s]);
        md.record_removal(stripe[s].provider, stripe[s].virtual_id);
        md.record_placement(home, id);
        stripe[s] = ShardLocation{home, id};
        ++moved;
      }
      return moved;
    };

    Result<std::size_t> moved = migrate_stripe(entry.stripe);
    if (!moved.ok()) return fail(moved.status());
    std::size_t total_moved = moved.value();
    if (entry.has_snapshot) {
      Result<std::size_t> snap_moved = migrate_stripe(entry.snapshot);
      if (!snap_moved.ok()) return fail(snap_moved.status());
      total_moved += snap_moved.value();
    }
    if (total_moved > 0) {
      migrated += total_moved;
      Status updated = md.update_chunk(local, entry);
      if (!updated.ok()) return fail(updated);
      JournalRecord rec;
      rec.op = JournalOp::kUpdateChunk;
      rec.chunks.push_back(JournalChunk{0, local, std::move(entry)});
      if (Status st = journal_append(rec, part); !st.ok()) return fail(st);
      for (const ShardLocation& old : retired) {
        (void)rt_.remove(old.provider, old.virtual_id);
      }
    }
  }
  op.shards = migrated;
  if (migrated != 0 && telemetry_->enabled()) {
    telemetry_->metrics().counter("cdd.migrated_shards").inc(migrated);
  }
  (void)op.finish(Status::Ok(), nullptr, config_.worker_threads);
  return migrated;
}

// --- dynamic provider topology ------------------------------------------

void CloudDataDistributor::ring_insert(ProviderIndex p,
                                       std::string_view name) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  if (ring_members_.insert(p).second) {
    ring_.add_provider(p, name);
  }
}

void CloudDataDistributor::ring_erase(ProviderIndex p) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  if (ring_members_.erase(p) != 0) {
    ring_.remove_provider(p);
  }
}

ProviderIndex CloudDataDistributor::ring_owner(VirtualId key) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  if (ring_.empty()) return kNoProvider;
  return ring_.lookup(key);
}

ProviderIndex CloudDataDistributor::drain_home(
    PrivacyLevel pl, const std::vector<ShardLocation>& stripe, VirtualId key,
    ProviderIndex subject) const {
  std::vector<ProviderIndex> preference;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    if (!ring_.empty()) {
      preference = ring_.lookup_many(key, registry_.size());
    }
  }
  for (ProviderIndex cand : preference) {
    if (cand == subject) continue;  // removed from the ring, but be safe
    if (registry_.lifecycle(cand) != ProviderLifecycle::kActive) continue;
    if (!privileged_for(registry_.at(cand).descriptor().privacy_level, pl)) {
      continue;
    }
    if (!registry_.at(cand).online()) continue;
    if (registry_.quarantined(cand)) continue;
    bool in_stripe = false;
    for (const ShardLocation& loc : stripe) {
      if (loc.provider == cand) in_stripe = true;
    }
    if (!in_stripe) return cand;
  }
  // Ring exhausted (small fleets, quarantine storms): any healthy
  // trust-eligible provider outside the stripe.
  return replacement_target(pl, stripe);
}

Result<ProviderIndex> CloudDataDistributor::add_provider(
    storage::ProviderDescriptor descriptor,
    const storage::LatencyModel& latency, std::uint64_t seed) {
  if (descriptor.name.empty()) {
    return Status::InvalidArgument("add_provider: empty provider name");
  }
  if (registry_.find(descriptor.name) != kNoProvider) {
    return Status::AlreadyExists("add_provider: " + descriptor.name);
  }
  const std::string name = descriptor.name;
  const PrivacyLevel pl = descriptor.privacy_level;
  const CostLevel cl = descriptor.cost_level;
  // seed 0: the registry derives one from the fleet size under its lock.
  const ProviderIndex p = registry_.add(std::move(descriptor), latency, seed,
                                        ProviderLifecycle::kJoining);
  // Provider rows are broadcast: every partition's checkpoint+journal pair
  // must know the fleet to replay its own record_placements.
  for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
    plane_->store(s).register_provider(name, pl, cl,
                                       ProviderLifecycle::kJoining);
  }
  JournalRecord rec;
  rec.op = JournalOp::kRegisterProvider;
  rec.provider_index = p;
  rec.client = name;
  rec.level = static_cast<std::uint8_t>(pl);
  rec.cost = static_cast<std::uint8_t>(cl);
  rec.lifecycle = static_cast<std::uint8_t>(ProviderLifecycle::kJoining);
  CS_RETURN_IF_ERROR(journal_append_all(rec));
  return p;
}

Status CloudDataDistributor::begin_migration(MigrationKind kind,
                                             ProviderIndex subject) {
  if (subject >= registry_.size()) {
    return Status::InvalidArgument("begin_migration: no such provider");
  }
  const std::string name = registry_.at(subject).descriptor().name;
  switch (kind) {
    case MigrationKind::kJoin: {
      if (registry_.lifecycle(subject) != ProviderLifecycle::kJoining) {
        return Status::FailedPrecondition(
            "begin_migration: " + name + " is " +
            std::string(
                provider_lifecycle_name(registry_.lifecycle(subject))) +
            ", not joining");
      }
      // The joiner enters the ring *before* any shard moves: the migration
      // itself computes the stolen arcs from this post-join ring, and
      // placement still ignores the provider until commit activates it.
      ring_insert(subject, name);
      break;
    }
    case MigrationKind::kDrain:
    case MigrationKind::kDecommission: {
      // Draining a provider must leave at least one active member or
      // placement (and the migration itself) has nowhere to go. The
      // registry enforces that atomically with the transition, so two
      // concurrent drains of the last two active providers cannot both
      // slip through a check-then-act window.
      CS_RETURN_IF_ERROR(registry_.drain(subject));
      for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
        plane_->store(s).set_provider_lifecycle(subject,
                                                ProviderLifecycle::kDraining);
      }
      ring_erase(subject);
      break;
    }
  }
  // Migration intents are broadcast so any single shard's recovery alone
  // can resume the interrupted migration.
  JournalRecord rec;
  rec.op = JournalOp::kBeginMigrate;
  rec.provider_index = subject;
  rec.client = name;
  rec.level = static_cast<std::uint8_t>(kind);
  return journal_append_all(rec);
}

Status CloudDataDistributor::commit_migration(MigrationKind kind,
                                              ProviderIndex subject) {
  if (subject >= registry_.size()) {
    return Status::InvalidArgument("commit_migration: no such provider");
  }
  switch (kind) {
    case MigrationKind::kJoin:
      CS_RETURN_IF_ERROR(registry_.activate(subject));
      for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
        plane_->store(s).set_provider_lifecycle(subject,
                                                ProviderLifecycle::kActive);
      }
      break;
    case MigrationKind::kDrain:
      // The provider stays kDraining -- emptied, still serving reads --
      // until an explicit decommission retires it.
      break;
    case MigrationKind::kDecommission:
      CS_RETURN_IF_ERROR(registry_.decommission(subject));
      for (std::size_t s = 0; s < plane_->shard_count(); ++s) {
        plane_->store(s).set_provider_lifecycle(
            subject, ProviderLifecycle::kDecommissioned);
      }
      break;
  }
  JournalRecord rec;
  rec.op = JournalOp::kCommitMigrate;
  rec.provider_index = subject;
  rec.client = registry_.at(subject).descriptor().name;
  rec.level = static_cast<std::uint8_t>(kind);
  return journal_append_all(rec);
}

Result<CloudDataDistributor::ChunkMigrateStats>
CloudDataDistributor::migrate_chunk(std::size_t index, MigrationKind kind,
                                    ProviderIndex subject) {
  CS_REQUIRE(subject < registry_.size(),
             "migrate_chunk: provider index out of range");
  const bool join = kind == MigrationKind::kJoin;

  // The chunk row is read-modify-written here while live client traffic
  // (update_chunk, remove, heal) may rewrite the same row concurrently. The
  // commit therefore goes through a version compare-and-swap: when a client
  // won the race, this pass's fresh copies are deleted and the chunk is
  // redone from the new row -- the migrator can never overwrite a newer row
  // with its stale snapshot (which would then retire shards the new row
  // references, leaving a permanent hole). A row hot enough to exhaust the
  // redo budget is left for the next migration pass.
  // `index` is a global chunk index; sparse globals resolve to NotFound.
  const std::size_t part = plane_->shard_of_index(index);
  const std::size_t local = plane_->local_index(index);
  MetadataStore& md = plane_->store(part);
  constexpr int kCasAttempts = 8;
  for (int attempt = 0; attempt < kCasAttempts; ++attempt) {
    ChunkMigrateStats stats;
    Result<MetadataStore::VersionedChunk> row =
        md.chunk_entry_versioned(local);
    if (!row.ok()) return stats;  // deleted hole: nothing to move
    ChunkEntry entry = std::move(row.value().entry);
    const std::uint64_t row_version = row.value().version;
    if (entry.deleted) return stats;
    if (join &&
        !privileged_for(registry_.at(subject).descriptor().privacy_level,
                        entry.privacy_level)) {
      return stats;  // joiner not trusted at this sensitivity: steals nothing
    }

    // Old copies to delete at their source -- deferred until the new
    // locations have committed (metadata + journal), so a crash mid-chunk
    // leaves duplicates (orphans reconcile() sweeps), never a hole. The new
    // homes (same index as their retired twin) wait alongside: the
    // provider-id-table deltas are applied by update_chunk_if() atomically
    // with the row write, so a failed commit or an interleaved checkpoint
    // never persists id tables that disagree with the chunk rows.
    std::vector<ShardLocation> retired;
    std::vector<ShardLocation> placed;
    auto migrate_stripe = [&](std::vector<ShardLocation>& stripe) {
      bool subject_in_stripe = false;
      for (const ShardLocation& loc : stripe) {
        if (loc.provider == subject) subject_in_stripe = true;
      }
      for (std::size_t s = 0; s < stripe.size(); ++s) {
        bool affected;
        if (join) {
          // The arc the joiner stole. Stripe members must stay on distinct
          // providers (placement rule 4), so a stripe yields the joiner at
          // most one shard; a re-run after a crash sees the moved shard
          // already on the joiner and skips the stripe.
          affected = !subject_in_stripe && stripe[s].provider != subject &&
                     ring_owner(stripe[s].virtual_id) == subject;
        } else {
          // Drain/decommission: everything resident on the subject. A re-run
          // finds the moved shards no longer there -- idempotent.
          affected = stripe[s].provider == subject;
        }
        if (!affected) continue;

        // Fetch through the request layer: retries, breaker gating and
        // hedging apply to migration traffic like any client read.
        Bytes shard;
        RequestLayer::GetOutcome got =
            rt_.get(stripe[s].provider, stripe[s].virtual_id);
        if (got.status.ok() && got.data.has_value()) {
          shard = std::move(*got.data);
        } else {
          // Source unreachable: RAID-reconstruct from the stripe survivors,
          // probing through the I/O pool.
          std::vector<std::optional<Bytes>> shards(stripe.size());
          std::vector<std::pair<std::size_t,
                                std::future<std::optional<Bytes>>>> probes;
          probes.reserve(stripe.size());
          for (std::size_t t = 0; t < stripe.size(); ++t) {
            if (t == s) continue;
            probes.emplace_back(
                t, io_pool_.submit(
                       [this, loc = stripe[t]]() -> std::optional<Bytes> {
                         RequestLayer::GetOutcome other =
                             rt_.get(loc.provider, loc.virtual_id);
                         if (other.status.ok() && other.data.has_value()) {
                           return std::move(*other.data);
                         }
                         return std::nullopt;
                       }));
          }
          for (auto& [t, fut] : probes) shards[t] = fut.get();
          Result<Bytes> rebuilt =
              raid::reconstruct_shard(entry.layout, shards, s);
          if (!rebuilt.ok()) {
            ++stats.errors;  // below RAID tolerance right now: next pass
            continue;
          }
          shard = std::move(rebuilt).value();
        }

        ProviderIndex home;
        if (join) {
          home = subject;
        } else {
          home = drain_home(entry.privacy_level, stripe, stripe[s].virtual_id,
                            subject);
        }
        if (home == kNoProvider) {
          ++stats.errors;  // no qualifying member this pass
          continue;
        }
        const VirtualId id = next_virtual_id();
        RequestLayer::Outcome rpc = rt_.put(home, id, shard);
        if (!rpc.status.ok()) {
          ++stats.errors;
          continue;
        }
        retired.push_back(stripe[s]);
        placed.push_back(ShardLocation{home, id});
        stripe[s] = ShardLocation{home, id};
        ++stats.moved;
        stats.bytes += shard.size();
        if (join) subject_in_stripe = true;
      }
    };
    migrate_stripe(entry.stripe);
    if (entry.has_snapshot) migrate_stripe(entry.snapshot);

    if (stats.moved != 0) {
      Status updated =
          md.update_chunk_if(local, entry, row_version, retired, placed);
      if (!updated.ok()) {
        // The new copies never became referenced: delete them so the lost
        // race leaves no orphans behind.
        for (const ShardLocation& loc : placed) {
          (void)rt_.remove(loc.provider, loc.virtual_id);
        }
        if (updated.code() == ErrorCode::kFailedPrecondition) {
          continue;  // a client rewrote the row mid-move: redo from fresh
        }
        return updated;
      }
      JournalRecord rec;
      rec.op = JournalOp::kUpdateChunk;
      rec.chunks.push_back(JournalChunk{0, local, std::move(entry)});
      CS_RETURN_IF_ERROR(journal_append(rec, part));
      // The new locations are durable; the old copies can go.
      for (const ShardLocation& loc : retired) {
        (void)rt_.remove(loc.provider, loc.virtual_id);
      }
      if (telemetry_->enabled()) {
        obs::MetricsRegistry& m = telemetry_->metrics();
        m.counter("migration.shards_moved").inc(stats.moved);
        m.counter("migration.bytes_moved").inc(stats.bytes);
      }
    }
    if (stats.errors != 0 && telemetry_->enabled()) {
      telemetry_->metrics().counter("migration.errors").inc(stats.errors);
    }
    return stats;
  }

  // Every attempt lost its CAS: count one error so this migration pass
  // reports incomplete and a later run retries the chunk.
  ChunkMigrateStats stats;
  stats.errors = 1;
  if (telemetry_->enabled()) {
    telemetry_->metrics().counter("migration.errors").inc(1);
  }
  return stats;
}

}  // namespace cshield::core

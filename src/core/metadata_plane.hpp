// N-way sharded metadata/journal plane.
//
// The paper's Fig. 2 multi-distributor architecture exists because "a
// single data distributor can create a bottleneck" -- and a single
// MetadataStore behind one shared_mutex plus a single fsync lane *is* that
// bottleneck once tens of clients hammer small ops. MetadataPlane splits
// the namespace into N independent partitions by consistent hash of
// (client, filename): each partition is a full MetadataStore (its own
// lock, its own filename/serial/provider indices, its own per-row version
// counters) with its own CRC32-framed journal file (its own group-commit
// lane) and its own checkpoint image. Concurrent puts on different shards
// never touch the same lock or the same fsync.
//
// Shard map:
//   - per-(client, filename) state -- file claims, chunk refs, chunk rows,
//     and their journal records -- lives in the owning partition
//     shard_of(client, filename) only, with chunk indices local to it;
//   - client rows (register/add_password) and provider rows (register,
//     lifecycle, migration intents) are broadcast to every partition and
//     every shard journal, so each shard's checkpoint+journal pair is
//     self-contained and the N shards recover in parallel with no
//     cross-shard dependency.
//
// Maintenance loops address chunks through a *global* index space that
// interleaves the partitions: global = local * N + shard. N = 1 makes the
// mapping the identity, the single partition the whole namespace, and the
// on-disk images bit-identical to the unsharded layout.
#pragma once

#include <filesystem>
#include <memory>
#include <string_view>
#include <vector>

#include "core/journal.hpp"
#include "core/tables.hpp"

namespace cshield::core {

class MetadataPlane {
 public:
  /// One shard: its table partition, its journal (null = in-memory only)
  /// and where its checkpoint image goes (empty = no checkpointing).
  struct Partition {
    std::shared_ptr<MetadataStore> store;
    std::shared_ptr<Journal> journal;
    std::filesystem::path checkpoint_path;
  };

  /// Takes ownership of the partitions; at least one, each with a store.
  explicit MetadataPlane(std::vector<Partition> partitions);

  /// `shards` empty in-memory partitions (no journals, no checkpoints).
  [[nodiscard]] static std::shared_ptr<MetadataPlane> make_in_memory(
      std::size_t shards);

  /// Owning shard of a (client, filename) pair: a consistent hash, stable
  /// across processes and front-ends. Client-level records use an empty
  /// filename for a deterministic "home" shard, but are broadcast anyway.
  [[nodiscard]] static std::size_t shard_of(std::string_view client,
                                            std::string_view filename,
                                            std::size_t shard_count);

  [[nodiscard]] std::size_t shard_of(std::string_view client,
                                     std::string_view filename) const {
    return shard_of(client, filename, partitions_.size());
  }

  [[nodiscard]] std::size_t shard_count() const { return partitions_.size(); }

  [[nodiscard]] MetadataStore& store(std::size_t shard) {
    return *partitions_[shard].store;
  }
  [[nodiscard]] const MetadataStore& store(std::size_t shard) const {
    return *partitions_[shard].store;
  }
  [[nodiscard]] const std::shared_ptr<MetadataStore>& store_ptr(
      std::size_t shard) const {
    return partitions_[shard].store;
  }
  [[nodiscard]] Journal* journal(std::size_t shard) const {
    return partitions_[shard].journal.get();
  }
  [[nodiscard]] const std::filesystem::path& checkpoint_path(
      std::size_t shard) const {
    return partitions_[shard].checkpoint_path;
  }

  // --- global chunk index space ---------------------------------------
  //
  // global = local * N + shard. Partition-local indices (what journal
  // records and client chunk refs carry) stay dense per shard; the global
  // space interleaves them so maintenance loops sweep all partitions with
  // one counter. Globals can be sparse: a global whose local slot does not
  // exist in its partition simply resolves to NotFound.

  [[nodiscard]] std::size_t to_global(std::size_t shard,
                                      std::size_t local) const {
    return local * partitions_.size() + shard;
  }
  [[nodiscard]] std::size_t shard_of_index(std::size_t global) const {
    return global % partitions_.size();
  }
  [[nodiscard]] std::size_t local_index(std::size_t global) const {
    return global / partitions_.size();
  }
  /// Exclusive upper bound of the live global index space:
  /// N * max_partition_total_chunks (every partition's rows fall below it).
  [[nodiscard]] std::size_t global_chunk_bound() const;

  // --- merged plane-wide views -----------------------------------------

  /// Provider rows with virtual-id placements unioned across partitions.
  /// Row identity (name/PL/CL/lifecycle) is broadcast-replicated, so any
  /// partition agrees; placements are per-partition and must be merged.
  [[nodiscard]] std::vector<ProviderEntry> provider_table() const;

  /// Sum of partition chunk-table sizes (tombstones included).
  [[nodiscard]] std::size_t total_chunks() const;

 private:
  std::vector<Partition> partitions_;
};

}  // namespace cshield::core

#include "core/metadata_plane.hpp"

#include <algorithm>
#include <set>

#include "util/hash.hpp"
#include "util/status.hpp"

namespace cshield::core {

MetadataPlane::MetadataPlane(std::vector<Partition> partitions)
    : partitions_(std::move(partitions)) {
  CS_REQUIRE(!partitions_.empty(), "MetadataPlane: no partitions");
  for (const Partition& p : partitions_) {
    CS_REQUIRE(p.store != nullptr, "MetadataPlane: partition without store");
  }
}

std::shared_ptr<MetadataPlane> MetadataPlane::make_in_memory(
    std::size_t shards) {
  if (shards == 0) shards = 1;
  std::vector<Partition> parts(shards);
  for (Partition& p : parts) p.store = std::make_shared<MetadataStore>();
  return std::make_shared<MetadataPlane>(std::move(parts));
}

std::size_t MetadataPlane::shard_of(std::string_view client,
                                    std::string_view filename,
                                    std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  // Consistent hash of the pair: mix the two FNV streams asymmetrically so
  // ("ab", "c") and ("a", "bc") land independently.
  const std::uint64_t h =
      mix64(fnv1a64(client) ^ (fnv1a64(filename) * 0x9E3779B97F4A7C15ULL));
  return static_cast<std::size_t>(h % shard_count);
}

std::size_t MetadataPlane::global_chunk_bound() const {
  std::size_t max_local = 0;
  for (const Partition& p : partitions_) {
    max_local = std::max(max_local, p.store->total_chunks());
  }
  return max_local * partitions_.size();
}

std::vector<ProviderEntry> MetadataPlane::provider_table() const {
  // Broadcast registration keeps row identity replicated, but a crash mid-
  // broadcast can leave partitions with different row counts -- take the
  // widest partition as the base so no provider is dropped from the view.
  std::size_t base = 0;
  for (std::size_t s = 1; s < partitions_.size(); ++s) {
    if (partitions_[s].store->provider_count() >
        partitions_[base].store->provider_count()) {
      base = s;
    }
  }
  std::vector<ProviderEntry> out = partitions_[base].store->provider_table();
  if (partitions_.size() == 1) return out;
  std::vector<std::set<VirtualId>> merged(out.size());
  for (std::size_t p = 0; p < out.size(); ++p) {
    merged[p].insert(out[p].virtual_ids.begin(), out[p].virtual_ids.end());
  }
  for (std::size_t s = 0; s < partitions_.size(); ++s) {
    if (s == base) continue;
    const auto rows = partitions_[s].store->provider_table();
    for (std::size_t p = 0; p < rows.size() && p < merged.size(); ++p) {
      merged[p].insert(rows[p].virtual_ids.begin(),
                       rows[p].virtual_ids.end());
    }
  }
  for (std::size_t p = 0; p < out.size(); ++p) {
    out[p].virtual_ids.assign(merged[p].begin(), merged[p].end());
  }
  return out;
}

std::size_t MetadataPlane::total_chunks() const {
  std::size_t total = 0;
  for (const Partition& p : partitions_) total += p.store->total_chunks();
  return total;
}

}  // namespace cshield::core

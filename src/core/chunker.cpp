#include "core/chunker.hpp"

namespace cshield::core {

std::vector<RawChunk> split_file(BytesView data, PrivacyLevel pl,
                                 const ChunkSizePolicy& policy,
                                 std::size_t record_align) {
  std::size_t chunk_size = policy.chunk_size(pl);
  CS_REQUIRE(chunk_size > 0, "split_file: zero chunk size");
  if (record_align > 0) {
    CS_REQUIRE(record_align <= (1u << 20), "split_file: absurd record size");
    chunk_size = std::max(record_align,
                          chunk_size - chunk_size % record_align);
  }

  std::vector<RawChunk> chunks;
  if (data.empty()) {
    chunks.push_back(RawChunk{0, Bytes{}});
    return chunks;
  }
  const std::size_t count = (data.size() + chunk_size - 1) / chunk_size;
  chunks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RawChunk c;
    c.serial = i;
    c.data = slice(data, i * chunk_size, chunk_size);
    chunks.push_back(std::move(c));
  }
  return chunks;
}

Bytes join_chunks(const std::vector<RawChunk>& chunks) {
  Bytes out;
  std::size_t total = 0;
  for (const auto& c : chunks) total += c.data.size();
  out.reserve(total);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    CS_REQUIRE(chunks[i].serial == i, "join_chunks: serials out of order");
    append(out, chunks[i].data);
  }
  return out;
}

}  // namespace cshield::core

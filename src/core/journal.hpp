// Write-ahead journal for the Cloud Data Distributor's metadata tables.
//
// The three tables (SIV-A, Tables I-III) are the only unrecomputable state
// in the system; metadata_io's one-shot snapshot loses every mutation since
// the last explicit save. The journal closes that window GFS/Raft-style
// (see PAPERS.md): every metadata mutation appends one CRC32-framed record
// *before* the operation acknowledges to the client, and recovery replays
// checkpoint + journal to rebuild the exact committed state.
//
// File layout:
//   header : u32 magic | u32 version | u64 checkpoint_ops
//            [v4: | u32 shard_index | u32 shard_count]
//   frames : (u32 payload_len | u32 crc32(payload) | payload)*
//
// `checkpoint_ops` counts the records folded into checkpoints so far, so a
// restarted process can still report how much history the checkpoint
// carries. A torn tail (crash mid-append) is data, not corruption: replay
// stops at the first frame whose length runs past the file or whose CRC
// fails, and Journal::open truncates the tail so the next append lands on
// a clean boundary.
//
// Sharded plane (v4): an N-way partitioned metadata plane gives every
// partition its own journal file with its own group-commit lane. Those
// files carry a self-describing shard stamp (shard_index / shard_count)
// in a v4 header so a file can never be silently replayed into the wrong
// plane shape: opening an N-shard member as 1-shard (or vice versa, or
// with the wrong N) fails loudly. A 1-shard plane keeps writing the v3
// header, so its on-disk image stays bit-identical to the unsharded
// layout.
//
// Commit-point discipline (enforced by the distributor, verified by
// tests/recovery_test.cpp):
//   - kBeginPut is appended before any shard upload of a put;
//   - commit records (kCommitPut/kUpdateChunk/kRemoveChunk/kRemoveFile) are
//     appended after the in-memory metadata mutation but before any
//     provider-side deletion of superseded stripes and before the client
//     sees OK;
// so a crash at *any* byte of the journal stream leaves either (a) the old
// committed state plus unreferenced orphan shards, or (b) the new committed
// state plus unreferenced orphan shards -- never a committed record whose
// shards are gone. Reconciliation (CloudDataDistributor::reconcile) sweeps
// the orphans.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/tables.hpp"
#include "obs/telemetry.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace cshield::obs {
class StallWatchdog;
}

namespace cshield::core {

/// Metadata mutation kinds. Values are the on-disk tags -- append-only,
/// never renumber.
enum class JournalOp : std::uint8_t {
  kRegisterProvider = 1,  ///< provider row mirrored from the registry
  kRegisterClient = 2,
  kAddPassword = 3,
  kBeginPut = 4,    ///< intent: filename claimed, shard uploads may follow
  kCommitPut = 5,   ///< all chunk rows of a put, with explicit indices
  kAbortPut = 6,    ///< put rolled back; claim released
  kUpdateChunk = 7, ///< chunk row overwritten (update/repair/rebalance)
  kRemoveChunk = 8,
  kRemoveFile = 9,
  /// Topology migration intent: a join/drain/decommission of one provider
  /// has started; shard moves (each its own kUpdateChunk) follow. A Begin
  /// without a matching Commit marks a crash mid-migration -- recovery
  /// reports it in RecoveredState::pending_migrations for an idempotent
  /// resume.
  kBeginMigrate = 10,
  kCommitMigrate = 11,  ///< the migration's affected set is fully moved
};

/// What a kBeginMigrate/kCommitMigrate record describes (carried in the
/// record's `level` field; on-disk values, append-only).
enum class MigrationKind : std::uint8_t {
  kJoin = 0,          ///< new provider steals its ring share
  kDrain = 1,         ///< provider emptied, stays readable meanwhile
  kDecommission = 2,  ///< drain, then the provider leaves the fleet
};

inline constexpr int kNumMigrationKinds = 3;

[[nodiscard]] constexpr std::string_view migration_kind_name(
    MigrationKind k) {
  switch (k) {
    case MigrationKind::kJoin: return "join";
    case MigrationKind::kDrain: return "drain";
    case MigrationKind::kDecommission: return "decommission";
  }
  return "invalid";
}

/// One chunk-table row carried by a commit/update/remove record. The index
/// is explicit because concurrent ops interleave add_chunk arbitrarily --
/// replay must land each row exactly where the original op committed it.
struct JournalChunk {
  std::uint64_t serial = 0;
  std::uint64_t index = 0;
  ChunkEntry entry;  ///< unused (empty) for remove records
};

/// One journal record. A flat union-of-fields struct: which fields are
/// meaningful depends on `op` (see encode_record), unused ones stay empty.
struct JournalRecord {
  JournalOp op = JournalOp::kBeginPut;
  std::string client;    ///< provider name for kRegisterProvider / k*Migrate
  std::string filename;  ///< password for kAddPassword
  /// Privacy level (provider / password); MigrationKind for k*Migrate.
  std::uint8_t level = 0;
  std::uint8_t cost = 0;  ///< provider cost level
  /// kRegisterProvider: initial lifecycle (kActive for a static fleet,
  /// kJoining for a runtime join).
  std::uint8_t lifecycle = 1;
  std::uint64_t provider_index = 0;  ///< kRegisterProvider / k*Migrate index
  std::vector<JournalChunk> chunks;  ///< commit / update / remove rows
};

/// Serializes one record payload (no frame). Chunk entries use the
/// metadata_io wire layout, so journal and checkpoint agree byte-for-byte.
[[nodiscard]] Bytes encode_record(const JournalRecord& rec);

/// Parses one record payload; false on truncation or implausible fields.
[[nodiscard]] bool decode_record(BytesView payload, JournalRecord& rec);

/// Outcome of scanning a journal image.
struct JournalReplay {
  std::vector<JournalRecord> records;  ///< longest well-formed prefix
  std::uint64_t checkpoint_ops = 0;    ///< header field
  std::size_t valid_bytes = 0;  ///< bytes up to (excluding) the torn tail
  /// Shard stamp (v4 header); a pre-v4 file is shard 0 of a 1-shard plane.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
};

/// Scans a full journal file image. A bad header is an error (the file is
/// not a journal); a torn/corrupt tail is tolerated -- records stop there.
[[nodiscard]] Result<JournalReplay> replay_journal_image(BytesView image);

/// Group-commit tuning (see Journal::set_group_commit). The defaults
/// reproduce per-op commit: every append is its own batch with its own
/// fsync, byte-identical on disk to the pre-group-commit format.
struct GroupCommitConfig {
  /// Max records folded into one write+fsync. 1 = per-op commit.
  std::size_t batch_ops = 1;
  /// How long a batch leader waits for the batch to fill before flushing
  /// short. 0 = flush whatever is queued immediately (opportunistic
  /// grouping only). Ignored when batch_ops == 1.
  std::chrono::microseconds batch_interval{0};
};

/// Append-only journal file handle. Thread-safe: appends serialize under
/// one mutex and fsync before returning, so "append returned OK" means the
/// record is durable.
///
/// Group commit: concurrent appends enqueue their framed records and the
/// front waiter becomes the batch leader -- it drains up to `batch_ops`
/// records (waiting up to `batch_interval` for the batch to fill), writes
/// them in queue order, fsyncs ONCE, then wakes every waiter in the batch.
/// The durability contract is unchanged: append() returns only after the
/// caller's own record is on disk (leaders and followers alike), and the
/// on-disk frame stream is identical to per-op commit -- a batch is just
/// several frames sharing one fsync. One Journal instance per file per
/// process.
class Journal {
 public:
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (creating if absent) the journal at `path`. An existing file is
  /// scanned and any torn tail truncated away. Rejects files that are not
  /// journals (bad magic / unknown version) and files whose shard stamp
  /// disagrees with the expected one -- an N-shard member opened as
  /// 1-shard, or with the wrong index/count, fails with a clear error
  /// instead of replaying into the wrong plane shape. The default
  /// (shard 0 of 1) is the unsharded layout and writes the bit-compatible
  /// v3 header; shard_count > 1 writes the self-describing v4 header.
  [[nodiscard]] static Result<std::unique_ptr<Journal>> open(
      std::filesystem::path path, std::uint32_t shard_index = 0,
      std::uint32_t shard_count = 1);

  /// Appends one framed record. The record is durable when this returns
  /// OK -- under group commit the fsync may be shared with other records
  /// of the same batch, but it has happened before any of them return.
  Status append(const JournalRecord& rec);

  /// Installs the group-commit tuning. Call before serving traffic (not
  /// synchronized against in-flight appends). The default configuration
  /// (batch_ops = 1) is exact per-op commit.
  void set_group_commit(const GroupCommitConfig& cfg);

  /// Wires flush instrumentation into `tel`: histograms
  /// `journal.batch_size` / `journal.flush_ns` and counter
  /// `journal.group_commits` (batches that folded > 1 record). Attach
  /// before serving traffic; `tel` must outlive the journal.
  void attach_telemetry(const std::shared_ptr<obs::Telemetry>& tel);

  /// Lets the stall watchdog see the flush leader's write+fsync window
  /// (fsync_begin/fsync_end brackets): an fsync stuck past the watchdog's
  /// threshold -- a sick disk, a wedged filesystem -- fires its diagnostic.
  /// Attach before serving traffic; `wd` must outlive the journal (null
  /// detaches).
  void attach_watchdog(obs::StallWatchdog* wd);

  /// Atomic checkpoint: calls `snapshot` (typically serialize_metadata),
  /// writes the image to `checkpoint_path` via temp-file + fsync + rename
  /// + directory fsync, then truncates the journal back to its header with
  /// `checkpoint_ops` advanced by the records folded in. Appends are
  /// blocked for the duration, so the snapshot and the truncation are one
  /// cut: every truncated record is inside the checkpoint image.
  Status checkpoint(const std::function<Bytes()>& snapshot,
                    const std::filesystem::path& checkpoint_path);

  /// Records currently in the journal (since the last checkpoint).
  [[nodiscard]] std::size_t record_count() const;
  /// Journal file size in bytes (header included).
  [[nodiscard]] std::uint64_t bytes() const;
  /// Records appended over this handle's lifetime (monotonic).
  [[nodiscard]] std::uint64_t total_appended() const;
  /// Cumulative records folded into checkpoints (persisted in the header).
  [[nodiscard]] std::uint64_t last_checkpoint_ops() const;
  /// Batches flushed (write + fsync cycles) over this handle's lifetime.
  [[nodiscard]] std::uint64_t flushes() const;
  /// Flushes that folded more than one record into a single fsync.
  [[nodiscard]] std::uint64_t group_commits() const;
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  /// This file's shard stamp (0 of 1 for the unsharded layout).
  [[nodiscard]] std::uint32_t shard_index() const { return shard_index_; }
  [[nodiscard]] std::uint32_t shard_count() const { return shard_count_; }

  /// Crash-injection seams for tests: the flush leader calls these for
  /// every record of its batch, in commit order, immediately before the
  /// record's frame is written / after the batch fsync made it durable.
  /// They run on the leader's thread (which under group commit may not be
  /// the appender's thread) with no journal lock held, but all journal I/O
  /// is serialized around them -- so _exit() in the before-hook models a
  /// crash where that record and everything after it are lost, and no
  /// append for those records has returned. Install before serving
  /// traffic; not synchronized against appends.
  std::function<void(const JournalRecord&)> test_hook_before_append;
  std::function<void(const JournalRecord&)> test_hook_after_append;

 private:
  /// One queued append: its framed bytes plus the completion flag/status
  /// the flush leader fills in. Lives on the appender's stack -- append()
  /// does not return until done, so queue pointers stay valid.
  struct Waiter {
    const JournalRecord* rec = nullptr;
    Bytes frame;
    Status status;
    bool done = false;
  };

  Journal(std::filesystem::path path, int fd, std::size_t records,
          std::uint64_t bytes, std::uint64_t checkpoint_ops,
          std::uint32_t shard_index, std::uint32_t shard_count);

  /// Leader body: drains up to batch_ops waiters from the queue front
  /// (waiting batch_interval for the batch to fill), writes + fsyncs them
  /// outside the lock, then completes every waiter. Called with `lk` held;
  /// returns with it held.
  void flush_batch(std::unique_lock<std::mutex>& lk);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Waiter*> queue_;   ///< appends waiting for a flush
  bool flushing_ = false;       ///< a leader is writing outside the lock
  GroupCommitConfig gc_;
  std::filesystem::path path_;
  int fd_ = -1;
  std::size_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t total_appended_ = 0;
  std::uint64_t checkpoint_ops_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t group_commits_ = 0;
  std::uint32_t shard_index_ = 0;
  std::uint32_t shard_count_ = 1;
  std::size_t header_size_ = 0;  ///< v3: 16 bytes; v4 (sharded): 24
  /// Pre-built per-shard metric name ("journal.shard.<k>.flush_ns");
  /// empty for a 1-shard plane, whose flushes report only the aggregate.
  std::string shard_flush_metric_;
  std::shared_ptr<obs::Telemetry> telemetry_;  ///< null = no instrumentation
  obs::StallWatchdog* watchdog_ = nullptr;     ///< null = no stall brackets
};

/// Applies one replayed record to a store. Idempotent: a record present in
/// both the checkpoint image and the journal (an op that raced the
/// checkpoint cut) applies cleanly twice. Provider virtual-id bookkeeping
/// is re-derived by diffing the old and new chunk rows.
Status apply_journal_record(MetadataStore& store, const JournalRecord& rec);

/// A topology migration the crash caught mid-flight (kBeginMigrate with no
/// matching kCommitMigrate). Re-running the same migration is idempotent:
/// shards already moved are no longer in the affected set.
struct MigrationIntent {
  MigrationKind kind = MigrationKind::kDrain;
  ProviderIndex provider = kNoProvider;
  std::string provider_name;
};

/// What crash recovery reconstructed.
struct RecoveredState {
  std::shared_ptr<MetadataStore> metadata;
  /// Puts with a kBeginPut but no kCommitPut/kAbortPut: the crash caught
  /// them mid-flight. Their claims must be released and their shards are
  /// orphans (reconcile handles both).
  std::vector<std::pair<std::string, std::string>> in_flight;
  /// Migrations to resume after reconcile() (journal order preserved).
  std::vector<MigrationIntent> pending_migrations;
  std::size_t replayed_records = 0;
  std::uint64_t checkpoint_ops = 0;
};

/// Rebuilds the committed metadata state: checkpoint image (if any) plus
/// the journal's well-formed record prefix (if any). Neither file existing
/// yields an empty store -- a fresh deployment. The expected shard stamp
/// defaults to the unsharded layout; images stamped otherwise are rejected
/// (a plane member must be recovered as the shard it was written as).
[[nodiscard]] Result<RecoveredState> recover_metadata(
    const std::filesystem::path& checkpoint_path,
    const std::filesystem::path& journal_path,
    std::uint32_t expected_shard_index = 0,
    std::uint32_t expected_shard_count = 1);

/// Path of shard `k`'s file under a plane's base path: the base itself for
/// shard 0 (so a 1-shard plane is path-compatible with the unsharded
/// layout), `<base>.s<k>` otherwise. Used for journals and checkpoints
/// alike.
[[nodiscard]] std::filesystem::path shard_file_path(
    const std::filesystem::path& base, std::size_t shard);

/// A journal file's header stamp, read without replaying it. NotFound when
/// the file is absent or shorter than a full header (a fresh / mid-create
/// file holds no records and carries no stamp).
struct JournalShardInfo {
  std::uint32_t version = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
};
[[nodiscard]] Result<JournalShardInfo> probe_journal_shard(
    const std::filesystem::path& path);

/// What recovering an N-shard plane reconstructed: every shard's own
/// RecoveredState plus the plane-wide unions reconcile() needs.
struct PlaneRecovery {
  std::vector<RecoveredState> shards;  ///< index = shard
  /// Union of every shard's in-flight puts (each put lives in exactly one
  /// shard's journal, so this is concatenation, deduped for safety).
  std::vector<std::pair<std::string, std::string>> in_flight;
  /// Pending migrations deduped by (kind, provider): topology intents are
  /// broadcast to every shard's journal, so N shards report N copies.
  std::vector<MigrationIntent> pending_migrations;
  std::size_t replayed_records = 0;  ///< sum over shards
};

/// Recovers all `shard_count` members of a plane in parallel -- one thread
/// per shard, each replaying its own checkpoint + journal (paths derived
/// via shard_file_path) -- and validates every member's shard stamp.
/// shard_count 1 is exactly recover_metadata on the base paths.
[[nodiscard]] Result<PlaneRecovery> recover_plane(
    const std::filesystem::path& checkpoint_base,
    const std::filesystem::path& journal_base, std::size_t shard_count);

}  // namespace cshield::core

// The Cloud Data Distributor's three metadata tables (Tables I-III).
//
// The paper's distributor "maintains three types of tables describing the
// providers, the clients and the chunks". MetadataStore is that state, kept
// behind one reader/writer lock so several distributor front-ends (the
// Fig. 2 multi-distributor extension) can share it. One generalization:
// because we implement the RAID placement the paper prescribes, a chunk's
// single "CP index" column becomes a stripe -- a list of
// (provider, virtual id) shard locations; a 1-shard stripe reproduces the
// paper's table exactly.
//
// Internally the store is indexed so lookups scale with namespace size:
//   - per client, a filename -> (serial -> ChunkRef) map backs find_chunk /
//     file_chunks / list_files in O(log n) instead of a linear ref scan;
//   - per provider, an unordered_set<VirtualId> makes record_placement /
//     record_removal O(1) instead of an O(shards) vector erase.
// The public row structs (ProviderEntry, ClientEntry) keep their flat
// vector shape -- they are materialized on demand -- so the metadata_io
// wire format is unchanged; provider id vectors materialize sorted so
// serialization stays deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "raid/raid.hpp"
#include "util/status.hpp"

namespace cshield::core {

/// Where one shard of a chunk's stripe lives.
struct ShardLocation {
  ProviderIndex provider = kNoProvider;
  VirtualId virtual_id = 0;
};

/// One row of the Chunk Table (Table III), RAID-generalized.
struct ChunkEntry {
  PrivacyLevel privacy_level = PrivacyLevel::kPublic;
  raid::StripeLayout layout;
  std::vector<ShardLocation> stripe;      ///< CP column, one per shard
  std::vector<ShardLocation> snapshot;    ///< SP column: pre-modification state
  std::vector<std::uint32_t> misleading;  ///< M column: chaff byte positions
  std::size_t padded_size = 0;   ///< payload length incl. misleading bytes
  std::vector<crypto::Digest> shard_digests;  ///< integrity per shard
  /// Protection transform applied to the padded payload before encoding.
  /// The kPartialAes/protect_bytes==0 defaults make pre-ProtectionMode
  /// entries (metadata wire v1, no such fields) read back as a no-op.
  ProtectionMode protection = ProtectionMode::kPartialAes;
  std::uint64_t protect_nonce = 0;  ///< per-chunk CTR nonce / entangle nonce
  std::size_t protect_bytes = 0;    ///< AES-encrypted prefix length (partial-AES)
  bool has_snapshot = false;
  std::size_t snapshot_padded_size = 0;
  std::vector<std::uint32_t> snapshot_misleading;
  std::vector<crypto::Digest> snapshot_digests;
  /// Protection parameters of the snapshot stripe (the pre-update payload
  /// is stored still-protected, under its original transform).
  ProtectionMode snapshot_protection = ProtectionMode::kPartialAes;
  std::uint64_t snapshot_protect_nonce = 0;
  std::size_t snapshot_protect_bytes = 0;
  bool deleted = false;  ///< tombstone; indices stay stable after removal
};

/// Chunk coordinate within a client's namespace.
struct ChunkRef {
  std::string filename;
  std::uint64_t serial = 0;
  PrivacyLevel privacy_level = PrivacyLevel::kPublic;
  std::size_t chunk_index = 0;  ///< index into the chunk table
};

/// One row of the Client Table (Table II).
struct ClientEntry {
  std::string name;
  std::vector<std::pair<std::string, PrivacyLevel>> passwords;
  std::vector<ChunkRef> chunks;

  [[nodiscard]] std::size_t chunk_count() const { return chunks.size(); }
};

/// One row of the Cloud Provider Table (Table I). The registry owns the
/// live provider objects; this row mirrors the paper's bookkeeping view
/// (name/PL/CL come from the registry descriptor at registration).
struct ProviderEntry {
  std::string name;
  PrivacyLevel privacy_level = PrivacyLevel::kPublic;
  CostLevel cost_level = CostLevel::kCheapest;
  /// Fleet membership state, persisted so a restart rebuilds the dynamic
  /// topology (a crash mid-drain must come back still draining).
  ProviderLifecycle lifecycle = ProviderLifecycle::kActive;
  std::vector<VirtualId> virtual_ids;  ///< chunks (shards) placed here

  [[nodiscard]] std::size_t count() const { return virtual_ids.size(); }
};

/// Per-file inventory row derived from the filename index (the data behind
/// the distributor's list_files, already privilege-filtered).
struct FileSummary {
  std::string filename;
  PrivacyLevel privacy_level = PrivacyLevel::kPublic;
  std::size_t chunks = 0;
};

/// Thread-safe store of the three tables. All distributor front-ends
/// sharing a store see a consistent namespace. Read-mostly accessors take a
/// shared lock so concurrent lookups from many front-ends do not serialize.
class MetadataStore {
 public:
  // --- Cloud Provider Table ------------------------------------------

  /// Registers provider bookkeeping rows 0..n-1 (must mirror the registry).
  void register_provider(std::string name, PrivacyLevel pl, CostLevel cl,
                         ProviderLifecycle lifecycle =
                             ProviderLifecycle::kActive) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    providers_.push_back(ProviderState{std::move(name), pl, cl, lifecycle,
                                       {}});
  }

  /// Records a lifecycle transition (journaled by the caller; replay and
  /// checkpoint both carry it, so recovery restores the fleet's state).
  void set_provider_lifecycle(ProviderIndex p, ProviderLifecycle s) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(p < providers_.size(),
               "set_provider_lifecycle: bad provider index");
    providers_[p].lifecycle = s;
  }

  [[nodiscard]] ProviderLifecycle provider_lifecycle(ProviderIndex p) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(p < providers_.size(),
               "provider_lifecycle: bad provider index");
    return providers_[p].lifecycle;
  }

  void record_placement(ProviderIndex p, VirtualId id) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(p < providers_.size(), "record_placement: bad provider index");
    providers_[p].virtual_ids.insert(id);
  }

  void record_removal(ProviderIndex p, VirtualId id) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(p < providers_.size(), "record_removal: bad provider index");
    providers_[p].virtual_ids.erase(id);
  }

  [[nodiscard]] std::size_t provider_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return providers_.size();
  }

  [[nodiscard]] std::vector<ProviderEntry> provider_table() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<ProviderEntry> out;
    out.reserve(providers_.size());
    for (const auto& p : providers_) out.push_back(materialize(p));
    return out;
  }

  // --- Client Table ---------------------------------------------------

  Status register_client(const std::string& name) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (clients_.count(name) != 0) {
      return Status::AlreadyExists("client " + name);
    }
    clients_[name];
    return Status::Ok();
  }

  Status add_password(const std::string& client, const std::string& password,
                      PrivacyLevel pl) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    for (const auto& [pw, _] : it->second.passwords) {
      if (pw == password) {
        return Status::AlreadyExists("password already registered");
      }
    }
    it->second.passwords.emplace_back(password, pl);
    return Status::Ok();
  }

  /// Validates a password and returns its privilege level (SV access check
  /// happens at the chunk-PL comparison in the distributor).
  [[nodiscard]] Result<PrivacyLevel> authenticate(
      const std::string& client, const std::string& password) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    for (const auto& [pw, pl] : it->second.passwords) {
      if (pw == password) return pl;
    }
    return Status::PermissionDenied("bad password for client " + client);
  }

  [[nodiscard]] Result<ClientEntry> client_entry(
      const std::string& client) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    return materialize(it->first, it->second);
  }

  // --- Chunk Table ------------------------------------------------------

  /// Reserves `filename` in the client's namespace so two concurrent
  /// put_file calls cannot both pass the duplicate check. A claim holds no
  /// chunks; readers see the file as nonexistent until add_chunk commits
  /// refs under it. kAlreadyExists when the name is taken (claimed or
  /// populated).
  Status claim_file(const std::string& client, const std::string& filename) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    auto [_, inserted] = it->second.files.try_emplace(filename);
    if (!inserted) {
      return Status::AlreadyExists("file " + filename + " for client " +
                                   client);
    }
    return Status::Ok();
  }

  /// Drops a claim that never received chunks (put_file rollback). A file
  /// that holds chunk refs is left untouched.
  void release_file(const std::string& client, const std::string& filename) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return;
    auto fit = it->second.files.find(filename);
    if (fit != it->second.files.end() && fit->second.empty()) {
      it->second.files.erase(fit);
    }
  }

  /// Appends a chunk entry and links it into the client's file index.
  /// Returns the chunk-table index. kAlreadyExists when the (filename,
  /// serial) slot is already linked.
  [[nodiscard]] Result<std::size_t> add_chunk(const std::string& client,
                                              const std::string& filename,
                                              std::uint64_t serial,
                                              ChunkEntry entry) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    auto& serials = it->second.files[filename];
    if (serials.count(serial) != 0) {
      return Status::AlreadyExists("chunk " + filename + "#" +
                                   std::to_string(serial));
    }
    const PrivacyLevel pl = entry.privacy_level;
    chunks_.push_back(std::move(entry));
    versions_.push_back(0);
    const std::size_t idx = chunks_.size() - 1;
    serials.emplace(serial, ChunkRef{filename, serial, pl, idx});
    return idx;
  }

  /// Journal-replay variant of add_chunk: places `entry` at an *explicit*
  /// chunk-table index (the one the original op committed), growing the
  /// table with deleted tombstones if needed, and links the client ref.
  /// Idempotent: re-applying a record whose (filename, serial) slot already
  /// points at `index` (the checkpoint raced the journal append) rewrites
  /// the entry and succeeds; a slot bound to a *different* index is a real
  /// conflict and fails.
  Status put_chunk_at(const std::string& client, const std::string& filename,
                      std::uint64_t serial, std::size_t index,
                      ChunkEntry entry) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    auto& serials = it->second.files[filename];
    auto sit = serials.find(serial);
    if (sit != serials.end() && sit->second.chunk_index != index) {
      return Status::AlreadyExists(
          "chunk " + filename + "#" + std::to_string(serial) +
          " already bound to index " + std::to_string(sit->second.chunk_index));
    }
    const PrivacyLevel pl = entry.privacy_level;
    grow_chunks(index);
    chunks_[index] = std::move(entry);
    ++versions_[index];
    if (sit == serials.end()) {
      serials.emplace(serial, ChunkRef{filename, serial, pl, index});
    }
    return Status::Ok();
  }

  /// Journal-replay variant of update_chunk: overwrites the row at `index`,
  /// growing the table with deleted tombstones when the checkpoint predates
  /// the row. No ref linkage changes.
  void set_chunk(std::size_t index, ChunkEntry entry) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    grow_chunks(index);
    chunks_[index] = std::move(entry);
    ++versions_[index];
  }

  [[nodiscard]] Result<ChunkEntry> chunk_entry(std::size_t index) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (index >= chunks_.size()) {
      return Status::NotFound("chunk index " + std::to_string(index));
    }
    return chunks_[index];
  }

  /// Chunk row plus its modification version -- the token update_chunk_if()
  /// compares, letting a read-modify-write detect a concurrent writer (the
  /// background migrator races live client updates on the same rows).
  /// Versions are in-memory only: conflicts only exist within one process.
  struct VersionedChunk {
    ChunkEntry entry;
    std::uint64_t version = 0;
  };

  [[nodiscard]] Result<VersionedChunk> chunk_entry_versioned(
      std::size_t index) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (index >= chunks_.size()) {
      return Status::NotFound("chunk index " + std::to_string(index));
    }
    return VersionedChunk{chunks_[index], versions_[index]};
  }

  Status update_chunk(std::size_t index, ChunkEntry entry) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (index >= chunks_.size()) {
      return Status::NotFound("chunk index " + std::to_string(index));
    }
    chunks_[index] = std::move(entry);
    ++versions_[index];
    return Status::Ok();
  }

  /// Commits `entry` only while the row is still at `expected_version`
  /// (compare-and-swap). kFailedPrecondition when a concurrent writer
  /// committed first: the caller's snapshot is stale -- re-read and redo.
  Status update_chunk_if(std::size_t index, ChunkEntry entry,
                         std::uint64_t expected_version) {
    return update_chunk_if(index, std::move(entry), expected_version, {}, {});
  }

  /// CAS commit that also applies the shard-move bookkeeping -- `retired`
  /// leaves the provider id tables, `placed` enters them -- under the same
  /// exclusive lock as the row write. A checkpoint snapshot (which takes
  /// this lock) therefore never observes the new row with the old id
  /// tables: the pair is atomic, so persisted images stay consistent even
  /// when a journal fold interleaves with a migration or heal commit.
  Status update_chunk_if(std::size_t index, ChunkEntry entry,
                         std::uint64_t expected_version,
                         const std::vector<ShardLocation>& retired,
                         const std::vector<ShardLocation>& placed) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (index >= chunks_.size()) {
      return Status::NotFound("chunk index " + std::to_string(index));
    }
    if (versions_[index] != expected_version) {
      return Status::FailedPrecondition(
          "chunk index " + std::to_string(index) + " modified since read");
    }
    chunks_[index] = std::move(entry);
    ++versions_[index];
    for (const ShardLocation& loc : retired) {
      CS_REQUIRE(loc.provider < providers_.size(),
                 "update_chunk_if: bad retired provider index");
      providers_[loc.provider].virtual_ids.erase(loc.virtual_id);
    }
    for (const ShardLocation& loc : placed) {
      CS_REQUIRE(loc.provider < providers_.size(),
                 "update_chunk_if: bad placed provider index");
      providers_[loc.provider].virtual_ids.insert(loc.virtual_id);
    }
    return Status::Ok();
  }

  /// Finds the chunk refs of a client file, serial-ordered. Empty result =
  /// file unknown (or only claimed, never committed).
  [[nodiscard]] std::vector<ChunkRef> file_chunks(
      const std::string& client, const std::string& filename) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<ChunkRef> out;
    auto it = clients_.find(client);
    if (it == clients_.end()) return out;
    auto fit = it->second.files.find(filename);
    if (fit == it->second.files.end()) return out;
    out.reserve(fit->second.size());
    for (const auto& [_, ref] : fit->second) out.push_back(ref);
    return out;
  }

  [[nodiscard]] std::optional<ChunkRef> find_chunk(
      const std::string& client, const std::string& filename,
      std::uint64_t serial) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return std::nullopt;
    auto fit = it->second.files.find(filename);
    if (fit == it->second.files.end()) return std::nullopt;
    auto sit = fit->second.find(serial);
    if (sit == fit->second.end()) return std::nullopt;
    return sit->second;
  }

  /// Per-file inventory visible to a password at `privilege`: only chunks
  /// whose PL the privilege can read are counted, and a file none of whose
  /// chunks are readable is omitted entirely (a low-privilege password
  /// cannot even learn the names of more sensitive files).
  [[nodiscard]] std::vector<FileSummary> list_files(
      const std::string& client, PrivacyLevel privilege) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<FileSummary> out;
    auto it = clients_.find(client);
    if (it == clients_.end()) return out;
    for (const auto& [filename, serials] : it->second.files) {
      FileSummary info{filename, PrivacyLevel::kPublic, 0};
      for (const auto& [_, ref] : serials) {
        if (!privileged_for(privilege, ref.privacy_level)) continue;
        if (info.chunks == 0) info.privacy_level = ref.privacy_level;
        ++info.chunks;
      }
      if (info.chunks > 0) out.push_back(std::move(info));
    }
    return out;
  }

  /// Unlinks a chunk ref from the client (the chunk-table row stays as a
  /// tombstone; indices must remain stable). Unlinking a file's last chunk
  /// frees the filename for reuse.
  Status unlink_chunk(const std::string& client, const std::string& filename,
                      std::uint64_t serial) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    auto fit = it->second.files.find(filename);
    if (fit == it->second.files.end() || fit->second.erase(serial) == 0) {
      return Status::NotFound("chunk " + filename + "#" +
                              std::to_string(serial));
    }
    if (fit->second.empty()) it->second.files.erase(fit);
    return Status::Ok();
  }

  [[nodiscard]] std::size_t total_chunks() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return chunks_.size();
  }

  // --- snapshot / restore (durability; see core/metadata_io.hpp) -------

  [[nodiscard]] std::vector<ClientEntry> client_table() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<ClientEntry> out;
    out.reserve(clients_.size());
    for (const auto& [name, state] : clients_) {
      out.push_back(materialize(name, state));
    }
    return out;
  }

  [[nodiscard]] std::vector<ChunkEntry> chunk_table() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return chunks_;
  }

  /// Replaces the entire table state (only valid on a freshly constructed
  /// store, i.e. during deserialization). Rebuilds the indices from the
  /// flat wire rows.
  void restore(std::vector<ProviderEntry> providers,
               std::vector<ClientEntry> clients,
               std::vector<ChunkEntry> chunks) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(providers_.empty() && clients_.empty() && chunks_.empty(),
               "MetadataStore::restore on a non-empty store");
    providers_.reserve(providers.size());
    for (auto& p : providers) {
      ProviderState state{std::move(p.name), p.privacy_level, p.cost_level,
                          p.lifecycle, {}};
      state.virtual_ids.insert(p.virtual_ids.begin(), p.virtual_ids.end());
      providers_.push_back(std::move(state));
    }
    for (auto& c : clients) {
      ClientState& state = clients_[c.name];
      state.passwords = std::move(c.passwords);
      for (auto& ref : c.chunks) {
        auto& serials = state.files[ref.filename];
        serials.emplace(ref.serial, std::move(ref));
      }
    }
    chunks_ = std::move(chunks);
    versions_.assign(chunks_.size(), 0);
  }

 private:
  /// Extends the chunk table through `index` with deleted tombstones
  /// (callers hold mu_ exclusively).
  void grow_chunks(std::size_t index) {
    while (chunks_.size() <= index) {
      ChunkEntry tombstone;
      tombstone.deleted = true;
      chunks_.push_back(std::move(tombstone));
      versions_.push_back(0);
    }
  }

  /// Provider row with the id set as the O(1) membership index; the wire
  /// vector is materialized (sorted, so serialization is deterministic).
  struct ProviderState {
    std::string name;
    PrivacyLevel privacy_level = PrivacyLevel::kPublic;
    CostLevel cost_level = CostLevel::kCheapest;
    ProviderLifecycle lifecycle = ProviderLifecycle::kActive;
    std::unordered_set<VirtualId> virtual_ids;
  };

  /// Client row with the filename -> (serial -> ref) index replacing the
  /// wire format's flat ref vector.
  struct ClientState {
    std::vector<std::pair<std::string, PrivacyLevel>> passwords;
    std::map<std::string, std::map<std::uint64_t, ChunkRef>> files;
  };

  [[nodiscard]] static ProviderEntry materialize(const ProviderState& p) {
    ProviderEntry out{p.name, p.privacy_level, p.cost_level, p.lifecycle, {}};
    out.virtual_ids.assign(p.virtual_ids.begin(), p.virtual_ids.end());
    std::sort(out.virtual_ids.begin(), out.virtual_ids.end());
    return out;
  }

  [[nodiscard]] static ClientEntry materialize(const std::string& name,
                                               const ClientState& c) {
    ClientEntry out{name, c.passwords, {}};
    for (const auto& [_, serials] : c.files) {
      for (const auto& [__, ref] : serials) out.chunks.push_back(ref);
    }
    return out;
  }

  mutable std::shared_mutex mu_;
  std::vector<ProviderState> providers_;
  std::map<std::string, ClientState> clients_;
  std::vector<ChunkEntry> chunks_;
  /// Per-row write counter backing update_chunk_if(), grown in lockstep
  /// with chunks_. Not persisted: a restart starts every row at 0.
  std::vector<std::uint64_t> versions_;
};

}  // namespace cshield::core

// The Cloud Data Distributor's three metadata tables (Tables I-III).
//
// The paper's distributor "maintains three types of tables describing the
// providers, the clients and the chunks". MetadataStore is that state, kept
// behind one mutex so several distributor front-ends (the Fig. 2
// multi-distributor extension) can share it. One generalization: because we
// implement the RAID placement the paper prescribes, a chunk's single
// "CP index" column becomes a stripe -- a list of (provider, virtual id)
// shard locations; a 1-shard stripe reproduces the paper's table exactly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "raid/raid.hpp"
#include "util/status.hpp"

namespace cshield::core {

/// Where one shard of a chunk's stripe lives.
struct ShardLocation {
  ProviderIndex provider = kNoProvider;
  VirtualId virtual_id = 0;
};

/// One row of the Chunk Table (Table III), RAID-generalized.
struct ChunkEntry {
  PrivacyLevel privacy_level = PrivacyLevel::kPublic;
  raid::StripeLayout layout;
  std::vector<ShardLocation> stripe;      ///< CP column, one per shard
  std::vector<ShardLocation> snapshot;    ///< SP column: pre-modification state
  std::vector<std::uint32_t> misleading;  ///< M column: chaff byte positions
  std::size_t padded_size = 0;   ///< payload length incl. misleading bytes
  std::vector<crypto::Digest> shard_digests;  ///< integrity per shard
  bool has_snapshot = false;
  std::size_t snapshot_padded_size = 0;
  std::vector<std::uint32_t> snapshot_misleading;
  std::vector<crypto::Digest> snapshot_digests;
  bool deleted = false;  ///< tombstone; indices stay stable after removal
};

/// Chunk coordinate within a client's namespace.
struct ChunkRef {
  std::string filename;
  std::uint64_t serial = 0;
  PrivacyLevel privacy_level = PrivacyLevel::kPublic;
  std::size_t chunk_index = 0;  ///< index into the chunk table
};

/// One row of the Client Table (Table II).
struct ClientEntry {
  std::string name;
  std::vector<std::pair<std::string, PrivacyLevel>> passwords;
  std::vector<ChunkRef> chunks;

  [[nodiscard]] std::size_t chunk_count() const { return chunks.size(); }
};

/// One row of the Cloud Provider Table (Table I). The registry owns the
/// live provider objects; this row mirrors the paper's bookkeeping view
/// (name/PL/CL come from the registry descriptor at registration).
struct ProviderEntry {
  std::string name;
  PrivacyLevel privacy_level = PrivacyLevel::kPublic;
  CostLevel cost_level = CostLevel::kCheapest;
  std::vector<VirtualId> virtual_ids;  ///< chunks (shards) placed here

  [[nodiscard]] std::size_t count() const { return virtual_ids.size(); }
};

/// Thread-safe store of the three tables. All distributor front-ends
/// sharing a store see a consistent namespace.
class MetadataStore {
 public:
  // --- Cloud Provider Table ------------------------------------------

  /// Registers provider bookkeeping rows 0..n-1 (must mirror the registry).
  void register_provider(std::string name, PrivacyLevel pl, CostLevel cl) {
    std::lock_guard<std::mutex> lock(mu_);
    providers_.push_back(ProviderEntry{std::move(name), pl, cl, {}});
  }

  void record_placement(ProviderIndex p, VirtualId id) {
    std::lock_guard<std::mutex> lock(mu_);
    CS_REQUIRE(p < providers_.size(), "record_placement: bad provider index");
    providers_[p].virtual_ids.push_back(id);
  }

  void record_removal(ProviderIndex p, VirtualId id) {
    std::lock_guard<std::mutex> lock(mu_);
    CS_REQUIRE(p < providers_.size(), "record_removal: bad provider index");
    auto& ids = providers_[p].virtual_ids;
    for (auto it = ids.begin(); it != ids.end(); ++it) {
      if (*it == id) {
        ids.erase(it);
        return;
      }
    }
  }

  [[nodiscard]] std::vector<ProviderEntry> provider_table() const {
    std::lock_guard<std::mutex> lock(mu_);
    return providers_;
  }

  // --- Client Table ---------------------------------------------------

  Status register_client(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    if (clients_.count(name) != 0) {
      return Status::AlreadyExists("client " + name);
    }
    clients_[name].name = name;
    return Status::Ok();
  }

  Status add_password(const std::string& client, const std::string& password,
                      PrivacyLevel pl) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    for (const auto& [pw, _] : it->second.passwords) {
      if (pw == password) {
        return Status::AlreadyExists("password already registered");
      }
    }
    it->second.passwords.emplace_back(password, pl);
    return Status::Ok();
  }

  /// Validates a password and returns its privilege level (SV access check
  /// happens at the chunk-PL comparison in the distributor).
  [[nodiscard]] Result<PrivacyLevel> authenticate(
      const std::string& client, const std::string& password) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    for (const auto& [pw, pl] : it->second.passwords) {
      if (pw == password) return pl;
    }
    return Status::PermissionDenied("bad password for client " + client);
  }

  [[nodiscard]] Result<ClientEntry> client_entry(
      const std::string& client) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    return it->second;
  }

  // --- Chunk Table ------------------------------------------------------

  /// Appends a chunk entry and links it into the client's file map.
  /// Returns the chunk-table index.
  [[nodiscard]] Result<std::size_t> add_chunk(const std::string& client,
                                              const std::string& filename,
                                              std::uint64_t serial,
                                              ChunkEntry entry) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    chunks_.push_back(std::move(entry));
    const std::size_t idx = chunks_.size() - 1;
    it->second.chunks.push_back(
        ChunkRef{filename, serial, chunks_.back().privacy_level, idx});
    return idx;
  }

  [[nodiscard]] Result<ChunkEntry> chunk_entry(std::size_t index) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (index >= chunks_.size()) {
      return Status::NotFound("chunk index " + std::to_string(index));
    }
    return chunks_[index];
  }

  Status update_chunk(std::size_t index, ChunkEntry entry) {
    std::lock_guard<std::mutex> lock(mu_);
    if (index >= chunks_.size()) {
      return Status::NotFound("chunk index " + std::to_string(index));
    }
    chunks_[index] = std::move(entry);
    return Status::Ok();
  }

  /// Finds the chunk refs of a client file, serial-ordered. Empty result =
  /// file unknown.
  [[nodiscard]] std::vector<ChunkRef> file_chunks(
      const std::string& client, const std::string& filename) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ChunkRef> out;
    auto it = clients_.find(client);
    if (it == clients_.end()) return out;
    for (const auto& ref : it->second.chunks) {
      if (ref.filename == filename) out.push_back(ref);
    }
    std::sort(out.begin(), out.end(),
              [](const ChunkRef& a, const ChunkRef& b) {
                return a.serial < b.serial;
              });
    return out;
  }

  [[nodiscard]] std::optional<ChunkRef> find_chunk(
      const std::string& client, const std::string& filename,
      std::uint64_t serial) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return std::nullopt;
    for (const auto& ref : it->second.chunks) {
      if (ref.filename == filename && ref.serial == serial) return ref;
    }
    return std::nullopt;
  }

  /// Unlinks a chunk ref from the client (the chunk-table row stays as a
  /// tombstone; indices must remain stable).
  Status unlink_chunk(const std::string& client, const std::string& filename,
                      std::uint64_t serial) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return Status::NotFound("client " + client);
    auto& refs = it->second.chunks;
    for (auto rit = refs.begin(); rit != refs.end(); ++rit) {
      if (rit->filename == filename && rit->serial == serial) {
        refs.erase(rit);
        return Status::Ok();
      }
    }
    return Status::NotFound("chunk " + filename + "#" +
                            std::to_string(serial));
  }

  [[nodiscard]] std::size_t total_chunks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return chunks_.size();
  }

  // --- snapshot / restore (durability; see core/metadata_io.hpp) -------

  [[nodiscard]] std::vector<ClientEntry> client_table() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ClientEntry> out;
    out.reserve(clients_.size());
    for (const auto& [name, entry] : clients_) out.push_back(entry);
    return out;
  }

  [[nodiscard]] std::vector<ChunkEntry> chunk_table() const {
    std::lock_guard<std::mutex> lock(mu_);
    return chunks_;
  }

  /// Replaces the entire table state (only valid on a freshly constructed
  /// store, i.e. during deserialization).
  void restore(std::vector<ProviderEntry> providers,
               std::vector<ClientEntry> clients,
               std::vector<ChunkEntry> chunks) {
    std::lock_guard<std::mutex> lock(mu_);
    CS_REQUIRE(providers_.empty() && clients_.empty() && chunks_.empty(),
               "MetadataStore::restore on a non-empty store");
    providers_ = std::move(providers);
    for (auto& c : clients) clients_[c.name] = std::move(c);
    chunks_ = std::move(chunks);
  }

 private:
  mutable std::mutex mu_;
  std::vector<ProviderEntry> providers_;
  std::map<std::string, ClientEntry> clients_;
  std::vector<ChunkEntry> chunks_;
};

}  // namespace cshield::core

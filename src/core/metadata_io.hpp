// Durable serialization of the Cloud Data Distributor's metadata tables.
//
// The three tables (SIV-A, Tables I-III) are the only state a distributor
// cannot recompute: losing them strands every stored chunk. This codec
// round-trips a MetadataStore through a versioned binary image so a
// distributor can restart against the same providers (the paper's
// architectural worry about the distributor being a single point of failure
// -- persistence plus the Fig. 2 group addresses it).
#pragma once

#include <memory>

#include "core/tables.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/wire.hpp"

namespace cshield::core {

/// Serializes the full table state.
[[nodiscard]] Bytes serialize_metadata(const MetadataStore& store);

/// Rebuilds a store from an image produced by serialize_metadata. Rejects
/// bad magic, unknown versions and truncation.
[[nodiscard]] Result<std::shared_ptr<MetadataStore>> deserialize_metadata(
    BytesView image);

/// Writes one chunk-table row in the image's wire layout. Shared with the
/// journal's commit/update records, so a replayed entry is byte-identical
/// to a checkpointed one. Rows are self-versioned: a marker byte (outside
/// the privacy-level range a v1 row starts with) introduces the
/// ProtectionMode fields, so v1 rows embedded in old images and old journal
/// frames still decode -- with protection defaulting to kPartialAes over
/// zero bytes, i.e. a read-path no-op.
void write_chunk_entry(wire::Writer& w, const ChunkEntry& entry);

/// Reads one chunk-table row (either generation); false on truncation or an
/// implausible field (bad privacy level, unknown RAID level, unknown
/// protection mode, protected prefix past the payload, count past the
/// buffer end).
[[nodiscard]] bool read_chunk_entry(wire::Reader& r, ChunkEntry& entry);

}  // namespace cshield::core

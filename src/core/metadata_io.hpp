// Durable serialization of the Cloud Data Distributor's metadata tables.
//
// The three tables (SIV-A, Tables I-III) are the only state a distributor
// cannot recompute: losing them strands every stored chunk. This codec
// round-trips a MetadataStore through a versioned binary image so a
// distributor can restart against the same providers (the paper's
// architectural worry about the distributor being a single point of failure
// -- persistence plus the Fig. 2 group addresses it).
#pragma once

#include <memory>

#include "core/tables.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/wire.hpp"

namespace cshield::core {

/// Serializes the full table state (the unsharded v3 image).
[[nodiscard]] Bytes serialize_metadata(const MetadataStore& store);

/// Serializes one partition of an N-way sharded metadata plane. With
/// shard_count <= 1 the image is byte-identical to serialize_metadata;
/// otherwise a v4 image carries a self-describing shard stamp right after
/// the version word, so a partition snapshot can never be silently
/// restored into the wrong plane shape.
[[nodiscard]] Bytes serialize_metadata(const MetadataStore& store,
                                       std::uint32_t shard_index,
                                       std::uint32_t shard_count);

/// Shard stamp of a metadata image; pre-v4 images are shard 0 of 1.
struct MetadataShardStamp {
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
};

/// Rebuilds a store from an image produced by serialize_metadata. Rejects
/// bad magic, unknown versions and truncation. `stamp` (optional)
/// receives the image's shard stamp -- callers recovering a plane member
/// validate it against the expected shard.
[[nodiscard]] Result<std::shared_ptr<MetadataStore>> deserialize_metadata(
    BytesView image, MetadataShardStamp* stamp = nullptr);

/// Writes one chunk-table row in the image's wire layout. Shared with the
/// journal's commit/update records, so a replayed entry is byte-identical
/// to a checkpointed one. Rows are self-versioned: a marker byte (outside
/// the privacy-level range a v1 row starts with) introduces the
/// ProtectionMode fields, so v1 rows embedded in old images and old journal
/// frames still decode -- with protection defaulting to kPartialAes over
/// zero bytes, i.e. a read-path no-op.
void write_chunk_entry(wire::Writer& w, const ChunkEntry& entry);

/// Reads one chunk-table row (either generation); false on truncation or an
/// implausible field (bad privacy level, unknown RAID level, unknown
/// protection mode, protected prefix past the payload, count past the
/// buffer end).
[[nodiscard]] bool read_chunk_entry(wire::Reader& r, ChunkEntry& entry);

}  // namespace cshield::core

#include "core/partial_encryption.hpp"

#include <algorithm>

namespace cshield::core {

PartialEncryptor::PartialEncryptor(std::vector<std::string> schema,
                                   std::vector<std::string> sensitive,
                                   const crypto::AesKey& key)
    : schema_(std::move(schema)), key_(key) {
  CS_REQUIRE(!schema_.empty(), "PartialEncryptor: empty schema");
  for (const auto& name : sensitive) {
    auto it = std::find(schema_.begin(), schema_.end(), name);
    CS_REQUIRE(it != schema_.end(),
               "PartialEncryptor: sensitive column not in schema: " + name);
    sensitive_cols_.push_back(
        static_cast<std::size_t>(it - schema_.begin()));
  }
  std::sort(sensitive_cols_.begin(), sensitive_cols_.end());
  sensitive_cols_.erase(
      std::unique(sensitive_cols_.begin(), sensitive_cols_.end()),
      sensitive_cols_.end());
}

Result<Bytes> PartialEncryptor::apply(BytesView data,
                                      std::uint64_t base_record) const {
  const std::size_t rec = record_size();
  if (data.size() % rec != 0) {
    return Status::InvalidArgument(
        "PartialEncryptor::apply: buffer is not whole records");
  }
  Bytes out(data.begin(), data.end());
  if (sensitive_cols_.empty()) return out;

  const std::size_t records = data.size() / rec;
  const crypto::Aes128 cipher(key_);
  for (std::size_t r = 0; r < records; ++r) {
    // One keystream block per record: counter = record index. 16 bytes
    // covers two doubles; wider sensitive sets draw more blocks.
    const std::uint64_t record_index = base_record + r;
    std::size_t consumed = 16;  // force a fresh block on first use
    std::uint8_t blocks_drawn = 0;
    crypto::AesBlock keystream{};
    for (std::size_t c : sensitive_cols_) {
      std::uint8_t* field = out.data() + r * rec + c * sizeof(double);
      for (std::size_t b = 0; b < sizeof(double); ++b) {
        if (consumed == 16) {
          // Counter block: (record index, blocks drawn within the record).
          crypto::AesBlock counter{};
          for (int i = 0; i < 8; ++i) {
            counter[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(record_index >> (56 - 8 * i));
          }
          counter[15] = blocks_drawn++;
          keystream = counter;
          cipher.encrypt_block(keystream);
          consumed = 0;
        }
        field[b] ^= keystream[consumed++];
      }
    }
  }
  return out;
}

}  // namespace cshield::core

#include "core/misleading.hpp"

#include <algorithm>
#include <unordered_set>

namespace cshield::core {

MisleadingCodec::Encoded MisleadingCodec::inject(BytesView data,
                                                 double fraction, Rng& rng) {
  CS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
             "misleading fraction outside [0,1]");
  Encoded out;
  if (fraction == 0.0 || data.empty()) {
    out.data.assign(data.begin(), data.end());
    return out;
  }
  const std::size_t chaff = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(data.size())));
  const std::size_t total = data.size() + chaff;

  // Choose chaff positions uniformly over the final buffer: a sorted sample
  // of `chaff` distinct indices in [0, total).
  // Floyd's algorithm for a uniform sample of `chaff` distinct indices.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(chaff * 2);
  for (std::size_t j = total - chaff; j < total; ++j) {
    const std::uint32_t t = static_cast<std::uint32_t>(rng.below(j + 1));
    if (!chosen.insert(t).second) {
      chosen.insert(static_cast<std::uint32_t>(j));
    }
  }
  out.positions.assign(chosen.begin(), chosen.end());
  std::sort(out.positions.begin(), out.positions.end());

  out.data.resize(total);
  std::size_t src = 0;
  std::size_t pos_idx = 0;
  for (std::size_t i = 0; i < total; ++i) {
    if (pos_idx < out.positions.size() && out.positions[pos_idx] == i) {
      // Chaff byte: sampled from the real payload's byte distribution so it
      // is statistically indistinguishable from data.
      out.data[i] = data[rng.below(data.size())];
      ++pos_idx;
    } else {
      out.data[i] = data[src++];
    }
  }
  CS_REQUIRE(src == data.size() && pos_idx == out.positions.size(),
             "misleading inject accounting error");
  return out;
}

Bytes MisleadingCodec::strip(BytesView data,
                             const std::vector<std::uint32_t>& positions) {
  if (positions.empty()) return Bytes(data.begin(), data.end());
  CS_REQUIRE(positions.size() <= data.size(),
             "strip: more chaff positions than bytes");
  Bytes out;
  out.reserve(data.size() - positions.size());
  std::size_t pos_idx = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (pos_idx < positions.size() && positions[pos_idx] == i) {
      ++pos_idx;
      continue;
    }
    out.push_back(data[i]);
  }
  CS_REQUIRE(pos_idx == positions.size(),
             "strip: position beyond buffer end");
  return out;
}

}  // namespace cshield::core

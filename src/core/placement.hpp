// Stripe placement policy (SIV-A).
//
// Rules, in order:
//   1. Eligibility: "A chunk is given to a provider having equal or higher
//      privacy level compared to the privacy level of the chunk."
//   2. Cost preference: "in case of equal privacy level, the one with a
//      lower cost level is given preference."
//   3. Randomization: the paper's distribute() hands chunks out "in a
//      random way" -- within a cost tier the order is shuffled so chunk
//      placement is not predictable, and successive stripes land on
//      different provider subsets.
//   4. Distinctness: RAID needs every shard of a stripe on a different
//      provider (each provider is "a separate disk").
//
// Rules 2 and 3 pull in opposite directions: strict cost preference
// concentrates narrow stripes on the cheapest trusted providers, which is
// exactly the data concentration the architecture exists to avoid. The
// policy therefore has two modes -- kCostAware (the paper's Table I rule,
// default) and kUniformSpread (privacy-first: uniform random over the whole
// eligible set). bench_chunk_size ablates the difference.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "storage/provider_registry.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace cshield::core {

enum class PlacementMode {
  kCostAware,      ///< eligible -> cheapest cost tier first (SIV-A rule)
  kUniformSpread,  ///< eligible -> uniform random (maximum dispersion)
  kRoundRobin,     ///< eligible -> strict rotation ("distributes his data
                   ///  equally among 3 providers", SVII-A)
};

class PlacementPolicy {
 public:
  explicit PlacementPolicy(std::uint64_t seed = 0x97ACE,
                           PlacementMode mode = PlacementMode::kCostAware)
      : rng_(seed), mode_(mode) {}

  /// Wires placement decisions into a metrics registry:
  ///   placement.decisions       -- choose() calls that produced a stripe
  ///   placement.pl_filtered     -- providers rejected by the PL trust rule,
  ///                                summed over decisions (dispersion feed)
  ///   placement.exhausted       -- stripes refused for lack of eligible
  ///                                providers
  /// nullptr detaches. The policy is already serialized by the distributor
  /// lock; the counters themselves are atomic.
  void set_metrics(obs::MetricsRegistry* m) {
    if (m == nullptr) {
      decisions_ = nullptr;
      pl_filtered_ = nullptr;
      exhausted_ = nullptr;
      quarantine_avoided_ = nullptr;
      return;
    }
    decisions_ = &m->counter("placement.decisions");
    pl_filtered_ = &m->counter("placement.pl_filtered");
    exhausted_ = &m->counter("placement.exhausted");
    quarantine_avoided_ = &m->counter("placement.quarantine_avoided");
  }

  /// Picks `stripe_width` distinct providers for a chunk at `pl`.
  /// kResourceExhausted when fewer eligible providers exist than shards --
  /// the deployment is too small for the requested assurance.
  [[nodiscard]] Result<std::vector<ProviderIndex>> choose(
      const storage::ProviderRegistry& registry, PrivacyLevel pl,
      std::size_t stripe_width) {
    CS_REQUIRE(stripe_width > 0, "choose: zero stripe width");
    std::vector<ProviderIndex> eligible = registry.eligible_for(pl);
    if (pl_filtered_ != nullptr) {
      pl_filtered_->inc(registry.size() - eligible.size());
    }
    // Health preference: a breaker-open (quarantined) provider is a bad
    // home for new shards. Drop quarantined providers while enough healthy
    // ones remain -- never below the stripe width, because trust
    // eligibility is a hard rule and availability is RAID's backstop.
    std::vector<ProviderIndex> healthy;
    healthy.reserve(eligible.size());
    for (ProviderIndex p : eligible) {
      if (!registry.quarantined(p)) healthy.push_back(p);
    }
    if (healthy.size() >= stripe_width && healthy.size() < eligible.size()) {
      if (quarantine_avoided_ != nullptr) {
        quarantine_avoided_->inc(eligible.size() - healthy.size());
      }
      eligible = std::move(healthy);
    }
    if (eligible.size() < stripe_width) {
      if (exhausted_ != nullptr) exhausted_->inc();
      return Status::ResourceExhausted(
          "only " + std::to_string(eligible.size()) +
          " providers trusted for " + std::string(privacy_level_name(pl)) +
          ", stripe needs " + std::to_string(stripe_width));
    }
    if (decisions_ != nullptr) decisions_->inc();  // all paths below succeed
    if (mode_ == PlacementMode::kUniformSpread) {
      rng_.shuffle(eligible);
      eligible.resize(stripe_width);
      return eligible;
    }
    if (mode_ == PlacementMode::kRoundRobin) {
      std::vector<ProviderIndex> chosen;
      chosen.reserve(stripe_width);
      for (std::size_t s = 0; s < stripe_width; ++s) {
        chosen.push_back(eligible[(round_robin_ + s) % eligible.size()]);
      }
      round_robin_ = (round_robin_ + stripe_width) % eligible.size();
      return chosen;
    }
    // Group by cost level, cheapest first; shuffle within each tier.
    std::vector<std::vector<ProviderIndex>> tiers(kNumCostLevels);
    for (ProviderIndex p : eligible) {
      tiers[static_cast<std::size_t>(
               level_index(registry.at(p).descriptor().cost_level))]
          .push_back(p);
    }
    std::vector<ProviderIndex> chosen;
    chosen.reserve(stripe_width);
    for (auto& tier : tiers) {
      rng_.shuffle(tier);
      for (ProviderIndex p : tier) {
        if (chosen.size() == stripe_width) break;
        chosen.push_back(p);
      }
      if (chosen.size() == stripe_width) break;
    }
    return chosen;
  }

 private:
  Rng rng_;
  PlacementMode mode_;
  std::size_t round_robin_ = 0;
  obs::Counter* decisions_ = nullptr;
  obs::Counter* pl_filtered_ = nullptr;
  obs::Counter* exhausted_ = nullptr;
  obs::Counter* quarantine_avoided_ = nullptr;
};

}  // namespace cshield::core

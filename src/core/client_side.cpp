#include "core/client_side.hpp"

#include "core/misleading.hpp"
#include "util/hash.hpp"

namespace cshield::core {

ClientSideDistributor::ClientSideDistributor(
    storage::ProviderRegistry& registry, ClientSideConfig config)
    : registry_(registry),
      config_(std::move(config)),
      rings_{dht::HashRing(config_.virtual_nodes),
             dht::HashRing(config_.virtual_nodes),
             dht::HashRing(config_.virtual_nodes),
             dht::HashRing(config_.virtual_nodes)},
      rng_(config_.seed),
      id_key_(mix64(config_.seed ^ 0xD47F00D)) {
  // A provider trusted at level L joins the rings of every tier <= L.
  for (ProviderIndex p = 0; p < registry_.size(); ++p) {
    const auto& d = registry_.at(p).descriptor();
    for (int tier = 0; tier <= level_index(d.privacy_level); ++tier) {
      rings_[static_cast<std::size_t>(tier)].add_provider(p, d.name);
    }
  }
}

Status ClientSideDistributor::put_file(const std::string& filename,
                                       BytesView data, PrivacyLevel pl) {
  if (filename.empty()) return Status::InvalidArgument("empty filename");
  if (files_.count(filename) != 0) {
    return Status::AlreadyExists("file " + filename);
  }
  const dht::HashRing& ring = ring_for(pl);
  if (ring.empty()) {
    return Status::ResourceExhausted(
        "no providers trusted for " + std::string(privacy_level_name(pl)));
  }

  std::vector<LocalChunk> table;
  for (const RawChunk& chunk :
       split_file(data, pl, config_.chunk_sizes)) {
    MisleadingCodec::Encoded chaffed =
        MisleadingCodec::inject(chunk.data, config_.misleading_fraction, rng_);
    LocalChunk row;
    row.serial = chunk.serial;
    row.privacy_level = pl;
    row.replicas = ring.lookup_many(
        dht::HashRing::chunk_key(filename, chunk.serial), config_.replicas);
    row.virtual_id =
        mix64(dht::HashRing::chunk_key(filename, chunk.serial) ^ id_key_);
    row.padded_size = chaffed.data.size();
    row.misleading = std::move(chaffed.positions);
    row.digest = crypto::sha256(chaffed.data);
    for (ProviderIndex p : row.replicas) {
      CS_RETURN_IF_ERROR(registry_.at(p).put(row.virtual_id, chaffed.data));
    }
    table.push_back(std::move(row));
  }
  files_.emplace(filename, std::move(table));
  return Status::Ok();
}

Result<Bytes> ClientSideDistributor::get_chunk(const std::string& filename,
                                               std::uint64_t serial) {
  auto it = files_.find(filename);
  if (it == files_.end()) return Status::NotFound("file " + filename);
  for (const LocalChunk& row : it->second) {
    if (row.serial != serial) continue;
    // Try replicas in ring order; a digest mismatch counts as a miss.
    for (ProviderIndex p : row.replicas) {
      Result<Bytes> r = registry_.at(p).get(row.virtual_id);
      if (r.ok() && crypto::sha256(r.value()) == row.digest) {
        return MisleadingCodec::strip(r.value(), row.misleading);
      }
    }
    return Status::Unavailable("all replicas of chunk " +
                               std::to_string(serial) + " unreachable");
  }
  return Status::NotFound("chunk " + filename + "#" + std::to_string(serial));
}

Result<Bytes> ClientSideDistributor::get_file(const std::string& filename) {
  auto it = files_.find(filename);
  if (it == files_.end()) return Status::NotFound("file " + filename);
  Bytes out;
  for (const LocalChunk& row : it->second) {
    Result<Bytes> chunk = get_chunk(filename, row.serial);
    if (!chunk.ok()) return chunk.status();
    append(out, chunk.value());
  }
  return out;
}

Status ClientSideDistributor::remove_file(const std::string& filename) {
  auto it = files_.find(filename);
  if (it == files_.end()) return Status::NotFound("file " + filename);
  for (const LocalChunk& row : it->second) {
    for (ProviderIndex p : row.replicas) {
      (void)registry_.at(p).remove(row.virtual_id);
    }
  }
  files_.erase(it);
  return Status::Ok();
}

std::size_t ClientSideDistributor::local_table_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [name, rows] : files_) {
    bytes += name.size();
    for (const LocalChunk& row : rows) {
      bytes += sizeof(LocalChunk) +
               row.replicas.size() * sizeof(ProviderIndex) +
               row.misleading.size() * sizeof(std::uint32_t);
    }
  }
  return bytes;
}

}  // namespace cshield::core

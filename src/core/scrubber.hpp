// Background integrity scrubber.
//
// The paper's SIII-A worries include providers that silently corrupt or
// lose data. Per-read digest checks only catch that *when a client reads*;
// a shard can rot for months on a cold chunk and surprise the client after
// redundancy has already eroded. The scrubber closes that gap: it walks
// the chunk table continuously, re-fetches every shard (stripe and
// snapshot), verifies the SHA-256 digests the tables record, and routes
// anything missing or corrupt through the distributor's repair path --
// so corruption is found and healed before a client read can observe it.
//
// Mechanics: each pass walks the chunk table by index, calling
// CloudDataDistributor::scrub_chunk (shard probes fan out on the shard-I/O
// pool; the scrubber thread itself only paces the walk). An optional
// chunks-per-second throttle bounds the background I/O load. Providers
// that served corrupt bytes are charged a `scrub_errors` counter, and each
// pass emits scrub.* metrics plus a scrub_pass trace span through the
// distributor's telemetry facade.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/distributor.hpp"
#include "obs/telemetry.hpp"

namespace cshield::core {

class Scrubber {
 public:
  struct Config {
    /// Scan-rate ceiling; 0 = unthrottled (scrub as fast as probes allow).
    double chunks_per_sec = 0.0;
    /// Pause between consecutive passes in background mode.
    std::chrono::milliseconds pass_interval{100};
  };

  /// Cumulative scrub state (all passes since construction).
  struct Progress {
    std::uint64_t passes = 0;
    std::uint64_t chunks_scanned = 0;
    std::uint64_t shards_repaired = 0;
    std::uint64_t digest_mismatches = 0;  ///< shards served with bad bytes
    std::uint64_t scan_errors = 0;  ///< chunks whose heal failed outright
    std::size_t cursor = 0;         ///< chunk index the scan is at
    bool running = false;           ///< background thread active
  };

  /// `dist` must outlive the scrubber.
  explicit Scrubber(CloudDataDistributor& dist) : dist_(dist) {}
  Scrubber(CloudDataDistributor& dist, Config config)
      : dist_(dist), config_(config) {}

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  ~Scrubber() { stop(); }

  /// One full synchronous pass over the chunk table. Returns the shards
  /// repaired, or the first heal error encountered (the pass still visits
  /// every remaining chunk first -- one sick stripe must not shadow the
  /// rest of the table).
  Result<std::size_t> run_pass() {
    obs::Telemetry* tel = dist_.telemetry().get();
    obs::SpanRecord proto;
    proto.name = "scrub_pass";
    if (tel->enabled()) proto.op_id = tel->tracer().next_id();
    obs::ScopedSpan span(tel, std::move(proto));

    // Global index bound: on a sharded plane this interleaves every
    // partition; sparse globals heal as NotFound no-ops.
    const std::size_t n = dist_.chunk_index_bound();
    // `scrub.progress` (0..100) makes a long pass visible mid-flight; a
    // scrape between passes reads 100 (the last pass completed).
    obs::Gauge* progress_gauge =
        tel->enabled() ? &tel->metrics().gauge("scrub.progress") : nullptr;
    if (progress_gauge != nullptr) progress_gauge->set(0);
    std::size_t repaired = 0;
    std::size_t mismatched = 0;
    std::size_t scanned = 0;
    Status first_error = Status::Ok();
    for (std::size_t idx = 0; idx < n; ++idx) {
      if (stop_.load(std::memory_order_relaxed)) break;
      cursor_.store(idx, std::memory_order_relaxed);
      std::size_t mismatches = 0;
      Result<std::size_t> fixed = dist_.scrub_chunk(idx, &mismatches);
      ++scanned;
      chunks_scanned_.fetch_add(1, std::memory_order_relaxed);
      mismatches_.fetch_add(mismatches, std::memory_order_relaxed);
      mismatched += mismatches;
      if (fixed.ok()) {
        repaired += fixed.value();
        shards_repaired_.fetch_add(fixed.value(), std::memory_order_relaxed);
      } else {
        scan_errors_.fetch_add(1, std::memory_order_relaxed);
        if (first_error.ok()) first_error = fixed.status();
      }
      if (progress_gauge != nullptr) {
        progress_gauge->set(static_cast<std::int64_t>((idx + 1) * 100 / n));
      }
      throttle();
    }
    if (progress_gauge != nullptr && !stop_.load(std::memory_order_relaxed)) {
      progress_gauge->set(100);
    }
    passes_.fetch_add(1, std::memory_order_relaxed);
    if (tel->enabled()) {
      obs::MetricsRegistry& m = tel->metrics();
      m.counter("scrub.passes").inc();
      if (scanned != 0) m.counter("scrub.chunks_scanned").inc(scanned);
      if (repaired != 0) m.counter("scrub.shards_repaired").inc(repaired);
      if (mismatched != 0) {
        m.counter("scrub.digest_mismatches").inc(mismatched);
      }
      if (span.armed()) {
        span.rec().chunk = scanned;
        span.rec().outcome = first_error.code();
      }
    }
    if (!first_error.ok()) return first_error;
    return repaired;
  }

  /// Starts the background loop: repeated passes separated by
  /// Config::pass_interval. No-op if already running.
  void start() {
    std::lock_guard<std::mutex> lock(mu_);
    if (thread_.joinable()) return;
    stop_.store(false, std::memory_order_relaxed);
    running_.store(true, std::memory_order_relaxed);
    thread_ = std::thread([this] { loop(); });
  }

  /// Stops the background loop (mid-pass stops at the next chunk
  /// boundary) and joins the thread. Safe to call when not running.
  void stop() {
    std::thread to_join;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_.store(true, std::memory_order_relaxed);
      cv_.notify_all();
      to_join = std::move(thread_);
    }
    if (to_join.joinable()) to_join.join();
    running_.store(false, std::memory_order_relaxed);
  }

  [[nodiscard]] Progress progress() const {
    Progress p;
    p.passes = passes_.load(std::memory_order_relaxed);
    p.chunks_scanned = chunks_scanned_.load(std::memory_order_relaxed);
    p.shards_repaired = shards_repaired_.load(std::memory_order_relaxed);
    p.digest_mismatches = mismatches_.load(std::memory_order_relaxed);
    p.scan_errors = scan_errors_.load(std::memory_order_relaxed);
    p.cursor = cursor_.load(std::memory_order_relaxed);
    p.running = running_.load(std::memory_order_relaxed);
    return p;
  }

 private:
  void loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      (void)run_pass();
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, config_.pass_interval, [this] {
            return stop_.load(std::memory_order_relaxed);
          })) {
        break;
      }
    }
  }

  /// Paces the scan to Config::chunks_per_sec; wakes early on stop().
  void throttle() {
    if (config_.chunks_per_sec <= 0.0) return;
    const auto period = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(1.0 / config_.chunks_per_sec));
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, period,
                 [this] { return stop_.load(std::memory_order_relaxed); });
  }

  CloudDataDistributor& dist_;
  Config config_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> chunks_scanned_{0};
  std::atomic<std::uint64_t> shards_repaired_{0};
  std::atomic<std::uint64_t> mismatches_{0};
  std::atomic<std::uint64_t> scan_errors_{0};
  std::atomic<std::size_t> cursor_{0};
  mutable std::mutex mu_;  ///< guards thread_ and backs cv_
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace cshield::core

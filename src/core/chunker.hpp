// Privacy-level-aware file fragmentation (SVI split(), SVII-B/C).
//
// "The chunk size is fixed for a particular privilege level. The higher the
// privilege level, the lower the chunk size" -- sensitive files are cut into
// smaller pieces so any single provider holds less minable data, while
// public files use large chunks to minimize splitting overhead. Chunk sizes
// can additionally be aligned down to a record width so fragmentation never
// splits a logical row (the paper's bidding example distributes whole table
// rows).
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace cshield::core {

/// Chunk-size schedule per privacy level, bytes.
struct ChunkSizePolicy {
  std::array<std::size_t, kNumPrivacyLevels> size_bytes = {
      64 * 1024,  // PL0 public: large chunks, low overhead
      16 * 1024,  // PL1
      4 * 1024,   // PL2
      1 * 1024,   // PL3 highly sensitive: smallest chunks
  };

  [[nodiscard]] std::size_t chunk_size(PrivacyLevel pl) const {
    return size_bytes[static_cast<std::size_t>(level_index(pl))];
  }
};

/// One fragment of a file before ids/placement are assigned.
struct RawChunk {
  std::uint64_t serial = 0;  ///< position within the file (SIV-A "serial no.")
  Bytes data;
};

/// Splits `data` into chunks of the PL-mandated size. When `record_align`
/// is non-zero the effective chunk size is rounded *down* to a multiple of
/// it (but never below one record), so chunks hold whole records. The final
/// chunk carries the remainder. Empty input yields one empty chunk so that
/// an empty file still exists in the tables.
[[nodiscard]] std::vector<RawChunk> split_file(BytesView data,
                                               PrivacyLevel pl,
                                               const ChunkSizePolicy& policy,
                                               std::size_t record_align = 0);

/// Reassembles chunks (must be serial-ordered 0..n-1) into the file.
[[nodiscard]] Bytes join_chunks(const std::vector<RawChunk>& chunks);

}  // namespace cshield::core

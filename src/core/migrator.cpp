#include "core/migrator.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>

#include "obs/watchdog.hpp"
#include "util/thread_pool.hpp"

namespace cshield::core {

Result<Migrator::Report> Migrator::run(MigrationKind kind,
                                       ProviderIndex subject) {
  stop_.store(false, std::memory_order_relaxed);
  return do_run(kind, subject);
}

Result<Migrator::Report> Migrator::do_run(MigrationKind kind,
                                          ProviderIndex subject) {
  chunks_visited_.store(0, std::memory_order_relaxed);
  shards_moved_.store(0, std::memory_order_relaxed);
  bytes_moved_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);

  obs::Telemetry* tel = dist_.telemetry().get();
  obs::StallWatchdog* wd = dist_.config().watchdog.get();
  const std::int64_t deadline_ns = dist_.config().retry.deadline.count();

  CS_RETURN_IF_ERROR(dist_.begin_migration(kind, subject));

  obs::Gauge* progress_gauge = nullptr;
  obs::Gauge* active_gauge = nullptr;
  if (tel->enabled()) {
    obs::MetricsRegistry& m = tel->metrics();
    progress_gauge = &m.gauge("migration.progress");
    active_gauge = &m.gauge("migration.active");
    progress_gauge->set(0);
    active_gauge->set(1);
  }

  // Snapshot the global index bound once: chunks appended by concurrent
  // writes land on the post-begin topology (placement already excludes a
  // draining subject and still excludes a joining one), so they need no
  // migration. On a sharded plane the bound interleaves all partitions;
  // sparse globals resolve to NotFound inside migrate_chunk and are
  // skipped.
  const std::size_t n = dist_.chunk_index_bound();
  Report report;
  Status first_error = Status::Ok();

  // Bounded-concurrency walk: a private pool issues migrate_chunk calls (each
  // fans its shard RPCs out on the distributor's I/O pool) and a sliding
  // window caps how many chunks are in flight at once.
  ThreadPool pool(std::max<std::size_t>(1, config_.max_in_flight));
  using ChunkResult = Result<CloudDataDistributor::ChunkMigrateStats>;
  std::deque<std::future<ChunkResult>> window;
  auto drain_one = [&] {
    ChunkResult r = window.front().get();
    window.pop_front();
    ++report.chunks_visited;
    chunks_visited_.fetch_add(1, std::memory_order_relaxed);
    if (r.ok()) {
      const auto& stats = r.value();
      report.shards_moved += stats.moved;
      report.bytes_moved += stats.bytes;
      report.errors += stats.errors;
      shards_moved_.fetch_add(stats.moved, std::memory_order_relaxed);
      bytes_moved_.fetch_add(stats.bytes, std::memory_order_relaxed);
      errors_.fetch_add(stats.errors, std::memory_order_relaxed);
    } else {
      ++report.errors;
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (first_error.ok()) first_error = r.status();
    }
    if (progress_gauge != nullptr && n != 0) {
      progress_gauge->set(
          static_cast<std::int64_t>(report.chunks_visited * 100 / n));
    }
  };

  for (std::size_t idx = 0; idx < n; ++idx) {
    if (stop_.load(std::memory_order_relaxed)) break;
    cursor_.store(idx, std::memory_order_relaxed);
    window.push_back(pool.submit([this, idx, kind, subject, wd, deadline_ns] {
      obs::StallWatchdog::Armed armed(wd, "migrate_chunk", deadline_ns);
      return dist_.migrate_chunk(idx, kind, subject);
    }));
    if (window.size() >= std::max<std::size_t>(1, config_.max_in_flight)) {
      drain_one();
    }
    throttle();
  }
  while (!window.empty()) drain_one();

  const bool stopped = stop_.load(std::memory_order_relaxed);
  if (tel->enabled()) {
    obs::MetricsRegistry& m = tel->metrics();
    m.counter("migration.chunks_visited").inc(report.chunks_visited);
    if (active_gauge != nullptr) active_gauge->set(0);
    if (progress_gauge != nullptr && !stopped && report.errors == 0) {
      progress_gauge->set(100);
    }
  }

  if (stopped) return report;  // paused, uncommitted: run() again to resume
  if (!first_error.ok()) return first_error;
  if (report.errors != 0) {
    return Status::ResourceExhausted(
        "migration incomplete: " + std::to_string(report.errors) +
        " shards could not be moved this pass; re-run to resume");
  }
  CS_RETURN_IF_ERROR(dist_.commit_migration(kind, subject));
  report.committed = true;
  return report;
}

void Migrator::start(MigrationKind kind, ProviderIndex subject) {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) {
    // A completed run leaves its thread joinable until wait()/stop(); only
    // a live one wins over this start(). Reap the finished thread so a
    // start() meant to resume an errored or stopped migration launches.
    // Safe under mu_: running_ false means the epilogue (the thread's last
    // use of mu_) already finished.
    if (running_.load(std::memory_order_acquire)) return;
    thread_.join();
  }
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this, kind, subject] {
    Result<Report> r = do_run(kind, subject);
    std::lock_guard<std::mutex> inner(mu_);
    bg_status_ = r.ok() ? Status::Ok() : r.status();
    bg_report_ = r.ok() ? r.value() : Report{};
    running_.store(false, std::memory_order_relaxed);
  });
}

void Migrator::stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_relaxed);
    cv_.notify_all();
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
  running_.store(false, std::memory_order_relaxed);
}

Result<Migrator::Report> Migrator::wait() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (!bg_status_.ok()) return bg_status_;
  return bg_report_;
}

void Migrator::throttle() {
  if (config_.stripes_per_sec <= 0.0) return;
  const auto period = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(1.0 / config_.stripes_per_sec));
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, period,
               [this] { return stop_.load(std::memory_order_relaxed); });
}

}  // namespace cshield::core

#include "core/metadata_io.hpp"

#include "util/wire.hpp"

namespace cshield::core {
namespace {

constexpr std::uint32_t kMagic = 0xC5D47AB1;
// v1: pre-ProtectionMode images. v2: chunk rows carry protection fields.
// v3: provider rows carry a lifecycle byte (dynamic topology). v4: the
// header carries a shard stamp (u32 shard_index | u32 shard_count) --
// written only for partitions of an N > 1 metadata plane, so unsharded
// images stay bit-identical to v3. All versions deserialize -- a pre-v3
// provider row reads back kActive, the only state a static fleet could
// be in; a pre-v4 image is shard 0 of 1.
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kShardVersion = 4;
constexpr std::uint32_t kOldestReadableVersion = 1;

// Leading marker of a protection-aware chunk row. A v1 row starts with its
// privacy level (0..3), so any value outside that range is unambiguous; the
// reader treats its absence as a v1 row with default protection.
constexpr std::uint8_t kChunkEntryV2Tag = 0xF2;

void write_shards(wire::Writer& w, const std::vector<ShardLocation>& shards) {
  w.u32(static_cast<std::uint32_t>(shards.size()));
  for (const auto& s : shards) {
    w.u64(s.provider);
    w.u64(s.virtual_id);
  }
}

bool read_shards(wire::Reader& r, std::vector<ShardLocation>& shards) {
  std::uint32_t n = 0;
  if (!r.u32(n) || static_cast<std::size_t>(n) > r.remaining()) return false;
  shards.resize(n);
  for (auto& s : shards) {
    std::uint64_t provider = 0;
    if (!r.u64(provider) || !r.u64(s.virtual_id)) return false;
    s.provider = static_cast<ProviderIndex>(provider);
  }
  return true;
}

void write_digests(wire::Writer& w, const std::vector<crypto::Digest>& ds) {
  w.u32(static_cast<std::uint32_t>(ds.size()));
  for (const auto& d : ds) {
    w.bytes(BytesView(d.data(), d.size()));
  }
}

bool read_digests(wire::Reader& r, std::vector<crypto::Digest>& ds) {
  std::uint32_t n = 0;
  if (!r.u32(n) || static_cast<std::size_t>(n) > r.remaining()) return false;
  ds.resize(n);
  for (auto& d : ds) {
    Bytes raw;
    if (!r.bytes(raw) || raw.size() != d.size()) return false;
    std::copy(raw.begin(), raw.end(), d.begin());
  }
  return true;
}

void write_positions(wire::Writer& w, const std::vector<std::uint32_t>& ps) {
  w.u32(static_cast<std::uint32_t>(ps.size()));
  for (std::uint32_t p : ps) w.u32(p);
}

bool read_positions(wire::Reader& r, std::vector<std::uint32_t>& ps) {
  std::uint32_t n = 0;
  if (!r.u32(n) || static_cast<std::size_t>(n) > r.remaining()) return false;
  ps.resize(n);
  for (auto& p : ps) {
    if (!r.u32(p)) return false;
  }
  return true;
}

}  // namespace

void write_chunk_entry(wire::Writer& w, const ChunkEntry& e) {
  w.u8(kChunkEntryV2Tag);
  w.u8(static_cast<std::uint8_t>(e.privacy_level));
  w.u8(static_cast<std::uint8_t>(e.layout.level));
  w.u64(e.layout.data_shards);
  w.u64(e.layout.parity_shards);
  write_shards(w, e.stripe);
  write_shards(w, e.snapshot);
  write_positions(w, e.misleading);
  w.u64(e.padded_size);
  write_digests(w, e.shard_digests);
  w.u8(e.has_snapshot ? 1 : 0);
  w.u64(e.snapshot_padded_size);
  write_positions(w, e.snapshot_misleading);
  write_digests(w, e.snapshot_digests);
  w.u8(e.deleted ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(e.protection));
  w.u64(e.protect_nonce);
  w.u64(e.protect_bytes);
  w.u8(static_cast<std::uint8_t>(e.snapshot_protection));
  w.u64(e.snapshot_protect_nonce);
  w.u64(e.snapshot_protect_bytes);
}

bool read_chunk_entry(wire::Reader& r, ChunkEntry& e) {
  std::uint8_t pl = 0;
  if (!r.u8(pl)) return false;
  const bool v2 = pl == kChunkEntryV2Tag;
  if (v2 && !r.u8(pl)) return false;
  std::uint8_t level = 0;
  std::uint64_t data_shards = 0;
  std::uint64_t parity_shards = 0;
  if (!r.u8(level) || !r.u64(data_shards) || !r.u64(parity_shards)) {
    return false;
  }
  if (pl >= kNumPrivacyLevels ||
      level > static_cast<std::uint8_t>(raid::RaidLevel::kRaid6)) {
    return false;
  }
  e.privacy_level = static_cast<PrivacyLevel>(pl);
  e.layout.level = static_cast<raid::RaidLevel>(level);
  e.layout.data_shards = static_cast<std::size_t>(data_shards);
  e.layout.parity_shards = static_cast<std::size_t>(parity_shards);
  std::uint8_t has_snapshot = 0;
  std::uint8_t deleted = 0;
  std::uint64_t padded = 0;
  std::uint64_t snap_padded = 0;
  if (!read_shards(r, e.stripe) || !read_shards(r, e.snapshot) ||
      !read_positions(r, e.misleading) || !r.u64(padded) ||
      !read_digests(r, e.shard_digests) || !r.u8(has_snapshot) ||
      !r.u64(snap_padded) || !read_positions(r, e.snapshot_misleading) ||
      !read_digests(r, e.snapshot_digests) || !r.u8(deleted)) {
    return false;
  }
  e.padded_size = static_cast<std::size_t>(padded);
  e.snapshot_padded_size = static_cast<std::size_t>(snap_padded);
  e.has_snapshot = has_snapshot != 0;
  e.deleted = deleted != 0;
  // A v1 row carries no protection fields: kPartialAes over zero bytes, the
  // read-path no-op every pre-ProtectionMode blob was written under.
  e.protection = ProtectionMode::kPartialAes;
  e.protect_nonce = 0;
  e.protect_bytes = 0;
  e.snapshot_protection = ProtectionMode::kPartialAes;
  e.snapshot_protect_nonce = 0;
  e.snapshot_protect_bytes = 0;
  if (!v2) return true;
  std::uint8_t mode = 0;
  std::uint8_t snap_mode = 0;
  std::uint64_t protect_bytes = 0;
  std::uint64_t snap_protect_bytes = 0;
  if (!r.u8(mode) || !r.u64(e.protect_nonce) || !r.u64(protect_bytes) ||
      !r.u8(snap_mode) || !r.u64(e.snapshot_protect_nonce) ||
      !r.u64(snap_protect_bytes)) {
    return false;
  }
  if (mode >= kNumProtectionModes || snap_mode >= kNumProtectionModes) {
    return false;
  }
  // A protected prefix past its payload would walk the read path off the
  // decoded buffer -- a flipped bit, not a legal row.
  if (protect_bytes > padded || snap_protect_bytes > snap_padded) {
    return false;
  }
  e.protection = static_cast<ProtectionMode>(mode);
  e.protect_bytes = static_cast<std::size_t>(protect_bytes);
  e.snapshot_protection = static_cast<ProtectionMode>(snap_mode);
  e.snapshot_protect_bytes = static_cast<std::size_t>(snap_protect_bytes);
  return true;
}

Bytes serialize_metadata(const MetadataStore& store) {
  return serialize_metadata(store, 0, 1);
}

Bytes serialize_metadata(const MetadataStore& store,
                         std::uint32_t shard_index,
                         std::uint32_t shard_count) {
  Bytes out;
  wire::Writer w(out);
  w.u32(kMagic);
  if (shard_count > 1) {
    w.u32(kShardVersion);
    w.u32(shard_index);
    w.u32(shard_count);
  } else {
    w.u32(kVersion);
  }

  const auto providers = store.provider_table();
  w.u32(static_cast<std::uint32_t>(providers.size()));
  for (const auto& p : providers) {
    w.str(p.name);
    w.u8(static_cast<std::uint8_t>(p.privacy_level));
    w.u8(static_cast<std::uint8_t>(p.cost_level));
    w.u8(static_cast<std::uint8_t>(p.lifecycle));  // v3
    w.u32(static_cast<std::uint32_t>(p.virtual_ids.size()));
    for (VirtualId id : p.virtual_ids) w.u64(id);
  }

  const auto clients = store.client_table();
  w.u32(static_cast<std::uint32_t>(clients.size()));
  for (const auto& c : clients) {
    w.str(c.name);
    w.u32(static_cast<std::uint32_t>(c.passwords.size()));
    for (const auto& [pw, pl] : c.passwords) {
      w.str(pw);
      w.u8(static_cast<std::uint8_t>(pl));
    }
    w.u32(static_cast<std::uint32_t>(c.chunks.size()));
    for (const auto& ref : c.chunks) {
      w.str(ref.filename);
      w.u64(ref.serial);
      w.u8(static_cast<std::uint8_t>(ref.privacy_level));
      w.u64(ref.chunk_index);
    }
  }

  const auto chunks = store.chunk_table();
  w.u32(static_cast<std::uint32_t>(chunks.size()));
  for (const auto& e : chunks) write_chunk_entry(w, e);
  return out;
}

Result<std::shared_ptr<MetadataStore>> deserialize_metadata(
    BytesView image, MetadataShardStamp* stamp) {
  wire::Reader r(image);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!r.u32(magic) || magic != kMagic) {
    return Status::InvalidArgument("metadata image: bad magic");
  }
  if (!r.u32(version) || version < kOldestReadableVersion ||
      version > kShardVersion) {
    return Status::InvalidArgument("metadata image: unsupported version");
  }
  MetadataShardStamp shard;
  if (version >= kShardVersion) {
    if (!r.u32(shard.shard_index) || !r.u32(shard.shard_count)) {
      return Status::InvalidArgument("metadata image: truncated shard stamp");
    }
    if (shard.shard_count < 2 || shard.shard_index >= shard.shard_count) {
      return Status::InvalidArgument(
          "metadata image: implausible shard stamp");
    }
  }
  if (stamp != nullptr) *stamp = shard;
  const Status truncated =
      Status::InvalidArgument("metadata image: truncated");
  // Every serialized element consumes at least one byte, so any count
  // exceeding the remaining input is corrupt -- reject it before resize()
  // turns a flipped bit into a multi-gigabyte allocation.
  auto plausible = [&r](std::uint32_t count) {
    return static_cast<std::size_t>(count) <= r.remaining();
  };

  std::vector<ProviderEntry> providers;
  std::uint32_t n = 0;
  if (!r.u32(n) || !plausible(n)) return truncated;
  providers.resize(n);
  for (auto& p : providers) {
    std::uint8_t pl = 0;
    std::uint8_t cl = 0;
    if (!r.str(p.name) || !r.u8(pl) || !r.u8(cl)) return truncated;
    if (pl >= kNumPrivacyLevels || cl >= kNumCostLevels) {
      return Status::InvalidArgument("metadata image: bad level value");
    }
    p.privacy_level = static_cast<PrivacyLevel>(pl);
    p.cost_level = static_cast<CostLevel>(cl);
    // Pre-v3 rows carry no lifecycle: a static fleet is all-active.
    p.lifecycle = ProviderLifecycle::kActive;
    if (version >= 3) {
      std::uint8_t lc = 0;
      if (!r.u8(lc)) return truncated;
      if (lc >= kNumProviderLifecycles) {
        return Status::InvalidArgument("metadata image: bad lifecycle");
      }
      p.lifecycle = static_cast<ProviderLifecycle>(lc);
    }
    std::uint32_t ids = 0;
    if (!r.u32(ids) || !plausible(ids)) return truncated;
    p.virtual_ids.resize(ids);
    for (auto& id : p.virtual_ids) {
      if (!r.u64(id)) return truncated;
    }
  }

  std::vector<ClientEntry> clients;
  if (!r.u32(n) || !plausible(n)) return truncated;
  clients.resize(n);
  for (auto& c : clients) {
    std::uint32_t pws = 0;
    if (!r.str(c.name) || !r.u32(pws) || !plausible(pws)) return truncated;
    c.passwords.resize(pws);
    for (auto& [pw, pl] : c.passwords) {
      std::uint8_t raw = 0;
      if (!r.str(pw) || !r.u8(raw)) return truncated;
      if (raw >= kNumPrivacyLevels) {
        return Status::InvalidArgument("metadata image: bad password PL");
      }
      pl = static_cast<PrivacyLevel>(raw);
    }
    std::uint32_t refs = 0;
    if (!r.u32(refs) || !plausible(refs)) return truncated;
    c.chunks.resize(refs);
    for (auto& ref : c.chunks) {
      std::uint8_t raw = 0;
      std::uint64_t idx = 0;
      if (!r.str(ref.filename) || !r.u64(ref.serial) || !r.u8(raw) ||
          !r.u64(idx)) {
        return truncated;
      }
      if (raw >= kNumPrivacyLevels) {
        return Status::InvalidArgument("metadata image: bad chunk-ref PL");
      }
      ref.privacy_level = static_cast<PrivacyLevel>(raw);
      ref.chunk_index = static_cast<std::size_t>(idx);
    }
  }

  std::vector<ChunkEntry> chunks;
  if (!r.u32(n) || !plausible(n)) return truncated;
  chunks.resize(n);
  for (auto& e : chunks) {
    if (!read_chunk_entry(r, e)) return truncated;
  }

  auto store = std::make_shared<MetadataStore>();
  store->restore(std::move(providers), std::move(clients), std::move(chunks));
  return store;
}

}  // namespace cshield::core

// Simulated time base for the storage layer's latency/cost model.
//
// Benchmarks need two notions of time: real wall-clock time for the code we
// actually execute (chunking, parity math, table updates) and *modeled* time
// for network transfers to cloud providers we only simulate. SimClock carries
// the modeled component: providers report how long a request would have
// taken, and callers advance a clock rather than sleeping, so a 64 MB
// "upload" costs microseconds of CPU but reports realistic seconds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cshield {

/// Nanosecond-resolution simulated duration.
using SimDuration = std::chrono::nanoseconds;

/// Monotonic simulated clock; thread-safe advance for parallel transfers.
class SimClock {
 public:
  [[nodiscard]] SimDuration now() const {
    return SimDuration(ns_.load(std::memory_order_relaxed));
  }

  /// Advances the clock by d and returns the new time.
  SimDuration advance(SimDuration d) {
    return SimDuration(ns_.fetch_add(d.count(), std::memory_order_relaxed) +
                       d.count());
  }

  /// Moves the clock forward to at least `t` (parallel transfer joins: the
  /// stripe completes when its slowest member does).
  void advance_to(SimDuration t) {
    std::int64_t cur = ns_.load(std::memory_order_relaxed);
    while (cur < t.count() &&
           !ns_.compare_exchange_weak(cur, t.count(),
                                      std::memory_order_relaxed)) {
    }
  }

  void reset() { ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> ns_{0};
};

/// Wall-clock stopwatch for the executed portion of an operation.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  [[nodiscard]] std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cshield

// Status / Result error-handling vocabulary for CloudShield.
//
// The distributor talks to simulated cloud providers that can be offline,
// reject a request, or return corrupted data -- those are expected outcomes,
// not programming errors, so the public API reports them through
// Status/Result rather than exceptions. Exceptions remain reserved for
// precondition violations (see CS_REQUIRE in this header).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cshield {

/// Canonical error categories across the storage/core/attack layers.
enum class ErrorCode {
  kOk = 0,
  kNotFound,         ///< object/chunk/file/client does not exist
  kPermissionDenied, ///< password privilege below chunk privacy level
  kUnavailable,      ///< provider offline / outage window
  kCorrupted,        ///< integrity digest mismatch
  kInvalidArgument,  ///< malformed request (empty filename, bad PL, ...)
  kAlreadyExists,    ///< duplicate client/file registration
  kResourceExhausted,///< no eligible provider / capacity exceeded
  kInternal,         ///< invariant violation surfaced as data
  kFailedPrecondition, ///< state machine rejects the transition (lifecycle)
};

/// Human-readable tag for an ErrorCode (stable, used in test expectations).
[[nodiscard]] constexpr std::string_view error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kCorrupted: return "CORRUPTED";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

/// Lightweight status: an ErrorCode plus an optional context message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m) { return {ErrorCode::kNotFound, std::move(m)}; }
  static Status PermissionDenied(std::string m) { return {ErrorCode::kPermissionDenied, std::move(m)}; }
  static Status Unavailable(std::string m) { return {ErrorCode::kUnavailable, std::move(m)}; }
  static Status Corrupted(std::string m) { return {ErrorCode::kCorrupted, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {ErrorCode::kInvalidArgument, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {ErrorCode::kAlreadyExists, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {ErrorCode::kResourceExhausted, std::move(m)}; }
  static Status Internal(std::string m) { return {ErrorCode::kInternal, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {ErrorCode::kFailedPrecondition, std::move(m)}; }

  [[nodiscard]] bool ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string out{error_code_name(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or a Status (never both). A minimal
/// std::expected stand-in that keeps call sites readable:
///
///   Result<Bytes> r = provider.get(id);
///   if (!r.ok()) return r.status();
///   use(r.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    if (std::get<Status>(data_).ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] const Status& status() const {
    static const Status kOk = Status::Ok();
    return ok() ? kOk : std::get<Status>(data_);
  }

  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  /// Returns the value or `fallback` when the result holds an error.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<Status>(data_).to_string());
    }
  }
  std::variant<T, Status> data_;
};

/// Precondition check: violations are programming errors and throw.
#define CS_REQUIRE(cond, msg)                                   \
  do {                                                          \
    if (!(cond)) {                                              \
      throw std::invalid_argument(std::string("precondition " #cond \
                                              " failed: ") + (msg)); \
    }                                                           \
  } while (0)

/// Early-return helper for Status-returning functions.
#define CS_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::cshield::Status cs_status_ = (expr);      \
    if (!cs_status_.ok()) return cs_status_;    \
  } while (0)

}  // namespace cshield

// Byte-buffer primitives shared by every CloudShield module.
//
// Chunks, stripes and stored objects are all opaque byte strings; this header
// fixes one representation (`Bytes`) plus the small helpers (slicing,
// concatenation, pattern fill, hex rendering) that the storage, RAID and core
// layers need. Keeping it header-only avoids a dependency cycle at the very
// bottom of the stack.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cshield {

/// Owning byte buffer. All payloads (files, chunks, parity blocks) use this.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over a byte buffer.
using BytesView = std::span<const std::uint8_t>;

/// Non-owning mutable view over a byte buffer.
using MutBytesView = std::span<std::uint8_t>;

/// Builds a Bytes buffer from a string literal / std::string payload.
[[nodiscard]] inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte buffer as text (useful in tests and examples).
[[nodiscard]] inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Returns buffer[offset, offset+len), clamped to the buffer end.
[[nodiscard]] inline Bytes slice(BytesView b, std::size_t offset,
                                 std::size_t len) {
  if (offset >= b.size()) return {};
  const std::size_t end = std::min(b.size(), offset + len);
  return Bytes(b.begin() + static_cast<std::ptrdiff_t>(offset),
               b.begin() + static_cast<std::ptrdiff_t>(end));
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Constant-free equality that works across Bytes/span mixes.
[[nodiscard]] inline bool equal(BytesView a, BytesView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

/// Renders a buffer as lowercase hex (diagnostics, ids in logs).
[[nodiscard]] inline std::string to_hex(BytesView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xF]);
  }
  return out;
}

/// Parses lowercase/uppercase hex back into bytes; returns empty on bad input
/// of odd length or non-hex characters.
[[nodiscard]] inline Bytes from_hex(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

/// XORs `src` into `dst` element-wise; buffers must be the same length.
/// Word-wide 64-bit SWAR (memcpy keeps it alignment- and strict-aliasing-
/// safe); the RAID layer's hot parity paths use the runtime-dispatched SIMD
/// kernels in crypto/gf256_kernels.hpp instead -- this is the portable
/// utility everyone below the crypto layer can reach.
inline void xor_into(MutBytesView dst, BytesView src) {
  const std::size_t n = std::min(dst.size(), src.size());
  std::uint8_t* d = dst.data();
  const std::uint8_t* s = src.data();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, d + i, sizeof(a));
    std::memcpy(&b, s + i, sizeof(b));
    a ^= b;
    std::memcpy(d + i, &a, sizeof(a));
  }
  for (; i < n; ++i) d[i] ^= s[i];
}

}  // namespace cshield

// Deterministic pseudo-randomness for simulations, workloads and placement.
//
// Everything in CloudShield that needs randomness (chunk placement, latency
// jitter, synthetic GPS traces, misleading-byte positions) takes an explicit
// Rng so experiments are reproducible from a single seed. The generator is
// xoshiro256++ seeded through SplitMix64, which is the standard way to expand
// a 64-bit seed into the 256-bit state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/status.hpp"

namespace cshield {

/// SplitMix64 step: also used standalone to derive virtual-id streams.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator so it plugs
/// into <random> distributions where needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC10D5EEDULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Next raw 64-bit draw.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction,
  /// which is unbiased enough for simulation purposes at 64-bit width.
  std::uint64_t below(std::uint64_t bound) {
    CS_REQUIRE(bound > 0, "Rng::below bound must be positive");
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CS_REQUIRE(lo <= hi, "Rng::uniform_int empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Normal with explicit mean / standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with the given rate (mean 1/rate); used for latency jitter.
  double exponential(double rate) {
    CS_REQUIRE(rate > 0.0, "Rng::exponential rate must be positive");
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Derives an independent child generator (stable across calls with the
  /// same tag) for per-subsystem streams.
  [[nodiscard]] Rng fork(std::uint64_t tag) {
    std::uint64_t mix = state_[0] ^ (tag * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(mix));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace cshield

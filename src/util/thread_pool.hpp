// Fixed-size thread pool plus a blocking parallel_for.
//
// The Cloud Data Distributor fans one file's chunk stripe out to many
// simulated providers; the paper (SVII-E) explicitly claims fragmentation
// "exploits the benefit of parallel query processing", so the read/write
// paths run provider RPCs through this pool. Work items are type-erased
// std::move_only_function-style tasks queued under one mutex -- provider
// latencies (tens of microseconds to milliseconds simulated) dwarf queue
// contention, so a fancier work-stealing deque would buy nothing here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/status.hpp"

namespace cshield {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Schedules `fn(args...)` and returns a future for its result.
  template <typename Fn, typename... Args>
  [[nodiscard]] auto submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using R = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<Fn>(fn),
         ... as = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(f), std::move(as)...);
        });
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      CS_REQUIRE(!stopping_, "submit on stopped ThreadPool");
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs body(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish. Iterations are batched into ~4 blocks per worker to
  /// amortize scheduling overhead. Exceptions from any iteration propagate
  /// (first one wins).
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t blocks =
        std::min(n, std::max<std::size_t>(1, workers_.size() * 4));
    const std::size_t block_size = (n + blocks - 1) / blocks;
    std::vector<std::future<void>> futures;
    futures.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t lo = begin + b * block_size;
      const std::size_t hi = std::min(end, lo + block_size);
      if (lo >= hi) break;
      futures.push_back(submit([lo, hi, &body] {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }));
    }
    for (auto& f : futures) f.get();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace cshield

// Aligned-column text tables for bench/example output, plus CSV export.
//
// Every bench binary reproduces a table or figure from the paper; this gives
// them one consistent way to print "the same rows the paper reports".
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.hpp"

namespace cshield {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds a row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells) {
    CS_REQUIRE(cells.size() == headers_.size(), "TextTable row arity mismatch");
    rows_.push_back(std::move(cells));
  }

  /// Convenience: accepts streamable values of mixed types.
  template <typename... Ts>
  void add(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(Ts));
    (cells.push_back(render(vals)), ...);
    add_row(std::move(cells));
  }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Pretty-prints with column alignment and a header rule.
  void print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      os << "| ";
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c]
           << " | ";
      }
      os << '\n';
    };
    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "|";
    }
    os << '\n';
    for (const auto& row : rows_) print_row(row);
  }

  /// Emits RFC-4180-ish CSV (quotes cells containing separators).
  void print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c) os << ',';
        const bool needs_quote =
            row[c].find_first_of(",\"\n") != std::string::npos;
        if (needs_quote) {
          os << '"';
          for (char ch : row[c]) {
            if (ch == '"') os << '"';
            os << ch;
          }
          os << '"';
        } else {
          os << row[c];
        }
      }
      os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
  }

  /// Formats a double with fixed precision (the common bench cell type).
  [[nodiscard]] static std::string fmt(double v, int precision = 3) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
  }

 private:
  template <typename T>
  [[nodiscard]] static std::string render(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream ss;
      ss << v;
      return ss.str();
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cshield

// Little-endian binary wire format helpers shared by the record codec and
// the metadata-table serializer. Writer appends primitives to a Bytes
// buffer; Reader consumes them with explicit underflow signalling (returns
// false rather than throwing -- truncated input is data, not a bug).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "util/bytes.hpp"

namespace cshield::wire {

class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void f64(double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(d));
    u64(bits);
  }

  /// Length-prefixed string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(out_, BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                           s.size()));
  }

  /// Length-prefixed raw bytes.
  void bytes(BytesView b) {
    u32(static_cast<std::uint32_t>(b.size()));
    append(out_, b);
  }

 private:
  Bytes& out_;
};

class Reader {
 public:
  explicit Reader(BytesView b) : b_(b) {}

  [[nodiscard]] bool u8(std::uint8_t& v) {
    if (pos_ + 1 > b_.size()) return false;
    v = b_[pos_++];
    return true;
  }

  [[nodiscard]] bool u32(std::uint32_t& v) {
    if (pos_ + 4 > b_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(b_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool u64(std::uint64_t& v) {
    if (pos_ + 8 > b_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(b_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool f64(double& d) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&d, &bits, sizeof(d));
    return true;
  }

  [[nodiscard]] bool str(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (pos_ + len > b_.size()) return false;
    s.assign(reinterpret_cast<const char*>(b_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  [[nodiscard]] bool bytes(Bytes& out) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (pos_ + len > b_.size()) return false;
    out.assign(b_.begin() + static_cast<std::ptrdiff_t>(pos_),
               b_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return b_.size() - pos_; }

 private:
  BytesView b_;
  std::size_t pos_ = 0;
};

}  // namespace cshield::wire

// Non-cryptographic hashing used for table lookups, the DHT ring, and
// deterministic derivation of virtual-id streams. Integrity digests use
// crypto/sha256 instead -- never these.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"

namespace cshield {

/// FNV-1a 64-bit over raw bytes.
[[nodiscard]] constexpr std::uint64_t fnv1a64(const char* data,
                                              std::size_t size) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint8_t>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) {
  return fnv1a64(s.data(), s.size());
}

[[nodiscard]] inline std::uint64_t fnv1a64(BytesView b) {
  return fnv1a64(reinterpret_cast<const char*>(b.data()), b.size());
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) -- the frame
/// checksum of the write-ahead journal. Bitwise (no table) because journal
/// records are written once per metadata mutation, not per byte of payload
/// traffic; correctness over a torn tail matters, throughput does not.
/// Known vector: crc32("123456789") == 0xCBF43926.
[[nodiscard]] constexpr std::uint32_t crc32(const std::uint8_t* data,
                                            std::size_t size) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

[[nodiscard]] inline std::uint32_t crc32(BytesView b) {
  return crc32(b.data(), b.size());
}

/// Strong 64-bit avalanche mix (SplitMix64 finalizer).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// boost-style hash combine with a 64-bit constant.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) {
  return seed ^ (mix64(v) + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace cshield

// Summary statistics for benchmark output and mining metrics.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "util/status.hpp"

namespace cshield {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile in place (q in [0,1], linear interpolation between order
/// statistics). Partially reorders `samples` via std::nth_element -- O(n)
/// instead of the O(n log n) full sort, which matters now that percentile
/// readouts run inside benchmark hot loops. Repeated calls on the same
/// (reordered) span stay correct: order statistics are permutation-
/// invariant.
[[nodiscard]] inline double percentile_inplace(std::span<double> samples,
                                               double q) {
  CS_REQUIRE(!samples.empty(), "percentile of empty sample set");
  CS_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q outside [0,1]");
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  auto nth = samples.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(samples.begin(), nth, samples.end());
  const double v_lo = *nth;
  if (frac == 0.0 || lo + 1 >= samples.size()) return v_lo;
  // The (lo+1)-th order statistic is the minimum of the suffix above nth.
  const double v_hi = *std::min_element(nth + 1, samples.end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

/// Percentile over a copy of the samples (callers that must not see their
/// vector reordered). Same interpolation as percentile_inplace.
[[nodiscard]] inline double percentile(std::vector<double> samples, double q) {
  return percentile_inplace(samples, q);
}

[[nodiscard]] inline double mean_of(const std::vector<double>& v) {
  RunningStats s;
  for (double x : v) s.add(x);
  return s.count() == 0 ? 0.0 : s.mean();
}

/// Pearson correlation of two equal-length series; 0 when degenerate.
[[nodiscard]] inline double pearson(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  CS_REQUIRE(a.size() == b.size(), "pearson: length mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  const double den = std::sqrt(da * db);
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace cshield

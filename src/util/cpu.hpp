// CPU feature detection for the runtime-dispatched SIMD kernels.
//
// The erasure-code data plane (crypto/gf256_kernels) picks its widest usable
// arm once per process: AVX2 when the host has it, SSSE3 below that, and a
// portable 64-bit SWAR arm everywhere else. Detection is a one-time CPUID
// probe; the result is cached in a function-local static so the hot paths
// never re-query.
//
// Overrides, strongest first:
//   * CMake -DCSHIELD_FORCE_SCALAR=ON compiles the SIMD arms out entirely
//     (the macro CSHIELD_FORCE_SCALAR is defined; detect() reports kScalar).
//   * Environment CSHIELD_FORCE_SCALAR=1 (any value other than "0"/"swar")
//     forces the byte-at-a-time scalar arm at startup.
//   * CSHIELD_FORCE_SCALAR=swar forces the portable word-wide arm, which is
//     what non-x86 hosts get by default.
#pragma once

#include <cstdlib>
#include <string_view>

namespace cshield::cpu {

/// Kernel arms, ordered weakest to widest.
enum class SimdLevel { kScalar, kSwar, kSsse3, kAvx2 };

[[nodiscard]] constexpr std::string_view simd_level_name(SimdLevel l) {
  switch (l) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSwar: return "swar64";
    case SimdLevel::kSsse3: return "ssse3";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "invalid";
}

/// Raw hardware capability (ignores every override). On non-x86 builds the
/// ceiling is the portable SWAR arm.
[[nodiscard]] inline SimdLevel hardware_level() {
#if defined(CSHIELD_FORCE_SCALAR)
  return SimdLevel::kScalar;
#elif defined(__x86_64__) || defined(__i386__)
  static const SimdLevel level = [] {
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    if (__builtin_cpu_supports("ssse3")) return SimdLevel::kSsse3;
    return SimdLevel::kSwar;
  }();
  return level;
#else
  return SimdLevel::kSwar;
#endif
}

/// Hardware level clamped by the CSHIELD_FORCE_SCALAR environment override.
/// This is what the kernel dispatcher binds at startup.
[[nodiscard]] inline SimdLevel preferred_level() {
  static const SimdLevel level = [] {
    const char* force = std::getenv("CSHIELD_FORCE_SCALAR");
    if (force != nullptr && std::string_view(force) != "0") {
      return std::string_view(force) == "swar" ? SimdLevel::kSwar
                                               : SimdLevel::kScalar;
    }
    return hardware_level();
  }();
  return level;
}

}  // namespace cshield::cpu

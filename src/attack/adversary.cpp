#include "attack/adversary.hpp"

#include <algorithm>
#include <cmath>

#include "util/random.hpp"

namespace cshield::attack {

AdversaryView compromise(const storage::ProviderRegistry& registry,
                         const std::vector<ProviderIndex>& providers) {
  AdversaryView view;
  view.compromised = providers;
  for (ProviderIndex p : providers) {
    const storage::SimCloudProvider& provider = registry.at(p);
    // A compromised provider exposes its raw object map; ids are sorted so
    // the dump is deterministic but conveys no upload order.
    std::vector<VirtualId> ids = provider.list_ids();
    std::sort(ids.begin(), ids.end());
    for (VirtualId id : ids) {
      Result<Bytes> obj = provider.raw_store().get(id);
      if (!obj.ok()) continue;
      view.total_bytes += obj.value().size();
      view.objects.push_back(std::move(obj).value());
    }
  }
  return view;
}

AdversaryView insider(const storage::ProviderRegistry& registry,
                      ProviderIndex provider) {
  return compromise(registry, {provider});
}

mining::Dataset reconstruct_rows(const AdversaryView& view,
                                 const workload::RecordCodec& codec) {
  mining::Dataset pooled(codec.columns());
  for (const Bytes& obj : view.objects) {
    const mining::Dataset rows = codec.decode_prefix(obj);
    if (!rows.empty()) pooled.append(rows);
  }
  return pooled;
}

mining::Dataset sanitize_rows(const mining::Dataset& rows, double abs_limit) {
  mining::Dataset out(rows.column_names());
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    bool keep = true;
    for (std::size_t c = 0; c < rows.num_cols() && keep; ++c) {
      const double v = rows.at(r, c);
      keep = std::isfinite(v) && std::abs(v) <= abs_limit;
    }
    if (keep) out.add_row(rows.row(r));
  }
  return out;
}

double coverage(const mining::Dataset& reconstructed, std::size_t total_rows) {
  if (total_rows == 0) return 0.0;
  return std::min(1.0, static_cast<double>(reconstructed.num_rows()) /
                           static_cast<double>(total_rows));
}

namespace {

// C(n, k) with saturation: anything above `cap` is reported as cap + 1,
// which is all the caller needs to decide "enumerate or sample".
std::size_t choose_capped(std::size_t n, std::size_t k, std::size_t cap) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::size_t c = 1;
  for (std::size_t i = 0; i < k; ++i) {
    // c * (n - i) / (i + 1) is always exact in this order.
    if (c > (cap + 1) / (n - i) + 1) return cap + 1;
    c = c * (n - i) / (i + 1);
    if (c > cap) return cap + 1;
  }
  return c;
}

}  // namespace

std::vector<std::vector<ProviderIndex>> coalitions(std::size_t n_providers,
                                                   std::size_t k,
                                                   std::size_t max_sets,
                                                   std::uint64_t seed) {
  std::vector<std::vector<ProviderIndex>> out;
  if (k == 0 || k > n_providers || max_sets == 0) return out;

  const std::size_t total = choose_capped(n_providers, k, max_sets);
  if (total <= max_sets) {
    // Full lexicographic enumeration via the standard successor rule.
    std::vector<std::size_t> idx(k);
    for (std::size_t i = 0; i < k; ++i) idx[i] = i;
    while (true) {
      std::vector<ProviderIndex> set(k);
      for (std::size_t i = 0; i < k; ++i) {
        set[i] = static_cast<ProviderIndex>(idx[i]);
      }
      out.push_back(std::move(set));
      // Advance: find the rightmost index that can still move up.
      std::size_t i = k;
      while (i > 0 && idx[i - 1] == n_providers - k + (i - 1)) --i;
      if (i == 0) break;
      ++idx[i - 1];
      for (std::size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
    }
    return out;
  }

  // Too many coalitions: draw `max_sets` distinct ones by Floyd-style
  // rejection on a sorted-key encoding. Deterministic in (seed, n, k).
  Rng rng(seed ^ (n_providers * 0x9E3779B97F4A7C15ULL) ^ k);
  std::vector<std::vector<ProviderIndex>> seen;
  while (out.size() < max_sets) {
    // Partial Fisher-Yates: first k entries of a shuffled [0, n) prefix.
    std::vector<ProviderIndex> pool(n_providers);
    for (std::size_t i = 0; i < n_providers; ++i) {
      pool[i] = static_cast<ProviderIndex>(i);
    }
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(
                                    rng.below(n_providers - i));
      std::swap(pool[i], pool[j]);
    }
    std::vector<ProviderIndex> set(pool.begin(),
                                   pool.begin() + static_cast<std::ptrdiff_t>(k));
    std::sort(set.begin(), set.end());
    if (std::find(seen.begin(), seen.end(), set) != seen.end()) continue;
    seen.push_back(set);
    out.push_back(std::move(set));
  }
  return out;
}

CollusionSweep collusion_sweep(const storage::ProviderRegistry& registry,
                               const workload::RecordCodec& codec,
                               std::size_t k, std::size_t total_rows,
                               std::size_t max_sets, std::uint64_t seed) {
  CollusionSweep sweep;
  const auto sets = coalitions(registry.size(), k, max_sets, seed);
  double sum = 0.0;
  for (const auto& set : sets) {
    const AdversaryView view = compromise(registry, set);
    const mining::Dataset rows =
        sanitize_rows(reconstruct_rows(view, codec));
    const double cov = coverage(rows, total_rows);
    sum += cov;
    if (sweep.coalitions_tried == 0 || cov > sweep.worst_coverage) {
      sweep.worst_coverage = cov;
      sweep.worst_coalition = set;
    }
    ++sweep.coalitions_tried;
  }
  if (sweep.coalitions_tried > 0) {
    sweep.mean_coverage = sum / static_cast<double>(sweep.coalitions_tried);
  }
  return sweep;
}

}  // namespace cshield::attack

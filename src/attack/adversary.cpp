#include "attack/adversary.hpp"

#include <algorithm>
#include <cmath>

namespace cshield::attack {

AdversaryView compromise(const storage::ProviderRegistry& registry,
                         const std::vector<ProviderIndex>& providers) {
  AdversaryView view;
  view.compromised = providers;
  for (ProviderIndex p : providers) {
    const storage::SimCloudProvider& provider = registry.at(p);
    // A compromised provider exposes its raw object map; ids are sorted so
    // the dump is deterministic but conveys no upload order.
    std::vector<VirtualId> ids = provider.list_ids();
    std::sort(ids.begin(), ids.end());
    for (VirtualId id : ids) {
      Result<Bytes> obj = provider.raw_store().get(id);
      if (!obj.ok()) continue;
      view.total_bytes += obj.value().size();
      view.objects.push_back(std::move(obj).value());
    }
  }
  return view;
}

AdversaryView insider(const storage::ProviderRegistry& registry,
                      ProviderIndex provider) {
  return compromise(registry, {provider});
}

mining::Dataset reconstruct_rows(const AdversaryView& view,
                                 const workload::RecordCodec& codec) {
  mining::Dataset pooled(codec.columns());
  for (const Bytes& obj : view.objects) {
    const mining::Dataset rows = codec.decode_prefix(obj);
    if (!rows.empty()) pooled.append(rows);
  }
  return pooled;
}

mining::Dataset sanitize_rows(const mining::Dataset& rows, double abs_limit) {
  mining::Dataset out(rows.column_names());
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    bool keep = true;
    for (std::size_t c = 0; c < rows.num_cols() && keep; ++c) {
      const double v = rows.at(r, c);
      keep = std::isfinite(v) && std::abs(v) <= abs_limit;
    }
    if (keep) out.add_row(rows.row(r));
  }
  return out;
}

double coverage(const mining::Dataset& reconstructed, std::size_t total_rows) {
  if (total_rows == 0) return 0.0;
  return std::min(1.0, static_cast<double>(reconstructed.num_rows()) /
                           static_cast<double>(total_rows));
}

}  // namespace cshield::attack

#include "attack/harness.hpp"

#include <cmath>

namespace cshield::attack {

RegressionAttackResult regression_attack(
    const mining::Dataset& visible, const std::vector<std::string>& features,
    const std::string& target, const mining::LinearModel& reference_model,
    const mining::Dataset& truth_data) {
  RegressionAttackResult out;
  out.rows_used = visible.num_rows();
  Result<mining::LinearModel> fit =
      mining::fit_linear(visible, features, target);
  if (!fit.ok()) return out;  // mining failure -- the defender's win
  out.mining_succeeded = true;
  out.model = std::move(fit).value();
  out.coefficient_error =
      mining::coefficient_error(reference_model, out.model);

  // Score the attacker's equation on the *true* rows: how well could they
  // predict the victim's next bid?
  std::vector<std::size_t> feature_cols;
  feature_cols.reserve(features.size());
  for (const auto& f : features) {
    feature_cols.push_back(truth_data.column_index(f));
  }
  const std::size_t target_col = truth_data.column_index(target);
  double ss = 0.0;
  for (std::size_t r = 0; r < truth_data.num_rows(); ++r) {
    std::vector<double> x;
    x.reserve(feature_cols.size());
    for (std::size_t c : feature_cols) x.push_back(truth_data.at(r, c));
    const double e = truth_data.at(r, target_col) - out.model.predict(x);
    ss += e * e;
  }
  out.prediction_rmse =
      truth_data.num_rows() > 0
          ? std::sqrt(ss / static_cast<double>(truth_data.num_rows()))
          : 0.0;
  return out;
}

ClusteringAttackResult clustering_attack(
    const mining::Dataset& visible_features,
    const mining::Dendrogram& reference, std::size_t k,
    mining::Linkage linkage) {
  ClusteringAttackResult out;
  if (visible_features.num_rows() != reference.num_leaves() ||
      visible_features.num_rows() < 2) {
    return out;
  }
  const mining::Dendrogram tree =
      mining::cluster_rows(mining::standardize(visible_features), linkage);
  out.mining_succeeded = true;
  out.labels = tree.cut(k);
  const std::vector<int> ref_labels = reference.cut(k);
  out.ari_vs_reference = mining::adjusted_rand_index(ref_labels, out.labels);
  out.churn_vs_reference = mining::membership_churn(ref_labels, out.labels);
  out.cophenetic_corr = mining::cophenetic_correlation(reference, tree);
  out.bakers_gamma = mining::bakers_gamma(reference, tree);
  return out;
}

RuleAttackResult rule_attack(
    const std::vector<mining::Transaction>& visible,
    const std::vector<mining::AssociationRule>& reference_rules,
    const mining::AprioriOptions& opts) {
  RuleAttackResult out;
  out.transactions_used = visible.size();
  Result<mining::AprioriResult> mined = mining::apriori(visible, opts);
  if (!mined.ok()) return out;
  out.mining_succeeded = true;
  out.comparison = mining::compare_rules(reference_rules,
                                         mined.value().rules);
  return out;
}

std::string_view classifier_name(Classifier c) {
  switch (c) {
    case Classifier::kNaiveBayes: return "naive-bayes";
    case Classifier::kDecisionTree: return "decision-tree";
    case Classifier::kKnn: return "knn";
  }
  return "invalid";
}

ClassificationAttackResult classification_attack(
    const mining::Dataset& visible, const mining::Dataset& test_truth,
    const std::string& label_column, Classifier classifier) {
  ClassificationAttackResult out;
  out.rows_used = visible.num_rows();
  if (visible.empty()) return out;
  switch (classifier) {
    case Classifier::kNaiveBayes: {
      Result<mining::NaiveBayes> model =
          mining::NaiveBayes::fit(visible, label_column);
      if (!model.ok()) return out;
      out.mining_succeeded = true;
      out.test_accuracy = model.value().accuracy(test_truth, label_column);
      break;
    }
    case Classifier::kDecisionTree: {
      Result<mining::DecisionTree> model =
          mining::DecisionTree::fit(visible, label_column);
      if (!model.ok()) return out;
      out.mining_succeeded = true;
      out.test_accuracy = model.value().accuracy(test_truth, label_column);
      break;
    }
    case Classifier::kKnn: {
      Result<mining::KnnClassifier> model =
          mining::KnnClassifier::fit(visible, label_column);
      if (!model.ok()) return out;
      out.mining_succeeded = true;
      out.test_accuracy = model.value().accuracy(test_truth, label_column);
      break;
    }
  }
  return out;
}

}  // namespace cshield::attack

// Adversary models (SIII-A/B).
//
// The paper's two attacker classes:
//   * insider -- "malicious employees at a cloud provider": sees every
//     object stored at that one provider;
//   * outsider -- compromises some subset of providers ("managing access to
//     various providers") and pools what they hold.
//
// Either way the adversary obtains a bag of opaque objects keyed by virtual
// ids -- no client names, no filenames, no chunk order (that is the
// virtualization guarantee). Knowing the victim's record schema (the
// realistic worst case: bidding records, GPS fixes), the attacker decodes
// whatever objects parse as whole records and mines the pooled rows.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "mining/dataset.hpp"
#include "storage/provider_registry.hpp"
#include "util/bytes.hpp"
#include "workload/records.hpp"

namespace cshield::attack {

/// Everything the adversary exfiltrated.
struct AdversaryView {
  std::vector<ProviderIndex> compromised;
  std::vector<Bytes> objects;  ///< raw stored objects (shards)
  std::size_t total_bytes = 0;
};

/// Dumps the object stores of the given providers (order of objects is the
/// providers' internal order -- the adversary gets no upload ordering).
[[nodiscard]] AdversaryView compromise(
    const storage::ProviderRegistry& registry,
    const std::vector<ProviderIndex>& providers);

/// Insider at a single provider.
[[nodiscard]] AdversaryView insider(const storage::ProviderRegistry& registry,
                                    ProviderIndex provider);

/// Attempts to decode every captured object as whole records of the given
/// schema, pooling all rows. Objects whose length is not a whole number of
/// records contribute their whole-record prefix (the adversary cannot tell
/// where chaff or padding cut a record). This mirrors the paper's attacker
/// who "performs mining on chunks provided to the provider".
[[nodiscard]] mining::Dataset reconstruct_rows(
    const AdversaryView& view, const workload::RecordCodec& codec);

/// Fraction of `total_rows` the adversary reconstructed -- the coverage
/// metric of E10.
[[nodiscard]] double coverage(const mining::Dataset& reconstructed,
                              std::size_t total_rows);

/// Attacker-side data cleaning: drops rows containing non-finite values or
/// magnitudes above `abs_limit`. Chaff bytes shift record boundaries, so
/// decoded doubles are frequently NaN/Inf or astronomically large; a
/// competent adversary filters those before mining. Rows that survive the
/// filter can still be silently poisoned -- that is the SVII-D effect.
[[nodiscard]] mining::Dataset sanitize_rows(const mining::Dataset& rows,
                                            double abs_limit = 1e9);

}  // namespace cshield::attack

// Adversary models (SIII-A/B).
//
// The paper's two attacker classes:
//   * insider -- "malicious employees at a cloud provider": sees every
//     object stored at that one provider;
//   * outsider -- compromises some subset of providers ("managing access to
//     various providers") and pools what they hold.
//
// Either way the adversary obtains a bag of opaque objects keyed by virtual
// ids -- no client names, no filenames, no chunk order (that is the
// virtualization guarantee). Knowing the victim's record schema (the
// realistic worst case: bidding records, GPS fixes), the attacker decodes
// whatever objects parse as whole records and mines the pooled rows.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "mining/dataset.hpp"
#include "storage/provider_registry.hpp"
#include "util/bytes.hpp"
#include "workload/records.hpp"

namespace cshield::attack {

/// Everything the adversary exfiltrated.
struct AdversaryView {
  std::vector<ProviderIndex> compromised;
  std::vector<Bytes> objects;  ///< raw stored objects (shards)
  std::size_t total_bytes = 0;
};

/// Dumps the object stores of the given providers (order of objects is the
/// providers' internal order -- the adversary gets no upload ordering).
[[nodiscard]] AdversaryView compromise(
    const storage::ProviderRegistry& registry,
    const std::vector<ProviderIndex>& providers);

/// Insider at a single provider.
[[nodiscard]] AdversaryView insider(const storage::ProviderRegistry& registry,
                                    ProviderIndex provider);

/// Attempts to decode every captured object as whole records of the given
/// schema, pooling all rows. Objects whose length is not a whole number of
/// records contribute their whole-record prefix (the adversary cannot tell
/// where chaff or padding cut a record). This mirrors the paper's attacker
/// who "performs mining on chunks provided to the provider".
[[nodiscard]] mining::Dataset reconstruct_rows(
    const AdversaryView& view, const workload::RecordCodec& codec);

/// Fraction of `total_rows` the adversary reconstructed -- the coverage
/// metric of E10.
[[nodiscard]] double coverage(const mining::Dataset& reconstructed,
                              std::size_t total_rows);

/// Attacker-side data cleaning: drops rows containing non-finite values or
/// magnitudes above `abs_limit`. Chaff bytes shift record boundaries, so
/// decoded doubles are frequently NaN/Inf or astronomically large; a
/// competent adversary filters those before mining. Rows that survive the
/// filter can still be silently poisoned -- that is the SVII-D effect.
[[nodiscard]] mining::Dataset sanitize_rows(const mining::Dataset& rows,
                                            double abs_limit = 1e9);

// --- colluding multi-provider adversary ------------------------------------
//
// The single-provider insider is the paper's baseline; the stronger model is
// a COALITION: k of the n providers pool their views (colluding employees,
// or one outsider compromising k accounts). compromise() already pools an
// explicit provider set -- what the coalition model adds is the sweep over
// every (or a sampled subset of) k-of-n coalitions, scoring the defender by
// its WORST case.

/// Every k-of-n provider coalition in lexicographic order -- or, when
/// C(n, k) exceeds `max_sets`, a seeded uniform sample of `max_sets`
/// distinct coalitions. k == 0 or k > n yields no coalitions.
[[nodiscard]] std::vector<std::vector<ProviderIndex>> coalitions(
    std::size_t n_providers, std::size_t k, std::size_t max_sets = 64,
    std::uint64_t seed = 0xC011ABE);

/// Defender's-worst-case summary of a coalition sweep.
struct CollusionSweep {
  std::size_t coalitions_tried = 0;
  double worst_coverage = 0.0;  ///< max sanitized-row coverage over coalitions
  double mean_coverage = 0.0;
  std::vector<ProviderIndex> worst_coalition;  ///< the coalition attaining it
};

/// Runs reconstruct_rows + sanitize_rows for each k-of-n coalition (via
/// coalitions()) and reports the best coalition from the attacker's point
/// of view. `total_rows` is the victim table's true row count.
[[nodiscard]] CollusionSweep collusion_sweep(
    const storage::ProviderRegistry& registry,
    const workload::RecordCodec& codec, std::size_t k,
    std::size_t total_rows, std::size_t max_sets = 64,
    std::uint64_t seed = 0xC011ABE);

}  // namespace cshield::attack

// Attack-experiment drivers: run a mining algorithm on the adversary's
// reconstruction and score it against the full-data result. One function
// per attack family; benches E1/E3/E5/E6/E10 compose these.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mining/apriori.hpp"
#include "mining/decision_tree.hpp"
#include "mining/dataset.hpp"
#include "mining/hierarchical.hpp"
#include "mining/knn.hpp"
#include "mining/naive_bayes.hpp"
#include "mining/metrics.hpp"
#include "mining/regression.hpp"
#include "util/status.hpp"

namespace cshield::attack {

/// Regression attack (the SVII-A Hercules scenario).
struct RegressionAttackResult {
  bool mining_succeeded = false;   ///< false = singular fit / too few rows
  mining::LinearModel model;       ///< the attacker's equation (if any)
  double coefficient_error = 0.0;  ///< vs the full-data model (1.0 = 100%)
  double prediction_rmse = 0.0;    ///< attacker model scored on true data
  std::size_t rows_used = 0;
};

/// Fits on `visible`, scores against `reference_model` and against the
/// ground-truth rows in `truth_data`.
[[nodiscard]] RegressionAttackResult regression_attack(
    const mining::Dataset& visible, const std::vector<std::string>& features,
    const std::string& target, const mining::LinearModel& reference_model,
    const mining::Dataset& truth_data);

/// Clustering attack (the SVIII GPS scenario).
struct ClusteringAttackResult {
  bool mining_succeeded = false;
  double ari_vs_reference = 0.0;   ///< flat-cut agreement with full-data tree
  double churn_vs_reference = 0.0; ///< fraction of entities that moved
  double cophenetic_corr = 0.0;    ///< tree-shape agreement
  double bakers_gamma = 0.0;
  std::vector<int> labels;
};

/// Clusters `visible_features` (one row per entity; same entity order as
/// the reference) and compares with the reference dendrogram at a k-cluster
/// cut.
[[nodiscard]] ClusteringAttackResult clustering_attack(
    const mining::Dataset& visible_features,
    const mining::Dendrogram& reference, std::size_t k,
    mining::Linkage linkage = mining::Linkage::kAverage);

/// Association-rule attack.
struct RuleAttackResult {
  bool mining_succeeded = false;
  mining::RuleSetComparison comparison;
  std::size_t transactions_used = 0;
};

[[nodiscard]] RuleAttackResult rule_attack(
    const std::vector<mining::Transaction>& visible,
    const std::vector<mining::AssociationRule>& reference_rules,
    const mining::AprioriOptions& opts);

/// Classification attack (the "likelihood of an individual getting a
/// terminal illness" threat of SII-A): train a classifier on the
/// adversary's reconstruction, score it on held-out true records.
enum class Classifier { kNaiveBayes, kDecisionTree, kKnn };

[[nodiscard]] std::string_view classifier_name(Classifier c);

struct ClassificationAttackResult {
  bool mining_succeeded = false;
  double test_accuracy = 0.0;  ///< on held-out truth
  std::size_t rows_used = 0;
};

[[nodiscard]] ClassificationAttackResult classification_attack(
    const mining::Dataset& visible, const mining::Dataset& test_truth,
    const std::string& label_column, Classifier classifier);

}  // namespace cshield::attack

// Tracer -- structured spans for distributor operations.
//
// Every client-visible operation (put_file, get_file, update_chunk, ...)
// records a root span; the pipeline stages underneath it (per-chunk stripe
// work, per-shard provider RPCs) record child spans that point back at the
// root through `parent_id` and share its `op_id`. A span carries both
// clocks the system runs on: `wall_ns` (executed CPU time, measured) and
// `sim_ns` (modeled provider service time, accumulated), so a trace answers
// "where did this put spend its time" in either domain.
//
// Spans land in a bounded ring buffer: recording is O(1), memory is fixed,
// and a burst of traffic overwrites the oldest spans instead of growing.
// The ring is mutex-guarded -- spans are recorded at op/chunk/shard
// granularity (microseconds to milliseconds apart), not per byte, so a
// mutex is far below the noise floor while keeping snapshot() trivially
// consistent.
//
// Overwrite accounting: consumers that actually export spans (the CLI
// trace dump, the watchdog diagnostic) call mark_exported() afterwards;
// when record() overwrites a span that no export ever consumed, the loss
// is counted -- dropped_spans() here, and mirrored to a registry counter
// (`trace.dropped_spans`) when a sink is attached. Read-only renderers
// (to_jsonl in tests) deliberately do NOT advance the watermark.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <functional>

#include "common/types.hpp"

namespace cshield::obs {

/// Serial number meaning "no chunk attached to this span".
inline constexpr std::uint64_t kNoChunk = ~std::uint64_t{0};

/// Which role a shard span played in its stripe.
enum class ShardKind : std::uint8_t { kNone = 0, kData = 1, kParity = 2 };

[[nodiscard]] constexpr std::string_view shard_kind_name(ShardKind k) {
  switch (k) {
    case ShardKind::kNone: return "-";
    case ShardKind::kData: return "data";
    case ShardKind::kParity: return "parity";
  }
  return "?";
}

/// One recorded span. Child spans leave client/file empty -- they inherit
/// identity from the root span with the same op_id.
struct SpanRecord {
  std::uint64_t op_id = 0;     ///< groups one client-visible operation
  std::uint64_t span_id = 0;   ///< unique per span
  std::uint64_t parent_id = 0; ///< 0 = root span
  std::string name;            ///< "put_file", "chunk_put", "shard_get", ...
  std::string client;
  std::string file;
  std::uint64_t chunk = kNoChunk;        ///< chunk serial, if any
  ProviderIndex provider = kNoProvider;  ///< provider touched, if any
  ShardKind shard_kind = ShardKind::kNone;
  std::uint32_t attempts = 1;  ///< provider RPCs issued (>1 = retried)
  std::int64_t start_ns = 0;   ///< wall, relative to the tracer's epoch
  std::int64_t wall_ns = 0;    ///< executed duration
  std::int64_t sim_ns = 0;     ///< modeled provider service time
  std::uint64_t bytes = 0;     ///< payload bytes the span moved
  ErrorCode outcome = ErrorCode::kOk;
};

/// Handing-out of ids plus the bounded span ring.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit Tracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        epoch_(std::chrono::steady_clock::now()) {}

  /// Mints a fresh span/op id (never 0 -- 0 means "no parent").
  [[nodiscard]] std::uint64_t next_id() {
    return id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Wall nanoseconds since the tracer was created (span start stamps).
  [[nodiscard]] std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void record(SpanRecord rec) {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(rec));
    } else {
      // The slot being overwritten holds the span with sequence number
      // total_ - capacity_; if no export consumed it, it is lost.
      if (total_ - capacity_ >= exported_) {
        ++dropped_;
        if (drop_hook_) drop_hook_();
      }
      ring_[total_ % capacity_] = std::move(rec);
    }
    ++total_;
  }

  /// Retained spans, oldest first.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SpanRecord> out;
    out.reserve(ring_.size());
    if (total_ <= capacity_) {
      out = ring_;
    } else {
      const std::size_t head = total_ % capacity_;  // oldest retained
      out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
                 ring_.end());
      out.insert(out.end(), ring_.begin(),
                 ring_.begin() + static_cast<std::ptrdiff_t>(head));
    }
    return out;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Spans recorded over the tracer's lifetime (>= retained count).
  [[nodiscard]] std::uint64_t recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  /// Declares every span recorded so far exported: overwriting them later
  /// is not a drop. Called by consumers that persisted a snapshot.
  void mark_exported() {
    std::lock_guard<std::mutex> lock(mu_);
    exported_ = total_;
  }

  /// Spans overwritten before any export consumed them.
  [[nodiscard]] std::uint64_t dropped_spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  /// Invoked once per dropped span, under the ring lock (the owning
  /// Telemetry bumps its `trace.dropped_spans` counter here -- lazily, so a
  /// quiet or disabled instance never even creates the metric). The hook
  /// must not call back into this tracer.
  void set_drop_hook(std::function<void()> hook) {
    std::lock_guard<std::mutex> lock(mu_);
    drop_hook_ = std::move(hook);
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    total_ = 0;
    exported_ = 0;
    dropped_ = 0;
  }

  /// JSONL: one JSON object per line, oldest span first.
  [[nodiscard]] std::string to_jsonl() const {
    std::ostringstream os;
    for (const SpanRecord& r : snapshot()) os << to_json(r) << "\n";
    return os.str();
  }

  [[nodiscard]] static std::string to_json(const SpanRecord& r) {
    std::ostringstream os;
    os << "{\"op\":" << r.op_id << ",\"span\":" << r.span_id
       << ",\"parent\":" << r.parent_id << ",\"name\":\"" << escape(r.name)
       << "\"";
    if (!r.client.empty()) os << ",\"client\":\"" << escape(r.client) << "\"";
    if (!r.file.empty()) os << ",\"file\":\"" << escape(r.file) << "\"";
    if (r.chunk != kNoChunk) os << ",\"chunk\":" << r.chunk;
    if (r.provider != kNoProvider) os << ",\"provider\":" << r.provider;
    if (r.shard_kind != ShardKind::kNone) {
      os << ",\"shard\":\"" << shard_kind_name(r.shard_kind) << "\"";
    }
    if (r.attempts > 1) os << ",\"attempts\":" << r.attempts;
    os << ",\"start_ns\":" << r.start_ns << ",\"wall_ns\":" << r.wall_ns
       << ",\"sim_ns\":" << r.sim_ns;
    if (r.bytes != 0) os << ",\"bytes\":" << r.bytes;
    os << ",\"outcome\":\"" << error_code_name(r.outcome) << "\"}";
    return os.str();
  }

 private:
  [[nodiscard]] static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  std::uint64_t total_ = 0;     ///< spans ever recorded
  std::uint64_t exported_ = 0;  ///< sequence watermark: spans [0, exported_) exported
  std::uint64_t dropped_ = 0;   ///< overwritten while unexported
  std::function<void()> drop_hook_;
};

}  // namespace cshield::obs

// Process-level gauges and build identity for the ops plane.
//
// The continuous exporter (obs/exporter.hpp) republishes these on every
// sample tick so a scrape always carries: how long the process has been up,
// which kernel arm the erasure data plane bound at startup (the single
// biggest perf variable between hosts), and whether telemetry was even on
// (a dashboard reading silence needs to know whether silence means "idle"
// or "not instrumented").
//
// Gauges (registry values are integers):
//   process.uptime_seconds     whole seconds since process start
//   process.simd_level         SimdLevel the kernels dispatch on (0..3)
//   process.hw_simd_level      raw hardware capability, override ignored
//   process.telemetry_enabled  1 when the owning Telemetry is enabled
//
// Build identity with its string labels rides in Prometheus exposition as a
// classic info metric (`cshield_build_info{...} 1`), emitted by
// build_info_prometheus() -- the registry itself is label-free by design.
#pragma once

#include <chrono>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "util/cpu.hpp"

namespace cshield::obs {

/// Steady-clock instant the process (well: the first caller) started.
/// Function-local static so every publisher shares one epoch.
[[nodiscard]] inline std::chrono::steady_clock::time_point process_epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

[[nodiscard]] inline double process_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_epoch())
      .count();
}

/// Writes the process gauges into `m`. Cheap (four relaxed stores after the
/// first call interns the names); callers gate on their telemetry flag.
inline void publish_process_gauges(MetricsRegistry& m, bool telemetry_on) {
  m.gauge("process.uptime_seconds")
      .set(static_cast<std::int64_t>(process_uptime_seconds()));
  m.gauge("process.simd_level")
      .set(static_cast<std::int64_t>(cpu::preferred_level()));
  m.gauge("process.hw_simd_level")
      .set(static_cast<std::int64_t>(cpu::hardware_level()));
  m.gauge("process.telemetry_enabled").set(telemetry_on ? 1 : 0);
}

/// Prometheus info-metric line carrying the string-valued build facts:
///   cshield_build_info{arch="avx2",kernel_arm="avx2",telemetry="on"} 1
/// `arch` is raw hardware capability, `kernel_arm` what dispatch bound
/// (they differ under the CSHIELD_FORCE_SCALAR override).
[[nodiscard]] inline std::string build_info_prometheus(bool telemetry_on) {
  std::ostringstream os;
  os << "# TYPE cshield_build_info gauge\n"
     << "cshield_build_info{arch=\""
     << cpu::simd_level_name(cpu::hardware_level()) << "\",kernel_arm=\""
     << cpu::simd_level_name(cpu::preferred_level()) << "\",telemetry=\""
     << (telemetry_on ? "on" : "off") << "\"} 1\n";
  return os.str();
}

}  // namespace cshield::obs

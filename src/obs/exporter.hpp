// MetricsExporter -- continuous sampler over the MetricsRegistry.
//
// The registry answers "what are the lifetime totals right now"; an ops
// plane needs "what happened over the last few seconds". The exporter
// bridges the two: a background thread snapshots the registry on a fixed
// interval into a bounded ring of timestamped samples, and everything
// windowed -- rates, deltas, rolling p99s, the SLO engine in
// obs/health.hpp -- is computed between the ring's ends. Bounded ring,
// same argument as the tracer: fixed memory, O(1) per tick, a quiet
// weekend does not grow a buffer.
//
// Output formats:
//   * to_prometheus(): the registry's text exposition plus the
//     cshield_build_info info-metric (obs/process.hpp).
//   * JSONL stream: when Config::jsonl_path is set, every sample appends
//     one JSON object line -- a poor man's remote-write for offline
//     analysis (jq-able, replayable).
//
// Cost: when the owning Telemetry is disabled a tick is one atomic load --
// no snapshot, no ring push, no file I/O. With telemetry on, a tick is one
// registry snapshot (shared-lock map walk) every `interval`; at the
// default 100 ms that is measured inside the bench_throughput <=5%
// telemetry-overhead gate.
//
// Threading: sample_now() may also be driven externally (tests drive it
// deterministically; the CLI uses the thread). The ring is mutex-guarded;
// readers copy.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/process.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"

namespace cshield::obs {

class MetricsExporter {
 public:
  struct Config {
    /// Sampler tick period.
    std::chrono::milliseconds interval{100};
    /// Samples retained; the rolling window every evaluator sees spans
    /// (window - 1) * interval.
    std::size_t window = 64;
    /// Append one JSON line per sample here; empty = no stream.
    std::string jsonl_path;
    /// Optional stall watchdog polled on every tick (one shared thread
    /// instead of two); may be null. Must outlive the exporter.
    StallWatchdog* watchdog = nullptr;
  };

  struct Sample {
    std::int64_t t_ns = 0;  ///< steady ns since the exporter's epoch
    MetricsRegistry::Snapshot snap;
  };

  /// `tel` must not be null and must outlive the exporter.
  explicit MetricsExporter(std::shared_ptr<Telemetry> tel)
      : MetricsExporter(std::move(tel), Config()) {}
  MetricsExporter(std::shared_ptr<Telemetry> tel, Config cfg)
      : tel_(std::move(tel)),
        cfg_(cfg),
        epoch_(std::chrono::steady_clock::now()) {
    CS_REQUIRE(tel_ != nullptr, "MetricsExporter needs a telemetry sink");
    if (cfg_.window == 0) cfg_.window = 1;
    if (!cfg_.jsonl_path.empty()) {
      jsonl_.open(cfg_.jsonl_path, std::ios::app);
    }
  }

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  ~MetricsExporter() { stop(); }

  /// Takes one sample now (on the caller's thread): refreshes the process
  /// gauges, snapshots the registry into the ring, appends the JSONL line.
  /// No-op while telemetry is disabled -- the zero-cost contract.
  void sample_now() {
    if (!tel_->enabled()) return;
    publish_process_gauges(tel_->metrics(), true);
    Sample s;
    s.t_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - epoch_)
                 .count();
    s.snap = tel_->metrics().snapshot();
    std::string line;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ring_.push_back(std::move(s));
      while (ring_.size() > cfg_.window) ring_.pop_front();
      ++total_samples_;
      if (jsonl_.is_open()) line = to_json(ring_.back());
    }
    if (!line.empty()) {
      std::lock_guard<std::mutex> lock(file_mu_);
      jsonl_ << line << "\n";
      jsonl_.flush();
    }
  }

  /// Starts the background sampler (and watchdog polling, if attached).
  void start() {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (thread_.joinable()) return;
    stop_ = false;
    thread_ = std::thread([this] { loop(); });
  }

  void stop() {
    std::thread to_join;
    {
      std::lock_guard<std::mutex> lock(thread_mu_);
      {
        std::lock_guard<std::mutex> cv_lock(cv_mu_);
        stop_ = true;
      }
      cv_.notify_all();
      to_join = std::move(thread_);
    }
    if (to_join.joinable()) to_join.join();
  }

  [[nodiscard]] bool running() const {
    std::lock_guard<std::mutex> lock(thread_mu_);
    return thread_.joinable();
  }

  // --- ring access (the health engine's raw feed) -----------------------

  [[nodiscard]] std::size_t samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
  }

  [[nodiscard]] std::uint64_t total_samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_samples_;
  }

  /// Copies the retained ring, oldest first.
  [[nodiscard]] std::vector<Sample> ring() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {ring_.begin(), ring_.end()};
  }

  /// Counter increase across the retained window (missing metric = 0).
  /// Counters are monotonic except for explicit reset(); a reset mid-window
  /// clamps to 0 rather than going negative.
  [[nodiscard]] std::uint64_t counter_delta(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < 2) return 0;
    const std::uint64_t oldest = counter_in(ring_.front(), name);
    const std::uint64_t newest = counter_in(ring_.back(), name);
    return newest >= oldest ? newest - oldest : 0;
  }

  /// counter_delta divided by the window's wall span.
  [[nodiscard]] double counter_rate_per_sec(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < 2) return 0.0;
    const std::uint64_t oldest = counter_in(ring_.front(), name);
    const std::uint64_t newest = counter_in(ring_.back(), name);
    const double span_s =
        static_cast<double>(ring_.back().t_ns - ring_.front().t_ns) * 1e-9;
    if (span_s <= 0.0 || newest < oldest) return 0.0;
    return static_cast<double>(newest - oldest) / span_s;
  }

  /// Latest value of a counter / gauge in the ring (nullopt = never seen).
  [[nodiscard]] std::optional<std::uint64_t> counter_last(
      const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty()) return std::nullopt;
    auto it = ring_.back().snap.counters.find(name);
    if (it == ring_.back().snap.counters.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::optional<std::int64_t> gauge_last(
      const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty()) return std::nullopt;
    auto it = ring_.back().snap.gauges.find(name);
    if (it == ring_.back().snap.gauges.end()) return std::nullopt;
    return it->second;
  }

  /// Rolling-window histogram: per-bucket count deltas between the ring's
  /// ends, packaged as a Histogram::Snapshot so percentile()/mean() answer
  /// for the window instead of the process lifetime. min/max stay lifetime
  /// values (the registry does not window them); nullopt when the metric
  /// is absent or the window holds no new observations.
  [[nodiscard]] std::optional<Histogram::Snapshot> histogram_window(
      const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty()) return std::nullopt;
    auto newest = ring_.back().snap.histograms.find(name);
    if (newest == ring_.back().snap.histograms.end()) return std::nullopt;
    Histogram::Snapshot w = newest->second;
    if (ring_.size() >= 2) {
      auto oldest = ring_.front().snap.histograms.find(name);
      if (oldest != ring_.front().snap.histograms.end() &&
          oldest->second.counts.size() == w.counts.size() &&
          oldest->second.count <= w.count) {
        for (std::size_t i = 0; i < w.counts.size(); ++i) {
          w.counts[i] -= std::min(oldest->second.counts[i], w.counts[i]);
        }
        w.count -= oldest->second.count;
        w.sum -= oldest->second.sum;
      }
    }
    if (w.count == 0) return std::nullopt;
    return w;
  }

  // --- rendering --------------------------------------------------------

  /// Prometheus text exposition: build-info line + the full registry dump.
  /// Process gauges are refreshed first so a one-shot dump (CLI `export`)
  /// carries them even if no sampler tick ever ran.
  [[nodiscard]] std::string to_prometheus() const {
    publish_process_gauges(tel_->metrics(), tel_->enabled());
    return build_info_prometheus(tel_->enabled()) +
           tel_->metrics().to_prometheus();
  }

  /// One sample as a single JSON object (the JSONL stream's line format).
  /// Histograms are summarized (count/sum/p50/p99) -- the stream is for
  /// trend analysis, full buckets stay in the Prometheus exposition.
  [[nodiscard]] static std::string to_json(const Sample& s) {
    std::ostringstream os;
    os.precision(10);
    os << "{\"t_ns\":" << s.t_ns << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : s.snap.counters) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << v;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : s.snap.gauges) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << v;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : s.snap.histograms) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
         << ",\"p50\":" << h.percentile(0.50)
         << ",\"p99\":" << h.percentile(0.99) << "}";
    }
    os << "}}";
    return os.str();
  }

  [[nodiscard]] Telemetry& telemetry() const { return *tel_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  static std::uint64_t counter_in(const Sample& s, const std::string& name) {
    auto it = s.snap.counters.find(name);
    return it == s.snap.counters.end() ? 0 : it->second;
  }

  void loop() {
    std::unique_lock<std::mutex> lk(cv_mu_);
    while (!stop_) {
      lk.unlock();
      sample_now();
      if (cfg_.watchdog != nullptr) (void)cfg_.watchdog->poll();
      lk.lock();
      cv_.wait_for(lk, cfg_.interval, [this] { return stop_; });
    }
  }

  std::shared_ptr<Telemetry> tel_;
  Config cfg_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  ///< guards ring_ / total_samples_ / jsonl_ state
  std::deque<Sample> ring_;
  std::uint64_t total_samples_ = 0;
  std::mutex file_mu_;  ///< serializes JSONL appends
  std::ofstream jsonl_;
  mutable std::mutex thread_mu_;  ///< guards thread_
  std::mutex cv_mu_;              ///< backs cv_ / stop_
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace cshield::obs

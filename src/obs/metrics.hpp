// MetricsRegistry -- named counters, gauges and fixed-bucket histograms.
//
// The distributor pipeline (PR 1) fans one file's chunks across two thread
// pools and a dozen simulated providers; this registry is the shared sink
// every layer reports into: per-provider request counts and latency
// histograms, placement decisions, RAID kernel timings, per-op rollback and
// parity-fallback counters. Design constraints, in order:
//
//   1. Lock-cheap hot path. Counter::inc / Gauge::add / Histogram::observe
//      are single relaxed atomic RMWs (histograms: two RMWs plus a CAS loop
//      for sum/min/max). No mutex is taken per observation.
//   2. Stable handles. counter()/gauge()/histogram() return references that
//      stay valid for the registry's lifetime, so instrumentation sites
//      look a metric up once and cache the pointer. The name map itself is
//      guarded by a shared_mutex touched only on lookup.
//   3. Snapshot-on-read. Readers copy a consistent-enough view (each value
//      is individually atomic; cross-metric skew is acceptable for
//      monitoring) and render it as Prometheus text or JSON without
//      stalling writers.
//
// Naming scheme (DESIGN.md section 9): dot-separated lowercase paths,
// `<subsystem>.<object>.<metric>[_<unit>]`, e.g. `provider.AWS.put_ns`,
// `cdd.parity_fallbacks`, `raid.encode_ns`. Durations are nanoseconds.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace cshield::obs {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (in-flight ops, queue depths).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: ascending upper bounds plus an implicit +Inf
/// overflow bucket. Percentiles are estimated by linear interpolation
/// inside the owning bucket -- exact enough for latency monitoring when the
/// buckets grow geometrically.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    CS_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
    CS_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must ascend");
    counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
  }

  /// Geometric bounds covering [lo, hi] with the given growth factor.
  /// The default spans 1 us .. ~67 s in x2 steps -- wide enough for both
  /// modeled provider latencies (ms) and RAID kernel timings (us).
  [[nodiscard]] static std::vector<double> exponential_bounds(
      double lo = 1e3, double hi = 1e11, double factor = 2.0) {
    CS_REQUIRE(lo > 0.0 && factor > 1.0 && hi > lo, "bad histogram bounds");
    std::vector<double> b;
    for (double x = lo; x <= hi; x *= factor) b.push_back(x);
    return b;
  }

  void observe(double v) {
    counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    add_double(sum_, v);
    update_min(min_, v);
    update_max(max_, v);
  }

  struct Snapshot {
    std::vector<double> bounds;          ///< upper bounds, +Inf implicit
    std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /// q in [0,1]; linear interpolation within the owning bucket, clamped
    /// to the observed min/max so tails stay plausible.
    [[nodiscard]] double percentile(double q) const {
      CS_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q outside [0,1]");
      if (count == 0) return 0.0;
      const double rank = q * static_cast<double>(count);
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (static_cast<double>(cum) >= rank && counts[i] > 0) {
          const double lo = i == 0 ? std::min(min, bounds[0]) : bounds[i - 1];
          const double hi = i < bounds.size() ? bounds[i] : max;
          const double into =
              1.0 - (static_cast<double>(cum) - rank) /
                        static_cast<double>(counts[i]);
          const double v = lo + (hi - lo) * into;
          return std::clamp(v, min, max);
        }
      }
      return max;
    }
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.bounds = bounds_;
    s.counts.resize(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.min = s.count ? min_.load(std::memory_order_relaxed) : 0.0;
    s.max = s.count ? max_.load(std::memory_order_relaxed) : 0.0;
    return s;
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  void reset() {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
    count_.store(0);
    sum_.store(0.0);
    min_.store(std::numeric_limits<double>::infinity());
    max_.store(-std::numeric_limits<double>::infinity());
  }

 private:
  [[nodiscard]] std::size_t bucket_of(double v) const {
    return static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  }

  static void add_double(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  static void update_min(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void update_max(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Name -> metric map with stable addresses and shared-lock lookups.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name) {
    return lookup(counters_, name, [] { return std::make_unique<Counter>(); });
  }

  [[nodiscard]] Gauge& gauge(std::string_view name) {
    return lookup(gauges_, name, [] { return std::make_unique<Gauge>(); });
  }

  /// First registration fixes the bucket bounds; later callers get the
  /// existing histogram regardless of the bounds they pass.
  [[nodiscard]] Histogram& histogram(
      std::string_view name, const std::vector<double>* bounds = nullptr) {
    return lookup(histograms_, name, [bounds] {
      return std::make_unique<Histogram>(
          bounds != nullptr ? *bounds : Histogram::exponential_bounds());
    });
  }

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    std::shared_lock lock(mu_);
    for (const auto& [name, c] : counters_) s.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
    return s;
  }

  /// Prometheus text exposition format. Dots in metric names become
  /// underscores ('.' is not a legal Prometheus name character).
  [[nodiscard]] std::string to_prometheus() const {
    const Snapshot s = snapshot();
    std::ostringstream os;
    os.precision(10);
    for (const auto& [name, v] : s.counters) {
      const std::string n = sanitize(name);
      os << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
    }
    for (const auto& [name, v] : s.gauges) {
      const std::string n = sanitize(name);
      os << "# TYPE " << n << " gauge\n" << n << " " << v << "\n";
    }
    for (const auto& [name, h] : s.histograms) {
      const std::string n = sanitize(name);
      os << "# TYPE " << n << " histogram\n";
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        cum += h.counts[i];
        os << n << "_bucket{le=\"" << h.bounds[i] << "\"} " << cum << "\n";
      }
      os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n"
         << n << "_sum " << h.sum << "\n"
         << n << "_count " << h.count << "\n";
    }
    return os.str();
  }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const {
    const Snapshot s = snapshot();
    std::ostringstream os;
    os.precision(10);
    os << "{\"counters\":{";
    emit_map(os, s.counters);
    os << "},\"gauges\":{";
    emit_map(os, s.gauges);
    os << "},\"histograms\":{";
    bool first = true;
    for (const auto& [name, h] : s.histograms) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
         << ",\"min\":" << h.min << ",\"max\":" << h.max
         << ",\"p50\":" << h.percentile(0.50)
         << ",\"p95\":" << h.percentile(0.95)
         << ",\"p99\":" << h.percentile(0.99) << ",\"buckets\":[";
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (i) os << ",";
        os << "[";
        if (i < h.bounds.size()) {
          os << h.bounds[i];
        } else {
          os << "null";
        }
        os << "," << h.counts[i] << "]";
      }
      os << "]}";
    }
    os << "}}";
    return os.str();
  }

  /// Zeros every metric. Addresses (cached pointers) stay valid.
  void reset() {
    std::shared_lock lock(mu_);
    for (const auto& [name, c] : counters_) c->reset();
    for (const auto& [name, g] : gauges_) g->reset();
    for (const auto& [name, h] : histograms_) h->reset();
  }

 private:
  template <typename Map, typename Make>
  [[nodiscard]] typename Map::mapped_type::element_type& lookup(
      Map& map, std::string_view name, Make make) {
    {
      std::shared_lock lock(mu_);
      auto it = map.find(name);
      if (it != map.end()) return *it->second;
    }
    std::unique_lock lock(mu_);
    auto it = map.find(name);
    if (it == map.end()) {
      it = map.emplace(std::string(name), make()).first;
    }
    return *it->second;
  }

  [[nodiscard]] static std::string sanitize(std::string_view name) {
    std::string out(name);
    for (char& c : out) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) c = '_';
    }
    return out;
  }

  template <typename M>
  static void emit_map(std::ostringstream& os, const M& m) {
    bool first = true;
    for (const auto& [name, v] : m) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << v;
    }
  }

  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace cshield::obs

// Telemetry -- the facade every instrumented layer talks to.
//
// One Telemetry object = one MetricsRegistry + one Tracer + an enabled
// flag. The process-wide instance (Telemetry::global()) is what the
// distributor, the provider registry and the RAID kernels report into by
// default, so several distributor front-ends sharing one provider registry
// also share one coherent metrics view (the Fig. 2 topology). Tests that
// need isolation construct their own instance and hand it to the
// distributor via DistributorConfig::telemetry_sink.
//
// Cost model:
//   - disabled (runtime): every instrumentation site is gated on
//     `enabled()`, a single relaxed atomic load; nothing is allocated,
//     recorded or locked.
//   - disabled (compile time): building with -DCSHIELD_NO_TELEMETRY makes
//     enabled() a constant false, so the optimizer deletes the
//     instrumentation entirely (the CMake option of the same name sets it).
//   - enabled: counters/gauges are one atomic RMW; histograms a handful;
//     spans take a short mutex at op/chunk/shard granularity.
#pragma once

#include <cstddef>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cshield::obs {

class Telemetry {
 public:
  explicit Telemetry(bool enabled = true,
                     std::size_t span_capacity = Tracer::kDefaultCapacity)
      : enabled_(enabled), tracer_(span_capacity) {
    // Mirror unexported-span overwrites into the registry so the loss is
    // scrapeable. The counter is created lazily at the first drop -- an
    // idle (or disabled) instance keeps a genuinely empty registry.
    tracer_.set_drop_hook(
        [this] { metrics_.counter("trace.dropped_spans").inc(); });
  }

  [[nodiscard]] bool enabled() const {
#ifdef CSHIELD_NO_TELEMETRY
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }

  /// Zeros metrics and drops retained spans (test/bench isolation).
  void reset() {
    metrics_.reset();
    tracer_.clear();
  }

  /// Process-wide instance, enabled by default (instrumentation is cheap;
  /// turning it off is a benchmark-mode decision, not the default).
  [[nodiscard]] static const std::shared_ptr<Telemetry>& global() {
    static const std::shared_ptr<Telemetry> g = std::make_shared<Telemetry>();
    return g;
  }

 private:
  std::atomic<bool> enabled_;
  MetricsRegistry metrics_;
  Tracer tracer_;
};

/// Parent linkage threaded through pipeline internals so shard-level spans
/// attach to the chunk/op above them. A zero op_id means "not tracing".
struct SpanCtx {
  std::uint64_t op_id = 0;
  std::uint64_t parent = 0;
  [[nodiscard]] bool armed() const { return op_id != 0; }
};

/// RAII span: mints its id up front (so children can parent onto it),
/// measures wall time, records on finish()/destruction. Inert when
/// constructed against a disabled or null telemetry.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* tel, SpanRecord proto)
      : tel_(tel != nullptr && tel->enabled() ? tel : nullptr) {
    if (tel_ == nullptr) return;
    rec_ = std::move(proto);
    if (rec_.span_id == 0) rec_.span_id = tel_->tracer().next_id();
    rec_.start_ns = tel_->tracer().now_ns();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { finish(); }

  [[nodiscard]] bool armed() const { return tel_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const { return armed() ? rec_.span_id : 0; }
  [[nodiscard]] SpanCtx ctx() const {
    return armed() ? SpanCtx{rec_.op_id, rec_.span_id} : SpanCtx{};
  }

  /// Mutable while open: set sim_ns, bytes, outcome before it records.
  [[nodiscard]] SpanRecord& rec() { return rec_; }

  void finish() {
    if (tel_ == nullptr) return;
    // One clock read; start_ns shares the tracer epoch, so the difference
    // is this span's wall time without a separate stopwatch.
    rec_.wall_ns = tel_->tracer().now_ns() - rec_.start_ns;
    tel_->tracer().record(std::move(rec_));
    tel_ = nullptr;
  }

 private:
  Telemetry* tel_ = nullptr;
  SpanRecord rec_;
};

}  // namespace cshield::obs

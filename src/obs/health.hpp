// Rolling SLO evaluation + per-provider / per-subsystem health states.
//
// PRs 3-6 grew rich degraded-mode machinery -- breakers, hedges, the
// scrubber, group commit -- but nothing folded their signals into "is this
// deployment healthy, and which provider or subsystem is the reason it
// isn't". The HealthEngine answers that continuously: every evaluate()
// reads the exporter's retained sample ring (never the live registry --
// the window IS the ring) and reduces it to one HealthReport.
//
// Provider states, in authority order:
//   critical  breaker OPEN (provider.<name>.breaker_state == 1): the
//             request layer has quarantined it -- the definitive signal.
//   degraded  breaker HALF-OPEN (probing), or breaker closed with a
//             windowed error rate above the policy threshold (the early
//             warning before the breaker trips, and the tail while a
//             healed provider's errors age out of the window).
//   healthy   otherwise.
//
// Subsystem SLOs (each with an error budget: how much of the objective the
// window consumed):
//   availability    definitive op failures / ops over the window (cdd.*)
//   latency.put     rolling p99 of cdd.put_file_wall_ns vs target
//   latency.get     rolling p99 of cdd.get_file_wall_ns vs target
//   journal.flush   rolling p99 of journal.flush_ns vs target
//   journal.shard.<k>.flush  same, per WAL commit lane of an N-shard
//                   metadata plane (discovered from the metric namespace;
//                   absent on a 1-shard journal)
//   scrub.integrity digest mismatches / chunks scanned over the window
//   breakers        open breakers right now (rt.open_breakers)
//   batcher.queue   pending shard puts right now (cdd.shard_batch_queue_depth)
//   migration       shards the topology migrator failed to move this window
//
// Every state change is logged as a Transition and counted in
// `health.transitions`; with a deterministic FaultPlan and test-driven
// sampling the exact transition sequence of a scripted outage is
// assertable (tests/health_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/exporter.hpp"

namespace cshield::obs {

enum class HealthState : int { kHealthy = 0, kDegraded = 1, kCritical = 2 };

[[nodiscard]] constexpr std::string_view health_state_name(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kCritical: return "critical";
  }
  return "?";
}

/// Breaker-state gauge values (written by core/request_layer.hpp).
inline constexpr std::int64_t kBreakerClosed = 0;
inline constexpr std::int64_t kBreakerOpen = 1;
inline constexpr std::int64_t kBreakerHalfOpen = 2;

struct SloPolicy {
  // availability: definitive-failure fraction of window ops
  double availability_degraded = 0.01;
  double availability_critical = 0.10;
  // provider windowed error rate (failures the retry layer saw)
  double provider_error_degraded = 0.05;
  // latency objectives: rolling p99 targets, wall ns
  double put_p99_target_ns = 1e9;
  double get_p99_target_ns = 1e9;
  double flush_p99_target_ns = 250e6;
  /// p99 past target = degraded; past target * this = critical.
  double latency_critical_multiple = 2.0;
  // scrub: mismatching shards per chunk scanned in the window
  double scrub_error_degraded = 0.0;  ///< any mismatch degrades
  double scrub_error_critical = 0.05;
  // breakers open right now
  double breakers_degraded = 0.0;  ///< any open breaker degrades
  double breakers_critical = 3.0;
  // batcher queue depth right now
  double batcher_depth_degraded = 64.0;
  double batcher_depth_critical = 256.0;
  // topology migration: shards the migrator failed to move in the window
  double migration_errors_degraded = 0.0;  ///< any stuck shard degrades
  double migration_errors_critical = 16.0;
};

/// One SLO's verdict. `budget_spent` is value / objective: < 1 means inside
/// the error budget, >= 1 means the objective is blown (for zero-tolerance
/// objectives any violation reports 1).
struct SloStatus {
  std::string name;
  HealthState state = HealthState::kHealthy;
  double value = 0.0;
  double objective = 0.0;
  double budget_spent = 0.0;
};

struct ProviderHealth {
  std::string name;
  HealthState state = HealthState::kHealthy;
  std::int64_t breaker = kBreakerClosed;
  std::uint64_t window_requests = 0;
  std::uint64_t window_errors = 0;
  double error_rate = 0.0;
};

struct HealthReport {
  HealthState overall = HealthState::kHealthy;
  std::vector<ProviderHealth> providers;
  std::vector<SloStatus> slos;
  std::size_t window_samples = 0;
  std::int64_t window_span_ns = 0;

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << "overall: " << health_state_name(overall) << " (window "
       << window_samples << " samples, "
       << static_cast<double>(window_span_ns) * 1e-9 << " s)\n";
    os << "providers:\n";
    for (const ProviderHealth& p : providers) {
      os << "  " << p.name << ": " << health_state_name(p.state)
         << " breaker=" << breaker_name(p.breaker) << " window_err="
         << p.window_errors << "/" << p.window_requests << "\n";
    }
    os << "slos:\n";
    for (const SloStatus& s : slos) {
      os << "  " << s.name << ": " << health_state_name(s.state)
         << " value=" << s.value << " objective=" << s.objective
         << " budget_spent=" << s.budget_spent << "\n";
    }
    return os.str();
  }

  [[nodiscard]] std::string to_json() const {
    std::ostringstream os;
    os.precision(10);
    os << "{\"overall\":\"" << health_state_name(overall)
       << "\",\"window_samples\":" << window_samples
       << ",\"window_span_ns\":" << window_span_ns << ",\"providers\":[";
    bool first = true;
    for (const ProviderHealth& p : providers) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << p.name << "\",\"state\":\""
         << health_state_name(p.state) << "\",\"breaker\":\""
         << breaker_name(p.breaker) << "\",\"window_requests\":"
         << p.window_requests << ",\"window_errors\":" << p.window_errors
         << ",\"error_rate\":" << p.error_rate << "}";
    }
    os << "],\"slos\":[";
    first = true;
    for (const SloStatus& s : slos) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << s.name << "\",\"state\":\""
         << health_state_name(s.state) << "\",\"value\":" << s.value
         << ",\"objective\":" << s.objective
         << ",\"budget_spent\":" << s.budget_spent << "}";
    }
    os << "]}";
    return os.str();
  }

 private:
  [[nodiscard]] static std::string_view breaker_name(std::int64_t b) {
    switch (b) {
      case kBreakerOpen: return "open";
      case kBreakerHalfOpen: return "half-open";
      default: return "closed";
    }
  }
};

class HealthEngine {
 public:
  /// One state change of one tracked subject ("provider:AWS", "slo:...",
  /// "overall"), stamped with the evaluation ordinal that saw it.
  struct Transition {
    std::string subject;
    HealthState from = HealthState::kHealthy;
    HealthState to = HealthState::kHealthy;
    std::uint64_t eval_seq = 0;
  };

  /// `exporter` must outlive the engine; the policy is fixed at creation.
  explicit HealthEngine(const MetricsExporter& exporter,
                        SloPolicy policy = SloPolicy())
      : exporter_(exporter), policy_(policy) {}

  /// Evaluates every provider and SLO over the exporter's current ring.
  /// Also publishes health.overall (gauge) and health.transitions
  /// (counter) into the registry, and appends to the transition log. NOT
  /// thread-safe against itself -- one evaluator per engine (the intended
  /// topology: one CLI/ops thread asking).
  HealthReport evaluate() {
    ++evals_;
    const std::vector<MetricsExporter::Sample> ring = exporter_.ring();
    HealthReport report;
    report.window_samples = ring.size();
    if (!ring.empty()) {
      report.window_span_ns = ring.back().t_ns - ring.front().t_ns;
      eval_providers(ring, report);
      eval_slos(ring, report);
    }
    for (const ProviderHealth& p : report.providers) {
      report.overall = std::max(report.overall, p.state);
    }
    for (const SloStatus& s : report.slos) {
      report.overall = std::max(report.overall, s.state);
    }
    for (const ProviderHealth& p : report.providers) {
      note_state("provider:" + p.name, p.state);
    }
    for (const SloStatus& s : report.slos) note_state("slo:" + s.name, s.state);
    note_state("overall", report.overall);
    Telemetry& tel = exporter_.telemetry();
    if (tel.enabled()) {
      tel.metrics().gauge("health.overall")
          .set(static_cast<std::int64_t>(report.overall));
    }
    return report;
  }

  /// Every state change seen by evaluate() since construction, in order.
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }

  /// The transitions of one subject, e.g. "provider:P3".
  [[nodiscard]] std::vector<Transition> transitions_of(
      const std::string& subject) const {
    std::vector<Transition> out;
    for (const Transition& t : transitions_) {
      if (t.subject == subject) out.push_back(t);
    }
    return out;
  }

  [[nodiscard]] const SloPolicy& policy() const { return policy_; }

 private:
  using Sample = MetricsExporter::Sample;

  static std::uint64_t counter_in(const Sample& s, const std::string& name) {
    auto it = s.snap.counters.find(name);
    return it == s.snap.counters.end() ? 0 : it->second;
  }

  static std::uint64_t counter_delta(const std::vector<Sample>& ring,
                                     const std::string& name) {
    if (ring.size() < 2) return 0;
    const std::uint64_t oldest = counter_in(ring.front(), name);
    const std::uint64_t newest = counter_in(ring.back(), name);
    return newest >= oldest ? newest - oldest : 0;
  }

  static std::int64_t gauge_latest(const std::vector<Sample>& ring,
                                   const std::string& name) {
    auto it = ring.back().snap.gauges.find(name);
    return it == ring.back().snap.gauges.end() ? 0 : it->second;
  }

  /// Windowed p99 of a histogram (bucket-count deltas between ring ends);
  /// 0 when absent or quiet -- a silent subsystem is a healthy one.
  static double windowed_p99(const std::vector<Sample>& ring,
                             const std::string& name) {
    auto newest = ring.back().snap.histograms.find(name);
    if (newest == ring.back().snap.histograms.end()) return 0.0;
    Histogram::Snapshot w = newest->second;
    if (ring.size() >= 2) {
      auto oldest = ring.front().snap.histograms.find(name);
      if (oldest != ring.front().snap.histograms.end() &&
          oldest->second.counts.size() == w.counts.size() &&
          oldest->second.count <= w.count) {
        for (std::size_t i = 0; i < w.counts.size(); ++i) {
          w.counts[i] -= std::min(oldest->second.counts[i], w.counts[i]);
        }
        w.count -= oldest->second.count;
        w.sum -= oldest->second.sum;
      }
    }
    return w.count == 0 ? 0.0 : w.percentile(0.99);
  }

  [[nodiscard]] static HealthState state_of(double value, double degraded,
                                            double critical) {
    if (value > critical) return HealthState::kCritical;
    if (value > degraded) return HealthState::kDegraded;
    return HealthState::kHealthy;
  }

  [[nodiscard]] static double budget_spent(double value, double objective) {
    if (objective > 0.0) return value / objective;
    return value > 0.0 ? 1.0 : 0.0;  // zero-tolerance objective
  }

  void eval_providers(const std::vector<Sample>& ring, HealthReport& report) {
    // Providers are discovered from the metric namespace itself --
    // provider.<name>.requests -- so the engine needs no storage-layer
    // dependency and sees exactly the fleet that reported.
    static constexpr std::string_view kPrefix = "provider.";
    static constexpr std::string_view kSuffix = ".requests";
    for (const auto& [metric, unused] : ring.back().snap.counters) {
      (void)unused;
      if (metric.size() <= kPrefix.size() + kSuffix.size()) continue;
      if (metric.compare(0, kPrefix.size(), kPrefix) != 0) continue;
      if (metric.compare(metric.size() - kSuffix.size(), kSuffix.size(),
                         kSuffix) != 0) {
        continue;
      }
      ProviderHealth p;
      p.name = metric.substr(kPrefix.size(),
                             metric.size() - kPrefix.size() - kSuffix.size());
      const std::string base = std::string(kPrefix) + p.name;
      p.window_requests = counter_delta(ring, base + ".requests");
      p.window_errors = counter_delta(ring, base + ".errors");
      p.error_rate = p.window_requests == 0
                         ? 0.0
                         : static_cast<double>(p.window_errors) /
                               static_cast<double>(p.window_requests);
      p.breaker = gauge_latest(ring, base + ".breaker_state");
      if (p.breaker == kBreakerOpen) {
        p.state = HealthState::kCritical;
      } else if (p.breaker == kBreakerHalfOpen ||
                 p.error_rate > policy_.provider_error_degraded) {
        p.state = HealthState::kDegraded;
      } else {
        p.state = HealthState::kHealthy;
      }
      report.providers.push_back(std::move(p));
    }
  }

  void eval_slos(const std::vector<Sample>& ring, HealthReport& report) {
    // availability: definitive client-visible failures over window ops.
    {
      static constexpr std::string_view kCdd = "cdd.";
      std::uint64_t ok = 0;
      std::uint64_t bad = 0;
      for (const auto& [metric, unused] : ring.back().snap.counters) {
        (void)unused;
        if (metric.compare(0, kCdd.size(), kCdd) != 0) continue;
        if (ends_with(metric, "_total")) ok += counter_delta(ring, metric);
        if (ends_with(metric, "_errors")) bad += counter_delta(ring, metric);
      }
      SloStatus s;
      s.name = "availability";
      s.objective = policy_.availability_degraded;
      s.value = (ok + bad) == 0 ? 0.0
                                : static_cast<double>(bad) /
                                      static_cast<double>(ok + bad);
      s.state = state_of(s.value, policy_.availability_degraded,
                         policy_.availability_critical);
      s.budget_spent = budget_spent(s.value, s.objective);
      report.slos.push_back(std::move(s));
    }
    push_latency(ring, report, "latency.put", "cdd.put_file_wall_ns",
                 policy_.put_p99_target_ns);
    push_latency(ring, report, "latency.get", "cdd.get_file_wall_ns",
                 policy_.get_p99_target_ns);
    push_latency(ring, report, "journal.flush", "journal.flush_ns",
                 policy_.flush_p99_target_ns);
    // Per-shard journal flush lanes (N-way metadata plane only; a 1-shard
    // journal never emits these). Discovered from the metric namespace --
    // journal.shard.<k>.flush_ns -- like providers, so one slow fsync lane
    // shows up even when the aggregate p99 hides behind healthy shards.
    {
      static constexpr std::string_view kShardPrefix = "journal.shard.";
      static constexpr std::string_view kShardSuffix = ".flush_ns";
      for (const auto& [metric, unused] : ring.back().snap.histograms) {
        (void)unused;
        if (metric.size() <= kShardPrefix.size() + kShardSuffix.size()) {
          continue;
        }
        if (metric.compare(0, kShardPrefix.size(), kShardPrefix) != 0) {
          continue;
        }
        if (!ends_with(metric, kShardSuffix)) continue;
        const std::string shard =
            metric.substr(kShardPrefix.size(), metric.size() -
                                                   kShardPrefix.size() -
                                                   kShardSuffix.size());
        const std::string slo = "journal.shard." + shard + ".flush";
        push_latency(ring, report, slo.c_str(), metric.c_str(),
                     policy_.flush_p99_target_ns);
      }
    }
    // scrub integrity: corrupt shards per chunk scanned in the window.
    {
      const std::uint64_t scanned =
          counter_delta(ring, "scrub.chunks_scanned");
      const std::uint64_t mismatched =
          counter_delta(ring, "scrub.digest_mismatches");
      SloStatus s;
      s.name = "scrub.integrity";
      s.objective = policy_.scrub_error_degraded;
      s.value = scanned == 0 ? 0.0
                             : static_cast<double>(mismatched) /
                                   static_cast<double>(scanned);
      s.state = state_of(s.value, policy_.scrub_error_degraded,
                         policy_.scrub_error_critical);
      s.budget_spent = budget_spent(s.value, s.objective);
      report.slos.push_back(std::move(s));
    }
    // breaker / quarantine state, fleet-wide.
    {
      SloStatus s;
      s.name = "breakers";
      s.objective = policy_.breakers_degraded;
      s.value = static_cast<double>(
          std::max<std::int64_t>(0, gauge_latest(ring, "rt.open_breakers")));
      s.state =
          state_of(s.value, policy_.breakers_degraded, policy_.breakers_critical);
      s.budget_spent = budget_spent(s.value, s.objective);
      report.slos.push_back(std::move(s));
    }
    // batcher backlog.
    {
      SloStatus s;
      s.name = "batcher.queue";
      s.objective = policy_.batcher_depth_degraded;
      s.value = static_cast<double>(std::max<std::int64_t>(
          0, gauge_latest(ring, "cdd.shard_batch_queue_depth")));
      s.state = state_of(s.value, policy_.batcher_depth_degraded,
                         policy_.batcher_depth_critical);
      s.budget_spent = budget_spent(s.value, s.objective);
      report.slos.push_back(std::move(s));
    }
    // topology migration: shards the migrator could not move this window
    // (sources below RAID tolerance, no qualifying home, put failures).
    // Healthy-zero when no migration is running.
    {
      SloStatus s;
      s.name = "migration";
      s.objective = policy_.migration_errors_degraded;
      s.value =
          static_cast<double>(counter_delta(ring, "migration.errors"));
      s.state = state_of(s.value, policy_.migration_errors_degraded,
                         policy_.migration_errors_critical);
      s.budget_spent = budget_spent(s.value, s.objective);
      report.slos.push_back(std::move(s));
    }
  }

  void push_latency(const std::vector<Sample>& ring, HealthReport& report,
                    const char* slo_name, const char* metric, double target) {
    SloStatus s;
    s.name = slo_name;
    s.objective = target;
    s.value = windowed_p99(ring, metric);
    s.state = state_of(s.value, target,
                       target * policy_.latency_critical_multiple);
    s.budget_spent = budget_spent(s.value, s.objective);
    report.slos.push_back(std::move(s));
  }

  [[nodiscard]] static bool ends_with(const std::string& s,
                                      std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  }

  void note_state(std::string subject, HealthState now) {
    auto [it, fresh] = last_.emplace(std::move(subject), now);
    if (fresh || it->second == now) {
      it->second = now;
      return;  // first sighting or no change -- not a transition
    }
    Transition t;
    t.subject = it->first;
    t.from = it->second;
    t.to = now;
    t.eval_seq = evals_;
    transitions_.push_back(std::move(t));
    it->second = now;
    Telemetry& tel = exporter_.telemetry();
    if (tel.enabled()) tel.metrics().counter("health.transitions").inc();
  }

  const MetricsExporter& exporter_;
  SloPolicy policy_;
  std::uint64_t evals_ = 0;
  std::map<std::string, HealthState> last_;
  std::vector<Transition> transitions_;
};

}  // namespace cshield::obs

// StallWatchdog -- in-flight operation table + one-shot diagnostic dump.
//
// Every metric in the registry describes operations that *finished*. The
// failure mode none of them can see is the op that never comes back: a
// wedged pool task, a journal fsync stuck behind a sick disk, a provider
// RPC lost inside a deadlocked lane. The watchdog closes that blind spot
// with an explicit in-flight table: distributor entry points and request-
// layer RPCs arm an entry carrying their *modeled deadline* on the way in
// and disarm it on the way out; the journal flush leader brackets its
// write+fsync window. A poll (background thread or an exporter tick)
// flags any entry older than `deadline_multiple` times its own deadline,
// or an fsync window open past `fsync_stall`.
//
// The first stall fires a ONE-SHOT diagnostic dump -- stalled-op table,
// caller-supplied context (breaker states), full Prometheus metrics text,
// and the most recent trace spans -- to `dump_path` (and keeps it in
// memory via last_report()). One-shot because a stalled system polls the
// same stall forever; the interesting state is the first capture, and a
// dump per poll would bury it. `watchdog.stalls` / `watchdog.fsync_stalls`
// keep counting on every poll so the condition stays visible after the
// dump.
//
// Cost: arm/disarm is one short mutex critical section per *operation*
// (not per byte), a gauge add, and nothing at all when the owning
// telemetry is disabled -- arm() returns the inert token 0.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/telemetry.hpp"

namespace cshield::obs {

class StallWatchdog {
 public:
  struct Config {
    /// An op is stalled once its wall age exceeds this multiple of its own
    /// modeled deadline (request-layer deadline for RPC-backed ops).
    double deadline_multiple = 4.0;
    /// An fsync window (journal flush leader) open this long is a stall.
    std::chrono::nanoseconds fsync_stall{std::chrono::seconds(2)};
    /// Background poll cadence (start()); poll() can also be driven
    /// externally, e.g. from the exporter's sample tick.
    std::chrono::milliseconds poll_interval{100};
    /// Diagnostic dump target; empty = in-memory report only.
    std::string dump_path;
    /// Trace spans included in the dump (most recent first).
    std::size_t dump_spans = 64;
  };

  /// `tel` may be null (watchdog inert). The telemetry must outlive the
  /// watchdog; its enabled flag gates every arm().
  StallWatchdog(std::shared_ptr<Telemetry> tel, Config cfg)
      : tel_(std::move(tel)), cfg_(cfg) {}
  explicit StallWatchdog(std::shared_ptr<Telemetry> tel)
      : StallWatchdog(std::move(tel), Config()) {}

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  ~StallWatchdog() { stop(); }

  /// Registers an in-flight op. `deadline_ns` is the op's own modeled
  /// deadline (0 = no deadline: the entry is visible in the table but can
  /// only stall via a caller with one). Returns the disarm token; 0 means
  /// "not armed" (telemetry off) and is safe to pass to disarm().
  [[nodiscard]] std::uint64_t arm(std::string_view name,
                                  std::int64_t deadline_ns) {
    if (tel_ == nullptr || !tel_->enabled()) return 0;
    const std::uint64_t token =
        next_token_.fetch_add(1, std::memory_order_relaxed);
    Entry e;
    e.name.assign(name.data(), name.size());
    e.start = std::chrono::steady_clock::now();
    e.deadline_ns = deadline_ns;
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.emplace(token, std::move(e));
    }
    tel_->metrics().gauge("watchdog.inflight_ops").add(1);
    return token;
  }

  void disarm(std::uint64_t token) {
    if (token == 0) return;
    bool erased = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      erased = inflight_.erase(token) != 0;
    }
    if (erased && tel_ != nullptr) {
      tel_->metrics().gauge("watchdog.inflight_ops").add(-1);
    }
  }

  /// RAII arm/disarm. Inert when `wd` is null or telemetry is off.
  class Armed {
   public:
    Armed() = default;
    Armed(StallWatchdog* wd, std::string_view name, std::int64_t deadline_ns)
        : wd_(wd), token_(wd != nullptr ? wd->arm(name, deadline_ns) : 0) {}
    Armed(const Armed&) = delete;
    Armed& operator=(const Armed&) = delete;
    Armed(Armed&& o) noexcept : wd_(o.wd_), token_(o.token_) { o.token_ = 0; }
    Armed& operator=(Armed&& o) noexcept {
      if (this != &o) {
        release();
        wd_ = o.wd_;
        token_ = o.token_;
        o.token_ = 0;
      }
      return *this;
    }
    ~Armed() { release(); }
    void release() {
      if (token_ != 0 && wd_ != nullptr) wd_->disarm(token_);
      token_ = 0;
    }

   private:
    StallWatchdog* wd_ = nullptr;
    std::uint64_t token_ = 0;
  };

  /// Journal flush leader brackets: one fsync window at a time (the journal
  /// serializes flushes, so a single slot suffices).
  void fsync_begin() {
    fsync_start_ns_.store(steady_ns(), std::memory_order_relaxed);
  }
  void fsync_end() { fsync_start_ns_.store(0, std::memory_order_relaxed); }

  /// One detection pass. Returns the number of stalled entries (ops +
  /// fsync) seen by THIS poll; fires the one-shot dump on the first.
  std::size_t poll() {
    if (tel_ == nullptr || !tel_->enabled()) return 0;
    const std::int64_t now = steady_ns();
    std::vector<std::string> stalled;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [token, e] : inflight_) {
        if (e.deadline_ns <= 0) continue;
        const std::int64_t age =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - e.start)
                .count();
        const double limit =
            cfg_.deadline_multiple * static_cast<double>(e.deadline_ns);
        if (static_cast<double>(age) > limit) {
          std::ostringstream os;
          os << "op #" << token << " '" << e.name << "' in flight "
             << age << " ns, modeled deadline " << e.deadline_ns
             << " ns (x" << cfg_.deadline_multiple << " exceeded)";
          stalled.push_back(os.str());
        }
      }
    }
    const std::int64_t fsync_at = fsync_start_ns_.load(std::memory_order_relaxed);
    std::size_t fsync_stalls = 0;
    if (fsync_at != 0 && now - fsync_at >= cfg_.fsync_stall.count()) {
      std::ostringstream os;
      os << "journal fsync window open " << (now - fsync_at)
         << " ns (threshold " << cfg_.fsync_stall.count() << " ns)";
      stalled.push_back(os.str());
      fsync_stalls = 1;
    }
    if (stalled.empty()) return 0;
    MetricsRegistry& m = tel_->metrics();
    m.counter("watchdog.stalls").inc(stalled.size() - fsync_stalls);
    if (fsync_stalls != 0) m.counter("watchdog.fsync_stalls").inc();
    if (!fired_.exchange(true, std::memory_order_acq_rel)) dump(stalled);
    return stalled.size();
  }

  /// Background polling at Config::poll_interval. No-op if running.
  void start() {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (thread_.joinable()) return;
    stop_ = false;
    thread_ = std::thread([this] { loop(); });
  }

  void stop() {
    std::thread to_join;
    {
      std::lock_guard<std::mutex> lock(thread_mu_);
      {
        std::lock_guard<std::mutex> cv_lock(cv_mu_);
        stop_ = true;
      }
      cv_.notify_all();
      to_join = std::move(thread_);
    }
    if (to_join.joinable()) to_join.join();
  }

  /// Extra dump context (breaker/quarantine states live in the storage
  /// layer, which obs must not depend on -- the owner injects a renderer).
  void set_context_fn(std::function<std::string()> fn) {
    std::lock_guard<std::mutex> lock(mu_);
    context_fn_ = std::move(fn);
  }

  [[nodiscard]] bool fired() const {
    return fired_.load(std::memory_order_acquire);
  }

  /// The one-shot diagnostic (empty until the first stall).
  [[nodiscard]] std::string last_report() const {
    std::lock_guard<std::mutex> lock(mu_);
    return report_;
  }

  [[nodiscard]] std::size_t inflight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_.size();
  }

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct Entry {
    std::string name;
    std::chrono::steady_clock::time_point start;
    std::int64_t deadline_ns = 0;
  };

  [[nodiscard]] static std::int64_t steady_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void loop() {
    std::unique_lock<std::mutex> lk(cv_mu_);
    while (!stop_) {
      lk.unlock();
      (void)poll();
      lk.lock();
      cv_.wait_for(lk, cfg_.poll_interval, [this] { return stop_; });
    }
  }

  /// Builds + writes the diagnostic. Called once, off the stall path's
  /// locks (metrics/tracer snapshots take their own).
  void dump(const std::vector<std::string>& stalled) {
    std::ostringstream os;
    os << "=== cshield stall watchdog diagnostic ===\n";
    os << "--- stalled operations ---\n";
    for (const std::string& line : stalled) os << line << "\n";
    std::function<std::string()> ctx;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ctx = context_fn_;
    }
    if (ctx) {
      os << "--- context ---\n" << ctx();
      if (os.str().back() != '\n') os << "\n";
    }
    os << "--- metrics ---\n" << tel_->metrics().to_prometheus();
    os << "--- recent spans ---\n";
    std::vector<SpanRecord> spans = tel_->tracer().snapshot();
    const std::size_t n = std::min(cfg_.dump_spans, spans.size());
    for (std::size_t i = spans.size() - n; i < spans.size(); ++i) {
      os << Tracer::to_json(spans[i]) << "\n";
    }
    tel_->tracer().mark_exported();  // dumped spans are exported, not dropped
    {
      std::lock_guard<std::mutex> lock(mu_);
      report_ = os.str();
    }
    if (!cfg_.dump_path.empty()) {
      std::ofstream out(cfg_.dump_path, std::ios::trunc);
      if (out) out << report_;
    }
  }

  std::shared_ptr<Telemetry> tel_;
  Config cfg_;
  std::atomic<std::uint64_t> next_token_{1};
  std::atomic<std::int64_t> fsync_start_ns_{0};
  std::atomic<bool> fired_{false};
  mutable std::mutex mu_;  ///< guards inflight_, report_, context_fn_
  std::unordered_map<std::uint64_t, Entry> inflight_;
  std::string report_;
  std::function<std::string()> context_fn_;
  std::mutex thread_mu_;  ///< guards thread_
  std::mutex cv_mu_;      ///< backs cv_ / stop_
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace cshield::obs

// S3-style object store interface (SVI: put/get/delete by virtual-id key).
//
// Cloud providers in the paper expose exactly three operations keyed by the
// chunk's virtual id; everything above (RAID, placement, tables) is built on
// this interface. MemoryStore is the in-process implementation backing the
// simulated providers.
#pragma once

#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace cshield::storage {

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Stores (or overwrites) the object under `id`.
  virtual Status put(VirtualId id, BytesView data) = 0;

  /// Fetches a copy of the object.
  [[nodiscard]] virtual Result<Bytes> get(VirtualId id) const = 0;

  /// Deletes the object; kNotFound if absent.
  virtual Status remove(VirtualId id) = 0;

  [[nodiscard]] virtual bool contains(VirtualId id) const = 0;
  [[nodiscard]] virtual std::size_t object_count() const = 0;
  [[nodiscard]] virtual std::size_t bytes_stored() const = 0;

  /// Snapshot of all ids currently stored (diagnostics / attack harness:
  /// an adversary who compromises a provider sees exactly this).
  [[nodiscard]] virtual std::vector<VirtualId> list_ids() const = 0;
};

/// Thread-safe in-memory object store.
class MemoryStore final : public ObjectStore {
 public:
  Status put(VirtualId id, BytesView data) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(id);
    if (it != objects_.end()) {
      bytes_ -= it->second.size();
      it->second.assign(data.begin(), data.end());
    } else {
      objects_.emplace(id, Bytes(data.begin(), data.end()));
    }
    bytes_ += data.size();
    return Status::Ok();
  }

  [[nodiscard]] Result<Bytes> get(VirtualId id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("object " + std::to_string(id));
    }
    return it->second;
  }

  Status remove(VirtualId id) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("object " + std::to_string(id));
    }
    bytes_ -= it->second.size();
    objects_.erase(it);
    return Status::Ok();
  }

  [[nodiscard]] bool contains(VirtualId id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return objects_.count(id) != 0;
  }

  [[nodiscard]] std::size_t object_count() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return objects_.size();
  }

  [[nodiscard]] std::size_t bytes_stored() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }

  [[nodiscard]] std::vector<VirtualId> list_ids() const override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<VirtualId> ids;
    ids.reserve(objects_.size());
    for (const auto& [id, _] : objects_) ids.push_back(id);
    return ids;
  }

  /// Drops everything -- models a provider going out of business (SIII-A).
  void wipe() {
    std::lock_guard<std::mutex> lock(mu_);
    objects_.clear();
    bytes_ = 0;
  }

  /// Test/attack helper: flips one byte of a stored object in place,
  /// modelling silent corruption at the provider.
  Status flip_byte(VirtualId id, std::size_t offset) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("object " + std::to_string(id));
    }
    if (offset >= it->second.size()) {
      return Status::InvalidArgument("flip_byte offset out of range");
    }
    it->second[offset] ^= 0xFF;
    return Status::Ok();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<VirtualId, Bytes> objects_;
  std::size_t bytes_ = 0;
};

}  // namespace cshield::storage

// S3-style object store interface (SVI: put/get/delete by virtual-id key).
//
// Cloud providers in the paper expose exactly three operations keyed by the
// chunk's virtual id; everything above (RAID, placement, tables) is built on
// this interface. MemoryStore is the in-process implementation backing the
// simulated providers.
#pragma once

#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace cshield::storage {

/// One object of a batched put. The view must stay valid for the duration
/// of the put_many call (the batching layers hold the shard arenas alive).
struct BatchPut {
  VirtualId id = 0;
  BytesView data;
};

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Stores (or overwrites) the object under `id`.
  virtual Status put(VirtualId id, BytesView data) = 0;

  /// Fetches a copy of the object.
  [[nodiscard]] virtual Result<Bytes> get(VirtualId id) const = 0;

  /// Deletes the object; kNotFound if absent.
  virtual Status remove(VirtualId id) = 0;

  /// Stores a batch; the returned statuses align with `batch` and items
  /// fail independently. The default loops over put(), so every store
  /// keeps working unmodified; stores with a cheaper bulk path (one lock
  /// acquisition, one directory fsync) override it.
  virtual std::vector<Status> put_many(const std::vector<BatchPut>& batch) {
    std::vector<Status> statuses;
    statuses.reserve(batch.size());
    for (const BatchPut& item : batch) statuses.push_back(put(item.id, item.data));
    return statuses;
  }

  /// Fetches a batch; results align with `ids` and items fail
  /// independently. Default loops over get().
  [[nodiscard]] virtual std::vector<Result<Bytes>> get_many(
      const std::vector<VirtualId>& ids) const {
    std::vector<Result<Bytes>> results;
    results.reserve(ids.size());
    for (VirtualId id : ids) results.push_back(get(id));
    return results;
  }

  [[nodiscard]] virtual bool contains(VirtualId id) const = 0;
  [[nodiscard]] virtual std::size_t object_count() const = 0;
  [[nodiscard]] virtual std::size_t bytes_stored() const = 0;

  /// Snapshot of all ids currently stored (diagnostics / attack harness:
  /// an adversary who compromises a provider sees exactly this).
  [[nodiscard]] virtual std::vector<VirtualId> list_ids() const = 0;
};

/// Thread-safe in-memory object store.
class MemoryStore final : public ObjectStore {
 public:
  Status put(VirtualId id, BytesView data) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(id);
    if (it != objects_.end()) {
      bytes_ -= it->second.size();
      it->second.assign(data.begin(), data.end());
    } else {
      objects_.emplace(id, Bytes(data.begin(), data.end()));
    }
    bytes_ += data.size();
    return Status::Ok();
  }

  [[nodiscard]] Result<Bytes> get(VirtualId id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("object " + std::to_string(id));
    }
    return it->second;
  }

  /// Batched variants take the store lock once for the whole batch instead
  /// of once per object -- the map operations are identical.
  std::vector<Status> put_many(const std::vector<BatchPut>& batch) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Status> statuses;
    statuses.reserve(batch.size());
    for (const BatchPut& item : batch) {
      auto it = objects_.find(item.id);
      if (it != objects_.end()) {
        bytes_ -= it->second.size();
        it->second.assign(item.data.begin(), item.data.end());
      } else {
        objects_.emplace(item.id, Bytes(item.data.begin(), item.data.end()));
      }
      bytes_ += item.data.size();
      statuses.push_back(Status::Ok());
    }
    return statuses;
  }

  [[nodiscard]] std::vector<Result<Bytes>> get_many(
      const std::vector<VirtualId>& ids) const override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Result<Bytes>> results;
    results.reserve(ids.size());
    for (VirtualId id : ids) {
      auto it = objects_.find(id);
      if (it == objects_.end()) {
        results.emplace_back(Status::NotFound("object " + std::to_string(id)));
      } else {
        results.emplace_back(it->second);
      }
    }
    return results;
  }

  Status remove(VirtualId id) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("object " + std::to_string(id));
    }
    bytes_ -= it->second.size();
    objects_.erase(it);
    return Status::Ok();
  }

  [[nodiscard]] bool contains(VirtualId id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return objects_.count(id) != 0;
  }

  [[nodiscard]] std::size_t object_count() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return objects_.size();
  }

  [[nodiscard]] std::size_t bytes_stored() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }

  [[nodiscard]] std::vector<VirtualId> list_ids() const override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<VirtualId> ids;
    ids.reserve(objects_.size());
    for (const auto& [id, _] : objects_) ids.push_back(id);
    return ids;
  }

  /// Drops everything -- models a provider going out of business (SIII-A).
  void wipe() {
    std::lock_guard<std::mutex> lock(mu_);
    objects_.clear();
    bytes_ = 0;
  }

  /// Test/attack helper: flips one byte of a stored object in place,
  /// modelling silent corruption at the provider.
  Status flip_byte(VirtualId id, std::size_t offset) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("object " + std::to_string(id));
    }
    if (offset >= it->second.size()) {
      return Status::InvalidArgument("flip_byte offset out of range");
    }
    it->second[offset] ^= 0xFF;
    return Status::Ok();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<VirtualId, Bytes> objects_;
  std::size_t bytes_ = 0;
};

}  // namespace cshield::storage

// Registry of simulated cloud providers.
//
// The distributor's Cloud Provider Table references providers by index; the
// registry owns the provider objects and answers the placement policy's
// eligibility queries (providers whose privacy level is >= a chunk's level,
// SIV-A). Providers are append-only: indices stay stable for the lifetime of
// the registry, matching the paper's table-index scheme.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "storage/provider.hpp"

namespace cshield::storage {

class ProviderRegistry {
 public:
  /// Adds a provider with an explicit latency model and RNG seed; returns
  /// its stable index.
  ProviderIndex add(ProviderDescriptor descriptor, LatencyModel latency,
                    std::uint64_t seed) {
    providers_.push_back(std::make_unique<SimCloudProvider>(
        std::move(descriptor), latency, seed));
    if (telemetry_ != nullptr) providers_.back()->attach_telemetry(telemetry_);
    return providers_.size() - 1;
  }

  ProviderIndex add(ProviderDescriptor descriptor) {
    return add(std::move(descriptor), LatencyModel{},
               0xC10D0000ULL + providers_.size());
  }

  [[nodiscard]] std::size_t size() const { return providers_.size(); }

  [[nodiscard]] SimCloudProvider& at(ProviderIndex i) {
    CS_REQUIRE(i < providers_.size(), "provider index out of range");
    return *providers_[i];
  }

  [[nodiscard]] const SimCloudProvider& at(ProviderIndex i) const {
    CS_REQUIRE(i < providers_.size(), "provider index out of range");
    return *providers_[i];
  }

  /// Finds a provider by name; kNoProvider if absent.
  [[nodiscard]] ProviderIndex find(std::string_view name) const {
    for (ProviderIndex i = 0; i < providers_.size(); ++i) {
      if (providers_[i]->descriptor().name == name) return i;
    }
    return kNoProvider;
  }

  /// Indices of providers trusted for chunks at level `pl` (provider PL >=
  /// chunk PL). Offline providers are still *eligible* -- availability is the
  /// RAID layer's problem, trust is a static property.
  [[nodiscard]] std::vector<ProviderIndex> eligible_for(PrivacyLevel pl) const {
    std::vector<ProviderIndex> out;
    for (ProviderIndex i = 0; i < providers_.size(); ++i) {
      if (privileged_for(providers_[i]->descriptor().privacy_level, pl)) {
        out.push_back(i);
      }
    }
    return out;
  }

  /// Wires every current and future provider into `tel`'s metrics registry
  /// (per-provider request counts, bytes, errors, latency histograms).
  /// Called by the distributor when its telemetry is enabled; attaching the
  /// same telemetry twice is a no-op, so several front-ends sharing one
  /// registry converge on one coherent sink.
  void attach_telemetry(const std::shared_ptr<obs::Telemetry>& tel) {
    telemetry_ = tel;
    for (const auto& p : providers_) p->attach_telemetry(tel);
  }

  /// Total monthly storage cost across all providers.
  [[nodiscard]] double total_monthly_cost_usd() const {
    double total = 0.0;
    for (const auto& p : providers_) total += p->monthly_cost_usd();
    return total;
  }

 private:
  std::vector<std::unique_ptr<SimCloudProvider>> providers_;
  std::shared_ptr<obs::Telemetry> telemetry_;
};

/// Builds a registry of `n` providers with a deterministic spread of privacy
/// and cost levels (used by examples, tests and benches). Providers cycle
/// through PL3..PL0 so every level has at least one provider when n >= 4,
/// and cheaper providers appear at every trust tier when n >= 8.
[[nodiscard]] inline ProviderRegistry make_default_registry(std::size_t n) {
  CS_REQUIRE(n > 0, "registry needs at least one provider");
  static constexpr const char* kNames[] = {
      "Adobe", "AWS", "Google", "Microsoft", "Sky", "Sea",
      "Earth", "Titans", "Spartans", "Yagamis", "Olympus", "Asgard",
      "Avalon", "Eden", "Arcadia", "Lemuria"};
  ProviderRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    ProviderDescriptor d;
    d.name = i < std::size(kNames)
                 ? kNames[i]
                 : "Provider" + std::to_string(i);
    // Trust tier cycles 3,3,2,2,1,1,0,0,... ; cost follows trust with a
    // cheaper alternative every other provider.
    const int tier = 3 - static_cast<int>((i / 2) % 4);
    d.privacy_level = privacy_level_from_int(tier);
    const int cost = (i % 2 == 0) ? tier : std::max(0, tier - 1);
    d.cost_level = static_cast<CostLevel>(cost);
    d.price_per_gb_month = 0.01 + 0.015 * cost;
    registry.add(std::move(d), LatencyModel{}, 0xFEED0000ULL + i);
  }
  return registry;
}

}  // namespace cshield::storage

// Registry of simulated cloud providers.
//
// The distributor's Cloud Provider Table references providers by index; the
// registry owns the provider objects and answers the placement policy's
// eligibility queries (providers whose privacy level is >= a chunk's level,
// SIV-A). Providers are append-only: indices stay stable for the lifetime of
// the registry, matching the paper's table-index scheme.
//
// The fleet is dynamic (§IV-C): providers join, drain and decommission at
// runtime, each carrying a ProviderLifecycle state. Only kActive providers
// are placement-eligible -- a draining provider still serves reads while the
// migrator moves its shards off, and a decommissioned one is fully out. All
// membership state lives behind one shared_mutex so a runtime add() or a
// lifecycle transition is safe against concurrent find()/eligible_for()/
// at() from serving threads; provider objects are heap-allocated, so
// references handed out by at() stay valid across adds.
#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "storage/fault_plan.hpp"
#include "storage/provider.hpp"

namespace cshield::storage {

/// Per-provider circuit breaker: quarantines a persistently failing
/// provider so callers fail fast instead of burning retry budget on it.
///
/// States: Closed (normal) -> Open after `failure_threshold` consecutive
/// kUnavailable outcomes -> HalfOpen when a probe is admitted -> Closed on
/// probe success, back to Open on probe failure. Half-open probes are
/// *count*-based, not time-based: every `probe_after`-th rejected request
/// is admitted as the probe, which keeps the breaker's whole trajectory a
/// pure function of the request stream -- the property the deterministic
/// chaos harness replays.
///
/// Breakers live in the registry (not in any one distributor) so several
/// front-ends sharing a registry (the Fig. 2 topology) share one health
/// view, and the placement policy can consult quarantine state directly.
class CircuitBreaker {
 public:
  struct Config {
    std::uint32_t failure_threshold = 4;  ///< consecutive failures to trip
    std::uint32_t probe_after = 8;        ///< rejections per half-open probe
  };

  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };
  enum class Decision : std::uint8_t { kProceed, kProbe, kReject };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Config config) : config_(config) {}

  /// Gate for one request. kProbe means "you are the half-open trial";
  /// report its outcome like any admitted request.
  [[nodiscard]] Decision admit() {
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case State::kClosed:
        return Decision::kProceed;
      case State::kHalfOpen:
        return Decision::kReject;  // one probe in flight at a time
      case State::kOpen:
        if (++rejections_ >= config_.probe_after) {
          rejections_ = 0;
          state_ = State::kHalfOpen;
          return Decision::kProbe;
        }
        return Decision::kReject;
    }
    return Decision::kProceed;
  }

  /// Reports success of an admitted request. Returns true when this closed
  /// a previously tripped breaker (the heal event).
  bool on_success() {
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_failures_ = 0;
    rejections_ = 0;
    const bool healed = state_ != State::kClosed;
    state_ = State::kClosed;
    return healed;
  }

  /// Reports a kUnavailable outcome of an admitted request. Returns true
  /// when this tripped the breaker open (the quarantine event); a failed
  /// half-open probe re-opens without counting as a fresh trip.
  bool on_failure() {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kHalfOpen) {
      state_ = State::kOpen;
      rejections_ = 0;
      return false;
    }
    if (state_ == State::kOpen) return false;
    if (++consecutive_failures_ >= config_.failure_threshold) {
      consecutive_failures_ = 0;
      rejections_ = 0;
      state_ = State::kOpen;
      return true;
    }
    return false;
  }

  [[nodiscard]] State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = State::kClosed;
    consecutive_failures_ = 0;
    rejections_ = 0;
  }

 private:
  Config config_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t rejections_ = 0;
};

class ProviderRegistry {
 public:
  ProviderRegistry() = default;

  /// Move is setup-time only (make_default_registry returns by value): the
  /// source must not be serving concurrent calls, and the destination gets
  /// a fresh mutex.
  ProviderRegistry(ProviderRegistry&& other) noexcept
      : providers_(std::move(other.providers_)),
        breakers_(std::move(other.breakers_)),
        lifecycles_(std::move(other.lifecycles_)),
        breaker_config_(other.breaker_config_),
        fault_plan_(std::move(other.fault_plan_)),
        telemetry_(std::move(other.telemetry_)) {}
  ProviderRegistry& operator=(ProviderRegistry&& other) noexcept {
    providers_ = std::move(other.providers_);
    breakers_ = std::move(other.breakers_);
    lifecycles_ = std::move(other.lifecycles_);
    breaker_config_ = other.breaker_config_;
    fault_plan_ = std::move(other.fault_plan_);
    telemetry_ = std::move(other.telemetry_);
    return *this;
  }
  ProviderRegistry(const ProviderRegistry&) = delete;
  ProviderRegistry& operator=(const ProviderRegistry&) = delete;

  /// Adds a provider with an explicit latency model, RNG seed and initial
  /// lifecycle; returns its stable index. Runtime joins pass kJoining so
  /// the new provider stays invisible to placement until it has been
  /// migrated its ring share and activated. Seed 0 derives a deterministic
  /// seed from the fleet size -- under the unique lock, so two concurrent
  /// adds can never end up with identical RNG streams.
  ProviderIndex add(ProviderDescriptor descriptor, LatencyModel latency,
                    std::uint64_t seed,
                    ProviderLifecycle lifecycle = ProviderLifecycle::kActive) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (seed == 0) seed = 0xC10D0000ULL + providers_.size();
    providers_.push_back(std::make_unique<SimCloudProvider>(
        std::move(descriptor), latency, seed));
    breakers_.push_back(std::make_unique<CircuitBreaker>(breaker_config_));
    lifecycles_.push_back(lifecycle);
    if (telemetry_ != nullptr) providers_.back()->attach_telemetry(telemetry_);
    if (fault_plan_ != nullptr) {
      providers_.back()->install_fault_plan(fault_plan_,
                                            providers_.size() - 1);
    }
    return providers_.size() - 1;
  }

  ProviderIndex add(ProviderDescriptor descriptor) {
    return add(std::move(descriptor), LatencyModel{}, 0);
  }

  [[nodiscard]] std::size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return providers_.size();
  }

  [[nodiscard]] SimCloudProvider& at(ProviderIndex i) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(i < providers_.size(), "provider index out of range");
    return *providers_[i];  // heap object: address survives future adds
  }

  [[nodiscard]] const SimCloudProvider& at(ProviderIndex i) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(i < providers_.size(), "provider index out of range");
    return *providers_[i];
  }

  /// Finds a provider by name; kNoProvider if absent.
  [[nodiscard]] ProviderIndex find(std::string_view name) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (ProviderIndex i = 0; i < providers_.size(); ++i) {
      if (providers_[i]->descriptor().name == name) return i;
    }
    return kNoProvider;
  }

  /// Indices of providers trusted for chunks at level `pl` (provider PL >=
  /// chunk PL). Offline providers are still *eligible* -- availability is the
  /// RAID layer's problem, trust is a static property -- but only kActive
  /// members are: a joining provider has no ring share yet, a draining one
  /// is being emptied, and a decommissioned one is gone.
  [[nodiscard]] std::vector<ProviderIndex> eligible_for(PrivacyLevel pl) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<ProviderIndex> out;
    for (ProviderIndex i = 0; i < providers_.size(); ++i) {
      if (lifecycles_[i] != ProviderLifecycle::kActive) continue;
      if (privileged_for(providers_[i]->descriptor().privacy_level, pl)) {
        out.push_back(i);
      }
    }
    return out;
  }

  // --- lifecycle (dynamic topology) -------------------------------------

  [[nodiscard]] ProviderLifecycle lifecycle(ProviderIndex i) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(i < lifecycles_.size(), "provider index out of range");
    return lifecycles_[i];
  }

  /// kActive -> kDraining: the provider leaves placement but keeps serving
  /// reads while the migrator empties it. Idempotent on an already-draining
  /// provider (crash-resume re-issues the transition). Refuses to retire
  /// the last placement-eligible member: the check and the transition share
  /// this one exclusive lock, so two racing drains of the final two active
  /// providers cannot both pass and strand the fleet with zero.
  Status drain(ProviderIndex i) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(i < lifecycles_.size(), "provider index out of range");
    if (lifecycles_[i] == ProviderLifecycle::kDraining) return Status::Ok();
    if (lifecycles_[i] != ProviderLifecycle::kActive) {
      return Status::FailedPrecondition(
          "drain: provider is " +
          std::string(provider_lifecycle_name(lifecycles_[i])));
    }
    bool any_other_active = false;
    for (ProviderIndex j = 0; j < lifecycles_.size(); ++j) {
      if (j != i && lifecycles_[j] == ProviderLifecycle::kActive) {
        any_other_active = true;
        break;
      }
    }
    if (!any_other_active) {
      return Status::FailedPrecondition(
          "drain: retiring " + providers_[i]->descriptor().name +
          " would leave no active provider");
    }
    lifecycles_[i] = ProviderLifecycle::kDraining;
    return Status::Ok();
  }

  /// kDraining (or kActive, for a decommission that drains inline) ->
  /// kDecommissioned. Idempotent.
  Status decommission(ProviderIndex i) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(i < lifecycles_.size(), "provider index out of range");
    if (lifecycles_[i] == ProviderLifecycle::kDecommissioned) {
      return Status::Ok();
    }
    if (lifecycles_[i] == ProviderLifecycle::kJoining) {
      return Status::FailedPrecondition("decommission: provider is joining");
    }
    lifecycles_[i] = ProviderLifecycle::kDecommissioned;
    return Status::Ok();
  }

  /// kJoining -> kActive: the join migration delivered the provider its
  /// ring share; it now takes placement. Idempotent.
  Status activate(ProviderIndex i) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(i < lifecycles_.size(), "provider index out of range");
    if (lifecycles_[i] == ProviderLifecycle::kActive) return Status::Ok();
    if (lifecycles_[i] != ProviderLifecycle::kJoining) {
      return Status::FailedPrecondition(
          "activate: provider is " +
          std::string(provider_lifecycle_name(lifecycles_[i])));
    }
    lifecycles_[i] = ProviderLifecycle::kActive;
    return Status::Ok();
  }

  /// Unchecked restore of a persisted lifecycle (recovery only: the
  /// metadata image is the authority on where a crash left the fleet).
  void restore_lifecycle(ProviderIndex i, ProviderLifecycle s) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(i < lifecycles_.size(), "provider index out of range");
    lifecycles_[i] = s;
  }

  /// Wires every current and future provider into `tel`'s metrics registry
  /// (per-provider request counts, bytes, errors, latency histograms).
  /// Called by the distributor when its telemetry is enabled; attaching the
  /// same telemetry twice is a no-op, so several front-ends sharing one
  /// registry converge on one coherent sink.
  void attach_telemetry(const std::shared_ptr<obs::Telemetry>& tel) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    telemetry_ = tel;
    for (const auto& p : providers_) p->attach_telemetry(tel);
  }

  /// Total monthly storage cost across all providers.
  [[nodiscard]] double total_monthly_cost_usd() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    double total = 0.0;
    for (const auto& p : providers_) total += p->monthly_cost_usd();
    return total;
  }

  // --- fault-tolerant request layer hooks -------------------------------

  /// Installs a scripted fault schedule into every current provider and
  /// resets all breakers, so a replay starts from a clean slate. nullptr
  /// uninstalls. Future add()s inherit the plan.
  void apply_fault_plan(std::shared_ptr<const FaultPlan> plan) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    fault_plan_ = std::move(plan);
    for (ProviderIndex i = 0; i < providers_.size(); ++i) {
      providers_[i]->install_fault_plan(fault_plan_, i);
    }
    for (const auto& b : breakers_) b->reset();
  }

  void clear_fault_plan() { apply_fault_plan(nullptr); }

  /// Replaces every breaker with a fresh one under `config` (configure
  /// before serving traffic; existing breaker state is discarded).
  void set_breaker_config(CircuitBreaker::Config config) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    breaker_config_ = config;
    for (auto& b : breakers_) b = std::make_unique<CircuitBreaker>(config);
  }

  [[nodiscard]] CircuitBreaker& breaker(ProviderIndex i) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(i < breakers_.size(), "breaker index out of range");
    return *breakers_[i];
  }

  /// True while the provider's breaker is open: writes should prefer other
  /// homes and repair should treat its shards as lost.
  [[nodiscard]] bool quarantined(ProviderIndex i) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    CS_REQUIRE(i < breakers_.size(), "breaker index out of range");
    return breakers_[i]->state() == CircuitBreaker::State::kOpen;
  }

 private:
  /// Guards the membership vectors and shared config below. Provider and
  /// breaker objects are individually synchronized, so the lock only covers
  /// the lookup, never the RPC.
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<SimCloudProvider>> providers_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<ProviderLifecycle> lifecycles_;
  CircuitBreaker::Config breaker_config_;
  std::shared_ptr<const FaultPlan> fault_plan_;
  std::shared_ptr<obs::Telemetry> telemetry_;
};

/// Builds a registry of `n` providers with a deterministic spread of privacy
/// and cost levels (used by examples, tests and benches). Providers cycle
/// through PL3..PL0 so every level has at least one provider when n >= 4,
/// and cheaper providers appear at every trust tier when n >= 8.
[[nodiscard]] inline ProviderRegistry make_default_registry(std::size_t n) {
  CS_REQUIRE(n > 0, "registry needs at least one provider");
  static constexpr const char* kNames[] = {
      "Adobe", "AWS", "Google", "Microsoft", "Sky", "Sea",
      "Earth", "Titans", "Spartans", "Yagamis", "Olympus", "Asgard",
      "Avalon", "Eden", "Arcadia", "Lemuria"};
  ProviderRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    ProviderDescriptor d;
    d.name = i < std::size(kNames)
                 ? kNames[i]
                 : "Provider" + std::to_string(i);
    // Trust tier cycles 3,3,2,2,1,1,0,0,... ; cost follows trust with a
    // cheaper alternative every other provider.
    const int tier = 3 - static_cast<int>((i / 2) % 4);
    d.privacy_level = privacy_level_from_int(tier);
    const int cost = (i % 2 == 0) ? tier : std::max(0, tier - 1);
    d.cost_level = static_cast<CostLevel>(cost);
    d.price_per_gb_month = 0.01 + 0.015 * cost;
    registry.add(std::move(d), LatencyModel{}, 0xFEED0000ULL + i);
  }
  return registry;
}

}  // namespace cshield::storage

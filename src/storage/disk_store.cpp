#include "storage/disk_store.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace cshield::storage {
namespace fs = std::filesystem;

DiskStore::DiskStore(fs::path root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  CS_REQUIRE(!ec, "DiskStore: cannot create root directory " +
                      root_.string() + ": " + ec.message());
}

fs::path DiskStore::path_of(VirtualId id) const {
  std::ostringstream name;
  name << std::hex << std::setw(16) << std::setfill('0') << id << ".obj";
  return root_ / name.str();
}

Status DiskStore::put(VirtualId id, BytesView data) {
  std::lock_guard<std::mutex> lock(mu_);
  // Write-then-rename for atomicity against concurrent readers.
  const fs::path final_path = path_of(id);
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("DiskStore: cannot open " + tmp_path.string());
    }
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) {
      return Status::Internal("DiskStore: short write to " +
                              tmp_path.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::Internal("DiskStore: rename failed: " + ec.message());
  }
  return Status::Ok();
}

Result<Bytes> DiskStore::get(VirtualId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(path_of(id), std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("object " + std::to_string(id));
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) {
    return Status::Corrupted("short read for object " + std::to_string(id));
  }
  return data;
}

Status DiskStore::remove(VirtualId id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  if (!fs::remove(path_of(id), ec) || ec) {
    return Status::NotFound("object " + std::to_string(id));
  }
  return Status::Ok();
}

bool DiskStore::contains(VirtualId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  return fs::exists(path_of(id), ec) && !ec;
}

std::size_t DiskStore::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.path().extension() == ".obj") ++count;
  }
  return count;
}

std::size_t DiskStore::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.path().extension() == ".obj") {
      bytes += static_cast<std::size_t>(entry.file_size());
    }
  }
  return bytes;
}

std::vector<VirtualId> DiskStore::list_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<VirtualId> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.path().extension() != ".obj") continue;
    const std::string stem = entry.path().stem().string();
    ids.push_back(std::strtoull(stem.c_str(), nullptr, 16));
  }
  return ids;
}

}  // namespace cshield::storage

#include "storage/disk_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace cshield::storage {
namespace fs = std::filesystem;

DiskStore::DiskStore(fs::path root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  CS_REQUIRE(!ec, "DiskStore: cannot create root directory " +
                      root_.string() + ": " + ec.message());
}

fs::path DiskStore::path_of(VirtualId id) const {
  std::ostringstream name;
  name << std::hex << std::setw(16) << std::setfill('0') << id << ".obj";
  return root_ / name.str();
}

namespace {

/// fsync the directory holding `child` so a fresh entry (from rename)
/// survives a power loss. Best-effort: some filesystems refuse directory
/// fds, and rename durability is then the mount's problem, not ours.
void fsync_parent_dir(const fs::path& child) {
  const fs::path dir = child.parent_path();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status DiskStore::put(VirtualId id, BytesView data) {
  std::lock_guard<std::mutex> lock(mu_);
  return put_locked(id, data, /*sync_dir=*/true);
}

std::vector<Status> DiskStore::put_many(const std::vector<BatchPut>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Status> statuses;
  statuses.reserve(batch.size());
  bool any_ok = false;
  for (const BatchPut& item : batch) {
    statuses.push_back(put_locked(item.id, item.data, /*sync_dir=*/false));
    any_ok = any_ok || statuses.back().ok();
  }
  // One directory fsync publishes every rename of the batch -- the batch
  // amortization this store offers. Object contents were already fsynced
  // individually above.
  if (any_ok) fsync_parent_dir(path_of(batch.front().id));
  return statuses;
}

Status DiskStore::put_locked(VirtualId id, BytesView data, bool sync_dir) {
  // Write-then-fsync-then-rename: readers never see a torn object, and
  // once put() returns Ok the bytes survive a crash. ofstream cannot
  // express fsync (close() drops errors on the floor too), so this goes
  // through raw POSIX fds and surfaces every failure as a Status.
  const fs::path final_path = path_of(id);
  const fs::path tmp_path = final_path.string() + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("DiskStore: cannot open " + tmp_path.string() +
                            ": " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::Internal("DiskStore: write to " + tmp_path.string() +
                              " failed: " + err);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Status::Internal("DiskStore: fsync of " + tmp_path.string() +
                            " failed: " + err);
  }
  if (::close(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp_path.c_str());
    return Status::Internal("DiskStore: close of " + tmp_path.string() +
                            " failed: " + err);
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    ::unlink(tmp_path.c_str());
    return Status::Internal("DiskStore: rename failed: " + ec.message());
  }
  if (sync_dir) fsync_parent_dir(final_path);
  return Status::Ok();
}

Result<Bytes> DiskStore::get(VirtualId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(path_of(id), std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("object " + std::to_string(id));
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) {
    return Status::Corrupted("short read for object " + std::to_string(id));
  }
  return data;
}

Status DiskStore::remove(VirtualId id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  if (!fs::remove(path_of(id), ec) || ec) {
    return Status::NotFound("object " + std::to_string(id));
  }
  return Status::Ok();
}

bool DiskStore::contains(VirtualId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  return fs::exists(path_of(id), ec) && !ec;
}

std::size_t DiskStore::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.path().extension() == ".obj") ++count;
  }
  return count;
}

std::size_t DiskStore::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.path().extension() == ".obj") {
      bytes += static_cast<std::size_t>(entry.file_size());
    }
  }
  return bytes;
}

std::vector<VirtualId> DiskStore::list_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<VirtualId> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.path().extension() != ".obj") continue;
    const std::string stem = entry.path().stem().string();
    ids.push_back(std::strtoull(stem.c_str(), nullptr, 16));
  }
  return ids;
}

}  // namespace cshield::storage

// File-backed ObjectStore: one file per object under a root directory,
// named by the zero-padded hex virtual id. Gives the simulated providers a
// durable variant (and demonstrates the ObjectStore interface is not tied
// to memory). Thread-safe; the filesystem is the source of truth, so two
// DiskStore instances over the same directory see each other's objects --
// which is how a restarted provider process recovers its inventory.
#pragma once

#include <filesystem>
#include <mutex>
#include <string>

#include "storage/object_store.hpp"

namespace cshield::storage {

class DiskStore final : public ObjectStore {
 public:
  /// Creates (if needed) and opens `root` as the object directory.
  explicit DiskStore(std::filesystem::path root);

  Status put(VirtualId id, BytesView data) override;
  [[nodiscard]] Result<Bytes> get(VirtualId id) const override;
  /// Batched put: each object still gets its own write+fsync+rename (so
  /// items fail independently and readers never see torn objects), but the
  /// directory fsync that publishes the renames is paid once per batch.
  std::vector<Status> put_many(const std::vector<BatchPut>& batch) override;
  Status remove(VirtualId id) override;
  [[nodiscard]] bool contains(VirtualId id) const override;
  [[nodiscard]] std::size_t object_count() const override;
  [[nodiscard]] std::size_t bytes_stored() const override;
  [[nodiscard]] std::vector<VirtualId> list_ids() const override;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  [[nodiscard]] std::filesystem::path path_of(VirtualId id) const;

  /// Shared body of put()/put_many(): write + fsync + rename under mu_,
  /// optionally followed by the parent-directory fsync.
  Status put_locked(VirtualId id, BytesView data, bool sync_dir);

  std::filesystem::path root_;
  mutable std::mutex mu_;
};

}  // namespace cshield::storage

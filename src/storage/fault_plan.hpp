// FaultPlan -- a deterministic, seeded schedule of fault episodes.
//
// Replaces ad-hoc per-provider failure probabilities with a replayable
// script: each episode covers a window of a provider's request sequence
// (its 0-based count of requests served) and injects one fault kind inside
// that window. Decisions are pure functions of (plan seed, episode index,
// provider, request sequence number), so the same plan against the same
// request stream produces byte-for-byte identical failures -- the property
// the chaos harness (tests/chaos_test.cpp) is built on. Request sequence
// numbers, not wall time, index the windows precisely because wall time is
// not replayable.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "util/hash.hpp"

namespace cshield::storage {

/// Episode wildcard: applies to every provider in the registry.
inline constexpr ProviderIndex kEveryProvider = kNoProvider;

/// Window end meaning "never ends".
inline constexpr std::uint64_t kNoSeqEnd = ~std::uint64_t{0};

enum class FaultKind : std::uint8_t {
  kTransient,  ///< each request fails independently with `probability`
  kCrash,      ///< every request in the window fails (hard outage)
  kSlow,       ///< service time is multiplied by `slow_factor`
  kFlaky,      ///< deterministic bursts: the first `burst` requests of every
               ///  `period`-length cycle fail, then the provider recovers
               ///  when the window closes ("flaky then recover")
};

[[nodiscard]] constexpr std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kTransient: return "transient";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kSlow: return "slow";
    case FaultKind::kFlaky: return "flaky";
  }
  return "?";
}

/// One scripted episode. The window [begin, end) is in the target
/// provider's request-sequence space (see SimCloudProvider::fault_requests).
struct FaultEpisode {
  ProviderIndex provider = kEveryProvider;
  FaultKind kind = FaultKind::kTransient;
  std::uint64_t begin = 0;
  std::uint64_t end = kNoSeqEnd;
  double probability = 1.0;  ///< kTransient failure probability
  double slow_factor = 4.0;  ///< kSlow service-time multiplier
  std::uint64_t period = 4;  ///< kFlaky cycle length in requests
  std::uint64_t burst = 2;   ///< kFlaky failing requests per cycle
};

/// What the plan decided for one request.
struct FaultDecision {
  bool fail = false;
  double slow_factor = 1.0;  ///< product over overlapping kSlow episodes
};

struct FaultPlan {
  std::uint64_t seed = 0xFA177;
  std::vector<FaultEpisode> episodes;

  /// Pure decision function: no state, no RNG stream to corrupt, so
  /// concurrent requests cannot perturb each other's outcomes.
  [[nodiscard]] FaultDecision decide(ProviderIndex provider,
                                     std::uint64_t seq) const {
    FaultDecision d;
    for (std::size_t e = 0; e < episodes.size(); ++e) {
      const FaultEpisode& ep = episodes[e];
      if (ep.provider != kEveryProvider && ep.provider != provider) continue;
      if (seq < ep.begin || seq >= ep.end) continue;
      switch (ep.kind) {
        case FaultKind::kCrash:
          d.fail = true;
          break;
        case FaultKind::kSlow:
          d.slow_factor *= ep.slow_factor;
          break;
        case FaultKind::kFlaky:
          if (ep.period != 0 && (seq - ep.begin) % ep.period < ep.burst) {
            d.fail = true;
          }
          break;
        case FaultKind::kTransient:
          if (unit_draw(e, provider, seq) < ep.probability) d.fail = true;
          break;
      }
    }
    return d;
  }

  /// Uniform 5%-style background noise: one transient episode covering
  /// every provider forever.
  [[nodiscard]] static FaultPlan transient(std::uint64_t seed,
                                           double probability) {
    FaultPlan plan;
    plan.seed = seed;
    FaultEpisode ep;
    ep.kind = FaultKind::kTransient;
    ep.probability = probability;
    plan.episodes.push_back(ep);
    return plan;
  }

 private:
  /// Deterministic U[0,1) keyed on (seed, episode, provider, seq).
  [[nodiscard]] double unit_draw(std::size_t episode, ProviderIndex provider,
                                 std::uint64_t seq) const {
    std::uint64_t h = hash_combine(seed, episode);
    h = hash_combine(h, provider);
    h = hash_combine(h, seq);
    return static_cast<double>(mix64(h) >> 11) * 0x1.0p-53;
  }
};

}  // namespace cshield::storage

// Simulated cloud storage provider.
//
// Stands in for a real S3/Azure/GAE endpoint (see DESIGN.md substitution
// table). Each provider has a reputation (privacy level), a cost level and a
// $/GB-month price, a latency/bandwidth model that yields *simulated* service
// times, and fault knobs covering the paper's SIII-A worries: temporary
// outage, going out of business (data loss), and silent corruption.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/types.hpp"
#include "obs/telemetry.hpp"
#include "storage/fault_plan.hpp"
#include "storage/object_store.hpp"
#include "util/random.hpp"
#include "util/sim_clock.hpp"

namespace cshield::storage {

/// Static description of a provider (one row of Table I, minus the chunk
/// list which the distributor owns).
struct ProviderDescriptor {
  std::string name;
  PrivacyLevel privacy_level = PrivacyLevel::kPublic;
  CostLevel cost_level = CostLevel::kCheapest;
  double price_per_gb_month = 0.02;  ///< USD, used by the cost accounting
};

/// Latency model: service_time = base + bytes/bandwidth + Exp(jitter) noise.
/// Defaults approximate a same-region object store (5 ms RTT, 100 MB/s).
struct LatencyModel {
  SimDuration base_latency{std::chrono::microseconds(5000)};
  double bandwidth_bytes_per_sec = 100.0 * 1024 * 1024;
  SimDuration jitter_mean{std::chrono::microseconds(500)};

  [[nodiscard]] SimDuration service_time(std::size_t bytes, Rng& rng) const {
    const double transfer_sec =
        bandwidth_bytes_per_sec > 0.0
            ? static_cast<double>(bytes) / bandwidth_bytes_per_sec
            : 0.0;
    const double jitter_sec =
        jitter_mean.count() > 0
            ? rng.exponential(1e9 / static_cast<double>(jitter_mean.count()))
            : 0.0;
    return base_latency +
           SimDuration(static_cast<std::int64_t>((transfer_sec + jitter_sec) * 1e9));
  }
};

/// Mutable fault-injection state.
struct FaultConfig {
  bool online = true;             ///< false = outage window (kUnavailable)
  double request_failure_prob = 0.0;  ///< transient per-request failures
};

/// Per-provider traffic counters (monotonic, thread-safe). Failures are
/// split by origin: `injected_failures` counts requests the fault model
/// (FaultConfig knobs or an installed FaultPlan) rejected; `io_errors`
/// counts the object store itself failing a request it accepted (missing
/// object, wiped store). Conflating the two hid real errors inside chaos
/// noise.
struct ProviderCounters {
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> removes{0};
  /// Batched RPCs served (each carries many objects but costs one round
  /// trip; per-object traffic still lands in puts/gets/bytes_*).
  std::atomic<std::uint64_t> batch_requests{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> injected_failures{0};
  std::atomic<std::uint64_t> io_errors{0};
  /// Shards of this provider the integrity scrubber found corrupt or
  /// missing (distinct from io_errors: the provider *answered*, but with
  /// bytes that fail their digest -- the paper's silent-corruption worry).
  std::atomic<std::uint64_t> scrub_errors{0};
};

/// A simulated cloud provider: descriptor + object store + latency model +
/// fault knobs. Thread-safe; many distributor worker threads hit one
/// provider concurrently.
class SimCloudProvider {
 public:
  SimCloudProvider(ProviderDescriptor descriptor, LatencyModel latency,
                   std::uint64_t seed)
      : descriptor_(std::move(descriptor)),
        latency_(latency),
        rng_(seed) {}

  explicit SimCloudProvider(ProviderDescriptor descriptor)
      : SimCloudProvider(std::move(descriptor), LatencyModel{}, 0x9D0FEED) {}

  [[nodiscard]] const ProviderDescriptor& descriptor() const {
    return descriptor_;
  }

  /// Re-rates the provider's trust tier (administrative operation, driven
  /// by the reputation tracker when observed reliability changes -- SIV-A:
  /// "privacy level of a provider indicates its reliability").
  void set_privacy_level(PrivacyLevel pl) { descriptor_.privacy_level = pl; }

  /// Realtime mode: requests actually block for `scale` x their modeled
  /// service time (0 = pure modeling, the default). Lets wall-clock
  /// benchmarks observe request overlap -- the distributor's pipelining only
  /// shows up in wall time when latency is real.
  void set_realtime_scale(double scale) {
    realtime_scale_.store(scale, std::memory_order_relaxed);
  }

  /// Wires this provider into a metrics registry: request/byte/error
  /// counters plus modeled-latency histograms under
  /// `provider.<name>.<metric>` -- the raw feed for health-based placement.
  /// Attach before serving traffic (re-attaching to a *different* registry
  /// mid-traffic is not synchronized; re-attaching the same one is a no-op).
  void attach_telemetry(const std::shared_ptr<obs::Telemetry>& tel) {
    if (tel == nullptr || tel.get() == tele_.owner) return;
    obs::MetricsRegistry& m = tel->metrics();
    const std::string prefix = "provider." + descriptor_.name + ".";
    tele_.requests = &m.counter(prefix + "requests");
    tele_.errors = &m.counter(prefix + "errors");
    tele_.injected_failures = &m.counter(prefix + "injected_failures");
    tele_.io_errors = &m.counter(prefix + "io_errors");
    tele_.scrub_errors = &m.counter(prefix + "scrub_errors");
    tele_.bytes_in = &m.counter(prefix + "bytes_in");
    tele_.bytes_out = &m.counter(prefix + "bytes_out");
    tele_.put_ns = &m.histogram(prefix + "put_ns");
    tele_.get_ns = &m.histogram(prefix + "get_ns");
    tele_.remove_ns = &m.histogram(prefix + "remove_ns");
    tele_.owner = tel.get();
    // Release pairs with the acquire in record(): a thread that observes
    // armed sees every hook pointer above.
    tele_armed_.store(true, std::memory_order_release);
  }

  /// Stores an object. `service_time`, when non-null, receives the modeled
  /// request duration (valid for both success and failure).
  Status put(VirtualId id, BytesView data,
             SimDuration* service_time = nullptr) {
    double slow = 1.0;
    Status fault = check_faults(&slow);
    const SimDuration t = scale_time(model_time(data.size()), slow);
    maybe_sleep(t);
    if (service_time != nullptr) *service_time = t;
    if (!fault.ok()) {
      record(&Tele::put_ns, t, data.size(), 0, false);
      return fault;
    }
    counters_.puts.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_in.fetch_add(data.size(), std::memory_order_relaxed);
    Status st = store_.put(id, data);
    if (st.ok() && mirror_ != nullptr) {
      st = mirror_->put(id, data);
      // Back out of memory on mirror failure: the two stores must agree.
      if (!st.ok()) (void)store_.remove(id);
    }
    if (!st.ok()) note_io_error();
    record(&Tele::put_ns, t, data.size(), 0, st.ok());
    return st;
  }

  /// Stores a batch of objects as ONE provider request: one fault decision
  /// (a batch-level fault fails every item), one modeled service time
  /// covering the whole payload, and one request-sequence tick -- batching
  /// N shards costs one round trip, which is its entire point. A scripted
  /// FaultPlan therefore sees the batch as a single request, so per-op and
  /// batched request streams consume the sequence space differently (as
  /// they would against a real endpoint). Item-level store/mirror failures
  /// stay independent; the returned statuses align with `batch`.
  std::vector<Status> put_many(const std::vector<BatchPut>& batch,
                               SimDuration* service_time = nullptr) {
    double slow = 1.0;
    Status fault = check_faults(&slow);
    std::size_t total_bytes = 0;
    for (const BatchPut& item : batch) total_bytes += item.data.size();
    const SimDuration t = scale_time(model_time(total_bytes), slow);
    maybe_sleep(t);
    if (service_time != nullptr) *service_time = t;
    counters_.batch_requests.fetch_add(1, std::memory_order_relaxed);
    if (!fault.ok()) {
      record(&Tele::put_ns, t, total_bytes, 0, false);
      return std::vector<Status>(batch.size(), fault);
    }
    // Accepted-request accounting, matching put(): every item the fault
    // model admitted counts, store failures surface as io_errors below.
    counters_.puts.fetch_add(batch.size(), std::memory_order_relaxed);
    counters_.bytes_in.fetch_add(total_bytes, std::memory_order_relaxed);
    std::vector<Status> statuses = store_.put_many(batch);
    if (mirror_ != nullptr) {
      // Mirror the surviving items through the mirror's own batched path
      // (a DiskStore mirror then pays one directory fsync per batch), and
      // back each mirror failure out of memory: the two stores must agree.
      std::vector<BatchPut> survivors;
      std::vector<std::size_t> survivor_index;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!statuses[i].ok()) continue;
        survivors.push_back(batch[i]);
        survivor_index.push_back(i);
      }
      const std::vector<Status> mirrored = mirror_->put_many(survivors);
      for (std::size_t s = 0; s < mirrored.size(); ++s) {
        if (mirrored[s].ok()) continue;
        (void)store_.remove(survivors[s].id);
        statuses[survivor_index[s]] = mirrored[s];
      }
    }
    bool all_ok = true;
    for (const Status& st : statuses) {
      if (st.ok()) continue;
      note_io_error();
      all_ok = false;
    }
    record(&Tele::put_ns, t, total_bytes, 0, all_ok);
    return statuses;
  }

  [[nodiscard]] Result<Bytes> get(VirtualId id,
                                  SimDuration* service_time = nullptr) {
    double slow = 1.0;
    Status fault = check_faults(&slow);
    if (!fault.ok()) {
      const SimDuration t = scale_time(model_time(0), slow);
      if (service_time != nullptr) *service_time = t;
      record(&Tele::get_ns, t, 0, 0, false);
      return fault;
    }
    Result<Bytes> r = store_.get(id);
    const std::size_t n = r.ok() ? r.value().size() : 0;
    const SimDuration t = scale_time(model_time(n), slow);
    maybe_sleep(t);
    if (service_time != nullptr) *service_time = t;
    if (r.ok()) {
      counters_.gets.fetch_add(1, std::memory_order_relaxed);
      counters_.bytes_out.fetch_add(n, std::memory_order_relaxed);
    } else {
      note_io_error();
    }
    record(&Tele::get_ns, t, 0, n, r.ok());
    return r;
  }

  /// Batched fetch mirroring put_many: one fault decision, one modeled
  /// round trip sized by the bytes actually returned, one sequence tick.
  /// Results align with `ids`; misses fail individually with kNotFound.
  [[nodiscard]] std::vector<Result<Bytes>> get_many(
      const std::vector<VirtualId>& ids,
      SimDuration* service_time = nullptr) {
    double slow = 1.0;
    Status fault = check_faults(&slow);
    counters_.batch_requests.fetch_add(1, std::memory_order_relaxed);
    if (!fault.ok()) {
      const SimDuration t = scale_time(model_time(0), slow);
      if (service_time != nullptr) *service_time = t;
      record(&Tele::get_ns, t, 0, 0, false);
      return std::vector<Result<Bytes>>(ids.size(), Result<Bytes>(fault));
    }
    std::vector<Result<Bytes>> results = store_.get_many(ids);
    std::size_t total_bytes = 0;
    bool all_ok = true;
    for (const Result<Bytes>& r : results) {
      if (r.ok()) {
        total_bytes += r.value().size();
      } else {
        all_ok = false;
      }
    }
    const SimDuration t = scale_time(model_time(total_bytes), slow);
    maybe_sleep(t);
    if (service_time != nullptr) *service_time = t;
    for (const Result<Bytes>& r : results) {
      if (r.ok()) {
        counters_.gets.fetch_add(1, std::memory_order_relaxed);
        counters_.bytes_out.fetch_add(r.value().size(),
                                      std::memory_order_relaxed);
      } else {
        note_io_error();
      }
    }
    record(&Tele::get_ns, t, 0, total_bytes, all_ok);
    return results;
  }

  Status remove(VirtualId id, SimDuration* service_time = nullptr) {
    double slow = 1.0;
    Status fault = check_faults(&slow);
    const SimDuration t = scale_time(model_time(0), slow);
    maybe_sleep(t);
    if (service_time != nullptr) *service_time = t;
    if (!fault.ok()) {
      record(&Tele::remove_ns, t, 0, 0, false);
      return fault;
    }
    counters_.removes.fetch_add(1, std::memory_order_relaxed);
    Status st = store_.remove(id);
    if (mirror_ != nullptr) {
      const Status m = mirror_->remove(id);
      // The mirror may legitimately lack the object (attached mid-life).
      if (st.ok() && !m.ok() && m.code() != ErrorCode::kNotFound) st = m;
    }
    if (!st.ok()) note_io_error();
    record(&Tele::remove_ns, t, 0, 0, st.ok());
    return st;
  }

  [[nodiscard]] bool contains(VirtualId id) const { return store_.contains(id); }
  [[nodiscard]] std::size_t object_count() const { return store_.object_count(); }
  [[nodiscard]] std::size_t bytes_stored() const { return store_.bytes_stored(); }
  [[nodiscard]] std::vector<VirtualId> list_ids() const { return store_.list_ids(); }

  /// Monthly storage cost at the provider's price.
  [[nodiscard]] double monthly_cost_usd() const {
    return static_cast<double>(store_.bytes_stored()) / (1024.0 * 1024.0 * 1024.0) *
           descriptor_.price_per_gb_month;
  }

  [[nodiscard]] const ProviderCounters& counters() const { return counters_; }

  // --- fault injection -------------------------------------------------

  /// Starts/ends an outage window (requests return kUnavailable while down).
  void set_online(bool online) {
    std::lock_guard<std::mutex> lock(mu_);
    faults_.online = online;
  }

  [[nodiscard]] bool online() const {
    std::lock_guard<std::mutex> lock(mu_);
    return faults_.online;
  }

  /// Transient failure probability for each request.
  void set_request_failure_prob(double p) {
    std::lock_guard<std::mutex> lock(mu_);
    faults_.request_failure_prob = p;
  }

  /// Installs a scripted fault schedule (see fault_plan.hpp); this provider
  /// answers to `self` in the plan's episodes. Resets the request-sequence
  /// counter so an identical request stream replays identical faults.
  /// nullptr uninstalls. Composes with the legacy FaultConfig knobs (both
  /// are consulted).
  void install_fault_plan(std::shared_ptr<const FaultPlan> plan,
                          ProviderIndex self) {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = std::move(plan);
    plan_self_ = self;
    plan_seq_ = 0;
  }

  /// Requests seen since the fault plan was installed (the plan's
  /// sequence-space clock; advances on every request, faulted or not).
  [[nodiscard]] std::uint64_t fault_requests() const {
    std::lock_guard<std::mutex> lock(mu_);
    return plan_seq_;
  }

  /// Provider exits the market: all stored data is gone and it stays down.
  void go_out_of_business() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      faults_.online = false;
    }
    store_.wipe();
  }

  /// Silently corrupts one stored byte (attack/integrity experiments).
  Status corrupt_object(VirtualId id, std::size_t offset) {
    return store_.flip_byte(id, offset);
  }

  /// Direct access for the attack harness: a compromised provider exposes
  /// its whole object map to the adversary.
  [[nodiscard]] const MemoryStore& raw_store() const { return store_; }

  /// Write-through mirror: after this call, every successful put/remove is
  /// replayed into `mirror` (e.g. a DiskStore), so the provider's inventory
  /// survives a process crash the instant the request returns OK. A mirror
  /// failure fails the request (and backs the object out of memory) --
  /// half-durable success would lie to the journal's commit records. Set
  /// before serving traffic (not synchronized against in-flight requests);
  /// `mirror` must outlive the provider. nullptr detaches.
  void set_mirror(ObjectStore* mirror) { mirror_ = mirror; }

  /// Charged by the integrity scrubber when a shard held here failed its
  /// digest or vanished (see core/scrubber.hpp).
  void note_scrub_error() {
    counters_.scrub_errors.fetch_add(1, std::memory_order_relaxed);
    if (tele_armed_.load(std::memory_order_acquire) && tele_.owner->enabled()) {
      tele_.scrub_errors->inc();
    }
  }

 private:
  /// One fault decision per request: legacy knobs first, then the scripted
  /// plan. `slow` (never null) receives the plan's service-time multiplier
  /// for this request, valid whether or not the request fails.
  Status check_faults(double* slow) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t seq = plan_seq_++;
    if (!faults_.online) {
      note_injected();
      return Status::Unavailable(descriptor_.name + " is offline");
    }
    if (faults_.request_failure_prob > 0.0 &&
        rng_.chance(faults_.request_failure_prob)) {
      note_injected();
      return Status::Unavailable(descriptor_.name + " transient failure");
    }
    if (plan_ != nullptr) {
      const FaultDecision d = plan_->decide(plan_self_, seq);
      *slow = d.slow_factor;
      if (d.fail) {
        note_injected();
        return Status::Unavailable(descriptor_.name + " fault injected (seq " +
                                   std::to_string(seq) + ")");
      }
    }
    return Status::Ok();
  }

  SimDuration model_time(std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    return latency_.service_time(bytes, rng_);
  }

  [[nodiscard]] static SimDuration scale_time(SimDuration t, double factor) {
    if (factor == 1.0) return t;
    return SimDuration(static_cast<std::int64_t>(
        static_cast<double>(t.count()) * factor));
  }

  void note_injected() {
    counters_.injected_failures.fetch_add(1, std::memory_order_relaxed);
    if (tele_armed_.load(std::memory_order_acquire) && tele_.owner->enabled()) {
      tele_.injected_failures->inc();
    }
  }

  void note_io_error() {
    counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
    if (tele_armed_.load(std::memory_order_acquire) && tele_.owner->enabled()) {
      tele_.io_errors->inc();
    }
  }

  /// Per-provider telemetry hooks, cached once at attach so the request
  /// path pays one acquire load + one enabled() check when disarmed.
  struct Tele {
    obs::Telemetry* owner = nullptr;  ///< identity only; lifetime is held
                                      ///  by whoever attached us
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* injected_failures = nullptr;
    obs::Counter* io_errors = nullptr;
    obs::Counter* scrub_errors = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Histogram* put_ns = nullptr;
    obs::Histogram* get_ns = nullptr;
    obs::Histogram* remove_ns = nullptr;
  };

  void record(obs::Histogram* Tele::*hist, SimDuration t, std::size_t in,
              std::size_t out, bool ok) {
    if (!tele_armed_.load(std::memory_order_acquire)) return;
    if (!tele_.owner->enabled()) return;
    tele_.requests->inc();
    if (!ok) tele_.errors->inc();
    if (in != 0) tele_.bytes_in->inc(in);
    if (out != 0) tele_.bytes_out->inc(out);
    (tele_.*hist)->observe(static_cast<double>(t.count()));
  }

  // Sleeps outside mu_ so concurrent requests to one provider overlap.
  void maybe_sleep(SimDuration t) const {
    const double scale = realtime_scale_.load(std::memory_order_relaxed);
    if (scale <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        static_cast<std::int64_t>(static_cast<double>(t.count()) * scale)));
  }

  ProviderDescriptor descriptor_;
  LatencyModel latency_;
  MemoryStore store_;
  ObjectStore* mirror_ = nullptr;  ///< write-through target, see set_mirror
  ProviderCounters counters_;
  Tele tele_;
  std::atomic<bool> tele_armed_{false};
  mutable std::mutex mu_;
  FaultConfig faults_;
  std::shared_ptr<const FaultPlan> plan_;  ///< guarded by mu_
  ProviderIndex plan_self_ = kNoProvider;
  std::uint64_t plan_seq_ = 0;  ///< requests seen since plan install
  Rng rng_;
  std::atomic<double> realtime_scale_{0.0};
};

}  // namespace cshield::storage

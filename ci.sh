#!/usr/bin/env bash
# CI entry point: tier-1 verification + sanitizer passes + throughput gate.
#
#   ./ci.sh          # everything below
#   ./ci.sh fast     # tier-1 build + ctest only
#
# Stages:
#   1. tier-1: default build, full ctest suite (the ROADMAP acceptance bar)
#   2. asan:   -DCSHIELD_SANITIZE=address, full ctest suite (includes
#              obs_test, so the telemetry layer runs under ASan here)
#   3. tsan:   -DCSHIELD_SANITIZE=thread, concurrency_test (the shared-
#              MetadataStore / two-front-end interleaving harness, telemetry
#              on) + obs_test (metrics/tracer semantics under TSan) +
#              chaos_test (retry/hedge/breaker layer under injected faults)
#   4. bench:  bench_throughput writes BENCH_throughput.json at the repo
#              root and exits non-zero unless the pipelined engine beats the
#              serial baseline by >= 3x on 64-chunk put AND get, AND the
#              telemetry overhead gate holds (enabled vs disabled telemetry
#              within 5% on the 64-chunk put+get pair; recorded under
#              "overhead_gate" in the JSON), AND the fault smoke passes (5%
#              seeded transient faults absorbed with zero client errors;
#              recorded under "fault_smoke").
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== [1/4] tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
(cd build && ctest --output-on-failure -j "${jobs}")

if [[ "${1:-}" == "fast" ]]; then
  echo "fast mode: skipping sanitizer and bench stages"
  exit 0
fi

echo "== [2/4] address sanitizer: build + ctest =="
cmake -B build-asan -S . -DCSHIELD_SANITIZE=address >/dev/null
cmake --build build-asan -j "${jobs}"
(cd build-asan && ctest --output-on-failure -j "${jobs}")

echo "== [3/4] thread sanitizer: concurrency_test + obs_test + chaos_test =="
cmake -B build-tsan -S . -DCSHIELD_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${jobs}" --target concurrency_test obs_test \
  chaos_test
./build-tsan/tests/concurrency_test
./build-tsan/tests/obs_test
./build-tsan/tests/chaos_test

echo "== [4/4] throughput gate: bench_throughput =="
./build/bench/bench_throughput BENCH_throughput.json

echo "== ci.sh: all stages passed =="

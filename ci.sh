#!/usr/bin/env bash
# CI entry point: tier-1 verification + sanitizer passes + throughput gate.
#
#   ./ci.sh          # everything below
#   ./ci.sh fast     # tier-1 build + ctest only
#
# Stages:
#   1. tier-1: default build, full ctest suite (the ROADMAP acceptance bar)
#   2. asan:   -DCSHIELD_SANITIZE=address, full ctest suite (includes
#              obs_test and recovery_test, so the telemetry layer, the
#              journal codec fuzz sweeps, and the crash-injection harness
#              all run under ASan here)
#   3. tsan:   -DCSHIELD_SANITIZE=thread, concurrency_test (the shared-
#              MetadataStore / two-front-end interleaving harness, telemetry
#              on) + obs_test (metrics/tracer semantics under TSan) +
#              chaos_test (retry/hedge/breaker layer under injected faults)
#              + recovery_test (journal append path + background scrubber
#              thread against live traffic, including the group-commit
#              multi-threaded append hammer and its crash-at-every-batch-
#              boundary replay checks) + health_test (the exporter sampler
#              thread and watchdog polling racing live metric writers)
#              + fragmentation_test (the differential/property battery for
#              the fast-fragmentation entangle/detangle kernels, including
#              the arm-switching bit-identity sweep)
#              + migration_test (the provider-lifecycle registry hammer --
#              concurrent drain/activate churn against eligibility readers
#              -- plus the background Migrator running alongside live reads)
#              + shardplane_test (the N-way partitioned metadata/journal
#              plane: 8 front-ends x 64 clients hammering a shared 4-shard
#              plane, routing-discipline checks, and the per-shard
#              crash-at-every-append-boundary recovery sweep)
#   4. crash-e2e: scripted end-to-end crash drill against cshield_cli on a
#              disk-backed root: put files, kill the process mid-stripe via
#              CSHIELD_CRASH_AFTER_APPENDS (it _exit(42)s inside a journal
#              append, before the record hits disk), restart, `recover`,
#              and verify every committed file reads back byte-identical,
#              the in-flight put is aborted with its orphan shards GC'd,
#              and a second `recover` is a no-op. The drill runs twice:
#              once with the default per-op commit and once with journal
#              group commit enabled (--batch-ops 8 --batch-ms 2), so the
#              crash/recover contract is proven identical under batching.
#              A sharded pass repeats the drill on a 4-way partitioned
#              metadata plane (--meta-shards 4): the crash tears one
#              shard's journal, recovery replays all four in parallel, and
#              the shard-count discipline is then checked directly --
#              `stats` with no flag auto-detects 4 shards from the journal
#              stamp, an explicit matching --meta-shards 4 is accepted, and
#              a mismatched --meta-shards 2 is rejected with a clear
#              "shard count mismatch" error before any mutation.
#              A third pass round-trips a file stored with `put ...
#              --protection fragmentation`, proving the key-less entangled
#              protection mode survives a full process restart (metadata v2
#              persistence of the mode + nonce) and reads back byte-identical.
#              A fourth drill (run against the ASan-built cli) covers the
#              dynamic-topology migration: join a 9th provider, kill the
#              process mid-drain via the same crash hook, verify the restart
#              reports the provider still draining with the migration
#              pending, `recover` resumes and finishes it, a second
#              `recover` is a no-op, and the file reads back byte-identical
#              before the drained provider is decommissioned.
#   5. ops-plane e2e: cshield_cli with --export-file on a real workload;
#              the JSONL sample stream must be non-empty and the final
#              Prometheus exposition must pass promtool-style line
#              validation (every line a `# TYPE` declaration or a
#              `name{labels} value` sample) and carry the build-info and
#              process gauges; `cshield_cli health` must report a healthy
#              deployment (exit 0) with every SLO listed.
#   6. forced-scalar: -DCSHIELD_FORCE_SCALAR=ON + ASan build that compiles
#              the SIMD kernel arms out entirely, then runs kernels_test,
#              crypto_test, fragmentation_test, and raid_test so the portable
#              scalar/SWAR data plane is exercised under a sanitizer. The
#              TSan binaries from stage 3 are also re-run with the
#              CSHIELD_FORCE_SCALAR=1 env override, covering the runtime
#              (no-rebuild) dispatch path.
#   7. bench:  bench_throughput writes BENCH_throughput.json at the repo
#              root and exits non-zero unless the pipelined engine beats the
#              serial baseline by >= 3x on 64-chunk put AND get, AND the
#              telemetry overhead gate holds (enabled vs disabled telemetry
#              within 5% on the 64-chunk put+get pair, with the metrics
#              exporter sampling at 100 ms on the enabled side; recorded
#              under "overhead_gate" in the JSON), AND the journal gate holds
#              (put throughput with the WAL enabled within 10% of the
#              no-journal baseline; recorded under "journal_gate"), AND the
#              small-op gate holds (group commit + batched shard RPCs give
#              >= 3x put ops/sec over per-op commit at 64 concurrent
#              clients on 1-8 KiB files; full per-op/group-commit/batched
#              curves land in BENCH_smallops.json), AND the
#              fault smoke passes (5% seeded transient faults absorbed with
#              zero client errors; recorded under "fault_smoke"). Then
#              bench_kernels writes BENCH_kernels.json and exits non-zero
#              unless (on SIMD hosts) the vectorized mul_add and xor arms
#              are >= 4x the scalar byte loops and targeted shard rebuild
#              is >= 2x the old decode+re-encode path. Then
#              bench_encryption_vs_fragmentation writes BENCH_frontier.json
#              and exits non-zero unless the privacy/perf frontier gate
#              holds: for at least one privacy level, fast-fragmentation
#              sustains >= 2x partial-AES put AND get throughput under every
#              measured kernel arm (scalar always; the active SIMD arm too
#              when different) while giving a colluding k-of-n adversary no
#              more plaintext coverage than partial-AES does. Then
#              bench_migration writes BENCH_migration.json and exits
#              non-zero unless a single provider join AND a single drain
#              each relocate <= 35% of live shard slots (vs ~100% for a
#              naive rehash) with every file byte-identical after, and a
#              throttled background drain under 5% transient faults serves
#              every concurrent read with zero failures. Then
#              bench_shardplane writes BENCH_shardplane.json and exits
#              non-zero unless the shard-plane gates hold at 64 clients:
#              a 4-shard plane sustains >= 2x the per-op put ops/sec of a
#              single-shard plane (median of rep-paired ratios), group
#              commit + batched RPCs on the 4-shard plane keep the PR 6
#              >= 3x small-op gate (with an honest single-core fallback
#              form recorded in the JSON), and parallel recovery of 4
#              torn journals beats sequential replay by >= 1.5x wall
#              clock (or, on single-core hosts, stays within 25% paired
#              overhead while the per-shard critical path shows >= 1.5x
#              headroom).
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== [1/7] tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
(cd build && ctest --output-on-failure -j "${jobs}")

if [[ "${1:-}" == "fast" ]]; then
  echo "fast mode: skipping sanitizer, crash-e2e, and bench stages"
  exit 0
fi

echo "== [2/7] address sanitizer: build + ctest =="
cmake -B build-asan -S . -DCSHIELD_SANITIZE=address >/dev/null
cmake --build build-asan -j "${jobs}"
(cd build-asan && ctest --output-on-failure -j "${jobs}")

echo "== [3/7] thread sanitizer: concurrency_test + obs_test + chaos_test + recovery_test + health_test + fragmentation_test + migration_test + shardplane_test =="
cmake -B build-tsan -S . -DCSHIELD_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${jobs}" --target concurrency_test obs_test \
  chaos_test recovery_test health_test fragmentation_test migration_test \
  shardplane_test
./build-tsan/tests/concurrency_test
./build-tsan/tests/obs_test
./build-tsan/tests/chaos_test
./build-tsan/tests/recovery_test
./build-tsan/tests/health_test
./build-tsan/tests/fragmentation_test
./build-tsan/tests/migration_test
./build-tsan/tests/shardplane_test

echo "== [4/7] crash e2e: put, kill mid-stripe, recover, verify =="
cli=./build/examples/cshield_cli
e2e="$(mktemp -d /tmp/cshield_e2e.XXXXXX)"
trap 'rm -rf "${e2e}"' EXIT

# crash_drill <label> [cli flags...]: the full drill against a fresh root.
# Extra flags (e.g. --batch-ops/--batch-ms) apply to every cli invocation,
# so the crash, the recovery replay, and the reads all run under the same
# journal commit mode.
crash_drill() {
  local label="$1"; shift
  local dir="${e2e}/${label}"
  local root="${dir}/root"
  mkdir -p "${dir}"

  "${cli}" "${root}" init 12 "$@"
  "${cli}" "${root}" adduser alice secret 2 "$@"

  # Commit three files; each put journals kBeginPut + kCommitPut and the
  # write-through mirror makes every shard durable before put returns.
  local i
  for i in 1 2 3; do
    head -c $((4000 * i)) /dev/urandom > "${dir}/f${i}.bin"
    "${cli}" "${root}" put alice secret "f${i}" "${dir}/f${i}.bin" 2 "$@"
  done

  # Kill the fourth put mid-stripe: the first append (kBeginPut) lands, the
  # process dies inside the second (kCommitPut) before it reaches disk. That
  # leaves an in-flight put whose shards are on-disk orphans.
  head -c 9000 /dev/urandom > "${dir}/f4.bin"
  set +e
  CSHIELD_CRASH_AFTER_APPENDS=1 \
    "${cli}" "${root}" put alice secret f4 "${dir}/f4.bin" 2 "$@"
  local crash_rc=$?
  set -e
  if [[ "${crash_rc}" -ne 42 ]]; then
    echo "crash e2e[${label}]: expected injected crash exit 42, got ${crash_rc}" >&2
    exit 1
  fi

  # Restart + reconcile: the torn journal replays, the in-flight put is
  # aborted, and its orphan shards are collected.
  local recover_out
  recover_out="$("${cli}" "${root}" recover "$@")"
  echo "${recover_out}"
  if ! grep -q "recover OK" <<< "${recover_out}"; then
    echo "crash e2e[${label}]: first recover failed" >&2
    exit 1
  fi
  if grep -q "recover OK: 0 orphan" <<< "${recover_out}"; then
    echo "crash e2e[${label}]: expected orphan shards from the aborted put, found none" >&2
    exit 1
  fi
  if ! grep -q "1 in-flight puts aborted" <<< "${recover_out}"; then
    echo "crash e2e[${label}]: expected exactly one aborted in-flight put" >&2
    exit 1
  fi

  # A second recover must be a no-op: nothing left to abort or collect.
  local recover_again
  recover_again="$("${cli}" "${root}" recover "$@")"
  echo "${recover_again}"
  if ! grep -q "recover OK: 0 orphan shards removed, 0 stale ids dropped, 0 in-flight puts aborted, 0 shards repaired" \
      <<< "${recover_again}"; then
    echo "crash e2e[${label}]: second recover was not idempotent" >&2
    exit 1
  fi

  # Every committed file must read back byte-identical; the aborted one must
  # be gone entirely.
  for i in 1 2 3; do
    "${cli}" "${root}" get alice secret "f${i}" "${dir}/f${i}.out" "$@"
    cmp "${dir}/f${i}.bin" "${dir}/f${i}.out"
  done
  if "${cli}" "${root}" get alice secret f4 "${dir}/f4.out" "$@" 2>/dev/null; then
    echo "crash e2e[${label}]: aborted put f4 is unexpectedly readable" >&2
    exit 1
  fi

  # Scrub the recovered deployment: a clean pass must find zero mismatches.
  local scrub_out
  scrub_out="$("${cli}" "${root}" scrub "$@")"
  echo "${scrub_out}"
  if ! grep -q "0 digest mismatches" <<< "${scrub_out}"; then
    echo "crash e2e[${label}]: scrub found mismatches on a recovered deployment" >&2
    exit 1
  fi
  echo "crash e2e[${label}]: PASS"
}

# Same drill, both journal commit modes: the crash/recover contract must be
# indistinguishable with group commit enabled.
crash_drill per-op
crash_drill group-commit --batch-ops 8 --batch-ms 2

# Sharded pass: the identical drill on a 4-way partitioned metadata plane.
# The injected crash tears whichever shard's journal the fourth put routes
# to, and `recover` replays all four journals in parallel.
crash_drill meta-shards-4 --meta-shards 4

# Shard-count discipline on the recovered 4-shard root: the journal stamp
# is the source of truth. No flag -> auto-detect 4 shards; a matching flag
# is accepted; a mismatched flag must be rejected up front with a clear
# error, leaving the plane untouched.
shard_root="${e2e}/meta-shards-4/root"
stats_out="$("${cli}" "${shard_root}" stats)"
if ! grep -q -- "--- journal (4 shards) ---" <<< "${stats_out}"; then
  echo "shard e2e: stats did not auto-detect the 4-shard plane" >&2
  exit 1
fi
for k in 0 1 2 3; do
  if ! grep -q "^shard ${k}: " <<< "${stats_out}"; then
    echo "shard e2e: stats output is missing shard ${k}" >&2
    exit 1
  fi
done
"${cli}" "${shard_root}" stats --meta-shards 4 >/dev/null
set +e
mismatch_out="$("${cli}" "${shard_root}" stats --meta-shards 2 2>&1)"
mismatch_rc=$?
set -e
if [[ "${mismatch_rc}" -eq 0 ]]; then
  echo "shard e2e: --meta-shards 2 on a 4-shard plane was not rejected" >&2
  exit 1
fi
if ! grep -q "shard count mismatch" <<< "${mismatch_out}"; then
  echo "shard e2e: mismatch rejection lacks the 'shard count mismatch' error" >&2
  exit 1
fi
echo "crash e2e[shard-count discipline]: PASS"

# Fast-fragmentation protection mode e2e: store a file with the key-less
# entangled mode, then read it back from fresh processes. The mode and its
# nonce must round-trip through the v2 metadata image across the restart.
frag="${e2e}/frag"
frag_root="${frag}/root"
mkdir -p "${frag}"
"${cli}" "${frag_root}" init 12
"${cli}" "${frag_root}" adduser alice secret 3
head -c 50000 /dev/urandom > "${frag}/f1.bin"
"${cli}" "${frag_root}" put alice secret f1 "${frag}/f1.bin" 3 \
  --protection fragmentation
"${cli}" "${frag_root}" get alice secret f1 "${frag}/f1.out"
cmp "${frag}/f1.bin" "${frag}/f1.out"
echo "crash e2e[fragmentation round-trip]: PASS"

# Migration crash drill, run under ASan: join a provider, kill the process
# mid-drain (the crash hook fires inside the 3rd journal append -- after
# kBeginMigrate and a couple of shard moves, before the drain completes),
# then prove the restart sees the pending drain, `recover` resumes and
# finishes it, recovery is idempotent, and no byte of the file was lost.
asan_cli=./build-asan/examples/cshield_cli
mig="${e2e}/migration"
mig_root="${mig}/root"
mkdir -p "${mig}"
"${asan_cli}" "${mig_root}" init 8
"${asan_cli}" "${mig_root}" adduser alice secret 2
head -c 100000 /dev/urandom > "${mig}/f1.bin"
"${asan_cli}" "${mig_root}" put alice secret f1 "${mig}/f1.bin" 2

join_out="$("${asan_cli}" "${mig_root}" add-provider Zephyr 3 2)"
echo "${join_out}"
if ! grep -q "join Zephyr OK" <<< "${join_out}"; then
  echo "migration e2e: join of Zephyr did not complete" >&2
  exit 1
fi
"${asan_cli}" "${mig_root}" get alice secret f1 "${mig}/f1.join.out"
cmp "${mig}/f1.bin" "${mig}/f1.join.out"

set +e
CSHIELD_CRASH_AFTER_APPENDS=3 \
  "${asan_cli}" "${mig_root}" drain Zephyr
mig_rc=$?
set -e
if [[ "${mig_rc}" -ne 42 ]]; then
  echo "migration e2e: expected injected crash exit 42, got ${mig_rc}" >&2
  exit 1
fi

# The restarted world must report the interrupted drain, not hide it.
providers_out="$("${asan_cli}" "${mig_root}" providers)"
echo "${providers_out}"
if ! grep -q "draining" <<< "${providers_out}"; then
  echo "migration e2e: Zephyr is not reported as draining after the crash" >&2
  exit 1
fi
if ! grep -q "drain pending" <<< "${providers_out}"; then
  echo "migration e2e: pending drain not surfaced after the crash" >&2
  exit 1
fi

# recover sweeps the orphan the mid-move crash left, then resumes the drain.
mig_recover="$("${asan_cli}" "${mig_root}" recover)"
echo "${mig_recover}"
if ! grep -q "resuming drain of Zephyr" <<< "${mig_recover}"; then
  echo "migration e2e: recover did not resume the pending drain" >&2
  exit 1
fi
if ! grep -q "drain Zephyr OK" <<< "${mig_recover}"; then
  echo "migration e2e: resumed drain did not complete" >&2
  exit 1
fi

# Idempotent: a second recover has nothing to collect and nothing to resume.
mig_again="$("${asan_cli}" "${mig_root}" recover)"
echo "${mig_again}"
if ! grep -q "recover OK: 0 orphan shards removed" <<< "${mig_again}"; then
  echo "migration e2e: second recover was not a no-op" >&2
  exit 1
fi
if grep -q "resuming" <<< "${mig_again}"; then
  echo "migration e2e: second recover re-ran a completed migration" >&2
  exit 1
fi

"${asan_cli}" "${mig_root}" get alice secret f1 "${mig}/f1.drain.out"
cmp "${mig}/f1.bin" "${mig}/f1.drain.out"
decomm_out="$("${asan_cli}" "${mig_root}" decommission Zephyr)"
echo "${decomm_out}"
if ! grep -q "decommission Zephyr OK" <<< "${decomm_out}"; then
  echo "migration e2e: decommission of the drained provider failed" >&2
  exit 1
fi
echo "crash e2e[migration drain]: PASS"

echo "== [5/7] ops plane e2e: --export-file stream + exposition validation + health =="
ops="${e2e}/ops"
ops_root="${ops}/root"
mkdir -p "${ops}"
"${cli}" "${ops_root}" init 12
"${cli}" "${ops_root}" adduser alice secret 2
head -c 60000 /dev/urandom > "${ops}/f1.bin"
"${cli}" "${ops_root}" put alice secret f1 "${ops}/f1.bin" 2 \
  --export-file "${ops}/put.jsonl"
"${cli}" "${ops_root}" get alice secret f1 "${ops}/f1.out" \
  --export-file "${ops}/get.jsonl"
cmp "${ops}/f1.bin" "${ops}/f1.out"

# Each command's JSONL stream: at least one sample line, each a single
# JSON object stamped with t_ns.
for stream in put get; do
  if [[ "$(grep -c '^{"t_ns":' "${ops}/${stream}.jsonl")" -lt 1 ]]; then
    echo "ops e2e: expected >= 1 JSONL sample in ${stream}.jsonl" >&2
    exit 1
  fi
done

# Promtool-style validation of each exposition: every non-empty line is a
# `# TYPE name counter|gauge|histogram` declaration or a `name{labels}
# value` sample, and the required series are present (the op counter the
# command itself bumped, plus the build-info/process/watchdog series).
validate_prom() {
  local prom="$1"; shift
  awk '
    /^$/ { next }
    /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$/ { next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?$/ { next }
    { print "ops e2e: malformed exposition line: " $0; bad = 1 }
    END { exit bad }
  ' "${prom}"
  local series
  for series in cshield_build_info process_uptime_seconds \
      watchdog_inflight_ops "$@"; do
    if ! grep -q "^${series}" "${prom}"; then
      echo "ops e2e: ${prom} is missing ${series}" >&2
      exit 1
    fi
  done
}
validate_prom "${ops}/put.jsonl.prom" cdd_put_file_total
validate_prom "${ops}/get.jsonl.prom" cdd_get_file_total

# The health engine on a freshly exercised deployment: exit 0 (not
# critical), every subsystem SLO present, overall healthy.
health_out="$("${cli}" "${ops_root}" health)"
echo "${health_out}"
if ! grep -q "^overall: healthy" <<< "${health_out}"; then
  echo "ops e2e: expected a healthy deployment" >&2
  exit 1
fi
for slo in availability latency.put latency.get journal.flush \
    scrub.integrity breakers batcher.queue migration; do
  if ! grep -q "  ${slo}: " <<< "${health_out}"; then
    echo "ops e2e: health report is missing SLO ${slo}" >&2
    exit 1
  fi
done
echo "ops e2e: PASS"

echo "== [6/7] forced-scalar: ASan build without SIMD arms + env-override TSan rerun =="
cmake -B build-scalar -S . -DCSHIELD_FORCE_SCALAR=ON \
  -DCSHIELD_SANITIZE=address >/dev/null
cmake --build build-scalar -j "${jobs}" --target kernels_test crypto_test \
  fragmentation_test raid_test
./build-scalar/tests/kernels_test
./build-scalar/tests/crypto_test
./build-scalar/tests/fragmentation_test
./build-scalar/tests/raid_test
# Same coverage through the runtime switch: the SIMD arms are compiled in
# but the env override pins dispatch to the scalar byte loops.
CSHIELD_FORCE_SCALAR=1 ./build-tsan/tests/concurrency_test
CSHIELD_FORCE_SCALAR=1 ./build-tsan/tests/recovery_test

echo "== [7/7] perf gates: bench_throughput + bench_kernels + frontier + migration + shardplane =="
./build/bench/bench_throughput BENCH_throughput.json
./build/bench/bench_kernels BENCH_kernels.json
./build/bench/bench_encryption_vs_fragmentation BENCH_frontier.json
./build/bench/bench_migration BENCH_migration.json
./build/bench/bench_shardplane BENCH_shardplane.json

echo "== ci.sh: all stages passed =="

// Architecture tour: the three deployment shapes of SIV (Figs. 1-2 and the
// SIV-C client-side variant) driven side by side on the same providers.
//
//   1. single Cloud Data Distributor (Fig. 1),
//   2. distributor group -- primary uploads, any front-end serves reads
//      (Fig. 2),
//   3. client-side CHORD-style distributor -- no third party at all.
#include <iostream>

#include "core/client_side.hpp"
#include "core/distributor.hpp"
#include "core/multi_distributor.hpp"
#include "storage/provider_registry.hpp"

using namespace cshield;

int main() {
  storage::ProviderRegistry providers = storage::make_default_registry(12);

  Bytes report_doc(64 * 1024);
  for (std::size_t i = 0; i < report_doc.size(); ++i) {
    report_doc[i] = static_cast<std::uint8_t>(i * 7);
  }

  // --- 1. single distributor (Fig. 1) -----------------------------------
  {
    std::cout << "=== Fig. 1: single Cloud Data Distributor ===\n";
    core::CloudDataDistributor cdd(providers, core::DistributorConfig{});
    (void)cdd.register_client("acme");
    (void)cdd.add_password("acme", "pw", PrivacyLevel::kHigh);
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kModerate;
    Status st = cdd.put_file("acme", "pw", "q3-report", report_doc, opts);
    Result<Bytes> back = cdd.get_file("acme", "pw", "q3-report");
    std::cout << "put: " << st.to_string() << ", get: "
              << back.status().to_string() << " (intact="
              << (back.ok() && equal(back.value(), report_doc)) << ")\n"
              << "limitation the paper flags: one distributor = single "
                 "point of failure.\n\n";
    (void)cdd.remove_file("acme", "pw", "q3-report");
  }

  // --- 2. distributor group (Fig. 2) --------------------------------------
  {
    std::cout << "=== Fig. 2: multiple distributors, shared tables ===\n";
    core::DistributorGroup group(providers, core::DistributorConfig{}, 3);
    (void)group.register_client("acme");
    (void)group.add_password("acme", "pw", PrivacyLevel::kHigh);
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kModerate;
    Status st = group.put_file("acme", "pw", "q3-report", report_doc, opts);
    std::cout << "primary upload: " << st.to_string() << "\n";
    // Any secondary can serve the read.
    for (std::size_t d = 0; d < group.size(); ++d) {
      Result<Bytes> back = group.at(d).get_file("acme", "pw", "q3-report");
      std::cout << "read via distributor " << d << ": "
                << back.status().to_string() << " (intact="
                << (back.ok() && equal(back.value(), report_doc)) << ")\n";
    }
    std::cout << "\n";
  }

  // --- 3. client-side DHT (SIV-C) ------------------------------------------
  {
    std::cout << "=== SIV-C: client-side CHORD-style distributor ===\n";
    core::ClientSideConfig config;
    config.replicas = 2;
    config.seed = 0xAC31E;  // this client's secret id key
    core::ClientSideDistributor client(providers, config);
    Status st = client.put_file("q3-report", report_doc,
                                PrivacyLevel::kModerate);
    Result<Bytes> back = client.get_file("q3-report");
    std::cout << "put: " << st.to_string() << ", get: "
              << back.status().to_string() << " (intact="
              << (back.ok() && equal(back.value(), report_doc)) << ")\n"
              << "client-resident tables: " << client.local_table_bytes()
              << " B  <- the paper's \"client will require some memory\" "
                 "trade-off\n";
    // The ring maps <filename, serial> pairs identically for every client
    // that downloads the same provider list.
    const auto& ring = client.ring_for(PrivacyLevel::kModerate);
    std::cout << "PL2 ring: " << ring.node_count() << " virtual nodes over "
              << ring.ownership().size() << " trusted providers\n";
    (void)client.remove_file("q3-report");
  }
  return 0;
}

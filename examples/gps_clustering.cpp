// The GPS clustering experiment (SVIII, Figures 4-6) as a walkthrough.
//
// A location-based-service app stores its users' GPS observations in the
// cloud. An attacker who obtains the data clusters users into
// neighbourhoods ("categorize people or entities", SII-B). With the full
// table the dendrogram recovers the true communities; with one provider's
// fragment, entities move between clusters.
#include <iostream>

#include "attack/adversary.hpp"
#include "attack/harness.hpp"
#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"
#include "workload/gps.hpp"
#include "workload/records.hpp"

using namespace cshield;

int main() {
  // 30 users, 3000 observations each, 4 latent neighbourhoods.
  workload::GpsConfig cfg;
  const workload::GpsTraces traces = workload::generate_gps(cfg);
  std::cout << "generated " << traces.observations.num_rows()
            << " GPS observations for " << cfg.num_users << " users in "
            << cfg.num_communities << " neighbourhoods\n\n";

  // Reference: what an attacker with ALL the data learns.
  const mining::Dataset full_features =
      workload::gps_user_features(traces.observations, cfg.num_users);
  const mining::Dendrogram full_tree = mining::cluster_rows(
      mining::standardize(full_features), mining::Linkage::kAverage);
  const std::vector<int> full_labels = full_tree.cut(cfg.num_communities);
  std::cout << "attacker with the ENTIRE table (Figure 4):\n"
            << "  recovered neighbourhoods, agreement with ground truth: "
            << mining::adjusted_rand_index(full_labels,
                                           traces.community_of_user)
            << " (1.0 = perfect)\n"
            << "  dendrogram leaf order: ";
  for (std::size_t leaf : full_tree.leaf_order()) std::cout << leaf + 1 << " ";
  std::cout << "\n\n";

  // Store the observation table through the distributor, one sixth per
  // provider. Chunks are contiguous in time, so each insider holds a
  // ~42-day window (~500 observations per user) -- the paper's Figs. 5-6
  // setting. (Finer-grained round-robin chunking would hand each provider a
  // systematic sample of the whole period instead, which is *kinder to the
  // attacker* -- time-correlated behaviour averages out; see
  // bench_fig456_clustering for the series.)
  const workload::RecordCodec codec{traces.observations.column_names()};
  storage::ProviderRegistry registry = storage::make_default_registry(6);
  core::DistributorConfig config;
  config.default_raid = raid::RaidLevel::kNone;
  config.placement = core::PlacementMode::kRoundRobin;
  for (auto& s : config.chunk_sizes.size_bytes) {
    s = (traces.observations.num_rows() / 6) * codec.record_size();
  }
  core::CloudDataDistributor cdd(registry, config);
  (void)cdd.register_client("lbs-app");
  (void)cdd.add_password("lbs-app", "pw", PrivacyLevel::kHigh);
  core::PutOptions opts;
  // PL0 here so all 6 providers are eligible: each insider ends up with a
  // ~500-observation-per-user time slice -- the paper's Figs. 5-6 number.
  opts.privacy_level = PrivacyLevel::kPublic;
  opts.record_align = codec.record_size();
  CS_REQUIRE(cdd.put_file("lbs-app", "pw", "gps.tbl",
                          codec.encode(traces.observations), opts)
                 .ok(),
             "upload failed");

  // Each insider clusters whatever their provider holds (Figures 5-6).
  std::cout << "insiders at each provider (Figures 5-6 setting):\n";
  for (ProviderIndex p = 0; p < registry.size(); ++p) {
    if (registry.at(p).object_count() == 0) continue;
    const mining::Dataset rows =
        attack::reconstruct_rows(attack::insider(registry, p), codec);
    const mining::Dataset features =
        workload::gps_user_features(rows, cfg.num_users);
    const attack::ClusteringAttackResult r = attack::clustering_attack(
        features, full_tree, cfg.num_communities);
    std::cout << "  " << registry.at(p).descriptor().name << ": "
              << rows.num_rows() << " observations";
    if (!r.mining_succeeded) {
      std::cout << " -> clustering failed\n";
      continue;
    }
    std::cout << " -> " << static_cast<int>(r.churn_vs_reference * 30)
              << "/30 users moved clusters (ARI "
              << mining::adjusted_rand_index(full_labels, r.labels)
              << ", cophenetic corr " << r.cophenetic_corr << ")\n";
  }

  std::cout << "\nthe paper's observation: \"The results obtained using "
               "these two approaches are different ... Many entities have "
               "moved from their original cluster to other clusters due to "
               "fragmentation of data.\"\n";
  return 0;
}

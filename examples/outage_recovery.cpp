// Availability walkthrough (SIII-A/B): the April 2011 EC2 outage scenario.
//
// The paper motivates multi-cloud distribution partly by availability: "On
// April 21, 2011, EC2's northern Virginia data center was affected by an
// outage and brought several websites down." Here a client stores data with
// RAID-6 striping, two providers fail (one temporarily, one for good), the
// data stays readable, repair() restores full redundancy, and a corrupted
// shard is caught by its integrity digest.
#include <iostream>

#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"

using namespace cshield;

int main() {
  storage::ProviderRegistry providers = storage::make_default_registry(10);
  core::DistributorConfig config;
  config.default_raid = raid::RaidLevel::kRaid6;  // "higher assurance"
  config.stripe_data_shards = 3;                  // 3 data + P + Q per chunk
  core::CloudDataDistributor cdd(providers, config);
  (void)cdd.register_client("webshop");
  (void)cdd.add_password("webshop", "pw", PrivacyLevel::kHigh);

  Bytes catalogue(256 * 1024);
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    catalogue[i] = static_cast<std::uint8_t>(i ^ (i >> 8));
  }
  core::PutOptions opts;
  opts.privacy_level = PrivacyLevel::kLow;
  core::OpReport report;
  CS_REQUIRE(cdd.put_file("webshop", "pw", "catalogue.db", catalogue, opts,
                          &report)
                 .ok(),
             "upload failed");
  std::cout << "stored catalogue.db: " << report.chunks << " chunks x 5 "
            << "shards (RAID-6 k=3), " << report.bytes_stored
            << " B across " << providers.size() << " providers ("
            << raid::StripeLayout::make(raid::RaidLevel::kRaid6, 3)
                   .overhead_factor()
            << "x overhead)\n\n";

  auto check_read = [&](const char* when) {
    Result<Bytes> back = cdd.get_file("webshop", "pw", "catalogue.db");
    std::cout << when << ": read "
              << (back.ok() && equal(back.value(), catalogue)
                      ? "OK, byte-identical"
                      : "FAILED: " + back.status().to_string())
              << "\n";
  };
  check_read("all providers healthy    ");

  // The EC2-style outage: one provider goes dark.
  providers.at(1).set_online(false);
  std::cout << "\n>> " << providers.at(1).descriptor().name
            << " suffers an outage (temporary)\n";
  check_read("one provider down        ");

  // A second provider exits the market and takes its disks with it.
  providers.at(2).go_out_of_business();
  std::cout << ">> " << providers.at(2).descriptor().name
            << " goes out of business (data gone)\n";
  check_read("two providers down       ");

  // Repair while degraded: rebuild lost shards onto healthy providers.
  Result<std::size_t> repaired = cdd.repair();
  CS_REQUIRE(repaired.ok(), repaired.status().to_string());
  std::cout << "\nrepair(): rebuilt " << repaired.value()
            << " shards onto healthy providers\n";

  // The outage ends but full redundancy no longer depends on it.
  providers.at(1).set_online(true);
  std::cout << ">> " << providers.at(1).descriptor().name
            << " comes back online\n";

  // Silent corruption: the digest catches it and RAID routes around it.
  for (ProviderIndex p = 0; p < providers.size(); ++p) {
    const auto ids = providers.at(p).list_ids();
    if (!ids.empty() && providers.at(p).online()) {
      (void)providers.at(p).corrupt_object(ids.front(), 3);
      std::cout << ">> a shard at " << providers.at(p).descriptor().name
                << " is silently corrupted\n";
      break;
    }
  }
  check_read("after silent corruption  ");

  std::cout << "\nper-provider state:\n";
  for (ProviderIndex p = 0; p < providers.size(); ++p) {
    const auto& prov = providers.at(p);
    std::cout << "  " << prov.descriptor().name << ": "
              << (prov.online() ? "online " : "OFFLINE") << "  objects="
              << prov.object_count() << "  injected_failures="
              << prov.counters().injected_failures.load() << "\n";
  }
  return 0;
}

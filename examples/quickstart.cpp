// Quickstart: the CloudShield distributor in ~80 lines of client code.
//
//   1. stand up a fleet of simulated cloud providers,
//   2. register a client with per-privilege passwords (Table II),
//   3. upload files at different privacy levels,
//   4. inspect the three metadata tables the paper defines (Tables I-III),
//   5. read chunks/files back (with the SV access-control check),
//   6. remove a file.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <iostream>

#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"

using namespace cshield;

int main() {
  // 1. Twelve simulated providers with a spread of trust (PL) and cost (CL)
  //    tiers -- the "downloadable list of Cloud Providers".
  storage::ProviderRegistry providers = storage::make_default_registry(12);

  core::DistributorConfig config;
  config.default_raid = raid::RaidLevel::kRaid5;  // the paper's default
  config.stripe_data_shards = 3;
  config.misleading_fraction = 0.05;  // 5% chaff bytes in every chunk
  core::CloudDataDistributor cdd(providers, config);

  // 2. A client with one password per privilege level, as in Table II.
  (void)cdd.register_client("Bob");
  (void)cdd.add_password("Bob", "aB1c", PrivacyLevel::kPublic);
  (void)cdd.add_password("Bob", "x9pr", PrivacyLevel::kLow);
  (void)cdd.add_password("Bob", "6S4r", PrivacyLevel::kModerate);
  (void)cdd.add_password("Bob", "Ty7e", PrivacyLevel::kHigh);

  // 3. Upload three files at different sensitivities. Chunk sizes shrink as
  //    sensitivity grows; every chunk is erasure-coded across providers.
  auto upload = [&](const std::string& name, std::size_t size,
                    PrivacyLevel pl) {
    Bytes data(size);
    for (std::size_t i = 0; i < size; ++i) {
      data[i] = static_cast<std::uint8_t>(i * 131 + size);
    }
    core::PutOptions opts;
    opts.privacy_level = pl;
    core::OpReport report;
    Status st = cdd.put_file("Bob", "Ty7e", name, data, opts, &report);
    std::cout << "put " << name << " (" << size << " B, "
              << privacy_level_name(pl) << "): " << st.to_string() << " -- "
              << report.chunks << " chunks, " << report.shards
              << " shards, " << report.bytes_stored
              << " B stored, modeled "
              << report.sim_time_parallel.count() / 1000000.0 << " ms\n";
    return data;
  };
  const Bytes notes = upload("notes.txt", 3 * 1024, PrivacyLevel::kPublic);
  const Bytes ledger = upload("ledger.db", 40 * 1024, PrivacyLevel::kModerate);
  const Bytes vault = upload("vault.key", 2 * 1024, PrivacyLevel::kHigh);

  // 4. The Cloud Provider Table (Table I): who holds how many chunks.
  std::cout << "\nCloud Provider Table (Table I):\n";
  TextTable provider_table({"Cloud Provider", "PL", "CL", "Count"});
  for (const auto& row : cdd.metadata().provider_table()) {
    provider_table.add(row.name, level_index(row.privacy_level),
                       level_index(row.cost_level), row.count());
  }
  provider_table.print(std::cout);

  // Client Table (Table II): passwords (masked) and per-file chunk refs.
  std::cout << "\nClient Table (Table II):\n";
  TextTable client_table({"Client", "(pass, PL)", "Count",
                          "(filename, sl, PL, idx)"});
  for (const auto& row : cdd.metadata().client_table()) {
    std::string pws;
    for (const auto& [pw, pl] : row.passwords) {
      pws += "(" + pw.substr(0, 2) + "**, " +
             std::to_string(level_index(pl)) + ") ";
    }
    std::string refs;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, row.chunks.size());
         ++i) {
      const auto& ref = row.chunks[i];
      refs += "(" + ref.filename + ", " + std::to_string(ref.serial) + ", " +
              std::to_string(level_index(ref.privacy_level)) + ", " +
              std::to_string(ref.chunk_index) + ") ";
    }
    if (row.chunks.size() > 3) refs += "...";
    client_table.add(row.name, pws, row.chunk_count(), refs);
  }
  client_table.print(std::cout);

  // Chunk Table (Table III): virtual id, PL, provider index, snapshot, M.
  std::cout << "\nChunk Table (Table III), first rows:\n";
  TextTable chunk_table({"virtual id", "PL", "CP index", "SP index", "M"});
  const auto chunks = cdd.metadata().chunk_table();
  for (std::size_t i = 0; i < std::min<std::size_t>(5, chunks.size()); ++i) {
    const auto& e = chunks[i];
    chunk_table.add(
        e.stripe.empty() ? 0 : e.stripe.front().virtual_id,
        level_index(e.privacy_level),
        e.stripe.empty() ? std::string("-")
                         : std::to_string(e.stripe.front().provider),
        e.has_snapshot ? std::to_string(e.snapshot.front().provider) : "NA",
        "{" +
            (e.misleading.empty()
                 ? std::string()
                 : std::to_string(e.misleading.front()) + ", ...") +
            "}");
  }
  chunk_table.print(std::cout);

  // 5. Retrieval with access control (SV): the PL1 password may read
  //    notes.txt but not ledger.db.
  Result<Bytes> ok_read = cdd.get_file("Bob", "x9pr", "notes.txt");
  std::cout << "\nget notes.txt with PL1 password: "
            << ok_read.status().to_string()
            << " (intact=" << (ok_read.ok() && equal(ok_read.value(), notes))
            << ")\n";
  Result<Bytes> denied = cdd.get_file("Bob", "x9pr", "ledger.db");
  std::cout << "get ledger.db with PL1 password: "
            << denied.status().to_string() << "  <- as the paper's SV demo\n";
  Result<Bytes> granted = cdd.get_file("Bob", "6S4r", "ledger.db");
  std::cout << "get ledger.db with PL2 password: "
            << granted.status().to_string() << " (intact="
            << (granted.ok() && equal(granted.value(), ledger)) << ")\n";

  // Individual chunk access by (client, password, filename, serial).
  Result<Bytes> chunk0 = cdd.get_chunk("Bob", "Ty7e", "vault.key", 0);
  std::cout << "get vault.key chunk 0: " << chunk0.status().to_string()
            << " (" << (chunk0.ok() ? chunk0.value().size() : 0) << " B)\n";
  (void)vault;

  // 6. Removal propagates to every provider.
  Status removed = cdd.remove_file("Bob", "Ty7e", "notes.txt");
  std::cout << "\nremove notes.txt: " << removed.to_string() << "; re-read: "
            << cdd.get_file("Bob", "Ty7e", "notes.txt").status().to_string()
            << "\n";

  std::cout << "\nmonthly storage bill across providers: $"
            << providers.total_monthly_cost_usd() << "\n";
  return 0;
}

// cshield_cli: a small command-line client driving a disk-backed CloudShield
// deployment, the artifact a downstream user would script against.
//
// State lives under a root directory: one DiskStore per simulated provider
// (wired as a write-through mirror, so shards are durable the moment a put
// returns), a metadata checkpoint image (`metadata.bin`), and a write-ahead
// journal (`journal.wal`). Startup always goes through crash recovery:
// checkpoint + journal replay, tolerating a torn journal tail from a crash
// mid-append. Metadata is never rewritten wholesale on each command -- the
// journal is the commit record, and `checkpoint` (or the automatic
// every-64-records cut) folds it into metadata.bin.
//
// Usage:
//   cshield_cli <root> init [providers]
//   cshield_cli <root> adduser <client> <password> <pl 0-3>
//   cshield_cli <root> put <client> <password> <name> <local-file> <pl 0-3>
//   cshield_cli <root> get <client> <password> <name> <local-file>
//   cshield_cli <root> rm  <client> <password> <name>
//   cshield_cli <root> ls
//   cshield_cli <root> ls-files <client> <password>
//   cshield_cli <root> repair
//   cshield_cli <root> checkpoint
//   cshield_cli <root> recover
//   cshield_cli <root> scrub
//   cshield_cli <root> stats
//   cshield_cli <root> export          # Prometheus text exposition to stdout
//   cshield_cli <root> health          # rolling SLO/health report
//   cshield_cli <root> providers       # fleet table: lifecycle, breaker, bytes
//   cshield_cli <root> add-provider <name> <pl 0-3> <cl 0-3>   # join + migrate
//   cshield_cli <root> drain <name>         # empty a provider, keep it serving
//   cshield_cli <root> decommission <name>  # drain (if needed) and retire
//
// Topology commands run the journaled two-phase migration (see
// core/migrator.hpp); `--stripes-per-sec <r>` throttles the walk and
// `--max-in-flight <n>` caps concurrent chunk moves. A crash mid-migration
// leaves a kBeginMigrate intent that `recover` resumes to completion.
//
// Flags (any command): `--stats` prints this invocation's telemetry;
// `--journal <path>` overrides the journal location;
// `--meta-shards <n>` (init) partitions the metadata/journal plane N ways
// -- shard k's journal/checkpoint live at `journal.wal.s<k>` /
// `metadata.bin.s<k>` (shard 0 keeps the base names, so a 1-shard plane
// is bit- and path-compatible with the unsharded layout); later commands
// auto-detect N from the journal's shard stamp and refuse a flag that
// contradicts it;
// `--protection <partial-aes|misleading|fragmentation>` (put only) selects
// the per-chunk protection transform instead of the per-PL default;
// `--faults <p>`
// [`--fault-seed <s>`] injects seeded transient provider failures;
// `--export-file <path>` runs the continuous sampler (100 ms) for the
// command's duration, streaming JSONL samples to <path> and writing the
// final Prometheus exposition to <path>.prom on exit.
//
// Crash injection (recovery e2e): setting CSHIELD_CRASH_AFTER_APPENDS=<k>
// makes the process _exit(42) inside the journal's (k+1)-th append of this
// invocation, before the record reaches disk -- e.g. k=1 on a `put` lets
// kBeginPut land and kills the process at kCommitPut, leaving an in-flight
// put whose shards are on-disk orphans for `recover` to collect.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include <unistd.h>

#include "core/distributor.hpp"
#include "core/journal.hpp"
#include "core/metadata_io.hpp"
#include "core/metadata_plane.hpp"
#include "core/migrator.hpp"
#include "core/scrubber.hpp"
#include "obs/exporter.hpp"
#include "obs/health.hpp"
#include "obs/watchdog.hpp"
#include "storage/disk_store.hpp"
#include "storage/fault_plan.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"

namespace {

using namespace cshield;
namespace fs = std::filesystem;

/// A cloud provider whose object store is a directory: SimCloudProvider
/// models faults/latency in-memory with a DiskStore write-through mirror,
/// so every acknowledged shard write is already durable. On startup the
/// disk inventory is loaded back into the simulated provider (before the
/// mirror attaches, to avoid rewriting every object on every run).
struct CliWorld {
  fs::path root;
  storage::ProviderRegistry registry;
  std::vector<std::unique_ptr<storage::DiskStore>> disks;
  std::shared_ptr<core::MetadataStore> metadata;  ///< shard-0 partition
  std::shared_ptr<core::MetadataPlane> plane;
  std::size_t meta_shards = 1;
  /// Puts the last crash caught between kBeginPut and kCommitPut.
  std::vector<std::pair<std::string, std::string>> in_flight;
  /// Migrations the last crash caught between kBeginMigrate and
  /// kCommitMigrate; `recover` resumes them.
  std::vector<core::MigrationIntent> pending_migrations;
  std::shared_ptr<obs::StallWatchdog> watchdog;
  std::unique_ptr<core::CloudDataDistributor> cdd;

  CliWorld(fs::path r, const fs::path& journal_path, std::size_t providers = 0,
           std::size_t batch_ops = 1, std::size_t batch_ms = 0,
           std::size_t shards_flag = 0)
      : root(std::move(r)) {
    // Shard count: `--meta-shards` on init chooses it; afterwards the
    // journal's own shard stamp is the authority. A flag that contradicts
    // the stamp is refused -- re-opening a 4-shard plane as 2-shard would
    // scatter ownership and corrupt the namespace.
    Result<core::JournalShardInfo> stamp =
        core::probe_journal_shard(journal_path);
    if (stamp.ok()) {
      meta_shards = stamp.value().shard_count;
      CS_REQUIRE(shards_flag == 0 || shards_flag == meta_shards,
                 "shard count mismatch: " + journal_path.string() +
                     " belongs to a " + std::to_string(meta_shards) +
                     "-shard metadata plane, but --meta-shards " +
                     std::to_string(shards_flag) +
                     " was given; re-open it with the plane's own shard "
                     "count (or omit the flag to auto-detect)");
    } else {
      meta_shards = shards_flag == 0 ? 1 : shards_flag;
    }

    // Crash recovery first: every shard's checkpoint image + journal
    // replayed in parallel (one thread per shard). This is the only
    // metadata load path -- a clean shutdown is just a crash with an empty
    // tail. It runs before the registry is built because the recovered
    // provider table is the authority on fleet membership: runtime-added
    // providers and their lifecycle states live there, not in the default
    // registry layout.
    const fs::path meta_path = root / "metadata.bin";
    Result<core::PlaneRecovery> recovered =
        core::recover_plane(meta_path, journal_path, meta_shards);
    CS_REQUIRE(recovered.ok(), "metadata recovery failed: " +
                                   recovered.status().to_string());
    in_flight = recovered.value().in_flight;
    pending_migrations = recovered.value().pending_migrations;

    // Provider count: from init argument, the recovered table, or the
    // directory layout (whichever knows more -- a crash can die between
    // journaling a join and creating its directory). Provider rows are
    // broadcast to every partition, so shard 0 speaks for the plane.
    const auto table = recovered.value().shards[0].metadata->provider_table();
    std::size_t n = providers;
    if (n == 0) {
      while (fs::exists(root / ("provider" + std::to_string(n)))) ++n;
      n = std::max(n, table.size());
      CS_REQUIRE(n > 0, "no providers under " + root.string() +
                            " -- run 'init' first");
    }
    if (table.empty()) {
      registry = storage::make_default_registry(n);
    } else {
      // Rebuild the fleet the deployment actually has: names, trust/cost
      // levels and lifecycles from the recovered table.
      for (std::size_t i = 0; i < table.size(); ++i) {
        storage::ProviderDescriptor d;
        d.name = table[i].name;
        d.privacy_level = table[i].privacy_level;
        d.cost_level = table[i].cost_level;
        d.price_per_gb_month = 0.01 + 0.015 * level_index(table[i].cost_level);
        registry.add(std::move(d), storage::LatencyModel{},
                     0xFEED0000ULL + i, table[i].lifecycle);
      }
      n = table.size();
    }
    for (std::size_t p = 0; p < n; ++p) {
      disks.push_back(std::make_unique<storage::DiskStore>(
          root / ("provider" + std::to_string(p))));
      // Load persisted objects back into the simulated provider.
      for (VirtualId id : disks[p]->list_ids()) {
        Result<Bytes> obj = disks[p]->get(id);
        if (obj.ok()) (void)registry.at(p).put(id, obj.value());
      }
      registry.at(p).set_mirror(disks[p].get());
    }
    // Re-open every shard's journal for appends (truncating any torn tail
    // away), stamped with its place in the plane so a wrong-shape open of
    // any member fails loudly.
    std::vector<core::MetadataPlane::Partition> parts(meta_shards);
    for (std::size_t k = 0; k < meta_shards; ++k) {
      Result<std::unique_ptr<core::Journal>> j = core::Journal::open(
          core::shard_file_path(journal_path, k),
          static_cast<std::uint32_t>(k),
          static_cast<std::uint32_t>(meta_shards));
      CS_REQUIRE(j.ok(), "cannot open journal: " + j.status().to_string());
      parts[k].store = recovered.value().shards[k].metadata;
      parts[k].journal = std::shared_ptr<core::Journal>(std::move(j.value()));
      parts[k].checkpoint_path = core::shard_file_path(meta_path, k);
      // `--batch-ops/--batch-ms`: group-commit tuning, per commit lane.
      // Installed before the distributor exists so every append (including
      // the registrations the distributor journals at startup) goes
      // through the configured path.
      if (batch_ops > 1) {
        parts[k].journal->set_group_commit(core::GroupCommitConfig{
            batch_ops, std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::milliseconds(batch_ms))});
      }
    }
    plane = std::make_shared<core::MetadataPlane>(std::move(parts));
    install_crash_hook();

    core::DistributorConfig config;
    config.stripe_data_shards = 3;
    config.misleading_fraction = 0.05;
    config.plane = plane;
    // Stall watchdog: armed by every distributor op and request-layer RPC;
    // a stall dumps its diagnostic next to the deployment's state. Polled
    // by the exporter's sampler when --export-file is given.
    obs::StallWatchdog::Config wd_config;
    wd_config.dump_path = (root / "watchdog-dump.txt").string();
    watchdog =
        std::make_shared<obs::StallWatchdog>(obs::Telemetry::global(),
                                             wd_config);
    config.watchdog = watchdog;
    // Checkpoint paths live in the plane's partitions (one image per
    // shard); the interval still gates the automatic per-shard cuts.
    config.checkpoint_interval = 64;
    // Unique-ish per process so restart never reuses virtual ids.
    config.seed = 0xC11D ^ static_cast<std::uint64_t>(
                               std::chrono::steady_clock::now()
                                   .time_since_epoch()
                                   .count());
    cdd = std::make_unique<core::CloudDataDistributor>(registry, config);
    metadata = plane->store_ptr(0);
  }

  /// Creates the on-disk store for a just-added provider and wires its
  /// write-through mirror (the startup loop only covers providers that
  /// existed at construction).
  void attach_disk(ProviderIndex p) {
    while (disks.size() <= p) {
      disks.push_back(std::make_unique<storage::DiskStore>(
          root / ("provider" + std::to_string(disks.size()))));
    }
    registry.at(p).set_mirror(disks[p].get());
  }

  /// CSHIELD_CRASH_AFTER_APPENDS=<k>: allow k journal appends in this
  /// process, then die inside the next one before its record hits disk.
  /// The budget is shared across every shard's journal (one atomic), so on
  /// an N-shard plane the crash lands at whichever per-shard append
  /// crosses the threshold -- including a broadcast mid-fan-out, leaving
  /// some shards with the record and others without.
  void install_crash_hook() {
    const char* env = std::getenv("CSHIELD_CRASH_AFTER_APPENDS");
    if (env == nullptr) return;
    const auto allowed = static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
    auto seen = std::make_shared<std::atomic<std::uint64_t>>(0);
    for (std::size_t k = 0; k < plane->shard_count(); ++k) {
      plane->journal(k)->test_hook_before_append =
          [seen, allowed](const core::JournalRecord&) {
            if (seen->fetch_add(1, std::memory_order_relaxed) + 1 > allowed) {
              ::_exit(42);
            }
          };
    }
  }
};

Bytes read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CS_REQUIRE(static_cast<bool>(in), "cannot read " + path.string());
  Bytes data(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return data;
}

void write_file(const fs::path& path, BytesView data) {
  std::ofstream out(path, std::ios::binary);
  CS_REQUIRE(static_cast<bool>(out), "cannot write " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

int usage() {
  std::cerr << "usage: cshield_cli <root> "
               "init [n] | adduser <c> <pw> <pl> | put <c> <pw> <name> "
               "<file> <pl> | get <c> <pw> <name> <file> | rm <c> <pw> "
               "<name> | ls | ls-files <c> <pw> | repair | checkpoint | "
               "recover | scrub | stats | export | health | providers | "
               "add-provider <name> <pl> <cl> | drain <name> | "
               "decommission <name> "
               "[--stats] [--journal <path>] [--meta-shards <n>] "
               "[--stripes-per-sec <r>] [--max-in-flight <n>] "
               "[--protection <partial-aes|misleading|fragmentation>] "
               "[--batch-ops <n> "
               "[--batch-ms <t>]] [--faults <p> "
               "[--fault-seed <s>]] [--export-file <path>] after any "
               "command\n";
  return 2;
}

/// Removes a `--stats` flag from argv (anywhere after the command) so the
/// positional parsing below stays untouched.
bool strip_stats_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--stats") {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return true;
    }
  }
  return false;
}

/// Removes a `--<name> <value>` pair from argv and returns the value (empty
/// when the flag is absent), keeping positional parsing untouched.
std::string strip_value_flag(int& argc, char** argv, std::string_view name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == name) {
      std::string value = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return value;
    }
  }
  return {};
}

void print_journal_stats(CliWorld& world) {
  std::cout << "--- journal (" << world.meta_shards << " shard"
            << (world.meta_shards == 1 ? "" : "s") << ") ---\n";
  for (std::size_t k = 0; k < world.meta_shards; ++k) {
    core::Journal* j = world.plane->journal(k);
    std::cout << "shard " << k << ": " << j->path().string() << "\n"
              << "  records (uncheckpointed): " << j->record_count() << "\n"
              << "  bytes:               " << j->bytes() << "\n"
              << "  checkpointed ops:    " << j->last_checkpoint_ops() << "\n"
              << "  flushes:             " << j->flushes() << "\n"
              << "  group commits:       " << j->group_commits() << "\n";
  }
  std::cout << "in-flight puts:      " << world.in_flight.size() << "\n";
}

/// Prometheus metrics dump plus the top-N slowest spans by executed wall
/// time, with provider indices resolved back to names.
void print_stats(CliWorld& world, std::size_t top_n = 10) {
  const std::shared_ptr<obs::Telemetry>& tel = world.cdd->telemetry();
  std::cout << "--- metrics ---\n" << tel->metrics().to_prometheus();
  std::vector<obs::SpanRecord> spans = tel->tracer().snapshot();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
                     return a.wall_ns > b.wall_ns;
                   });
  if (spans.size() > top_n) spans.resize(top_n);
  std::cout << "--- " << spans.size() << " slowest spans (wall time) ---\n";
  TextTable t({"span", "client", "file", "chunk", "provider", "kind",
               "wall_us", "sim_us", "outcome"});
  for (const obs::SpanRecord& s : spans) {
    t.add(s.name, s.client.empty() ? "-" : s.client,
          s.file.empty() ? "-" : s.file,
          s.chunk == obs::kNoChunk ? std::string("-")
                                   : std::to_string(s.chunk),
          s.provider == kNoProvider
              ? std::string("-")
              : world.registry.at(s.provider).descriptor().name,
          std::string(obs::shard_kind_name(s.shard_kind)), s.wall_ns / 1000,
          s.sim_ns / 1000, std::string(error_code_name(s.outcome)));
  }
  t.print(std::cout);
  print_journal_stats(world);
}

}  // namespace

int main(int argc, char** argv) {
  const bool want_stats = strip_stats_flag(argc, argv);
  const std::string faults = strip_value_flag(argc, argv, "--faults");
  const std::string fault_seed = strip_value_flag(argc, argv, "--fault-seed");
  const std::string journal_flag = strip_value_flag(argc, argv, "--journal");
  const std::string export_file = strip_value_flag(argc, argv, "--export-file");
  // `--batch-ops <n>` enables journal group commit (n records per fsync);
  // `--batch-ms <t>` bounds how long a batch leader waits for the batch to
  // fill. The CLI is single-threaded, so these exist to prove the crash
  // drill's durability semantics hold with group commit enabled, not to
  // make one process faster.
  const std::string protection_flag =
      strip_value_flag(argc, argv, "--protection");
  const std::string batch_ops_flag = strip_value_flag(argc, argv, "--batch-ops");
  const std::string batch_ms_flag = strip_value_flag(argc, argv, "--batch-ms");
  // `--meta-shards <n>`: partitions of the metadata/journal plane. Chosen
  // at `init`; later invocations auto-detect from the journal's shard
  // stamp, and a flag that contradicts the stamp is refused.
  const std::string shards_flag = strip_value_flag(argc, argv, "--meta-shards");
  const std::size_t meta_shards =
      shards_flag.empty() ? 0 : std::stoul(shards_flag);
  // Migration pacing for the topology commands (and `recover`'s resume).
  const std::string sps_flag =
      strip_value_flag(argc, argv, "--stripes-per-sec");
  const std::string inflight_flag =
      strip_value_flag(argc, argv, "--max-in-flight");
  core::Migrator::Config mig_config;
  if (!sps_flag.empty()) mig_config.stripes_per_sec = std::stod(sps_flag);
  if (!inflight_flag.empty()) {
    mig_config.max_in_flight = std::stoul(inflight_flag);
  }
  const std::size_t batch_ops =
      batch_ops_flag.empty() ? 1 : std::stoul(batch_ops_flag);
  const std::size_t batch_ms =
      batch_ms_flag.empty() ? 0 : std::stoul(batch_ms_flag);
  // `--faults <p>` injects seeded transient failures at rate p into every
  // provider, exercising the retry/hedge/breaker path; the same
  // `--fault-seed` replays the exact same failure pattern.
  auto arm_faults = [&](CliWorld& world) {
    if (faults.empty()) return;
    storage::FaultPlan plan = storage::FaultPlan::transient(
        fault_seed.empty() ? storage::FaultPlan{}.seed
                           : std::stoull(fault_seed),
        std::stod(faults));
    world.registry.apply_fault_plan(
        std::make_shared<storage::FaultPlan>(std::move(plan)));
  };
  if (argc < 3) return usage();
  const fs::path root = argv[1];
  const std::string cmd = argv[2];
  const fs::path journal_path =
      journal_flag.empty() ? root / "journal.wal" : fs::path(journal_flag);
  try {
    if (cmd == "init") {
      const std::size_t n = argc > 3 ? std::stoul(argv[3]) : 12;
      fs::create_directories(root);
      CliWorld world(root, journal_path, n, batch_ops, batch_ms, meta_shards);
      // Fold the provider registrations into a first checkpoint so a fresh
      // deployment has both halves of the metadata pipeline on disk.
      Status st = world.cdd->checkpoint();
      CS_REQUIRE(st.ok(), st.to_string());
      std::cout << "initialized " << n << " providers under " << root
                << " (" << world.meta_shards << "-shard metadata plane)\n";
      return 0;
    }
    CliWorld world(root, journal_path, 0, batch_ops, batch_ms, meta_shards);
    arm_faults(world);
    // `--export-file`: the continuous sampler runs for the command's
    // duration, streaming one JSONL sample every 100 ms (and polling the
    // watchdog on the same tick).
    std::unique_ptr<obs::MetricsExporter> exporter;
    if (!export_file.empty()) {
      obs::MetricsExporter::Config ec;
      ec.jsonl_path = export_file;
      ec.watchdog = world.watchdog.get();
      exporter = std::make_unique<obs::MetricsExporter>(
          world.cdd->telemetry(), ec);
      exporter->start();
    }
    // Every command below funnels through `done` so --stats and
    // --export-file can report on whatever the command just did.
    auto done = [&](int rc) {
      if (exporter != nullptr) {
        exporter->stop();
        exporter->sample_now();  // final sample covers the command's tail
        std::ofstream prom(export_file + ".prom", std::ios::trunc);
        prom << exporter->to_prometheus();
        std::cout << "exported " << exporter->total_samples()
                  << " samples to " << export_file << " (+ .prom)\n";
      }
      if (want_stats) print_stats(world);
      return rc;
    };
    if (cmd == "stats") {
      print_stats(world);
      return done(0);
    }
    if (cmd == "export") {
      // One-shot scrape: build info + full registry exposition.
      obs::MetricsExporter ex(world.cdd->telemetry());
      ex.sample_now();
      std::cout << ex.to_prometheus();
      return done(0);
    }
    if (cmd == "health") {
      // Two samples bracket whatever state recovery/startup left, then the
      // engine folds providers + subsystem SLOs into one report.
      obs::MetricsExporter ex(world.cdd->telemetry());
      ex.sample_now();
      ex.sample_now();
      obs::HealthEngine engine(ex);
      const obs::HealthReport report = engine.evaluate();
      std::cout << report.to_string();
      return done(report.overall == obs::HealthState::kCritical ? 1 : 0);
    }
    if (cmd == "adduser" && argc == 6) {
      const std::string client = argv[3];
      (void)world.cdd->register_client(client);  // idempotent enough
      Status st = world.cdd->add_password(
          client, argv[4], privacy_level_from_int(std::stoi(argv[5])));
      std::cout << st.to_string() << "\n";
      return done(st.ok() ? 0 : 1);
    }
    if (cmd == "put" && argc == 8) {
      core::PutOptions opts;
      opts.privacy_level = privacy_level_from_int(std::stoi(argv[7]));
      if (!protection_flag.empty()) {
        if (protection_flag == "partial-aes") {
          opts.protection = ProtectionMode::kPartialAes;
        } else if (protection_flag == "misleading") {
          opts.protection = ProtectionMode::kMisleadingBytes;
        } else if (protection_flag == "fragmentation") {
          opts.protection = ProtectionMode::kFragmentation;
        } else {
          std::cerr << "unknown --protection '" << protection_flag << "'\n";
          return usage();
        }
      }
      core::OpReport report;
      Status st = world.cdd->put_file(argv[3], argv[4], argv[5],
                                      read_file(argv[6]), opts, &report);
      std::cout << st.to_string() << " (" << report.chunks << " chunks, "
                << report.shards << " shards, " << report.bytes_stored
                << " B stored)\n";
      return done(st.ok() ? 0 : 1);
    }
    if (cmd == "get" && argc == 7) {
      Result<Bytes> data = world.cdd->get_file(argv[3], argv[4], argv[5]);
      if (!data.ok()) {
        std::cout << data.status().to_string() << "\n";
        return done(1);
      }
      write_file(argv[6], data.value());
      std::cout << "OK (" << data.value().size() << " B)\n";
      return done(0);
    }
    if (cmd == "rm" && argc == 6) {
      Status st = world.cdd->remove_file(argv[3], argv[4], argv[5]);
      std::cout << st.to_string() << "\n";
      return done(st.ok() ? 0 : 1);
    }
    if (cmd == "ls-files" && argc == 5) {
      Result<std::vector<core::CloudDataDistributor::FileInfo>> files =
          world.cdd->list_files(argv[3], argv[4]);
      if (!files.ok()) {
        std::cout << files.status().to_string() << "\n";
        return done(1);
      }
      TextTable t({"file", "PL", "chunks"});
      for (const auto& f : files.value()) {
        t.add(f.filename, level_index(f.privacy_level), f.chunks);
      }
      t.print(std::cout);
      return done(0);
    }
    if (cmd == "ls") {
      TextTable t({"Cloud Provider", "PL", "CL", "Count", "Bytes"});
      // Merged plane view: placements are per-partition, so shard 0 alone
      // would under-count on an N-shard plane.
      const auto table = world.plane->provider_table();
      for (std::size_t p = 0; p < table.size(); ++p) {
        t.add(table[p].name, level_index(table[p].privacy_level),
              level_index(table[p].cost_level), table[p].count(),
              world.registry.at(p).bytes_stored());
      }
      t.print(std::cout);
      return done(0);
    }
    // One synchronous migration via the throttled engine; shared by the
    // topology commands and recover's crash-resume.
    auto run_migration = [&](core::MigrationKind kind,
                             ProviderIndex p) -> Status {
      core::Migrator migrator(*world.cdd, mig_config);
      Result<core::Migrator::Report> rep = migrator.run(kind, p);
      if (!rep.ok()) return rep.status();
      const core::Migrator::Report& r = rep.value();
      std::cout << core::migration_kind_name(kind) << " "
                << world.registry.at(p).descriptor().name
                << (r.committed ? " OK: " : " paused: ") << r.shards_moved
                << " shards (" << r.bytes_moved << " B) moved across "
                << r.chunks_visited << " chunks\n";
      return Status::Ok();
    };
    if (cmd == "providers") {
      TextTable t({"Cloud Provider", "PL", "CL", "Lifecycle", "Breaker",
                   "Shards", "Bytes", "Migration"});
      const auto table = world.plane->provider_table();
      for (std::size_t p = 0; p < table.size(); ++p) {
        const char* breaker = "closed";
        switch (world.registry.breaker(p).state()) {
          case storage::CircuitBreaker::State::kOpen: breaker = "open"; break;
          case storage::CircuitBreaker::State::kHalfOpen:
            breaker = "half-open";
            break;
          case storage::CircuitBreaker::State::kClosed: break;
        }
        std::string migration = "-";
        for (const core::MigrationIntent& m : world.pending_migrations) {
          if (m.provider == p) {
            migration =
                std::string(core::migration_kind_name(m.kind)) + " pending";
          }
        }
        t.add(table[p].name, level_index(table[p].privacy_level),
              level_index(table[p].cost_level),
              std::string(provider_lifecycle_name(table[p].lifecycle)),
              breaker, table[p].count(),
              world.registry.at(p).bytes_stored(), migration);
      }
      t.print(std::cout);
      return done(0);
    }
    if (cmd == "add-provider" && argc == 6) {
      storage::ProviderDescriptor d;
      d.name = argv[3];
      d.privacy_level = privacy_level_from_int(std::stoi(argv[4]));
      const int cl = std::stoi(argv[5]);
      CS_REQUIRE(cl >= 0 && cl < kNumCostLevels, "cost level outside 0..3");
      d.cost_level = static_cast<CostLevel>(cl);
      d.price_per_gb_month = 0.01 + 0.015 * cl;
      Result<ProviderIndex> added = world.cdd->add_provider(std::move(d));
      if (!added.ok()) {
        std::cout << added.status().to_string() << "\n";
        return done(1);
      }
      world.attach_disk(added.value());
      std::cout << "added " << argv[3] << " as provider" << added.value()
                << " (joining)\n";
      Status st = run_migration(core::MigrationKind::kJoin, added.value());
      if (!st.ok()) {
        std::cout << st.to_string() << " -- run 'recover' to resume\n";
        return done(1);
      }
      return done(0);
    }
    if ((cmd == "drain" || cmd == "decommission") && argc == 4) {
      const ProviderIndex p = world.registry.find(argv[3]);
      if (p == kNoProvider) {
        std::cout << "NOT_FOUND: no provider named " << argv[3] << "\n";
        return done(1);
      }
      Status st = run_migration(cmd == "drain"
                                    ? core::MigrationKind::kDrain
                                    : core::MigrationKind::kDecommission,
                                p);
      if (!st.ok()) {
        std::cout << st.to_string() << " -- run 'recover' to resume\n";
        return done(1);
      }
      return done(0);
    }
    if (cmd == "repair") {
      Result<std::size_t> repaired = world.cdd->repair();
      if (!repaired.ok()) {
        std::cout << repaired.status().to_string() << "\n";
        return done(1);
      }
      std::cout << "repaired " << repaired.value() << " shards\n";
      return done(0);
    }
    if (cmd == "checkpoint") {
      Status st = world.cdd->checkpoint();
      if (!st.ok()) {
        std::cout << st.to_string() << "\n";
        return done(1);
      }
      std::uint64_t folded = 0;
      for (std::size_t k = 0; k < world.meta_shards; ++k) {
        folded += world.plane->journal(k)->last_checkpoint_ops();
      }
      std::cout << "checkpoint OK (" << folded
                << " ops folded in total across " << world.meta_shards
                << " shard" << (world.meta_shards == 1 ? "" : "s") << ")\n";
      return done(0);
    }
    if (cmd == "recover") {
      // Startup already replayed checkpoint+journal; this reconciles the
      // providers against the recovered tables: GC orphan shards, abort
      // in-flight puts, re-run repair for degraded stripes.
      Result<core::CloudDataDistributor::ReconcileReport> rep =
          world.cdd->reconcile(world.in_flight);
      if (!rep.ok()) {
        std::cout << rep.status().to_string() << "\n";
        return done(1);
      }
      std::cout << "recover OK: " << rep.value().orphans_removed
                << " orphan shards removed, " << rep.value().stale_ids
                << " stale ids dropped, " << rep.value().aborted_files
                << " in-flight puts aborted, " << rep.value().repaired_shards
                << " shards repaired\n";
      // Resume any migration the crash interrupted: begin is re-issued
      // idempotently, already-moved shards are skipped, and commit finally
      // lands.
      for (const core::MigrationIntent& m : world.pending_migrations) {
        std::cout << "resuming " << core::migration_kind_name(m.kind)
                  << " of " << m.provider_name << "\n";
        Status st = run_migration(m.kind, m.provider);
        if (!st.ok()) {
          std::cout << st.to_string() << " -- run 'recover' again to resume\n";
          return done(1);
        }
      }
      return done(0);
    }
    if (cmd == "scrub") {
      core::Scrubber scrubber(*world.cdd);
      Result<std::size_t> repaired = scrubber.run_pass();
      const core::Scrubber::Progress prog = scrubber.progress();
      if (!repaired.ok()) {
        std::cout << repaired.status().to_string() << " (scanned "
                  << prog.chunks_scanned << " chunks)\n";
        return done(1);
      }
      std::cout << "scrub OK: " << prog.chunks_scanned
                << " chunks scanned, " << prog.digest_mismatches
                << " digest mismatches, " << prog.shards_repaired
                << " shards repaired\n";
      return done(0);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}

// cshield_cli: a small command-line client driving a disk-backed CloudShield
// deployment, the artifact a downstream user would script against.
//
// State lives under a root directory: one DiskStore per simulated provider
// plus the serialized metadata tables, so the "cloud" persists across
// invocations.
//
// Usage:
//   cshield_cli <root> init [providers]
//   cshield_cli <root> adduser <client> <password> <pl 0-3>
//   cshield_cli <root> put <client> <password> <name> <local-file> <pl 0-3>
//   cshield_cli <root> get <client> <password> <name> <local-file>
//   cshield_cli <root> rm  <client> <password> <name>
//   cshield_cli <root> ls
//   cshield_cli <root> ls-files <client> <password>
//   cshield_cli <root> repair
//   cshield_cli <root> stats
//
// Any command also accepts --stats, which prints the telemetry collected
// during this invocation (metrics dump + slowest spans) after the command
// finishes. The bare `stats` subcommand reports on startup/load only --
// the CLI is one process per command, so cross-invocation history lives in
// the data itself, not the telemetry ring.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <vector>

#include "core/distributor.hpp"
#include "core/metadata_io.hpp"
#include "storage/disk_store.hpp"
#include "storage/fault_plan.hpp"
#include "storage/provider_registry.hpp"
#include "util/table.hpp"

namespace {

using namespace cshield;
namespace fs = std::filesystem;

/// A cloud provider whose object store is a directory: SimCloudProvider
/// models faults/latency in-memory, so for the CLI we persist via DiskStore
/// mirrors -- every provider object is written through to disk on put and
/// loaded back on startup.
struct CliWorld {
  fs::path root;
  storage::ProviderRegistry registry;
  std::vector<std::unique_ptr<storage::DiskStore>> disks;
  std::shared_ptr<core::MetadataStore> metadata;
  std::unique_ptr<core::CloudDataDistributor> cdd;

  explicit CliWorld(fs::path r, std::size_t providers = 0) : root(std::move(r)) {
    // Provider count: from init argument, or from the directory layout.
    std::size_t n = providers;
    if (n == 0) {
      while (fs::exists(root / ("provider" + std::to_string(n)))) ++n;
      CS_REQUIRE(n > 0, "no providers under " + root.string() +
                            " -- run 'init' first");
    }
    registry = storage::make_default_registry(n);
    for (std::size_t p = 0; p < n; ++p) {
      disks.push_back(std::make_unique<storage::DiskStore>(
          root / ("provider" + std::to_string(p))));
      // Load persisted objects back into the simulated provider.
      for (VirtualId id : disks[p]->list_ids()) {
        Result<Bytes> obj = disks[p]->get(id);
        if (obj.ok()) (void)registry.at(p).put(id, obj.value());
      }
    }
    // Metadata image, if present.
    const fs::path meta_path = root / "metadata.bin";
    if (fs::exists(meta_path)) {
      std::ifstream in(meta_path, std::ios::binary | std::ios::ate);
      Bytes image(static_cast<std::size_t>(in.tellg()));
      in.seekg(0);
      in.read(reinterpret_cast<char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
      Result<std::shared_ptr<core::MetadataStore>> restored =
          core::deserialize_metadata(image);
      CS_REQUIRE(restored.ok(), restored.status().to_string());
      metadata = restored.value();
    }
    core::DistributorConfig config;
    config.stripe_data_shards = 3;
    config.misleading_fraction = 0.05;
    // Unique-ish per process so restart never reuses virtual ids.
    config.seed = 0xC11D ^ static_cast<std::uint64_t>(
                               std::chrono::steady_clock::now()
                                   .time_since_epoch()
                                   .count());
    cdd = std::make_unique<core::CloudDataDistributor>(registry, config,
                                                       metadata);
    metadata = cdd->metadata_ptr();
  }

  /// Persists metadata and mirrors every provider's objects to disk.
  void sync() {
    const Bytes image = core::serialize_metadata(*metadata);
    std::ofstream out(root / "metadata.bin", std::ios::binary);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    for (std::size_t p = 0; p < registry.size(); ++p) {
      // Mirror adds/removals.
      std::set<VirtualId> live;
      for (VirtualId id : registry.at(p).list_ids()) {
        live.insert(id);
        if (!disks[p]->contains(id)) {
          Result<Bytes> obj = registry.at(p).get(id);
          if (obj.ok()) (void)disks[p]->put(id, obj.value());
        }
      }
      for (VirtualId id : disks[p]->list_ids()) {
        if (live.count(id) == 0) (void)disks[p]->remove(id);
      }
    }
  }
};

Bytes read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CS_REQUIRE(static_cast<bool>(in), "cannot read " + path.string());
  Bytes data(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return data;
}

void write_file(const fs::path& path, BytesView data) {
  std::ofstream out(path, std::ios::binary);
  CS_REQUIRE(static_cast<bool>(out), "cannot write " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

int usage() {
  std::cerr << "usage: cshield_cli <root> "
               "init [n] | adduser <c> <pw> <pl> | put <c> <pw> <name> "
               "<file> <pl> | get <c> <pw> <name> <file> | rm <c> <pw> "
               "<name> | ls | ls-files <c> <pw> | repair | stats "
               "[--stats] [--faults <p> [--fault-seed <s>]] after any "
               "command\n";
  return 2;
}

/// Removes a `--stats` flag from argv (anywhere after the command) so the
/// positional parsing below stays untouched.
bool strip_stats_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--stats") {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return true;
    }
  }
  return false;
}

/// Removes a `--<name> <value>` pair from argv and returns the value (empty
/// when the flag is absent), keeping positional parsing untouched.
std::string strip_value_flag(int& argc, char** argv, std::string_view name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == name) {
      std::string value = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return value;
    }
  }
  return {};
}

/// Prometheus metrics dump plus the top-N slowest spans by executed wall
/// time, with provider indices resolved back to names.
void print_stats(CliWorld& world, std::size_t top_n = 10) {
  const std::shared_ptr<obs::Telemetry>& tel = world.cdd->telemetry();
  std::cout << "--- metrics ---\n" << tel->metrics().to_prometheus();
  std::vector<obs::SpanRecord> spans = tel->tracer().snapshot();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
                     return a.wall_ns > b.wall_ns;
                   });
  if (spans.size() > top_n) spans.resize(top_n);
  std::cout << "--- " << spans.size() << " slowest spans (wall time) ---\n";
  TextTable t({"span", "client", "file", "chunk", "provider", "kind",
               "wall_us", "sim_us", "outcome"});
  for (const obs::SpanRecord& s : spans) {
    t.add(s.name, s.client.empty() ? "-" : s.client,
          s.file.empty() ? "-" : s.file,
          s.chunk == obs::kNoChunk ? std::string("-")
                                   : std::to_string(s.chunk),
          s.provider == kNoProvider
              ? std::string("-")
              : world.registry.at(s.provider).descriptor().name,
          std::string(obs::shard_kind_name(s.shard_kind)), s.wall_ns / 1000,
          s.sim_ns / 1000, std::string(error_code_name(s.outcome)));
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const bool want_stats = strip_stats_flag(argc, argv);
  const std::string faults = strip_value_flag(argc, argv, "--faults");
  const std::string fault_seed = strip_value_flag(argc, argv, "--fault-seed");
  // `--faults <p>` injects seeded transient failures at rate p into every
  // provider, exercising the retry/hedge/breaker path; the same
  // `--fault-seed` replays the exact same failure pattern.
  auto arm_faults = [&](CliWorld& world) {
    if (faults.empty()) return;
    storage::FaultPlan plan = storage::FaultPlan::transient(
        fault_seed.empty() ? storage::FaultPlan{}.seed
                           : std::stoull(fault_seed),
        std::stod(faults));
    world.registry.apply_fault_plan(
        std::make_shared<storage::FaultPlan>(std::move(plan)));
  };
  if (argc < 3) return usage();
  const fs::path root = argv[1];
  const std::string cmd = argv[2];
  try {
    if (cmd == "init") {
      const std::size_t n = argc > 3 ? std::stoul(argv[3]) : 12;
      fs::create_directories(root);
      CliWorld world(root, n);
      world.sync();
      std::cout << "initialized " << n << " providers under " << root
                << "\n";
      return 0;
    }
    CliWorld world(root);
    arm_faults(world);
    // Every command below funnels through `done` so --stats can report on
    // whatever the command just did.
    auto done = [&](int rc) {
      if (want_stats) print_stats(world);
      return rc;
    };
    if (cmd == "stats") {
      print_stats(world);
      return 0;
    }
    if (cmd == "adduser" && argc == 6) {
      const std::string client = argv[3];
      (void)world.cdd->register_client(client);  // idempotent enough
      Status st = world.cdd->add_password(
          client, argv[4], privacy_level_from_int(std::stoi(argv[5])));
      std::cout << st.to_string() << "\n";
      world.sync();
      return done(st.ok() ? 0 : 1);
    }
    if (cmd == "put" && argc == 8) {
      core::PutOptions opts;
      opts.privacy_level = privacy_level_from_int(std::stoi(argv[7]));
      core::OpReport report;
      Status st = world.cdd->put_file(argv[3], argv[4], argv[5],
                                      read_file(argv[6]), opts, &report);
      std::cout << st.to_string() << " (" << report.chunks << " chunks, "
                << report.shards << " shards, " << report.bytes_stored
                << " B stored)\n";
      world.sync();
      return done(st.ok() ? 0 : 1);
    }
    if (cmd == "get" && argc == 7) {
      Result<Bytes> data = world.cdd->get_file(argv[3], argv[4], argv[5]);
      if (!data.ok()) {
        std::cout << data.status().to_string() << "\n";
        return done(1);
      }
      write_file(argv[6], data.value());
      std::cout << "OK (" << data.value().size() << " B)\n";
      return done(0);
    }
    if (cmd == "rm" && argc == 6) {
      Status st = world.cdd->remove_file(argv[3], argv[4], argv[5]);
      std::cout << st.to_string() << "\n";
      world.sync();
      return done(st.ok() ? 0 : 1);
    }
    if (cmd == "ls-files" && argc == 5) {
      Result<std::vector<core::CloudDataDistributor::FileInfo>> files =
          world.cdd->list_files(argv[3], argv[4]);
      if (!files.ok()) {
        std::cout << files.status().to_string() << "\n";
        return done(1);
      }
      TextTable t({"file", "PL", "chunks"});
      for (const auto& f : files.value()) {
        t.add(f.filename, level_index(f.privacy_level), f.chunks);
      }
      t.print(std::cout);
      return done(0);
    }
    if (cmd == "ls") {
      TextTable t({"Cloud Provider", "PL", "CL", "Count", "Bytes"});
      const auto table = world.metadata->provider_table();
      for (std::size_t p = 0; p < table.size(); ++p) {
        t.add(table[p].name, level_index(table[p].privacy_level),
              level_index(table[p].cost_level), table[p].count(),
              world.registry.at(p).bytes_stored());
      }
      t.print(std::cout);
      return 0;
    }
    if (cmd == "repair") {
      Result<std::size_t> repaired = world.cdd->repair();
      if (!repaired.ok()) {
        std::cout << repaired.status().to_string() << "\n";
        return done(1);
      }
      std::cout << "repaired " << repaired.value() << " shards\n";
      world.sync();
      return done(0);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}

// The Hercules vs Titans story (SVII-A), end to end.
//
// Hercules is a company whose tender-bidding history (Table IV) lives in
// the cloud. Hera, a malicious employee of the provider Titans, regresses
// the data and recovers the bid formula -- then Hercules switches to the
// CloudShield distributor, splits the table across Titans, Spartans and
// Yagamis, and Hera's regression turns misleading.
#include <iostream>

#include "attack/adversary.hpp"
#include "attack/harness.hpp"
#include "core/distributor.hpp"
#include "storage/provider_registry.hpp"
#include "workload/bidding.hpp"
#include "workload/records.hpp"

using namespace cshield;

namespace {

storage::ProviderRegistry greek_clouds() {
  storage::ProviderRegistry reg;
  for (const char* name : {"Titans", "Spartans", "Yagamis"}) {
    storage::ProviderDescriptor d;
    d.name = name;
    d.privacy_level = PrivacyLevel::kHigh;
    reg.add(std::move(d));
  }
  return reg;
}

void attack_every_provider(storage::ProviderRegistry& registry,
                           const workload::RecordCodec& codec,
                           const mining::Dataset& table,
                           const mining::LinearModel& reference) {
  for (ProviderIndex p = 0; p < registry.size(); ++p) {
    if (registry.at(p).object_count() == 0) {
      std::cout << "  " << registry.at(p).descriptor().name
                << ": holds no data\n";
      continue;
    }
    const mining::Dataset rows =
        attack::reconstruct_rows(attack::insider(registry, p), codec);
    const auto r = attack::regression_attack(
        rows, workload::bidding_features(), "Bid", reference, table);
    std::cout << "  Hera inside " << registry.at(p).descriptor().name << " ("
              << rows.num_rows() << " rows): ";
    if (!r.mining_succeeded) {
      std::cout << "mining FAILED (too few observations)\n";
    } else {
      std::cout << r.model.equation(workload::bidding_features())
                << "  [error vs truth: "
                << static_cast<int>(r.coefficient_error * 100) << "%]\n";
    }
  }
}

}  // namespace

int main() {
  const mining::Dataset table = workload::hercules_table();
  const workload::RecordCodec codec{workload::bidding_columns()};
  const mining::LinearModel reference =
      mining::fit_linear(table, workload::bidding_features(), "Bid").value();

  std::cout << "Hercules' true bid formula (mined from the full table):\n  "
            << reference.equation(workload::bidding_features()) << "\n\n";

  // --- Act 1: the single-provider world -----------------------------------
  std::cout << "Act 1 -- all 12 rows at a single provider (Titans):\n";
  {
    storage::ProviderRegistry registry = greek_clouds();
    core::DistributorConfig config;
    config.default_raid = raid::RaidLevel::kNone;
    config.placement = core::PlacementMode::kRoundRobin;
    for (auto& s : config.chunk_sizes.size_bytes) {
      s = 12 * codec.record_size();  // one chunk = whole table
    }
    core::CloudDataDistributor cdd(registry, config);
    (void)cdd.register_client("Hercules");
    (void)cdd.add_password("Hercules", "nemean-lion", PrivacyLevel::kHigh);
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kHigh;
    opts.record_align = codec.record_size();
    CS_REQUIRE(cdd.put_file("Hercules", "nemean-lion", "bids.tbl",
                            codec.encode(table), opts)
                   .ok(),
               "upload failed");
    attack_every_provider(registry, codec, table, reference);
    std::cout << "  => Hera can sell the exact formula to Hydra; Hercules "
                 "loses the next tender.\n\n";
  }

  // --- Act 2: CloudShield fragmentation ------------------------------------
  std::cout << "Act 2 -- 4-row chunks distributed equally across three "
               "providers:\n";
  {
    storage::ProviderRegistry registry = greek_clouds();
    core::DistributorConfig config;
    config.default_raid = raid::RaidLevel::kNone;
    config.placement = core::PlacementMode::kRoundRobin;
    for (auto& s : config.chunk_sizes.size_bytes) {
      s = 4 * codec.record_size();
    }
    core::CloudDataDistributor cdd(registry, config);
    (void)cdd.register_client("Hercules");
    (void)cdd.add_password("Hercules", "nemean-lion", PrivacyLevel::kHigh);
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kHigh;
    opts.record_align = codec.record_size();
    CS_REQUIRE(cdd.put_file("Hercules", "nemean-lion", "bids.tbl",
                            codec.encode(table), opts)
                   .ok(),
               "upload failed");
    attack_every_provider(registry, codec, table, reference);
    std::cout << "  => every fragment equation is misleading (the paper's "
                 "SVII-A outcome); Hercules can still read the whole table:\n";
    Result<Bytes> back =
        cdd.get_file("Hercules", "nemean-lion", "bids.tbl");
    CS_REQUIRE(back.ok(), back.status().to_string());
    const mining::Dataset rebuilt = codec.decode(back.value()).value();
    std::cout << "     get_file returned all " << rebuilt.num_rows()
              << " rows intact.\n\n";
  }

  // --- Act 3: chaff on top ---------------------------------------------------
  std::cout << "Act 3 -- same split plus 10% misleading bytes:\n";
  {
    storage::ProviderRegistry registry = greek_clouds();
    core::DistributorConfig config;
    config.default_raid = raid::RaidLevel::kNone;
    config.placement = core::PlacementMode::kRoundRobin;
    config.misleading_fraction = 0.10;
    for (auto& s : config.chunk_sizes.size_bytes) {
      s = 4 * codec.record_size();
    }
    core::CloudDataDistributor cdd(registry, config);
    (void)cdd.register_client("Hercules");
    (void)cdd.add_password("Hercules", "nemean-lion", PrivacyLevel::kHigh);
    core::PutOptions opts;
    opts.privacy_level = PrivacyLevel::kHigh;
    opts.record_align = codec.record_size();
    CS_REQUIRE(cdd.put_file("Hercules", "nemean-lion", "bids.tbl",
                            codec.encode(table), opts)
                   .ok(),
               "upload failed");
    attack_every_provider(registry, codec, table, reference);
    Result<Bytes> back =
        cdd.get_file("Hercules", "nemean-lion", "bids.tbl");
    CS_REQUIRE(back.ok() && equal(back.value(), codec.encode(table)),
               "chaff must be transparent to the owner");
    std::cout << "  => chaff bytes shift Hera's record decoding entirely; "
                 "the owner's reads are untouched.\n";
  }
  return 0;
}
